//! Quickstart: approximate quantiles of a stream whose length you don't
//! know in advance.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mrl::sketch::{OptimizerOptions, UnknownN};

fn main() {
    // Guarantee: every answer within 1% of the true rank, with probability
    // 99.9% — no matter how long the stream turns out to be.
    let (epsilon, delta) = (0.01, 1e-3);
    let opts = if cfg!(debug_assertions) {
        OptimizerOptions::fast()
    } else {
        OptimizerOptions::default()
    };
    let mut sketch = UnknownN::<u64>::with_options(epsilon, delta, opts).with_seed(42);
    let cfg = sketch.config().clone();
    println!(
        "Configured automatically: b = {} buffers x k = {} elements = {} total ({}B at 8B/elem)",
        cfg.b,
        cfg.k,
        cfg.memory,
        cfg.memory * 8
    );

    // Stream ten million pseudo-random values through it.
    let n: u64 = 10_000_000;
    for i in 0..n {
        sketch.insert(i.wrapping_mul(6364136223846793005).rotate_left(17) % 1_000_000_007);
    }

    println!(
        "\nConsumed N = {} elements while holding at most {} in memory ({}x compression).",
        sketch.n(),
        sketch.memory_bound_elements(),
        sketch.n() as usize / sketch.memory_bound_elements()
    );
    println!(
        "Sampling engaged: {} (current rate: 1 element kept per block of {}).\n",
        sketch.sampling_started(),
        sketch.current_rate()
    );

    let phis = [0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99];
    let answers = sketch.query_many(&phis).expect("stream is nonempty");
    println!("phi      estimate          ideal (uniform)");
    for (phi, est) in phis.iter().zip(answers) {
        println!("{:<5}  {:>12}  {:>15.0}", phi, est, phi * 1_000_000_007f64);
    }
}
