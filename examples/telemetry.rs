//! The observability layer end to end: attach an [`InMemoryRecorder`] to
//! a sketch and a sharded pipeline, watch the live ε-audit while the
//! stream runs, and print the final metrics snapshot in both renderings.
//!
//! ```sh
//! cargo run --release --example telemetry
//! ```

use std::sync::Arc;

use mrl::datagen::{ValueDistribution, WorkloadStream};
use mrl::obs::{InMemoryRecorder, MetricsHandle};
use mrl::parallel::ShardedSketch;
use mrl::sketch::{OptimizerOptions, UnknownN};

fn main() {
    let opts = if cfg!(debug_assertions) {
        OptimizerOptions::fast()
    } else {
        OptimizerOptions::default()
    };
    let (epsilon, delta) = (0.01, 1e-3);
    let total: usize = if cfg!(debug_assertions) {
        500_000
    } else {
        4_000_000
    };

    // --- Single sketch with a recorder attached -------------------------
    let recorder = Arc::new(InMemoryRecorder::new());
    let mut sketch = UnknownN::<u64>::with_options(epsilon, delta, opts).with_seed(5);
    sketch.set_metrics(MetricsHandle::new(recorder.clone()));

    let stream = WorkloadStream::new(
        ValueDistribution::Normal {
            mean: 500_000.0,
            sigma: 100_000.0,
        },
        31,
    );

    println!("live eps-audit (headroom = tree_bound / (eps*N), certified while <= alpha):");
    println!(
        "{:>10}  {:>10}  {:>9}  {:>13}  rate",
        "N", "tree_bound", "headroom", "hoeffding_X"
    );
    let report_every = total / 5;
    for (i, v) in stream.take(total).enumerate() {
        sketch.insert(v);
        if (i + 1) % report_every == 0 {
            let audit = sketch.publish_audit();
            println!(
                "{:>10}  {:>10}  {:>9.4}  {:>13.1}  {}",
                audit.n, audit.tree_bound, audit.headroom, audit.hoeffding_x, audit.current_rate
            );
            assert!(
                audit.within_deterministic_share(),
                "tree error must stay inside its alpha share of the eps budget"
            );
        }
    }

    let snapshot = recorder.snapshot();
    println!(
        "\nfinal metrics snapshot ({} series, text rendering):",
        snapshot.series_count()
    );
    print!("{}", snapshot.render_text());
    println!("\nsame snapshot as one JSON line:\n{}", snapshot.to_json());

    // --- Sharded pipeline telemetry -------------------------------------
    let recorder = Arc::new(InMemoryRecorder::new());
    let mut pipeline = ShardedSketch::<u64>::new_with_metrics(
        4,
        epsilon,
        delta,
        opts,
        5,
        MetricsHandle::new(recorder.clone()),
    );
    let stream = WorkloadStream::new(ValueDistribution::Uniform { range: 1_000_000 }, 7);
    let values: Vec<u64> = stream.take(total).collect();
    for chunk in values.chunks(4096) {
        pipeline.insert_batch(chunk);
    }
    let outcome = pipeline.finish().expect("no shard panicked");
    let telemetry = outcome.telemetry();
    println!(
        "\nsharded run: {} elements over {} shards, merged collapses {}",
        telemetry.total_n,
        telemetry.per_shard.len(),
        telemetry.merged.collapses
    );
    for (shard, stats) in telemetry.per_shard.iter().enumerate() {
        println!(
            "  shard {shard}: {} elements, {} leaves, {} collapses",
            stats.elements, stats.leaves, stats.collapses
        );
    }
    println!("pipeline metrics snapshot (per-shard batch latency, queue depth):");
    print!("{}", recorder.snapshot().render_text());
}
