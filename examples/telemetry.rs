//! The observability layer end to end: attach an [`InMemoryRecorder`] to
//! a sketch and a sharded pipeline, watch the live ε-audit while the
//! stream runs, print the final metrics snapshot in its text, JSON and
//! Prometheus renderings, and record the whole run into the flight
//! recorder — spans included — exporting a Perfetto-loadable chrome
//! trace at the end.
//!
//! ```sh
//! cargo run --release --example telemetry
//! ```

use std::sync::Arc;

use mrl::datagen::{ValueDistribution, WorkloadStream};
use mrl::obs::{EventJournal, InMemoryRecorder, JournalHandle, MetricsHandle};
use mrl::parallel::ShardedSketch;
use mrl::sketch::{OptimizerOptions, UnknownN};

fn main() {
    let opts = if cfg!(debug_assertions) {
        OptimizerOptions::fast()
    } else {
        OptimizerOptions::default()
    };
    let (epsilon, delta) = (0.01, 1e-3);
    let total: usize = if cfg!(debug_assertions) {
        500_000
    } else {
        4_000_000
    };

    // --- Flight recorder shared by everything below ---------------------
    // One journal serves the whole process: each recording thread claims
    // its own ring, so the single sketch, the pipeline producer and every
    // shard worker get separate tracks in the exported trace. The panic
    // hook dumps the journal tail to stderr if anything goes wrong.
    let journal = Arc::new(EventJournal::new());
    mrl::obs::install_panic_hook(&journal);
    let flight = JournalHandle::new(Arc::clone(&journal));
    flight.name_thread("example", None);

    // --- Single sketch with a recorder attached -------------------------
    let recorder = Arc::new(InMemoryRecorder::new());
    let mut sketch = UnknownN::<u64>::with_options(epsilon, delta, opts).with_seed(5);
    sketch.set_metrics(MetricsHandle::new(recorder.clone()));
    sketch.set_journal(flight.clone());

    let stream = WorkloadStream::new(
        ValueDistribution::Normal {
            mean: 500_000.0,
            sigma: 100_000.0,
        },
        31,
    );

    println!("live eps-audit (headroom = tree_bound / (eps*N), certified while <= alpha):");
    println!(
        "{:>10}  {:>10}  {:>9}  {:>13}  rate",
        "N", "tree_bound", "headroom", "hoeffding_X"
    );
    let report_every = total / 5;
    // Wrap each reporting segment in a scoped span: the exported trace
    // shows five `ingest.segment` bars with the seals and collapses each
    // one triggered nested underneath.
    let mut segment = Some(flight.span("ingest.segment"));
    for (i, v) in stream.take(total).enumerate() {
        sketch.insert(v);
        if (i + 1) % report_every == 0 {
            segment.take();
            if i + 1 < total {
                segment = Some(flight.span("ingest.segment"));
            }
            let audit = sketch.publish_audit();
            println!(
                "{:>10}  {:>10}  {:>9.4}  {:>13.1}  {}",
                audit.n, audit.tree_bound, audit.headroom, audit.hoeffding_x, audit.current_rate
            );
            assert!(
                audit.within_deterministic_share(),
                "tree error must stay inside its alpha share of the eps budget"
            );
        }
    }

    let snapshot = recorder.snapshot();
    println!(
        "\nfinal metrics snapshot ({} series, text rendering):",
        snapshot.series_count()
    );
    print!("{}", snapshot.render_text());
    println!("\nsame snapshot as one JSON line:\n{}", snapshot.to_json());

    // --- Sharded pipeline telemetry -------------------------------------
    let recorder = Arc::new(InMemoryRecorder::new());
    let mut pipeline = ShardedSketch::<u64>::new_with_obs(
        4,
        epsilon,
        delta,
        opts,
        5,
        MetricsHandle::new(recorder.clone()),
        flight.clone(),
    );
    let stream = WorkloadStream::new(ValueDistribution::Uniform { range: 1_000_000 }, 7);
    let values: Vec<u64> = stream.take(total).collect();
    for chunk in values.chunks(4096) {
        pipeline.insert_batch(chunk);
    }
    let outcome = pipeline.finish().expect("no shard panicked");
    let telemetry = outcome.telemetry();
    println!(
        "\nsharded run: {} elements over {} shards, merged collapses {}",
        telemetry.total_n,
        telemetry.per_shard.len(),
        telemetry.merged.collapses
    );
    for (shard, stats) in telemetry.per_shard.iter().enumerate() {
        println!(
            "  shard {shard}: {} elements, {} leaves, {} collapses",
            stats.elements, stats.leaves, stats.collapses
        );
    }
    println!("pipeline metrics snapshot (per-shard batch latency, queue depth):");
    let pipeline_snapshot = recorder.snapshot();
    print!("{}", pipeline_snapshot.render_text());

    // --- Prometheus exposition ------------------------------------------
    println!("\nsame snapshot in Prometheus text exposition format (first lines):");
    for line in pipeline_snapshot.to_prometheus().lines().take(10) {
        println!("  {line}");
    }

    // --- Flight-recorder trace export -----------------------------------
    let dump = journal.drain();
    let trace = mrl::obs::export::perfetto::to_chrome_trace(&journal);
    let path = std::env::temp_dir().join("mrl_telemetry_trace.json");
    std::fs::write(&path, &trace).expect("write trace");
    println!(
        "\nflight recorder: {} events across {} thread rings ({} lost); \
         chrome trace written to {} — open it at https://ui.perfetto.dev",
        dump.event_count(),
        dump.rings.len(),
        dump.lost(),
        path.display()
    );
}
