//! Splitters for value-range data partitioning, computed in parallel
//! (paper §1.1: "Splitters are used in parallel database systems … for
//! value range data partitioning. They are also used in distributed
//! sorting to assign data elements to processors", and §6's parallel
//! algorithm).
//!
//! Eight workers each scan their own partition of a skewed dataset; the
//! coordinator merges their buffers and emits splitters that cut the
//! *global* value distribution into near-equal shares.
//!
//! ```sh
//! cargo run --release --example splitters_parallel
//! ```

use mrl::datagen::{ArrivalOrder, ValueDistribution, Workload};
use mrl::parallel::parallel_quantiles;
use mrl::sketch::OptimizerOptions;

fn main() {
    let workers = 8usize;
    let target_parts = 16usize; // distribute onto 16 downstream processors
    let per_worker = if cfg!(debug_assertions) {
        100_000u64
    } else {
        1_000_000
    };
    let opts = if cfg!(debug_assertions) {
        OptimizerOptions::fast()
    } else {
        OptimizerOptions::default()
    };

    // Each worker owns a differently-seeded shard of an exponential
    // (right-skewed) distribution — the hard case for naive equal-width
    // partitioning.
    let inputs: Vec<Vec<u64>> = (0..workers as u64)
        .map(|w| {
            Workload {
                values: ValueDistribution::Exponential { scale: 10_000.0 },
                order: ArrivalOrder::Random,
                n: per_worker,
                seed: 1000 + w,
            }
            .generate()
        })
        .collect();
    let mut all: Vec<u64> = inputs.iter().flatten().copied().collect();

    let phis: Vec<f64> = (1..target_parts)
        .map(|i| i as f64 / target_parts as f64)
        .collect();
    let out = parallel_quantiles(inputs, 0.005, 1e-4, &phis, opts, 7).expect("inputs are nonempty");

    println!(
        "{} workers x {} rows; splitters for {} partitions (eps = 0.5%, delta = 1e-4):\n",
        out.workers, per_worker, target_parts
    );
    println!(
        "per-worker memory: {} elements; coordinator: {} elements\n",
        out.worker_memory_elements, out.coordinator_memory_elements
    );

    // Score the split: how even are the partition shares really?
    all.sort_unstable();
    let n = all.len();
    let mut prev = 0usize;
    let mut worst_dev = 0.0f64;
    println!("part  splitter   share of rows");
    for (i, s) in out.quantiles.iter().enumerate() {
        let idx = all.partition_point(|v| v <= s);
        let share = (idx - prev) as f64 / n as f64;
        worst_dev = worst_dev.max((share - 1.0 / target_parts as f64).abs());
        println!("{:>4}  {:>8}   {:>6.3}%", i + 1, s, share * 100.0);
        prev = idx;
    }
    let share = (n - prev) as f64 / n as f64;
    println!(
        "{:>4}  {:>8}   {:>6.3}%",
        target_parts,
        "(max)",
        share * 100.0
    );
    worst_dev = worst_dev.max((share - 1.0 / target_parts as f64).abs());
    println!(
        "\nworst share deviation from the ideal {:.3}%: {:.3} percentage points",
        100.0 / target_parts as f64,
        worst_dev * 100.0
    );
}
