//! Online aggregation (paper §1.5, §3.7 and [Hel97]): the `Output`
//! operation "does not destroy or modify the state … it can be invoked as
//! many times as required", so a user interface can display running
//! quantile estimates — with error bars — while the scan is still going.
//!
//! ```sh
//! cargo run --release --example online_aggregation
//! ```

use mrl::datagen::{ValueDistribution, WorkloadStream};
use mrl::sketch::{OptimizerOptions, UnknownN};

fn main() {
    let opts = if cfg!(debug_assertions) {
        OptimizerOptions::fast()
    } else {
        OptimizerOptions::default()
    };
    let (epsilon, delta) = (0.01, 1e-3);
    let mut sketch = UnknownN::<u64>::with_options(epsilon, delta, opts).with_seed(5);

    // A long scan of normally distributed values; the true median is the
    // distribution mean, 500_000.
    let stream = WorkloadStream::new(
        ValueDistribution::Normal {
            mean: 500_000.0,
            sigma: 100_000.0,
        },
        31,
    );
    let total: u64 = if cfg!(debug_assertions) {
        1_000_000
    } else {
        8_000_000
    };
    let report_every = total / 10;

    println!("progress    N          p50 estimate    p99 estimate    +/- ranks (eps*N)");
    for (i, v) in stream.take(total as usize).enumerate() {
        sketch.insert(v);
        let i = i as u64 + 1;
        if i.is_multiple_of(report_every) {
            let q = sketch.query_many(&[0.5, 0.99]).expect("nonempty");
            println!(
                "{:>6.0}%  {:>10}  {:>14}  {:>14}  {:>12.0}",
                i as f64 / total as f64 * 100.0,
                i,
                q[0],
                q[1],
                epsilon * i as f64
            );
        }
    }
    println!(
        "\nEvery row above came from the same sketch, mid-stream, without \
         disturbing it; the guarantee holds at every prefix (unknown-N \
         property). Final memory: {} elements.",
        sketch.memory_elements()
    );
}
