//! Extreme quantiles of a sales table (paper §1.1 and §7).
//!
//! "Extreme values characterize outliers and represent skew in the data.
//! For instance, the 95th quantile in a quarterly sales table for all
//! franchises of a company is useful to compute." — and when the quantile
//! is extreme, the §7 estimator needs only a tiny heap instead of the
//! general algorithm's buffers.
//!
//! ```sh
//! cargo run --release --example extreme_tail
//! ```

use mrl::datagen::sales_stream;
use mrl::sketch::{ExtremeValue, OptimizerOptions, Tail};

fn main() {
    let n: u64 = if cfg!(debug_assertions) {
        500_000
    } else {
        5_000_000
    };
    // The 99th percentile of sale amounts, rank within 0.2% of exact,
    // 99.99% of the time.
    let (phi, eps, delta) = (0.99, 0.002, 1e-4);

    let mut est = ExtremeValue::<u64>::known_n(phi, eps, delta, n, Tail::High, 11);
    println!(
        "Estimating the p99 sale amount over {n} rows: sample s = {}, heap k = {}",
        est.sample_size(),
        est.k()
    );

    let mut exact: Vec<u64> = Vec::with_capacity(n as usize);
    for sale in sales_stream(2_000, (50_00f64).ln(), 1.2, 77).take(n as usize) {
        est.insert(sale.amount_cents);
        exact.push(sale.amount_cents);
    }

    let answer = est.query().expect("stream is nonempty");
    exact.sort_unstable();
    let true_p99 = exact[((phi * n as f64).ceil() as usize).clamp(1, exact.len()) - 1];
    let rank = exact.partition_point(|&v| v <= answer) as f64;
    println!("\nestimated p99: ${:.2}", answer as f64 / 100.0);
    println!("exact     p99: ${:.2}", true_p99 as f64 / 100.0);
    println!(
        "rank of the estimate: {:.4} (target {phi}, tolerance +/- {eps})",
        rank / n as f64
    );
    println!(
        "memory used: {} elements — the whole estimator fits in a cache line count\n",
        est.memory_elements()
    );

    // Contrast with the general algorithm's memory for the same guarantee.
    let opts = if cfg!(debug_assertions) {
        OptimizerOptions::fast()
    } else {
        OptimizerOptions::default()
    };
    let general = mrl::analysis::optimizer::optimize_unknown_n_with(eps, delta, opts);
    println!(
        "The general unknown-N algorithm would keep {} elements for (eps={eps}, delta={delta}) — \
         {}x more than the extreme-value heap.",
        general.memory,
        general.memory as u64 / est.k().max(1)
    );
}
