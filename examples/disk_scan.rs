//! Quantiles of a disk-resident table column in one buffered pass
//! (the paper's "online or disk-resident datasets", §1).
//!
//! Writes a synthetic 10M-row binary column to a temp file, then scans it
//! once through the sketch — the file never comes close to fitting in the
//! sketch's memory.
//!
//! ```sh
//! cargo run --release --example disk_scan
//! ```

use mrl::datagen::{ValueDistribution, WorkloadStream};
use mrl::io::{ColumnScan, ColumnWriter};
use mrl::sketch::{OptimizerOptions, UnknownN};

fn main() -> std::io::Result<()> {
    let rows: u64 = if cfg!(debug_assertions) {
        1_000_000
    } else {
        10_000_000
    };
    let mut path = std::env::temp_dir();
    path.push(format!("mrl-disk-scan-demo-{}.col", std::process::id()));

    // Write the synthetic table column.
    println!("writing {rows} rows to {} ...", path.display());
    let mut writer = ColumnWriter::create(&path)?;
    writer.extend(
        WorkloadStream::new(
            ValueDistribution::Zipf {
                n: 1_000_000,
                s: 1.07,
            },
            7,
        )
        .take(rows as usize),
    )?;
    writer.finish()?;
    let bytes = std::fs::metadata(&path)?.len();
    println!("file size: {:.1} MiB\n", bytes as f64 / (1024.0 * 1024.0));

    // One buffered pass through the sketch.
    let opts = if cfg!(debug_assertions) {
        OptimizerOptions::fast()
    } else {
        OptimizerOptions::default()
    };
    let mut sketch = UnknownN::<u64>::with_options(0.01, 1e-4, opts).with_seed(3);
    let started = std::time::Instant::now();
    for v in ColumnScan::open(&path)?.values() {
        sketch.insert(v);
    }
    let elapsed = started.elapsed();
    println!(
        "scanned {} rows in {elapsed:.2?} ({:.1} M rows/s) holding {} elements ({} KiB)",
        sketch.n(),
        sketch.n() as f64 / elapsed.as_secs_f64() / 1e6,
        sketch.memory_bound_elements(),
        sketch.memory_bound_elements() * 8 / 1024
    );

    println!("\nphi    estimate   (zipf column: heavy head, long tail)");
    for (phi, est) in sketch
        .query_many(&[0.25, 0.5, 0.9, 0.99, 0.999])
        .unwrap()
        .iter()
        .zip([0.25, 0.5, 0.9, 0.99, 0.999])
        .map(|(e, p)| (p, *e))
    {
        println!("{phi:<6} {est:>8}");
    }

    // Selectivity query, the optimizer use case: what fraction of rows
    // satisfy `value <= 10`?
    let (_, sel) = sketch.rank_of(&10).unwrap();
    println!(
        "\nselectivity of `value <= 10`: {:.1}% of rows",
        sel * 100.0
    );

    std::fs::remove_file(&path)?;
    Ok(())
}
