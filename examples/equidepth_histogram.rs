//! Equi-depth histogram of a dynamically growing table (paper §1.1–1.2).
//!
//! Query optimizers keep equi-depth histograms — the i/p-quantiles of a
//! column — for selectivity estimation. Because the MRL99 sketch needs no
//! advance knowledge of the table size, the histogram stays valid while
//! the table grows: just re-read the boundaries whenever the optimizer
//! wants them.
//!
//! ```sh
//! cargo run --release --example equidepth_histogram
//! ```

use mrl::datagen::{sales_stream, SaleRecord};
use mrl::sketch::{EquiDepthHistogram, OptimizerOptions};

fn main() {
    let buckets = 10;
    let opts = if cfg!(debug_assertions) {
        OptimizerOptions::fast()
    } else {
        OptimizerOptions::default()
    };
    // Boundary ranks within 0.5% of exact, all ten at once, 99.99% of the
    // time.
    let mut hist = EquiDepthHistogram::<u64>::with_options(buckets, 0.005, 1e-4, opts).with_seed(7);
    println!(
        "10-bucket equi-depth histogram over a growing sales table \
         (memory bound: {} elements)\n",
        hist.memory_bound_elements()
    );

    // The table grows in four batches; after each batch the optimizer
    // re-reads fresh, still-accurate boundaries.
    let mut sales = sales_stream(500, (50_00f64).ln(), 1.0, 99);
    for batch in 1..=4u32 {
        let batch_size = 250_000usize * batch as usize;
        for SaleRecord { amount_cents, .. } in sales.by_ref().take(batch_size) {
            hist.insert(amount_cents);
        }
        let bounds = hist.boundaries().expect("table is nonempty");
        println!("after {:>9} rows:", hist.n());
        print!("  splitters ($): ");
        for b in &bounds {
            print!("{:>8.2}", *b as f64 / 100.0);
        }
        println!("\n");
    }
    println!(
        "Each bucket holds ~{}% of rows; boundaries shift as the heavy right \
         tail of sales accumulates.",
        100 / buckets
    );
}
