//! Differential matrix: every estimator in the workspace runs over the
//! same workloads and is scored with the same rank metric. Catches
//! regressions in any single estimator by comparing all of them at once.

use mrl::baselines::{BlockSampling, GmpHistogram};
use mrl::datagen::{ArrivalOrder, ValueDistribution, Workload};
use mrl::exact::rank_error;
use mrl::sampling::{rng_from_seed, Reservoir};
use mrl::sketch::{KnownN, OptimizerOptions, UnknownN};

struct Scores {
    name: &'static str,
    max_err: f64,
}

fn score_all(order: ArrivalOrder, seed: u64) -> Vec<Scores> {
    let n = 150_000u64;
    let data = Workload {
        values: ValueDistribution::Uniform { range: 1 << 26 },
        order,
        n,
        seed,
    }
    .generate();
    let phis = [0.1, 0.5, 0.9];
    let opts = OptimizerOptions::fast();
    let config = mrl::analysis::optimizer::optimize_unknown_n_with(0.05, 0.01, opts);
    let mem = config.memory;
    let mut out = Vec::new();

    let max_err = |answers: &[u64]| -> f64 {
        answers
            .iter()
            .zip(phis)
            .map(|(a, p)| rank_error(&data, a, p))
            .fold(0.0f64, f64::max)
    };

    // MRL99 unknown-N.
    {
        let mut s = UnknownN::<u64>::from_config(config.clone(), seed);
        s.extend(data.iter().copied());
        let answers = s.query_many(&phis).unwrap();
        out.push(Scores {
            name: "mrl99",
            max_err: max_err(&answers),
        });
    }
    // Known-N.
    {
        let mut s = KnownN::<u64>::new(0.05, 0.01, n).with_seed(seed);
        s.extend(data.iter().copied());
        let answers = s.query_many(&phis).unwrap();
        out.push(Scores {
            name: "known-n",
            max_err: max_err(&answers),
        });
    }
    // Reservoir at the same memory.
    {
        let mut rng = rng_from_seed(seed);
        let mut r = Reservoir::<u64>::new(mem);
        for &v in &data {
            r.offer(v, &mut rng);
        }
        let answers: Vec<u64> = phis.iter().map(|&p| r.quantile(p).unwrap()).collect();
        out.push(Scores {
            name: "reservoir",
            max_err: max_err(&answers),
        });
    }
    // GMP97 at the same memory.
    {
        let mut g = GmpHistogram::new(20, 0.5, mem.max(40), seed);
        g.extend(data.iter().copied());
        let answers: Vec<u64> = phis.iter().map(|&p| g.quantile(p).unwrap()).collect();
        out.push(Scores {
            name: "gmp97",
            max_err: max_err(&answers),
        });
    }
    // CMN98 block sampling at the same memory.
    {
        let mut b = BlockSampling::new((mem / 64).max(1), 64, seed);
        b.extend(data.iter().copied());
        let answers: Vec<u64> = phis.iter().map(|&p| b.quantile(p).unwrap()).collect();
        out.push(Scores {
            name: "cmn98",
            max_err: max_err(&answers),
        });
    }
    out
}

#[test]
fn guaranteed_estimators_hold_epsilon_on_random_order() {
    let scores = score_all(ArrivalOrder::Random, 3);
    for s in &scores {
        match s.name {
            // The two estimators with a certified (eps, delta) guarantee.
            "mrl99" | "known-n" => assert!(
                s.max_err <= 0.05,
                "{}: error {} above epsilon on random order",
                s.name,
                s.max_err
            ),
            // The baselines should at least be sane here.
            _ => assert!(
                s.max_err <= 0.25,
                "{}: error {} wildly off on random order",
                s.name,
                s.max_err
            ),
        }
    }
}

#[test]
fn only_guaranteed_estimators_survive_sorted_order() {
    let scores = score_all(ArrivalOrder::SortedAscending, 5);
    let mrl = scores.iter().find(|s| s.name == "mrl99").unwrap();
    let known = scores.iter().find(|s| s.name == "known-n").unwrap();
    let cmn = scores.iter().find(|s| s.name == "cmn98").unwrap();
    assert!(mrl.max_err <= 0.05, "mrl99 on sorted: {}", mrl.max_err);
    assert!(
        known.max_err <= 0.05,
        "known-n on sorted: {}",
        known.max_err
    );
    // The clustering pathology: block sampling degrades well past the
    // guaranteed estimators on sorted input.
    assert!(
        cmn.max_err > mrl.max_err,
        "expected cmn98 ({}) worse than mrl99 ({}) on sorted input",
        cmn.max_err,
        mrl.max_err
    );
}

#[test]
fn all_estimators_agree_on_tiny_exact_inputs() {
    // With fewer elements than any estimator's memory, everyone is exact.
    let data: Vec<u64> = vec![40, 10, 30, 20, 50];
    let opts = OptimizerOptions::fast();
    let config = mrl::analysis::optimizer::optimize_unknown_n_with(0.1, 0.01, opts);

    let mut sketch = UnknownN::<u64>::from_config(config, 1);
    sketch.extend(data.iter().copied());
    let mut gmp = GmpHistogram::new(2, 0.5, 100, 1);
    gmp.extend(data.iter().copied());
    let mut blocks = BlockSampling::new(10, 4, 1);
    blocks.extend(data.iter().copied());

    assert_eq!(sketch.query(0.5), Some(30));
    assert_eq!(blocks.quantile(0.5), Some(30));
    // GMP's bucket interpolation is exact here too (backing sample holds
    // everything).
    assert_eq!(gmp.quantile(1.0), Some(50));
}
