//! Property-based tests (proptest) on the core invariants:
//!
//! * weighted selection agrees with brute-force materialisation,
//! * collapse conserves mass and emits sorted output,
//! * the deterministic engine's Lemma-4 bound holds on arbitrary inputs,
//! * exact selectors agree on arbitrary inputs,
//! * sketch answers are always elements of the input (the paper's
//!   definition requires an approximate quantile to *belong to the input
//!   sequence*),
//! * batched ingestion (`insert_batch` over arbitrary chunkings) produces
//!   exactly the same deterministic accounting — `n`, output mass, tree
//!   stats — as per-element insertion, and identical answers when no
//!   randomness is consumed (rate 1).

use proptest::collection::vec;
use proptest::prelude::*;

use mrl::exact::{rank_error, sort_select};
use mrl::framework::{
    collapse_targets, select_weighted, total_mass, AdaptiveLowestLevel, Engine, EngineConfig,
    FixedRate, Mrl99Schedule, WeightedSource,
};

/// One certified unknown-`N` configuration shared by the sharded-pipeline
/// property (the reduced-grid optimizer run happens once per process).
fn fast_unknown_n_config() -> &'static mrl::analysis::optimizer::UnknownNConfig {
    static CONFIG: std::sync::OnceLock<mrl::analysis::optimizer::UnknownNConfig> =
        std::sync::OnceLock::new();
    CONFIG.get_or_init(|| {
        mrl::analysis::optimizer::optimize_unknown_n_with(
            0.05,
            0.01,
            mrl::analysis::optimizer::OptimizerOptions::fast(),
        )
    })
}

/// Brute-force weighted selection: materialise every copy.
fn select_brute(sources: &[(Vec<u32>, u64)], targets: &[u64]) -> Vec<u32> {
    let mut all = Vec::new();
    for (data, w) in sources {
        for v in data {
            for _ in 0..*w {
                all.push(*v);
            }
        }
    }
    all.sort_unstable();
    targets.iter().map(|&t| all[(t - 1) as usize]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn weighted_selection_matches_brute_force(
        raw in vec((vec(0u32..1000, 1..12), 1u64..6), 1..5),
        picks in vec(0.0f64..1.0, 1..6),
    ) {
        let sources: Vec<(Vec<u32>, u64)> = raw
            .into_iter()
            .map(|(mut d, w)| {
                d.sort_unstable();
                (d, w)
            })
            .collect();
        let borrowed: Vec<WeightedSource<'_, u32>> = sources
            .iter()
            .map(|(d, w)| WeightedSource::new(d, *w))
            .collect();
        let mass = total_mass(&borrowed);
        let mut targets: Vec<u64> = picks
            .iter()
            .map(|p| ((p * mass as f64).ceil() as u64).clamp(1, mass))
            .collect();
        targets.sort_unstable();
        prop_assert_eq!(
            select_weighted(&borrowed, &targets),
            select_brute(&sources, &targets)
        );
    }

    #[test]
    fn collapse_positions_cover_all_offsets_in_range(
        k in 1usize..20,
        w in 1u64..40,
        high in any::<bool>(),
    ) {
        let t = collapse_targets(k, w, high);
        prop_assert_eq!(t.len(), k);
        prop_assert!(t[0] >= 1);
        prop_assert!(*t.last().unwrap() <= k as u64 * w);
        // Equal spacing w between consecutive targets.
        for pair in t.windows(2) {
            prop_assert_eq!(pair[1] - pair[0], w);
        }
    }

    #[test]
    fn deterministic_engine_respects_lemma4_on_arbitrary_input(
        data in vec(0u64..100_000, 20..800),
        b in 2usize..6,
        k in 4usize..32,
    ) {
        let mut e = Engine::new(
            EngineConfig::new(b, k),
            AdaptiveLowestLevel,
            FixedRate::new(1),
            7,
        );
        e.extend(data.iter().copied());
        let bound = e.tree_error_bound() as f64 / data.len() as f64;
        for phi in [0.0, 0.5, 1.0] {
            let ans = e.query(phi).unwrap();
            let err = rank_error(&data, &ans, phi);
            prop_assert!(
                err <= bound + 1e-12,
                "phi={}, err={}, bound={}", phi, err, bound
            );
        }
    }

    #[test]
    fn sketch_answers_belong_to_the_input(
        data in vec(0u64..1_000_000, 1..600),
    ) {
        let mut e = Engine::new(
            EngineConfig::new(3, 8),
            AdaptiveLowestLevel,
            Mrl99Schedule::new(2),
            3,
        );
        e.extend(data.iter().copied());
        for phi in [0.0, 0.3, 0.77, 1.0] {
            let ans = e.query(phi).unwrap();
            prop_assert!(data.contains(&ans), "answer {} not in input", ans);
        }
    }

    #[test]
    fn exact_selectors_agree(
        data in vec(0u32..10_000, 1..200),
        pick in 0.0f64..1.0,
    ) {
        let r = ((pick * data.len() as f64).ceil() as usize).clamp(1, data.len());
        let expected = sort_select(&data, r);
        let mut rng = mrl::sampling::rng_from_seed(1);
        prop_assert_eq!(mrl::exact::quickselect(data.clone(), r, &mut rng), expected);
        prop_assert_eq!(mrl::exact::bfprt_select(data.clone(), r), expected);
        prop_assert_eq!(
            mrl::exact::two_pass_select(|| data.iter().copied(), r as u64, 2),
            expected
        );
    }

    #[test]
    fn mass_conservation_under_any_stream_length(
        n in 1u64..5_000,
    ) {
        let mut e = Engine::new(
            EngineConfig::new(3, 16),
            AdaptiveLowestLevel,
            Mrl99Schedule::new(1),
            11,
        );
        for i in 0..n {
            e.insert(i);
        }
        prop_assert_eq!(e.output_mass(), n);
        prop_assert_eq!(e.n(), n);
    }

    #[test]
    fn batched_ingestion_matches_scalar_accounting(
        data in vec(0u64..1_000_000, 1..1_500),
        cuts in vec(0.0f64..1.0, 0..6),
        h in 1u32..3,
    ) {
        // Scalar reference.
        let mut scalar = Engine::new(
            EngineConfig::new(3, 8),
            AdaptiveLowestLevel,
            Mrl99Schedule::new(h),
            17,
        );
        for &v in &data {
            scalar.insert(v);
        }
        // Batched run over an arbitrary chunking of the same stream.
        let mut bounds: Vec<usize> = cuts
            .iter()
            .map(|c| (c * data.len() as f64) as usize)
            .collect();
        bounds.push(0);
        bounds.push(data.len());
        bounds.sort_unstable();
        let mut batched = Engine::new(
            EngineConfig::new(3, 8),
            AdaptiveLowestLevel,
            Mrl99Schedule::new(h),
            17,
        );
        for w in bounds.windows(2) {
            batched.insert_batch(&data[w[0]..w[1]]);
        }
        // The block/leaf/collapse structure is a deterministic function of
        // the stream length, so every accounting statistic must agree even
        // though the two paths consume different random streams.
        prop_assert_eq!(batched.n(), scalar.n());
        prop_assert_eq!(batched.output_mass(), scalar.output_mass());
        prop_assert_eq!(batched.stats(), scalar.stats());
        prop_assert_eq!(batched.w_max(), scalar.w_max());
        prop_assert_eq!(batched.tree_error_bound(), scalar.tree_error_bound());
        // Answers come from the same weighted universe.
        for phi in [0.0, 0.5, 1.0] {
            let ans = batched.query(phi).unwrap();
            prop_assert!(data.contains(&ans), "batched answer {} not in input", ans);
        }
    }

    #[test]
    fn batched_ingestion_at_rate_one_is_bitwise_identical(
        data in vec(0i64..100_000, 1..700),
        cut in 0.0f64..1.0,
    ) {
        // Rate 1 consumes no randomness on either path, so the two engines
        // must agree exactly — answers included.
        let mut scalar = Engine::new(
            EngineConfig::new(4, 16),
            AdaptiveLowestLevel,
            FixedRate::new(1),
            23,
        );
        for &v in &data {
            scalar.insert(v);
        }
        let mut batched = Engine::new(
            EngineConfig::new(4, 16),
            AdaptiveLowestLevel,
            FixedRate::new(1),
            23,
        );
        let mid = (cut * data.len() as f64) as usize;
        batched.insert_batch(&data[..mid]);
        batched.insert_batch(&data[mid..]);
        let phis = [0.0, 0.25, 0.5, 0.75, 1.0];
        prop_assert_eq!(batched.query_many(&phis), scalar.query_many(&phis));
        prop_assert_eq!(batched.stats(), scalar.stats());
    }

    #[test]
    fn skip_ahead_selection_matches_brute_force_under_heavy_ties(
        raw in vec((vec(0u32..6, 1..15), 1u64..7), 1..6),
        picks in vec(0.0f64..1.0, 1..8),
    ) {
        // Tiny value domain forces long tied runs across sources — the
        // regime where the run-based skip merge must still agree with the
        // materialised reference at every position.
        let sources: Vec<(Vec<u32>, u64)> = raw
            .into_iter()
            .map(|(mut d, w)| {
                d.sort_unstable();
                (d, w)
            })
            .collect();
        let borrowed: Vec<WeightedSource<'_, u32>> = sources
            .iter()
            .map(|(d, w)| WeightedSource::new(d, *w))
            .collect();
        let mass = total_mass(&borrowed);
        let mut targets: Vec<u64> = picks
            .iter()
            .map(|p| ((p * mass as f64).ceil() as u64).clamp(1, mass))
            .collect();
        targets.sort_unstable();
        prop_assert_eq!(
            select_weighted(&borrowed, &targets),
            select_brute(&sources, &targets)
        );
    }

    #[test]
    fn run_merge_equals_sort_unstable_bitwise(
        runs in vec(vec(0u64..50, 1..30), 1..12),
    ) {
        // Arbitrary run partitions over a small value domain (long tied
        // runs): the bottom-up run merge must reproduce `sort_unstable`'s
        // output exactly, ties included.
        let mut data = Vec::new();
        let mut starts = Vec::new();
        for mut r in runs {
            r.sort_unstable();
            starts.push(data.len());
            data.extend(r);
        }
        let mut merged = data.clone();
        let mut scratch = Vec::new();
        mrl::framework::merge_sorted_runs(&mut merged, &starts, &mut scratch);
        let mut sorted = data;
        sorted.sort_unstable();
        prop_assert_eq!(merged, sorted);
    }

    #[test]
    fn run_tracked_sealing_is_chunking_invariant_on_adversarial_inputs(
        pattern in 0usize..3,
        n in 1usize..900,
        chunk_sizes in vec(1usize..64, 1..24),
        tie_domain in 1u64..6,
    ) {
        // Descending, sawtooth and tie-heavy streams drive the run tracker
        // through its whole regime (single run, few runs, saturated →
        // deferred seal). At rate 1 no randomness is consumed, so chunked
        // ingestion must stay bitwise identical to scalar insertion no
        // matter where the seals and collapses land.
        let data: Vec<u64> = (0..n)
            .map(|i| match pattern {
                0 => (n - i) as u64,
                1 => {
                    let s = i % 16;
                    if s < 8 { s as u64 } else { (16 - s) as u64 }
                }
                _ => (i as u64).wrapping_mul(2654435761) % tie_domain,
            })
            .collect();
        let mut scalar = Engine::new(
            EngineConfig::new(4, 16),
            AdaptiveLowestLevel,
            FixedRate::new(1),
            29,
        );
        for &v in &data {
            scalar.insert(v);
        }
        let mut batched = Engine::new(
            EngineConfig::new(4, 16),
            AdaptiveLowestLevel,
            FixedRate::new(1),
            29,
        );
        let mut at = 0usize;
        for &c in chunk_sizes.iter().cycle() {
            if at >= data.len() {
                break;
            }
            let end = (at + c).min(data.len());
            batched.insert_batch(&data[at..end]);
            at = end;
        }
        let phis = [0.0, 0.25, 0.5, 0.75, 1.0];
        prop_assert_eq!(batched.query_many(&phis), scalar.query_many(&phis));
        prop_assert_eq!(batched.stats(), scalar.stats());
        prop_assert_eq!(batched.n(), scalar.n());
    }

    #[test]
    fn sharded_pipeline_accounts_mass_and_stays_within_epsilon(
        n in 1u64..20_000,
        shards in 1usize..5,
        seed in 0u64..1_000,
    ) {
        let data: Vec<u64> = (0..n).map(|i| i.wrapping_mul(2654435761) % n.max(1)).collect();
        let config = fast_unknown_n_config();
        let mut sharded =
            mrl::parallel::ShardedSketch::<u64>::from_config(config.clone(), shards, seed)
                .with_batch_size(512);
        sharded.insert_batch(&data);
        let outcome = sharded.finish().expect("no shard panicked");
        // Exact element accounting survives the round-robin partition.
        prop_assert_eq!(outcome.total_n(), n);
        prop_assert_eq!(outcome.workers(), shards);
        // Shipped mass matches n up to one incomplete sampling block per
        // shard (the partial buffer's tail rounding).
        let slack = shards as u64 * 4096;
        let shipped = outcome.coordinator().shipped_mass();
        prop_assert!(
            shipped.abs_diff(n) <= slack,
            "shipped {} vs n {}", shipped, n
        );
        // Queries carry the per-shard epsilon guarantee through the merge;
        // allow the coordinator's own additive error on top.
        let mut sorted = data;
        sorted.sort_unstable();
        for phi in [0.1f64, 0.5, 0.9] {
            let q = outcome.query(phi).unwrap();
            let rank = sorted.partition_point(|v| *v <= q) as f64;
            let err = (rank - phi * n as f64).abs() / n as f64;
            prop_assert!(
                err <= 2.0 * config.epsilon + 2.0 / n as f64,
                "phi={}: rank error {}", phi, err
            );
        }
    }

    #[test]
    fn quantile_outputs_are_monotone_in_phi(
        data in vec(0u64..50_000, 10..500),
    ) {
        let mut e = Engine::new(
            EngineConfig::new(4, 8),
            AdaptiveLowestLevel,
            Mrl99Schedule::new(2),
            13,
        );
        e.extend(data.iter().copied());
        let qs = e.query_many(&[0.0, 0.2, 0.4, 0.6, 0.8, 1.0]).unwrap();
        for w in qs.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }
}

/// Feature `invariant-audit`: the engine itself asserts weight
/// conservation, sortedness, occupancy legality and the analysis-certified
/// error bound after every seal/collapse — these properties just need to
/// drive data through and let the built-in oracle fire.
#[cfg(feature = "invariant-audit")]
mod invariant_audit {
    use super::*;

    #[test]
    fn certificate_is_attached_to_certified_configs() {
        let config = fast_unknown_n_config().clone();
        let s = mrl::sketch::UnknownN::<u64>::from_config(config.clone(), 1);
        let engine = s.into_engine();
        let cert = engine
            .certified_schedule()
            .expect("optimizer output must carry a certificate");
        assert!(cert.g_pre > 0.0 && cert.g_post >= cert.g_pre);
        assert_eq!(cert.epsilon, config.epsilon);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Stream arbitrary data through the audited sketch, querying and
        /// finishing along the way; any invariant violation panics inside
        /// the engine's own auditor.
        #[test]
        fn audited_sketch_survives_arbitrary_streams(
            data in vec(0u64..1_000_000, 1..6_000),
            seed in 0u64..1_000,
            chunk in 1usize..700,
        ) {
            let config = fast_unknown_n_config().clone();
            let mut s = mrl::sketch::UnknownN::<u64>::from_config(config, seed);
            for part in data.chunks(chunk) {
                s.insert_batch(part);
            }
            prop_assert_eq!(s.n(), data.len() as u64);
            prop_assert!(s.query(0.5).is_some());
            s.finish();
            prop_assert!(s.query(0.5).is_some());
        }
    }
}
