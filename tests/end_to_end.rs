//! Cross-crate integration tests: the full pipeline from workload
//! generation through sketching to exact-rank scoring, exercising every
//! crate through the facade.

use mrl::datagen::{ArrivalOrder, ValueDistribution, Workload};
use mrl::exact::{exact_quantile, rank_error};
use mrl::sketch::{
    AnyQuantile, DynamicUnknownN, EquiDepthHistogram, ExtremeValue, KnownN, OptimizerOptions, Tail,
    UnknownN,
};

fn fast() -> OptimizerOptions {
    OptimizerOptions::fast()
}

#[test]
fn unknown_n_beats_guarantee_on_every_distribution_and_order() {
    let (eps, delta) = (0.05, 0.01);
    let config = mrl::analysis::optimizer::optimize_unknown_n_with(eps, delta, fast());
    let distributions = [
        ValueDistribution::Uniform { range: 1 << 24 },
        ValueDistribution::Zipf { n: 10_000, s: 1.2 },
        ValueDistribution::FewDistinct { distinct: 5 },
        ValueDistribution::Exponential { scale: 1e4 },
    ];
    let orders = [
        ArrivalOrder::Random,
        ArrivalOrder::SortedAscending,
        ArrivalOrder::SortedDescending,
        ArrivalOrder::OrganPipe,
    ];
    for dist in distributions {
        for order in orders {
            let data = Workload {
                values: dist,
                order,
                n: 120_000,
                seed: 3,
            }
            .generate();
            let mut sketch = UnknownN::<u64>::from_config(config.clone(), 17);
            sketch.extend(data.iter().copied());
            for phi in [0.1, 0.5, 0.9] {
                let ans = sketch.query(phi).unwrap();
                let err = rank_error(&data, &ans, phi);
                assert!(
                    err <= eps,
                    "{}/{:?} phi={phi}: rank error {err} > {eps}",
                    dist.label(),
                    order
                );
            }
        }
    }
}

#[test]
fn known_n_and_unknown_n_agree_on_the_same_stream() {
    let n = 150_000u64;
    let data = Workload {
        values: ValueDistribution::Uniform { range: 1 << 20 },
        order: ArrivalOrder::Random,
        n,
        seed: 5,
    }
    .generate();
    let mut unknown = UnknownN::<u64>::with_options(0.02, 0.01, fast()).with_seed(1);
    let mut known = KnownN::<u64>::new(0.02, 0.01, n).with_seed(1);
    unknown.extend(data.iter().copied());
    known.extend(data.iter().copied());
    for phi in [0.25, 0.5, 0.75] {
        let a = unknown.query(phi).unwrap();
        let b = known.query(phi).unwrap();
        assert!(rank_error(&data, &a, phi) <= 0.02, "unknown phi={phi}");
        assert!(rank_error(&data, &b, phi) <= 0.02, "known phi={phi}");
    }
}

#[test]
fn extreme_estimator_matches_general_sketch_on_the_tail() {
    let n = 200_000u64;
    let data = Workload {
        values: ValueDistribution::Exponential { scale: 5e4 },
        order: ArrivalOrder::Random,
        n,
        seed: 9,
    }
    .generate();
    let (phi, eps, delta) = (0.99, 0.005, 1e-3);
    let mut extreme = ExtremeValue::<u64>::known_n(phi, eps, delta, n, Tail::High, 4);
    extreme.extend(data.iter().copied());
    let tail = extreme.query().unwrap();
    assert!(rank_error(&data, &tail, phi) <= eps + 0.001, "extreme p99");
    // The heap is tiny compared to the general algorithm.
    let general = mrl::analysis::optimizer::optimize_unknown_n_with(eps, delta, fast());
    assert!(
        (extreme.k() as usize) < general.memory / 10,
        "heap {} not small vs {}",
        extreme.k(),
        general.memory
    );
}

#[test]
fn histogram_boundaries_score_against_exact_quantiles() {
    let data = Workload {
        values: ValueDistribution::Normal {
            mean: 1e6,
            sigma: 1e5,
        },
        order: ArrivalOrder::Random,
        n: 100_000,
        seed: 13,
    }
    .generate();
    let mut hist = EquiDepthHistogram::<u64>::with_options(8, 0.02, 0.01, fast()).with_seed(2);
    hist.extend(data.iter().copied());
    let bounds = hist.boundaries().unwrap();
    for (i, b) in bounds.iter().enumerate() {
        let phi = (i + 1) as f64 / 8.0;
        assert!(
            rank_error(&data, b, phi) <= 0.02,
            "boundary {i}: {b} vs exact {}",
            exact_quantile(&data, phi)
        );
    }
}

#[test]
fn any_quantile_snaps_within_combined_guarantee() {
    let data = Workload {
        values: ValueDistribution::Uniform { range: 1 << 22 },
        order: ArrivalOrder::Random,
        n: 90_000,
        seed: 21,
    }
    .generate();
    let mut any = AnyQuantile::<u64>::with_options(0.05, 0.01, fast()).with_seed(3);
    any.extend(data.iter().copied());
    for phi in [0.123, 0.456, 0.789, 0.999] {
        let ans = any.query(phi).unwrap();
        assert!(
            rank_error(&data, &ans, phi) <= 0.05,
            "phi={phi}: snap answer too far"
        );
    }
}

#[test]
fn dynamic_allocation_stays_accurate_while_growing() {
    // Early ceiling = the unconstrained optimum's memory, final ceiling 2x:
    // the plan may use extra buffers late but must start within the base
    // footprint. (Tighter early ceilings quickly become *mathematically*
    // infeasible at eps = 0.05: too few buffers early means a path-shaped
    // tree whose error no k can absorb — see DESIGN.md section 3.5.)
    let base = mrl::analysis::optimizer::optimize_unknown_n_with(0.05, 0.01, fast());
    let limits = [
        mrl::analysis::MemoryLimit {
            n: 5_000,
            max_memory: base.memory,
        },
        mrl::analysis::MemoryLimit {
            n: u64::MAX / 2,
            max_memory: base.memory * 2,
        },
    ];
    let Some(mut sketch) = DynamicUnknownN::<u64>::new(0.05, 0.01, &limits, fast(), 6) else {
        panic!("staged limits should be feasible");
    };
    let data = Workload {
        values: ValueDistribution::Uniform { range: 1 << 26 },
        order: ArrivalOrder::SortedDescending,
        n: 250_000,
        seed: 33,
    }
    .generate();
    sketch.extend(data.iter().copied());
    for phi in [0.2, 0.5, 0.8] {
        let ans = sketch.query(phi).unwrap();
        assert!(rank_error(&data, &ans, phi) <= 0.05, "phi={phi}");
    }
}

#[test]
fn parallel_matches_sequential_within_guarantee() {
    let data = Workload {
        values: ValueDistribution::Zipf { n: 50_000, s: 1.1 },
        order: ArrivalOrder::Random,
        n: 200_000,
        seed: 41,
    }
    .generate();
    let inputs: Vec<Vec<u64>> = (0..4)
        .map(|w| data.iter().skip(w).step_by(4).copied().collect())
        .collect();
    let out =
        mrl::parallel::parallel_quantiles(inputs, 0.05, 0.01, &[0.5, 0.95], fast(), 8).unwrap();
    for (q, phi) in out.quantiles.iter().zip([0.5, 0.95]) {
        assert!(
            rank_error(&data, q, phi) <= 0.06,
            "parallel phi={phi}: error too large"
        );
    }
}

#[test]
fn exact_baselines_agree_with_each_other() {
    let data = Workload {
        values: ValueDistribution::Uniform { range: 100_000 },
        order: ArrivalOrder::Random,
        n: 30_000,
        seed: 55,
    }
    .generate();
    let mut rng = mrl::sampling::rng_from_seed(5);
    for r in [1usize, 500, 15_000, 30_000] {
        let a = mrl::exact::sort_select(&data, r);
        let b = mrl::exact::quickselect(data.clone(), r, &mut rng);
        let c = mrl::exact::bfprt_select(data.clone(), r);
        let d = mrl::exact::two_pass_select(|| data.iter().copied(), r as u64, 77);
        assert_eq!(a, b, "quickselect rank {r}");
        assert_eq!(a, c, "bfprt rank {r}");
        assert_eq!(a, d, "two-pass rank {r}");
    }
}
