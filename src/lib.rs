//! # mrl — single-pass approximate quantiles of large datasets
//!
//! A from-scratch implementation of Manku, Rajagopalan and Lindsay,
//! *Random Sampling Techniques for Space Efficient Online Computation of
//! Order Statistics of Large Datasets* (SIGMOD 1999), together with every
//! substrate it builds on (the MRL98 buffer/collapse framework and the
//! known-`N` baselines) and the paper's companions: extreme-value
//! estimation, multi-quantile/equi-depth histograms, dynamic buffer
//! allocation, and the parallel merge protocol.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`sketch`] (from `mrl-core`) — the user-facing algorithms:
//!   `UnknownN`, `KnownN`, `ExtremeValue`, `EquiDepthHistogram`.
//! * [`framework`] (from `mrl-framework`) — buffers, collapse policies,
//!   rate schedules and the streaming engine.
//! * [`analysis`] (from `mrl-analysis`) — Hoeffding/Stein bounds, schedule
//!   simulation and the memory optimizer.
//! * [`sampling`] (from `mrl-sampling`) — block/reservoir/Bernoulli
//!   samplers.
//! * [`parallel`] (from `mrl-parallel`) — multi-worker computation (§6):
//!   offline `run_parallel` and the streaming `ShardedSketch` pipeline.
//! * [`exact`] (from `mrl-exact`) — exact selection baselines and rank
//!   utilities.
//! * [`datagen`] (from `mrl-datagen`) — synthetic workloads.
//! * [`io`] (from `mrl-io`) — disk-resident column scans and the
//!   `column_quantiles[_sharded]` one-pass ingest helpers.
//! * [`obs`] (from `mrl-obs`) — the observability layer: `Recorder`,
//!   `InMemoryRecorder`, `MetricsHandle`, snapshots/exporters, and the
//!   live ε-audit published by the instrumented engine and pipeline.
//!
//! ## Quick start
//!
//! ```
//! use mrl::sketch::{OptimizerOptions, UnknownN};
//!
//! // 1% rank error with probability 99.99%, stream length unknown. (The
//! // doc example uses the reduced optimizer grid to stay fast in debug
//! // builds; plain `UnknownN::new` searches the full grid.)
//! let mut sketch =
//!     UnknownN::<u64>::with_options(0.01, 1e-4, OptimizerOptions::fast()).with_seed(42);
//! for value in 0..100_000u64 {
//!     sketch.insert(value);
//! }
//! let median = sketch.query(0.5).unwrap();
//! assert!((median as f64 - 50_000.0).abs() <= 0.01 * 100_000.0);
//! ```

pub use mrl_analysis as analysis;
pub use mrl_baselines as baselines;
pub use mrl_core as sketch;
pub use mrl_datagen as datagen;
pub use mrl_exact as exact;
pub use mrl_framework as framework;
pub use mrl_io as io;
pub use mrl_obs as obs;
pub use mrl_parallel as parallel;
pub use mrl_sampling as sampling;
