//! Offline stand-in for `criterion`.
//!
//! A real (if simpler) wall-clock benchmarking harness exposing the API
//! this workspace's benches use: groups, `bench_function` /
//! `bench_with_input`, `iter` / `iter_batched`, `Throughput`,
//! `BenchmarkId`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark is calibrated with one timed
//! invocation, the iteration count per sample is chosen so a sample lasts
//! roughly `TARGET_SAMPLE`, `sample_size` samples are collected, and the
//! median per-iteration time is reported (with element throughput when the
//! group sets one). Passing `--test` (as `cargo test` does for bench
//! targets) or setting `CRITERION_SMOKE=1` runs every benchmark exactly
//! once, as a smoke test.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Target duration of one timed sample during calibrated runs.
const TARGET_SAMPLE: Duration = Duration::from_millis(20);

/// Opaque-to-the-optimiser identity function.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortises setup cost. The stand-in times the routine
/// per invocation either way, so the variants only document intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs (one setup per timed call).
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// Work-per-iteration declaration, used to report rates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many logical elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// A benchmark name, optionally parameterised (`function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Id rendered as `function/parameter`.
    pub fn new<P: Display>(function: &str, parameter: P) -> Self {
        Self {
            full: format!("{function}/{parameter}"),
        }
    }

    /// Id with only a parameter component.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            full: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            full: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { full: s }
    }
}

/// Timing collector handed to benchmark closures.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    /// Iterations folded into each sample (already calibrated).
    iters_per_sample: u64,
    /// Number of samples to collect.
    sample_count: usize,
    /// When true, calibrate `iters_per_sample` from the first invocation.
    calibrate: bool,
}

impl Bencher<'_> {
    /// Benchmark a routine; the reported time is per invocation.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.calibrate {
            let t0 = Instant::now();
            black_box(routine());
            let once = t0.elapsed();
            self.samples.push(once);
            self.calibrate_from(once);
        }
        for _ in 0..self.sample_count.saturating_sub(self.samples.len()) {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(t0.elapsed() / self.iters_per_sample as u32);
        }
    }

    /// Benchmark a routine whose input is rebuilt (untimed) per invocation.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.calibrate {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            let once = t0.elapsed();
            self.samples.push(once);
            self.calibrate_from(once);
        }
        for _ in 0..self.sample_count.saturating_sub(self.samples.len()) {
            let mut total = Duration::ZERO;
            for _ in 0..self.iters_per_sample {
                let input = setup();
                let t0 = Instant::now();
                black_box(routine(input));
                total += t0.elapsed();
            }
            self.samples.push(total / self.iters_per_sample as u32);
        }
    }

    /// Like [`Bencher::iter_batched`] but the routine borrows its input.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.iter_batched(setup, |mut input| routine(&mut input), size);
    }

    fn calibrate_from(&mut self, once: Duration) {
        self.calibrate = false;
        let per = once.max(Duration::from_nanos(1)).as_nanos();
        self.iters_per_sample = (TARGET_SAMPLE.as_nanos() / per).clamp(1, 1_000_000) as u64;
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration work for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Number of samples per benchmark (default 100 in real criterion; the
    /// stand-in defaults to 20 to keep full runs quick).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Register and run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        self.run(&id.full, |b| f(b));
        self
    }

    /// Register and run one benchmark parameterised by an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let id = id.into();
        self.run(&id.full, |b| f(b, input));
        self
    }

    /// End the group (reporting already happened per benchmark).
    pub fn finish(&mut self) {}

    fn run<F: FnMut(&mut Bencher<'_>)>(&mut self, bench_name: &str, mut f: F) {
        let full = format!("{}/{}", self.name, bench_name);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let smoke = self.criterion.smoke;
        let mut samples = Vec::new();
        let mut bencher = Bencher {
            samples: &mut samples,
            iters_per_sample: 1,
            sample_count: if smoke { 1 } else { self.sample_size },
            calibrate: !smoke,
        };
        f(&mut bencher);
        if samples.is_empty() {
            println!("{full:<48} (no measurement: closure never called iter)");
            return;
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let lo = samples[0];
        let hi = *samples.last().unwrap();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if median > Duration::ZERO => {
                format!("  {:>12} elem/s", per_second(n, median))
            }
            Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
                format!("  {:>12} B/s", per_second(n, median))
            }
            _ => String::new(),
        };
        if smoke {
            println!(
                "{full:<48} ok (smoke: 1 iteration, {})",
                fmt_duration(median)
            );
        } else {
            println!(
                "{full:<48} [{} {} {}]{rate}",
                fmt_duration(lo),
                fmt_duration(median),
                fmt_duration(hi)
            );
        }
    }
}

fn per_second(n: u64, d: Duration) -> String {
    let rate = n as f64 / d.as_secs_f64();
    if rate >= 1e9 {
        format!("{:.3}G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.3}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.3}K", rate / 1e3)
    } else {
        format!("{rate:.1}")
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3}s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// The benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    smoke: bool,
}

impl Default for Criterion {
    /// Reads the CLI args cargo passes to bench binaries: flags are
    /// ignored except `--test` (smoke mode); the first free-standing
    /// argument becomes a substring filter.
    fn default() -> Self {
        let mut filter = None;
        let mut smoke = std::env::var_os("CRITERION_SMOKE").is_some();
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                smoke = true;
            } else if !arg.starts_with('-') && filter.is_none() {
                filter = Some(arg);
            }
        }
        Self { filter, smoke }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Run a standalone benchmark (its own single-entry group).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let mut group = BenchmarkGroup {
            criterion: self,
            name: String::new(),
            sample_size: 20,
            throughput: None,
        };
        group.run(&id.full, |b| f(b));
        self
    }
}

/// Bundle benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_and_iter_batched_record_samples() {
        let mut c = Criterion {
            filter: None,
            smoke: true,
        };
        let mut group = c.benchmark_group("t");
        let mut calls = 0u32;
        group.bench_function("iter", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.bench_with_input(BenchmarkId::new("batched", 3), &3u32, |b, &x| {
            b.iter_batched(
                || vec![x; 4],
                |v| v.iter().sum::<u32>(),
                BatchSize::LargeInput,
            )
        });
        group.finish();
        assert!(calls >= 1);
    }

    #[test]
    fn benchmark_id_renders_function_slash_parameter() {
        assert_eq!(BenchmarkId::new("workers", 8).full, "workers/8");
    }
}
