//! Offline stand-in for `serde_json`.
//!
//! Converts between JSON text and the [`serde::Value`] tree of the vendored
//! serde stand-in. Covers the surface the workspace uses: `to_string` and
//! `from_str` of derived structs.

#![warn(missing_docs)]

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// Serialisation / parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias matching the real crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Render a value as compact JSON text.
pub fn to_string<S: Serialize + ?Sized>(value: &S) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Parse JSON text into any `Deserialize` type.
pub fn from_str<D: Deserialize>(text: &str) -> Result<D> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    D::from_value(&v).map_err(Error)
}

fn render(v: &Value, out: &mut String) -> Result<()> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error(format!("non-finite float {f} has no JSON form")));
            }
            // Keep integral floats recognisable as numbers with a fraction,
            // matching the real crate's output (`1.0`, not `1`).
            if f.fract() == 0.0 && f.abs() < 1e15 {
                out.push_str(&format!("{f:.1}"));
            } else {
                out.push_str(&f.to_string());
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render(item, out)?;
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_string(k, out);
                out.push(':');
                render(val, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            // Surrogate pairs are not needed for this
                            // workspace's ASCII field names and labels.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|c| c as char),
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("bad number `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value_tree() {
        let v = Value::Object(vec![
            ("n".into(), Value::Int(1_000_000)),
            ("phi".into(), Value::Float(0.5)),
            ("tag".into(), Value::Str("a \"quoted\" label\n".into())),
            (
                "levels".into(),
                Value::Array(vec![Value::Int(1), Value::Int(2)]),
            ),
            ("onset".into(), Value::Null),
            ("ok".into(), Value::Bool(true)),
        ]);
        let text = {
            let mut s = String::new();
            render(&v, &mut s).unwrap();
            s
        };
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        assert_eq!(p.value().unwrap(), v);
    }

    #[test]
    fn typed_roundtrip_through_text() {
        let rows: Vec<(u64, f64)> = vec![(1, 0.25), (2, 0.75)];
        let text = to_string(&rows).unwrap();
        let back: Vec<(u64, f64)> = from_str(&text).unwrap();
        assert_eq!(rows, back);
    }

    #[test]
    fn integral_floats_keep_a_fraction() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
    }
}
