//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the small slice of the `rand` 0.8 API it actually uses: `SmallRng`
//! (xoshiro256++ seeded through SplitMix64, the same construction the real
//! crate uses on 64-bit targets), the `Rng` extension methods `gen`,
//! `gen_range` and `gen_bool`, and `SeedableRng::{seed_from_u64,
//! from_entropy}`. Everything is deterministic given a seed, which the
//! workspace's test-suite relies on.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from their whole domain (the
/// `Standard` distribution of the real crate).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! int_standard {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f64 as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// Bounded integer draws replicate rand 0.8's `UniformInt::
// sample_single_inclusive` exactly (widening multiply with zone-based
// rejection, u32 "large type" for sub-word integers), so that every seeded
// stream in this workspace produces the same values it would with the real
// crate.

/// One inclusive draw with a `u64` large type (u64/i64/usize/isize).
fn sample_inclusive_u64<R: RngCore + ?Sized>(low: u64, high: u64, rng: &mut R) -> u64 {
    let range = high.wrapping_sub(low).wrapping_add(1);
    if range == 0 {
        return rng.next_u64();
    }
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let m = u128::from(v) * u128::from(range);
        if (m as u64) <= zone {
            return low.wrapping_add((m >> 64) as u64);
        }
    }
}

/// One inclusive draw with a `u32` large type (u8/u16/u32 and signed kin).
fn sample_inclusive_u32<R: RngCore + ?Sized>(low: u32, high: u32, rng: &mut R) -> u32 {
    let range = high.wrapping_sub(low).wrapping_add(1);
    if range == 0 {
        return rng.next_u32();
    }
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u32();
        let m = u64::from(v) * u64::from(range);
        if (m as u32) <= zone {
            return low.wrapping_add((m >> 32) as u32);
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty => $unsigned:ty, $sampler:ident),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let low = self.start as $unsigned;
                let high = (self.end as $unsigned).wrapping_sub(1);
                self.start
                    .wrapping_add($sampler(low.into(), high.into(), rng).wrapping_sub(low.into()) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let low = lo as $unsigned;
                let high = hi as $unsigned;
                lo.wrapping_add($sampler(low.into(), high.into(), rng).wrapping_sub(low.into()) as $t)
            }
        }
    )*};
}

int_sample_range!(
    u8 => u8, sample_inclusive_u32,
    u16 => u16, sample_inclusive_u32,
    u32 => u32, sample_inclusive_u32,
    u64 => u64, sample_inclusive_u64,
    usize => u64, sample_inclusive_u64,
    i8 => u8, sample_inclusive_u32,
    i16 => u16, sample_inclusive_u32,
    i32 => u32, sample_inclusive_u32,
    i64 => u64, sample_inclusive_u64,
    isize => u64, sample_inclusive_u64
);

impl SampleRange<f64> for Range<f64> {
    /// rand 0.8's `UniformFloat::sample_single`: a mantissa draw into
    /// `[1, 2)`, rescaled, rejecting the (rounding-induced) upper endpoint.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let scale = self.end - self.start;
        loop {
            let value1_2 = f64::from_bits((1023u64 << 52) | (rng.next_u64() >> 12));
            let res = (value1_2 - 1.0) * scale + self.start;
            if res < self.end {
                return res;
            }
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let scale = self.end - self.start;
        loop {
            let value1_2 = f32::from_bits((127u32 << 23) | (rng.next_u32() >> 9));
            let res = (value1_2 - 1.0) * scale + self.start;
            if res < self.end {
                return res;
            }
        }
    }
}

/// High-level convenience methods over an [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draw uniformly from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p` (rand 0.8's integer
    /// threshold: compare one `u64` draw against `p·2^64`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        if p >= 1.0 {
            return true;
        }
        let p_int = (p * 2.0f64.powi(64)) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Deterministically derive a generator state from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;

    /// Seed non-reproducibly from ambient entropy (time + ASLR).
    fn from_entropy() -> Self {
        use std::time::{SystemTime, UNIX_EPOCH};
        let t = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        let aslr = &t as *const _ as u64;
        Self::seed_from_u64(t ^ aslr.rotate_left(32))
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Fast non-cryptographic generator: xoshiro256++, the algorithm behind
    /// the real crate's `SmallRng` on 64-bit targets.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce it from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0usize..=5);
            assert!(w <= 5);
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn f64_standard_is_half_on_average() {
        let mut r = SmallRng::seed_from_u64(3);
        let mean: f64 = (0..20_000).map(|_| r.gen::<f64>()).sum::<f64>() / 20_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn uniform_ranges_are_unbiased_enough() {
        let mut r = SmallRng::seed_from_u64(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            let dev = (c as f64 - 10_000.0).abs() / 10_000.0;
            assert!(dev < 0.05, "bucket off by {dev}");
        }
    }
}
