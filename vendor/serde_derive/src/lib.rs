//! Derive macros for the offline serde stand-in.
//!
//! Supports exactly the shape this workspace uses: named-field structs,
//! optionally generic over bare type parameters (`struct S<T, R> { .. }`).
//! The expansion maps every field to/from an entry of a
//! `serde::Value::Object`, bounding each type parameter by the derived
//! trait. No `syn`/`quote`: the input `TokenStream` is walked directly and
//! the impl is rendered as a string and re-parsed.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct StructShape {
    name: String,
    /// Bare type-parameter idents, in declaration order.
    type_params: Vec<String>,
    fields: Vec<String>,
}

/// Walk a struct definition: skip attributes and visibility, capture the
/// name, the type-parameter idents, and the named fields.
fn parse_struct(input: TokenStream) -> StructShape {
    let mut iter = input.into_iter().peekable();

    // Outer attributes (`#[...]`, including expanded doc comments).
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the bracketed attribute body
            }
            _ => break,
        }
    }
    // Visibility: `pub`, optionally `pub(...)`.
    if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        iter.next();
        if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            iter.next();
        }
    }
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {}
        other => panic!("derive supports only structs, found {other:?}"),
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected struct name, found {other:?}"),
    };

    // Generics: collect idents at angle depth 1 that open a parameter
    // (i.e. directly after `<` or a depth-1 comma). Bounds after `:` and
    // nested angle brackets are skipped by depth tracking.
    let mut type_params = Vec::new();
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        iter.next();
        let mut depth = 1usize;
        let mut at_param_start = true;
        for tok in iter.by_ref() {
            match &tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                    at_param_start = true;
                }
                TokenTree::Punct(p) if p.as_char() == '\'' => {
                    // Lifetime parameter: swallow its ident, stay "at start"
                    // so the next real ident is still seen as a parameter.
                }
                TokenTree::Ident(id) if at_param_start && depth == 1 => {
                    let s = id.to_string();
                    at_param_start = false;
                    if s != "const" {
                        type_params.push(s);
                    }
                }
                _ => {
                    if depth == 1 {
                        at_param_start = false;
                    }
                }
            }
        }
    }

    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(_) => continue, // where-clause tokens
            None => panic!("struct `{name}` has no braced field list (named fields required)"),
        }
    };

    // Fields: `attrs? vis? name : type ,` — the type is skipped by reading
    // to the next comma at angle depth 0 (parens/brackets are single trees).
    let mut fields = Vec::new();
    let mut toks = body.stream().into_iter().peekable();
    loop {
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                _ => break,
            }
        }
        if matches!(toks.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            toks.next();
            if matches!(
                toks.peek(),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                toks.next();
            }
        }
        let field = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("expected field name in `{name}`, found {other:?}"),
            None => break,
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!(
                "expected `:` after field `{field}` in `{name}` (tuple structs unsupported), \
                 found {other:?}"
            ),
        }
        let mut depth = 0usize;
        for tok in toks.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
        fields.push(field);
    }

    StructShape {
        name,
        type_params,
        fields,
    }
}

/// `impl<`T: Bound`, ...>` header + `Name<T, ...>` type, or plain forms
/// when the struct is not generic.
fn impl_header(shape: &StructShape, bound: &str) -> (String, String) {
    if shape.type_params.is_empty() {
        (String::new(), shape.name.clone())
    } else {
        let params = shape
            .type_params
            .iter()
            .map(|p| format!("{p}: {bound}"))
            .collect::<Vec<_>>()
            .join(", ");
        let args = shape.type_params.join(", ");
        (format!("<{params}>"), format!("{}<{args}>", shape.name))
    }
}

/// Derive `serde::Serialize` (named-field structs only).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_struct(input);
    let (generics, ty) = impl_header(&shape, "::serde::Serialize");
    let entries = shape
        .fields
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"))
        .collect::<String>();
    format!(
        "impl{generics} ::serde::Serialize for {ty} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(vec![{entries}])\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl must parse")
}

/// Derive `serde::Deserialize` (named-field structs only).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_struct(input);
    let (generics, ty) = impl_header(&shape, "::serde::Deserialize");
    let fields = shape
        .fields
        .iter()
        .map(|f| format!("{f}: ::serde::Deserialize::from_value(::serde::field(v, \"{f}\")?)?,"))
        .collect::<String>();
    format!(
        "impl{generics} ::serde::Deserialize for {ty} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::std::string::String> {{\n\
                 ::std::result::Result::Ok(Self {{ {fields} }})\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl must parse")
}
