//! Offline stand-in for `serde`.
//!
//! The real serde decouples data structures from data formats through a
//! visitor API. This workspace only ever serialises plain named-field
//! structs to JSON (experiment rows, sketch snapshots), so the stand-in
//! collapses the design to a concrete [`Value`] tree: `Serialize` renders
//! into a `Value`, `Deserialize` reads back out of one, and `serde_json`
//! converts values to and from JSON text. The derive macros (re-exported
//! from `serde_derive`) cover exactly that struct shape.

#![warn(missing_docs)]

use std::collections::BTreeMap;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integral number (covers the full `u64`/`i64` range losslessly).
    Int(i128),
    /// Non-integral number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the object fields, or `None` if this is not an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Look up a field of an object by name.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Field lookup with a descriptive error, used by derived `Deserialize`.
pub fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

// Identity impls so callers can round-trip raw value trees (e.g. parse
// arbitrary JSON with `serde_json::from_str::<Value>` and inspect it).
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, String> {
        Ok(v.clone())
    }
}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Render into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from a value tree.
    fn from_value(v: &Value) -> Result<Self, String>;
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| format!("integer {} out of range for {}", i, stringify!($t))),
                    other => Err(format!("expected integer, found {other:?}")),
                }
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, found {other:?}")),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => Err(format!("expected number, found {other:?}")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, String> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(format!("expected string, found {other:?}")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(format!("expected array, found {other:?}")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, String> {
                match v {
                    Value::Array(items) => {
                        let expected = [$(stringify!($n)),+].len();
                        if items.len() != expected {
                            return Err(format!(
                                "expected {}-tuple, found array of {}", expected, items.len()
                            ));
                        }
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(format!("expected array (tuple), found {other:?}")),
                }
            }
        }
    )+};
}

tuple_impls!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

/// Map keys representable as JSON object keys.
pub trait JsonKey: Sized + Ord {
    /// Render as an object key.
    fn to_key(&self) -> String;
    /// Parse back from an object key.
    fn from_key(s: &str) -> Result<Self, String>;
}

macro_rules! int_keys {
    ($($t:ty),*) => {$(
        impl JsonKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, String> {
                s.parse().map_err(|_| format!("bad {} key {s:?}", stringify!($t)))
            }
        }
    )*};
}

int_keys!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, String> {
        Ok(s.to_owned())
    }
}

impl<K: JsonKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: JsonKey, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(format!("expected object (map), found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives_and_containers() {
        let v = vec![(1u64, 2u32), (3, 4)];
        let back = Vec::<(u64, u32)>::from_value(&v.to_value()).unwrap();
        assert_eq!(v, back);

        let opt: Option<(u64, u64)> = Some((7, 9));
        assert_eq!(
            Option::<(u64, u64)>::from_value(&opt.to_value()).unwrap(),
            opt
        );
        assert_eq!(
            Option::<(u64, u64)>::from_value(&Value::Null).unwrap(),
            None
        );

        let mut m = BTreeMap::new();
        m.insert(3u32, 12u64);
        m.insert(1, 4);
        assert_eq!(BTreeMap::<u32, u64>::from_value(&m.to_value()).unwrap(), m);
    }

    #[test]
    fn out_of_range_int_is_an_error() {
        let v = Value::Int(-1);
        assert!(u64::from_value(&v).is_err());
    }
}
