//! In-tree stand-in for the `tracing` facade crate.
//!
//! Vendors exactly the subset this workspace uses: a severity [`Level`],
//! the [`event!`] macro, and a process-global [`Subscriber`] installed via
//! [`set_global_default`]. Events fired with no subscriber installed are
//! discarded after one atomic load — the same "cheap when unobserved"
//! contract as the real facade.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Event severity, lowest to highest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Level(u8);

impl Level {
    /// Finest-grained events.
    pub const TRACE: Level = Level(0);
    /// Diagnostic events.
    pub const DEBUG: Level = Level(1);
    /// Informational events.
    pub const INFO: Level = Level(2);
    /// Warnings.
    pub const WARN: Level = Level(3);
    /// Errors.
    pub const ERROR: Level = Level(4);
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self.0 {
            0 => "TRACE",
            1 => "DEBUG",
            2 => "INFO",
            3 => "WARN",
            _ => "ERROR",
        })
    }
}

/// Receives every event fired after installation.
pub trait Subscriber: Send + Sync {
    /// Handle one event. `target` is the firing module path; `message` is
    /// the formatted event text.
    fn event(&self, level: Level, target: &str, message: fmt::Arguments<'_>);
}

static SUBSCRIBER: OnceLock<Box<dyn Subscriber>> = OnceLock::new();
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// Error returned when a global subscriber was already installed.
#[derive(Debug)]
pub struct SetGlobalDefaultError;

impl fmt::Display for SetGlobalDefaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("a global default subscriber has already been set")
    }
}

impl std::error::Error for SetGlobalDefaultError {}

/// Install the process-global subscriber. Fails if one is already set.
pub fn set_global_default(subscriber: Box<dyn Subscriber>) -> Result<(), SetGlobalDefaultError> {
    SUBSCRIBER
        .set(subscriber)
        .map_err(|_| SetGlobalDefaultError)?;
    INSTALLED.store(true, Ordering::Release);
    Ok(())
}

/// True once a subscriber is installed (one atomic load).
pub fn subscriber_installed() -> bool {
    INSTALLED.load(Ordering::Acquire)
}

#[doc(hidden)]
pub fn __macro_support_event(level: Level, target: &str, message: fmt::Arguments<'_>) {
    if INSTALLED.load(Ordering::Acquire) {
        if let Some(sub) = SUBSCRIBER.get() {
            sub.event(level, target, message);
        }
    }
}

/// Fire one event: `event!(Level::DEBUG, "collapsed {} buffers", n)`.
#[macro_export]
macro_rules! event {
    ($lvl:expr, $($arg:tt)+) => {
        $crate::__macro_support_event($lvl, module_path!(), format_args!($($arg)+))
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    struct CountingSub(AtomicU64);
    impl Subscriber for CountingSub {
        fn event(&self, _level: Level, _target: &str, _message: fmt::Arguments<'_>) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn events_without_subscriber_are_discarded_then_delivered_after_install() {
        event!(Level::DEBUG, "dropped {}", 1);
        assert!(set_global_default(Box::new(CountingSub(AtomicU64::new(0)))).is_ok());
        assert!(subscriber_installed());
        event!(Level::INFO, "delivered {}", 2);
        event!(Level::ERROR, "delivered {}", 3);
        // Second install attempt fails.
        assert!(set_global_default(Box::new(CountingSub(AtomicU64::new(0)))).is_err());
    }

    #[test]
    fn levels_order_and_render() {
        assert!(Level::TRACE < Level::ERROR);
        assert_eq!(Level::WARN.to_string(), "WARN");
    }
}
