//! Offline stand-in for `proptest`.
//!
//! Replicates the subset this workspace uses: the [`proptest!`] macro with
//! an optional `#![proptest_config(..)]` header, range / tuple / `vec` /
//! `any::<T>()` strategies, and the `prop_assert*` macros. Cases are
//! generated from a generator seeded deterministically per test (by test
//! name), so failures reproduce across runs. There is no shrinking: a
//! failing case panics with the assertion message directly, which is the
//! surface the test-suite relies on.

#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::Rng;

// Re-exported so `proptest!` expansions resolve the generator through
// `$crate::` regardless of the using crate's own dependencies.
#[doc(hidden)]
pub use rand;

/// Runner configuration (the `ProptestConfig` of the real crate).
pub mod test_runner {
    /// How many random cases each property runs.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Like the real crate, `PROPTEST_CASES` overrides the default
            // (Miri/TSan CI jobs use it to keep interpreted runs short).
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            Self { cases }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::*;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;
    }

    macro_rules! range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    // Floats only support half-open ranges (matching the rand stand-in).
    macro_rules! float_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    float_range_strategies!(f64, f32);

    macro_rules! tuple_strategies {
        ($(($($n:tt $t:ident),+)),+) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategies!((0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

    /// Whole-domain strategy returned by [`any`](super::arbitrary::any).
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: super::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Any;
    use super::*;

    /// Types generatable over their whole domain.
    pub trait Arbitrary: Sized {
        /// Draw one value from the full domain.
        fn arbitrary(rng: &mut SmallRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut SmallRng) -> bool {
            rng.gen::<u64>() & 1 == 1
        }
    }

    macro_rules! arb_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut SmallRng) -> $t {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }

    arb_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut SmallRng) -> f64 {
            rng.gen::<f64>()
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::*;

    /// Sizes accepted by [`vec()`]: a `usize` or a `usize` range.
    pub trait SizeRange {
        /// Draw a length.
        fn pick(&self, rng: &mut SmallRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut SmallRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut SmallRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut SmallRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy producing `Vec`s of an element strategy.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with a length drawn from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }
}

/// Deterministic per-test seed: FNV-1a of the test name, so each property
/// gets an independent but reproducible stream.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Everything a `proptest!` test needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::collection::vec as prop_vec;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a property; on failure the current case panics with the
/// condition (and optional formatted context).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// argument tuples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!({$config} $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(
            {<$crate::test_runner::Config as ::std::default::Default>::default()}
            $($rest)*
        );
    };
}

/// Internal expansion of [`proptest!`]; not part of the public surface.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ({$config:expr}) => {};
    ({$config:expr}
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let config: $crate::test_runner::Config = $config;
            let mut rng =
                <$crate::rand::rngs::SmallRng as $crate::rand::SeedableRng>::seed_from_u64(
                    $crate::seed_for(stringify!($name)),
                );
            for __case in 0..config.cases {
                $(let $arg = ($strat).generate(&mut rng);)+
                $body
            }
        }
        $crate::__proptest_items!({$config} $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs_respect_bounds(
            x in 3u64..9,
            v in prop_vec((0u32..5, 0.0f64..1.0), 1..7),
            flag in any::<bool>(),
        ) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 7);
            for (a, f) in &v {
                prop_assert!(*a < 5);
                prop_assert!((0.0..1.0).contains(f));
            }
            let _ = flag;
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(crate::seed_for("a"), crate::seed_for("b"));
    }
}
