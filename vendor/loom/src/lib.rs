//! In-tree stand-in for the [`loom`](https://docs.rs/loom) model checker.
//!
//! Exposes the loom API subset this workspace uses (`model`,
//! `thread::{spawn, yield_now}`, `sync::atomic::*`, `sync::OnceLock`,
//! `hint::spin_loop`) backed by a bounded exhaustive-interleaving
//! scheduler:
//!
//! * Real OS threads run the test body, but a cooperative scheduler
//!   serialises them so exactly one is ever executing. Every atomic
//!   access, spawn, join and yield is a *scheduling point* where the
//!   scheduler may hand control to a different runnable thread.
//! * [`model`] re-executes the closure under depth-first search over the
//!   scheduling decisions: each execution records which thread was chosen
//!   whenever more than one was runnable, and the next execution replays
//!   that prefix with the last undecided branch advanced. When the
//!   decision tree is exhausted, every interleaving (at scheduling-point
//!   granularity) has been explored.
//! * Atomics are modelled as **sequentially consistent** regardless of the
//!   `Ordering` argument: because execution is serialised, each schedule
//!   is one global total order of operations. This explores all
//!   interleaving bugs (lost updates, claim races, torn snapshots,
//!   deadlocks) but not relaxed-memory reorderings — the real loom and
//!   TSan cover those in CI; this stand-in gives the same tests offline.
//! * Exploration is bounded by `LOOM_MAX_ITERATIONS` schedules (default
//!   50 000) and a per-schedule step budget, so a test that would explode
//!   combinatorially degrades to a deep biased sample instead of hanging.
//!
//! Outside [`model`] every primitive transparently delegates to `std`, so
//! the types are safe to reach from non-model code paths.

use std::cell::RefCell;
use std::sync::{Arc, Condvar, Mutex};

const DEFAULT_MAX_SCHEDULES: u64 = 50_000;
const MAX_STEPS_PER_SCHEDULE: u64 = 1_000_000;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Run {
    Runnable,
    /// Waiting for the thread with this id to finish.
    Blocked(usize),
    Finished,
}

/// One recorded scheduling decision: at a point where `alts` threads were
/// runnable, the `taken`-th (in thread-id order) was chosen.
#[derive(Clone, Copy)]
struct Choice {
    taken: usize,
    alts: usize,
}

struct State {
    threads: Vec<Run>,
    active: usize,
    /// Decisions made this execution (replayed prefix included).
    path: Vec<Choice>,
    /// Prefix of decision indices to replay this execution.
    replay: Vec<usize>,
    cursor: usize,
    steps: u64,
    failure: Option<String>,
}

struct Explorer {
    state: Mutex<State>,
    cond: Condvar,
}

impl Explorer {
    fn new(replay: Vec<usize>) -> Self {
        Explorer {
            state: Mutex::new(State {
                threads: vec![Run::Runnable],
                active: 0,
                path: Vec::new(),
                replay,
                cursor: 0,
                steps: 0,
                failure: None,
            }),
            cond: Condvar::new(),
        }
    }

    fn register(&self) -> usize {
        let mut st = self.state.lock().unwrap();
        st.threads.push(Run::Runnable);
        st.threads.len() - 1
    }

    /// Choose the next active thread. Caller holds the lock. `exclude`
    /// drops the (still runnable) current thread from the candidates when
    /// it yields, so spin loops are guaranteed to let the other side make
    /// progress instead of branching forever.
    fn pick_next(&self, st: &mut State, exclude: Option<usize>) {
        if st.failure.is_some() {
            self.cond.notify_all();
            return;
        }
        let mut candidates: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, r)| matches!(r, Run::Runnable))
            .map(|(i, _)| i)
            .collect();
        if let Some(id) = exclude {
            if candidates.len() > 1 {
                candidates.retain(|&c| c != id);
            }
        }
        if candidates.is_empty() {
            if st.threads.iter().any(|r| matches!(r, Run::Blocked(_))) {
                st.failure = Some("deadlock: every live thread is blocked".into());
            }
            self.cond.notify_all();
            return;
        }
        let pick = if candidates.len() == 1 {
            candidates[0]
        } else {
            let idx = if st.cursor < st.replay.len() {
                let i = st.replay[st.cursor];
                if i >= candidates.len() {
                    st.failure =
                        Some("schedule replay diverged: execution is not deterministic".into());
                    self.cond.notify_all();
                    return;
                }
                i
            } else {
                0
            };
            st.cursor += 1;
            st.path.push(Choice {
                taken: idx,
                alts: candidates.len(),
            });
            candidates[idx]
        };
        st.active = pick;
        self.cond.notify_all();
    }

    /// A scheduling point: possibly hand control to another thread, then
    /// block until this thread is active again. Panics (unwinding the
    /// model thread) once a failure is recorded anywhere.
    fn switch(&self, id: usize, yielding: bool) {
        let mut st = self.state.lock().unwrap();
        if st.failure.is_none() {
            st.steps += 1;
            if st.steps > MAX_STEPS_PER_SCHEDULE {
                st.failure = Some("livelock: per-schedule step budget exhausted".into());
                self.cond.notify_all();
            } else {
                self.pick_next(&mut st, if yielding { Some(id) } else { None });
            }
        }
        while st.failure.is_none() && st.active != id {
            st = self.cond.wait(st).unwrap();
        }
        let abort = st.failure.is_some();
        drop(st);
        if abort {
            panic!("loom model aborted");
        }
    }

    fn wait_active(&self, id: usize) {
        let mut st = self.state.lock().unwrap();
        while st.failure.is_none() && st.active != id {
            st = self.cond.wait(st).unwrap();
        }
        let abort = st.failure.is_some();
        drop(st);
        if abort {
            panic!("loom model aborted");
        }
    }

    fn join_wait(&self, me: usize, target: usize) {
        let mut st = self.state.lock().unwrap();
        if st.failure.is_none() && st.threads[target] != Run::Finished {
            st.threads[me] = Run::Blocked(target);
            self.pick_next(&mut st, None);
            while st.failure.is_none() && st.active != me {
                st = self.cond.wait(st).unwrap();
            }
        }
        let abort = st.failure.is_some();
        drop(st);
        if abort {
            panic!("loom model aborted");
        }
    }

    fn finish(&self, id: usize, panic_msg: Option<String>) {
        let mut st = self.state.lock().unwrap();
        st.threads[id] = Run::Finished;
        for r in st.threads.iter_mut() {
            if *r == Run::Blocked(id) {
                *r = Run::Runnable;
            }
        }
        if let Some(msg) = panic_msg {
            st.failure.get_or_insert(msg);
        }
        self.pick_next(&mut st, None);
    }

    fn wait_all(&self) {
        let mut st = self.state.lock().unwrap();
        while st.failure.is_none() && st.threads.iter().any(|r| *r != Run::Finished) {
            st = self.cond.wait(st).unwrap();
        }
    }

    fn outcome(&self) -> (Vec<Choice>, Option<String>) {
        let st = self.state.lock().unwrap();
        (st.path.clone(), st.failure.clone())
    }
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Explorer>, usize)>> = const { RefCell::new(None) };
}

fn current_ctx() -> Option<(Arc<Explorer>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

/// Scheduling point for the current model thread; no-op outside a model.
fn sched_point(yielding: bool) {
    if let Some((exp, id)) = current_ctx() {
        exp.switch(id, yielding);
    }
}

fn panic_message(e: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic (non-string payload)".to_string()
    }
}

/// Run `f` as logical thread `id` of `exp`: wait to be scheduled, execute,
/// then hand the schedule on — recording a failure if `f` panicked.
fn run_logical<T>(exp: Arc<Explorer>, id: usize, f: impl FnOnce() -> T) -> T {
    CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&exp), id)));
    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        exp.wait_active(id);
        f()
    }));
    let msg = res.as_ref().err().map(|e| panic_message(&**e));
    exp.finish(id, msg);
    match res {
        Ok(v) => v,
        Err(e) => std::panic::resume_unwind(e),
    }
}

/// Advance the DFS: increment the deepest decision that still has an
/// untried alternative, dropping everything below it.
fn next_replay(mut path: Vec<Choice>) -> Option<Vec<usize>> {
    while let Some(last) = path.last_mut() {
        if last.taken + 1 < last.alts {
            last.taken += 1;
            return Some(path.iter().map(|c| c.taken).collect());
        }
        path.pop();
    }
    None
}

/// Exhaustively (within bounds) explore every interleaving of `f`.
///
/// Panics on the first schedule in which `f` (or a thread it spawned)
/// panics, deadlocks, or livelocks past the step budget.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let max_schedules = std::env::var("LOOM_MAX_ITERATIONS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(DEFAULT_MAX_SCHEDULES);
    let f = Arc::new(f);
    let mut replay: Vec<usize> = Vec::new();
    let mut schedules = 0u64;
    loop {
        schedules += 1;
        let exp = Arc::new(Explorer::new(replay.clone()));
        let root = {
            let exp = Arc::clone(&exp);
            let f = Arc::clone(&f);
            std::thread::spawn(move || run_logical(exp, 0, move || f()))
        };
        exp.wait_all();
        let _ = root.join();
        let (path, failure) = exp.outcome();
        if let Some(msg) = failure {
            panic!("loom: schedule {schedules} failed: {msg}");
        }
        match next_replay(path) {
            Some(next) if schedules < max_schedules => replay = next,
            Some(_) => {
                eprintln!(
                    "loom: stopping after {schedules} schedules (LOOM_MAX_ITERATIONS reached); \
                     exploration was bounded, not exhaustive"
                );
                break;
            }
            None => break,
        }
    }
}

pub mod thread {
    //! Model-aware threads (std passthrough outside [`crate::model`]).

    use super::{current_ctx, run_logical, Explorer};
    use std::sync::Arc;

    /// Handle to a spawned model thread; `join` is a scheduling point.
    pub struct JoinHandle<T> {
        id: usize,
        exp: Option<Arc<Explorer>>,
        inner: std::thread::JoinHandle<T>,
    }

    /// Spawn a thread participating in the current model's schedule.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match current_ctx() {
            Some((exp, me)) => {
                let id = exp.register();
                let child_exp = Arc::clone(&exp);
                let inner = std::thread::spawn(move || run_logical(child_exp, id, f));
                // The child becoming runnable is a visible event: let the
                // scheduler decide who runs first.
                exp.switch(me, false);
                JoinHandle {
                    id,
                    exp: Some(exp),
                    inner,
                }
            }
            None => JoinHandle {
                id: usize::MAX,
                exp: None,
                inner: std::thread::spawn(f),
            },
        }
    }

    impl<T> JoinHandle<T> {
        /// Wait for the thread to finish, yielding the schedule meanwhile.
        pub fn join(self) -> std::thread::Result<T> {
            if let Some(exp) = &self.exp {
                let (_, me) = current_ctx().expect("join of a model thread outside the model");
                exp.join_wait(me, self.id);
            }
            self.inner.join()
        }
    }

    /// Scheduling point that insists on running someone else if possible.
    pub fn yield_now() {
        match current_ctx() {
            Some((exp, id)) => exp.switch(id, true),
            None => std::thread::yield_now(),
        }
    }
}

pub mod hint {
    //! Spin-loop hint that yields the model schedule.

    /// In a cooperative model a true spin would starve the thread it is
    /// waiting on; one spin iteration is exactly one yield.
    pub fn spin_loop() {
        match super::current_ctx() {
            Some((exp, id)) => exp.switch(id, true),
            None => std::hint::spin_loop(),
        }
    }
}

pub mod sync {
    //! Model-aware synchronisation primitives.

    pub use std::sync::Arc;

    /// Write-once cell; `get`/`set` are scheduling points.
    pub struct OnceLock<T> {
        inner: std::sync::OnceLock<T>,
    }

    impl<T> OnceLock<T> {
        /// An empty cell.
        #[allow(clippy::new_without_default)]
        pub const fn new() -> Self {
            Self {
                inner: std::sync::OnceLock::new(),
            }
        }

        /// The stored value, if one has been published.
        pub fn get(&self) -> Option<&T> {
            super::sched_point(false);
            self.inner.get()
        }

        /// Publish `value`; fails if a value is already stored.
        pub fn set(&self, value: T) -> Result<(), T> {
            super::sched_point(false);
            self.inner.set(value)
        }
    }

    pub mod atomic {
        //! Atomics whose every access is a scheduling point. Orderings are
        //! accepted for API compatibility and modelled as `SeqCst`.

        pub use std::sync::atomic::Ordering;

        macro_rules! model_atomic {
            ($name:ident, $raw:ty) => {
                /// Model-checked atomic; see module docs.
                pub struct $name {
                    inner: std::sync::atomic::$name,
                }

                impl $name {
                    /// A new atomic holding `v`.
                    pub fn new(v: $raw) -> Self {
                        Self {
                            inner: std::sync::atomic::$name::new(v),
                        }
                    }

                    /// Atomic load (scheduling point).
                    pub fn load(&self, _o: Ordering) -> $raw {
                        crate::sched_point(false);
                        self.inner.load(Ordering::SeqCst)
                    }

                    /// Atomic store (scheduling point).
                    pub fn store(&self, v: $raw, _o: Ordering) {
                        crate::sched_point(false);
                        self.inner.store(v, Ordering::SeqCst)
                    }

                    /// Atomic swap (scheduling point).
                    pub fn swap(&self, v: $raw, _o: Ordering) -> $raw {
                        crate::sched_point(false);
                        self.inner.swap(v, Ordering::SeqCst)
                    }

                    /// Atomic add, returning the previous value.
                    pub fn fetch_add(&self, v: $raw, _o: Ordering) -> $raw {
                        crate::sched_point(false);
                        self.inner.fetch_add(v, Ordering::SeqCst)
                    }

                    /// Atomic min, returning the previous value.
                    pub fn fetch_min(&self, v: $raw, _o: Ordering) -> $raw {
                        crate::sched_point(false);
                        self.inner.fetch_min(v, Ordering::SeqCst)
                    }

                    /// Atomic max, returning the previous value.
                    pub fn fetch_max(&self, v: $raw, _o: Ordering) -> $raw {
                        crate::sched_point(false);
                        self.inner.fetch_max(v, Ordering::SeqCst)
                    }

                    /// Atomic compare-and-exchange (scheduling point).
                    pub fn compare_exchange(
                        &self,
                        current: $raw,
                        new: $raw,
                        _success: Ordering,
                        _failure: Ordering,
                    ) -> Result<$raw, $raw> {
                        crate::sched_point(false);
                        self.inner.compare_exchange(
                            current,
                            new,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        )
                    }
                }
            };
        }

        model_atomic!(AtomicU64, u64);
        model_atomic!(AtomicUsize, usize);
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, Ordering};
    use super::sync::Arc;

    #[test]
    fn explores_both_orders_of_two_writers() {
        // A store race: the final value must always be one of the two
        // stores, and across the exploration both must win at least once.
        use std::sync::atomic::AtomicU64 as StdAtomic;
        let saw_one = std::sync::Arc::new(StdAtomic::new(0));
        let saw_two = std::sync::Arc::new(StdAtomic::new(0));
        let (s1, s2) = (
            std::sync::Arc::clone(&saw_one),
            std::sync::Arc::clone(&saw_two),
        );
        super::model(move || {
            let a = Arc::new(AtomicU64::new(0));
            let b = Arc::clone(&a);
            let t = super::thread::spawn(move || b.store(1, Ordering::SeqCst));
            a.store(2, Ordering::SeqCst);
            t.join().unwrap();
            match a.load(Ordering::SeqCst) {
                1 => s1.store(1, std::sync::atomic::Ordering::Relaxed),
                2 => s2.store(1, std::sync::atomic::Ordering::Relaxed),
                v => panic!("impossible final value {v}"),
            }
        });
        assert_eq!(saw_one.load(std::sync::atomic::Ordering::Relaxed), 1);
        assert_eq!(saw_two.load(std::sync::atomic::Ordering::Relaxed), 1);
    }

    #[test]
    fn cas_race_has_exactly_one_winner() {
        super::model(|| {
            let a = Arc::new(AtomicU64::new(0));
            let b = Arc::clone(&a);
            let t = super::thread::spawn(move || {
                b.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            });
            let mine = a
                .compare_exchange(0, 2, Ordering::AcqRel, Ordering::Acquire)
                .is_ok();
            let theirs = t.join().unwrap();
            assert!(mine ^ theirs, "CAS from 0 must have exactly one winner");
        });
    }

    #[test]
    fn fetch_add_never_loses_updates() {
        super::model(|| {
            let a = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let a = Arc::clone(&a);
                    super::thread::spawn(move || {
                        a.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(a.load(Ordering::Relaxed), 2);
        });
    }

    #[test]
    #[should_panic(expected = "loom: schedule")]
    fn a_racy_read_modify_write_is_caught() {
        // Non-atomic increment built from load + store: the model must
        // find the interleaving that loses an update.
        super::model(|| {
            let a = Arc::new(AtomicU64::new(0));
            let b = Arc::clone(&a);
            let t = super::thread::spawn(move || {
                let v = b.load(Ordering::SeqCst);
                b.store(v + 1, Ordering::SeqCst);
            });
            let v = a.load(Ordering::SeqCst);
            a.store(v + 1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(a.load(Ordering::SeqCst), 2, "lost update");
        });
    }

    #[test]
    fn spin_wait_on_once_lock_terminates() {
        use super::sync::OnceLock;
        super::model(|| {
            let cell = Arc::new(OnceLock::new());
            let c = Arc::clone(&cell);
            let t = super::thread::spawn(move || {
                c.set(7u64).unwrap();
            });
            while cell.get().is_none() {
                super::hint::spin_loop();
            }
            assert_eq!(cell.get(), Some(&7));
            t.join().unwrap();
        });
    }
}
