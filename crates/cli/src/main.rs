//! `mrl-quantiles`: approximate quantiles of integers on stdin, in one
//! pass and bounded memory, without knowing how much input is coming —
//! the MRL99 algorithm as a shell tool.
//!
//! ```sh
//! seq 1 1000000 | shuf | mrl-quantiles --eps 0.01 --phi 0.5,0.9,0.99
//! ```

use std::io::{self, BufWriter};
use std::process::ExitCode;

use mrl_cli::{args::USAGE, run_with_stats, Args};

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if args.help {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let stdin = io::stdin().lock();
    let stdout = BufWriter::new(io::stdout().lock());
    // Telemetry shares stderr with the run summary so stdout stays pure
    // quantile output (pipe-friendly); `--stats json` lines start with
    // `{` and are trivially separable from `#`-prefixed notes.
    match run_with_stats(&args, stdin, stdout, io::stderr()) {
        Ok(summary) => {
            eprintln!(
                "# n={} memory_bound={} elements (eps={}, delta={})",
                summary.n, summary.memory_elements, args.epsilon, args.delta
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("io error: {e}");
            ExitCode::FAILURE
        }
    }
}
