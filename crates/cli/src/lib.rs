//! Library backing the `mrl-quantiles` command-line tool: argument
//! parsing and the line-oriented streaming driver, factored out of
//! `main.rs` so they can be unit-tested.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod args;
pub mod driver;

pub use args::{Args, ParseError, StatsFormat};
pub use driver::{run, run_with_stats, StatsReport, Summary};
