//! The line-oriented streaming driver: read numbers, feed the sketch,
//! report quantiles (optionally at a cadence — the online-aggregation
//! mode). Supports integer (default) and floating-point (`--float`)
//! inputs.

use std::io::{BufRead, Write};

use mrl_core::{OptimizerOptions, OrderedF64, UnknownN};
use mrl_parallel::ShardedSketch;

use crate::args::Args;

/// What a run saw and concluded.
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    /// Parsed input values consumed.
    pub n: u64,
    /// Lines skipped because they did not parse.
    pub skipped: u64,
    /// Final `(phi, rendered estimate)` pairs (empty input ⇒ empty).
    pub quantiles: Vec<(f64, String)>,
    /// The sketch's memory bound in elements.
    pub memory_elements: usize,
}

/// A value type the CLI can stream (`Send + 'static` so values can cross
/// into the sharded pipeline's worker threads).
trait CliValue: Ord + Clone + Send + 'static {
    fn parse(s: &str) -> Option<Self>;
    fn render(&self) -> String;
}

impl CliValue for i64 {
    fn parse(s: &str) -> Option<Self> {
        s.parse().ok()
    }
    fn render(&self) -> String {
        self.to_string()
    }
}

impl CliValue for OrderedF64 {
    fn parse(s: &str) -> Option<Self> {
        s.parse::<f64>().ok().and_then(OrderedF64::new)
    }
    fn render(&self) -> String {
        self.get().to_string()
    }
}

/// Run the tool: read numbers line by line from `input`, write reports to
/// `output`. Separated from `main` for testing.
pub fn run<R: BufRead, W: Write>(args: &Args, input: R, output: W) -> std::io::Result<Summary> {
    if args.float {
        run_typed::<OrderedF64, R, W>(args, input, output)
    } else {
        run_typed::<i64, R, W>(args, input, output)
    }
}

fn run_typed<T: CliValue, R: BufRead, W: Write>(
    args: &Args,
    input: R,
    mut output: W,
) -> std::io::Result<Summary> {
    let opts = if cfg!(debug_assertions) {
        OptimizerOptions::fast()
    } else {
        OptimizerOptions::default()
    };

    if args.report_every > 0 {
        // Online-aggregation mode: per-element inserts so the interim
        // report cadence lands exactly on every `report_every`-th value.
        let mut sketch =
            UnknownN::<T>::with_options(args.epsilon, args.delta, opts).with_seed(args.seed);
        let mut skipped = 0u64;
        for line in input.lines() {
            let line = line?;
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            match T::parse(trimmed) {
                Some(v) => {
                    sketch.insert(v);
                    if sketch.n().is_multiple_of(args.report_every) {
                        report(
                            sketch.query_many(&args.phis),
                            sketch.n(),
                            &args.phis,
                            &mut output,
                            true,
                        )?;
                    }
                }
                None => skipped += 1,
            }
        }
        let quantiles = report(
            sketch.query_many(&args.phis),
            sketch.n(),
            &args.phis,
            &mut output,
            false,
        )?;
        report_skipped(skipped, &mut output)?;
        Ok(Summary {
            n: sketch.n(),
            skipped,
            quantiles,
            memory_elements: sketch.memory_bound_elements(),
        })
    } else if args.shards > 1 {
        // Sharded bulk mode: chunks are dealt round-robin to a worker pool
        // over bounded channels, and the shards' final buffers merge at a
        // §6 coordinator.
        let mut sketch =
            ShardedSketch::<T>::new(args.shards, args.epsilon, args.delta, opts, args.seed);
        let skipped = ingest_lines(input, |chunk| sketch.insert_batch(chunk))?;
        let memory_elements = sketch.memory_bound_elements();
        let outcome = sketch.finish();
        let quantiles = report(
            outcome.query_many(&args.phis),
            outcome.total_n(),
            &args.phis,
            &mut output,
            false,
        )?;
        report_skipped(skipped, &mut output)?;
        Ok(Summary {
            n: outcome.total_n(),
            skipped,
            quantiles,
            memory_elements,
        })
    } else {
        // Bulk mode: gather parsed values and feed the sketch's batched
        // fast path.
        let mut sketch =
            UnknownN::<T>::with_options(args.epsilon, args.delta, opts).with_seed(args.seed);
        let skipped = ingest_lines(input, |chunk| sketch.insert_batch(chunk))?;
        let quantiles = report(
            sketch.query_many(&args.phis),
            sketch.n(),
            &args.phis,
            &mut output,
            false,
        )?;
        report_skipped(skipped, &mut output)?;
        Ok(Summary {
            n: sketch.n(),
            skipped,
            quantiles,
            memory_elements: sketch.memory_bound_elements(),
        })
    }
}

/// Parse lines into values, feeding `sink` with chunks of up to 1024;
/// returns how many lines were skipped as unparseable.
fn ingest_lines<T: CliValue, R: BufRead>(
    input: R,
    mut sink: impl FnMut(&[T]),
) -> std::io::Result<u64> {
    const CHUNK: usize = 1024;
    let mut skipped = 0u64;
    let mut buf: Vec<T> = Vec::with_capacity(CHUNK);
    for line in input.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        match T::parse(trimmed) {
            Some(v) => {
                buf.push(v);
                if buf.len() == CHUNK {
                    sink(&buf);
                    buf.clear();
                }
            }
            None => skipped += 1,
        }
    }
    if !buf.is_empty() {
        sink(&buf);
    }
    Ok(skipped)
}

fn report_skipped<W: Write>(skipped: u64, output: &mut W) -> std::io::Result<()> {
    if skipped > 0 {
        writeln!(output, "# skipped {skipped} unparseable lines")?;
    }
    Ok(())
}

fn report<T: CliValue, W: Write>(
    answers: Option<Vec<T>>,
    n: u64,
    phis: &[f64],
    output: &mut W,
    interim: bool,
) -> std::io::Result<Vec<(f64, String)>> {
    let Some(answers) = answers else {
        writeln!(output, "# empty input")?;
        return Ok(Vec::new());
    };
    let pairs: Vec<(f64, String)> = phis
        .iter()
        .copied()
        .zip(answers.iter().map(CliValue::render))
        .collect();
    let tag = if interim {
        format!("@{n} ")
    } else {
        String::new()
    };
    for (phi, v) in &pairs {
        writeln!(output, "{tag}p{phi}\t{v}")?;
    }
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(input: &str, args: &Args) -> (Summary, String) {
        let mut out = Vec::new();
        let summary = run(args, input.as_bytes(), &mut out).expect("io on buffers");
        (summary, String::from_utf8(out).expect("utf8 output"))
    }

    fn args_with_phis(phis: &[f64]) -> Args {
        Args {
            epsilon: 0.05,
            delta: 0.01,
            phis: phis.to_vec(),
            ..Args::default()
        }
    }

    #[test]
    fn small_input_is_exact() {
        let input = "5\n1\n4\n2\n3\n";
        let (summary, out) = run_on(input, &args_with_phis(&[0.5, 1.0]));
        assert_eq!(summary.n, 5);
        assert_eq!(summary.skipped, 0);
        assert_eq!(
            summary.quantiles,
            vec![(0.5, "3".to_string()), (1.0, "5".to_string())]
        );
        assert!(out.contains("p0.5\t3"));
        assert!(out.contains("p1\t5"));
    }

    #[test]
    fn unparseable_lines_are_counted_not_fatal() {
        let input = "10\nhello\n20\n\n30\nNaN\n";
        let (summary, out) = run_on(input, &args_with_phis(&[0.5]));
        assert_eq!(summary.n, 3);
        assert_eq!(summary.skipped, 2); // blank lines are ignored silently
        assert!(out.contains("# skipped 2"));
    }

    #[test]
    fn negative_numbers_are_ordered_correctly() {
        let input = "-5\n-1\n-3\n0\n2\n";
        let (summary, _) = run_on(input, &args_with_phis(&[0.0, 1.0]));
        assert_eq!(
            summary.quantiles,
            vec![(0.0, "-5".to_string()), (1.0, "2".to_string())]
        );
    }

    #[test]
    fn float_mode_parses_and_orders() {
        let mut args = args_with_phis(&[0.0, 0.5, 1.0]);
        args.float = true;
        let input = "2.5\n-0.5\n1.25\n1e3\nNaN\n";
        let (summary, out) = run_on(input, &args);
        assert_eq!(summary.n, 4);
        assert_eq!(summary.skipped, 1, "NaN must be skipped: {out}");
        assert_eq!(summary.quantiles[0].1, "-0.5");
        assert_eq!(summary.quantiles[2].1, "1000");
    }

    #[test]
    fn integer_mode_rejects_floats() {
        let (summary, _) = run_on("1.5\n2\n", &args_with_phis(&[0.5]));
        assert_eq!(summary.n, 1);
        assert_eq!(summary.skipped, 1);
    }

    #[test]
    fn empty_input_reports_gracefully() {
        let (summary, out) = run_on("", &args_with_phis(&[0.5]));
        assert_eq!(summary.n, 0);
        assert!(summary.quantiles.is_empty());
        assert!(out.contains("# empty input"));
    }

    #[test]
    fn interim_reports_at_cadence() {
        let mut args = args_with_phis(&[0.5]);
        args.report_every = 10;
        let input: String = (1..=25).map(|i| format!("{i}\n")).collect();
        let (summary, out) = run_on(&input, &args);
        assert_eq!(summary.n, 25);
        assert!(out.contains("@10 p0.5"));
        assert!(out.contains("@20 p0.5"));
    }

    #[test]
    fn sharded_mode_matches_bulk_accounting_and_accuracy() {
        let input: String = (0..60_000u64)
            .map(|i| format!("{}\n", (i * 2654435761) % 60_000))
            .collect();
        let mut args = args_with_phis(&[0.5]);
        args.shards = 3;
        let (summary, out) = run_on(&input, &args);
        assert_eq!(summary.n, 60_000);
        assert_eq!(summary.skipped, 0);
        let med: f64 = summary.quantiles[0].1.parse().unwrap();
        assert!(
            (med - 30_000.0).abs() <= 0.05 * 60_000.0 + 1.0,
            "median {med}: {out}"
        );
    }

    #[test]
    fn sharded_mode_counts_skipped_lines() {
        let mut args = args_with_phis(&[0.5]);
        args.shards = 2;
        let (summary, out) = run_on("1\nnope\n2\n3\nbad\n", &args);
        assert_eq!(summary.n, 3);
        assert_eq!(summary.skipped, 2);
        assert!(out.contains("# skipped 2"));
    }

    #[test]
    fn large_stream_is_approximately_right() {
        let input: String = (0..50_000u64)
            .map(|i| format!("{}\n", (i * 48271) % 50_000))
            .collect();
        let (summary, _) = run_on(&input, &args_with_phis(&[0.5]));
        let med: f64 = summary.quantiles[0].1.parse().unwrap();
        assert!(
            (med - 25_000.0).abs() <= 0.05 * 50_000.0 + 1.0,
            "median {med}"
        );
    }
}
