//! The line-oriented streaming driver: read numbers, feed the sketch,
//! report quantiles (optionally at a cadence — the online-aggregation
//! mode). Supports integer (default) and floating-point (`--float`)
//! inputs.

use std::io::{BufRead, Write};
use std::sync::Arc;

use mrl_core::{EpsilonAudit, OptimizerOptions, OrderedF64, UnknownN};
use mrl_obs::{
    install_panic_hook, EventJournal, InMemoryRecorder, JournalHandle, MetricsHandle,
    MetricsSnapshot,
};
use mrl_parallel::{PipelineTelemetry, ShardedSketch};
use serde::{Deserialize, Serialize};

use crate::args::{Args, StatsFormat};

/// What a run saw and concluded.
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    /// Parsed input values consumed.
    pub n: u64,
    /// Lines skipped because they did not parse.
    pub skipped: u64,
    /// Final `(phi, rendered estimate)` pairs (empty input ⇒ empty).
    pub quantiles: Vec<(f64, String)>,
    /// The sketch's memory bound in elements.
    pub memory_elements: usize,
}

/// A value type the CLI can stream (`Send + 'static` so values can cross
/// into the sharded pipeline's worker threads).
trait CliValue: Ord + Clone + Send + 'static {
    fn parse(s: &str) -> Option<Self>;
    fn render(&self) -> String;
}

impl CliValue for i64 {
    fn parse(s: &str) -> Option<Self> {
        s.parse().ok()
    }
    fn render(&self) -> String {
        self.to_string()
    }
}

impl CliValue for OrderedF64 {
    fn parse(s: &str) -> Option<Self> {
        s.parse::<f64>().ok().and_then(OrderedF64::new)
    }
    fn render(&self) -> String {
        self.get().to_string()
    }
}

/// One telemetry report as emitted by `--stats` (the JSON form is one of
/// these per line). `audit` is present in the single-sketch modes,
/// `pipeline` in the sharded mode; interim reports carry whatever is live
/// at that point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StatsReport {
    /// `true` for cadence reports, `false` for the end-of-run report.
    pub interim: bool,
    /// Parsed values consumed when the report was taken.
    pub n: u64,
    /// Live ε-audit (single-sketch modes only).
    pub audit: Option<EpsilonAudit>,
    /// Merged pipeline telemetry (sharded mode, final report only).
    pub pipeline: Option<PipelineTelemetry>,
    /// The recorder's counter/gauge/histogram snapshot.
    pub metrics: MetricsSnapshot,
}

/// Telemetry plumbing for one run: owns the recorder (when `--stats` or
/// `--prom` is on), the flight-recorder journal (when `--trace` is on),
/// and the stream reports are written to.
struct StatsSink<S: Write> {
    format: Option<StatsFormat>,
    recorder: Option<Arc<InMemoryRecorder>>,
    journal: Option<Arc<EventJournal>>,
    trace_path: Option<String>,
    prom_path: Option<String>,
    out: S,
}

impl<S: Write> StatsSink<S> {
    fn new(args: &Args, out: S) -> Self {
        let journal = args.trace.as_ref().map(|_| {
            let journal = Arc::new(EventJournal::new());
            // A panicking run still yields diagnostics: the hook drains the
            // journal's tail to stderr before the default backtrace.
            install_panic_hook(&journal);
            journal
        });
        Self {
            format: args.stats,
            recorder: (args.stats.is_some() || args.prom.is_some())
                .then(|| Arc::new(InMemoryRecorder::new())),
            journal,
            trace_path: args.trace.clone(),
            prom_path: args.prom.clone(),
            out,
        }
    }

    /// The handle instrumented code should publish through: a real one
    /// when `--stats` or `--prom` is on, otherwise the zero-overhead
    /// disabled handle.
    fn handle(&self) -> MetricsHandle {
        match &self.recorder {
            Some(r) => MetricsHandle::new(r.clone()),
            None => MetricsHandle::disabled(),
        }
    }

    /// The flight-recorder handle: recording when `--trace` is on,
    /// otherwise the one-branch disabled handle.
    fn journal_handle(&self) -> JournalHandle {
        match &self.journal {
            Some(j) => JournalHandle::new(Arc::clone(j)),
            None => JournalHandle::disabled(),
        }
    }

    /// End-of-run artefact export: the chrome-trace JSON (`--trace`) and
    /// the Prometheus text-exposition snapshot (`--prom`).
    fn export(&self) -> std::io::Result<()> {
        if let (Some(path), Some(journal)) = (&self.trace_path, &self.journal) {
            std::fs::write(path, mrl_obs::export::perfetto::to_chrome_trace(journal))?;
        }
        if let (Some(path), Some(recorder)) = (&self.prom_path, &self.recorder) {
            std::fs::write(path, recorder.snapshot().to_prometheus())?;
        }
        Ok(())
    }

    fn emit(
        &mut self,
        n: u64,
        audit: Option<EpsilonAudit>,
        pipeline: Option<PipelineTelemetry>,
        interim: bool,
    ) -> std::io::Result<()> {
        let Some(format) = self.format else {
            return Ok(());
        };
        let recorder = self.recorder.as_ref().expect("format implies recorder");
        let report = StatsReport {
            interim,
            n,
            audit,
            pipeline,
            metrics: recorder.snapshot(),
        };
        match format {
            StatsFormat::Json => {
                let line = serde_json::to_string(&report)
                    .map_err(|e| std::io::Error::other(format!("stats serialization: {e}")))?;
                writeln!(self.out, "{line}")
            }
            StatsFormat::Text => {
                let tag = if interim { " (interim)" } else { "" };
                writeln!(self.out, "# stats{tag} n={n}")?;
                if let Some(a) = &report.audit {
                    writeln!(
                        self.out,
                        "  audit.headroom     {:.4}  (tree_bound {} / allowed {:.1}, alpha {})",
                        a.headroom, a.tree_bound, a.allowed_error, a.alpha
                    )?;
                    writeln!(self.out, "  audit.hoeffding_x  {:.1}", a.hoeffding_x)?;
                    writeln!(
                        self.out,
                        "  audit.rate         {} (sampling_started: {})",
                        a.current_rate, a.sampling_started
                    )?;
                }
                if let Some(p) = &report.pipeline {
                    writeln!(
                        self.out,
                        "  pipeline           {} shards, merged elements {}, collapses {}",
                        p.per_shard.len(),
                        p.merged.elements,
                        p.merged.collapses
                    )?;
                }
                self.out
                    .write_all(report.metrics.render_text().as_bytes())?;
                if report.metrics.dropped > 0 {
                    writeln!(
                        self.out,
                        "  warning: recorder dropped {} metric updates (key table \
                         full); the series above undercount",
                        report.metrics.dropped
                    )?;
                }
                Ok(())
            }
        }
    }
}

/// Run the tool: read numbers line by line from `input`, write reports to
/// `output`. Separated from `main` for testing. Telemetry (if requested
/// via `--stats`) is discarded; use [`run_with_stats`] to capture it.
pub fn run<R: BufRead, W: Write>(args: &Args, input: R, output: W) -> std::io::Result<Summary> {
    run_with_stats(args, input, output, std::io::sink())
}

/// As [`run`], with an explicit stream for `--stats` telemetry reports
/// (`main` passes stderr so stdout stays pure quantile output).
pub fn run_with_stats<R: BufRead, W: Write, S: Write>(
    args: &Args,
    input: R,
    output: W,
    stats: S,
) -> std::io::Result<Summary> {
    if args.float {
        run_typed::<OrderedF64, R, W, S>(args, input, output, stats)
    } else {
        run_typed::<i64, R, W, S>(args, input, output, stats)
    }
}

fn run_typed<T: CliValue, R: BufRead, W: Write, S: Write>(
    args: &Args,
    input: R,
    mut output: W,
    stats: S,
) -> std::io::Result<Summary> {
    let mut stats = StatsSink::new(args, stats);
    let journal = stats.journal_handle();
    journal.name_thread("driver", None);
    let opts = if cfg!(debug_assertions) {
        OptimizerOptions::fast()
    } else {
        OptimizerOptions::default()
    };

    if args.report_every > 0 {
        // Online-aggregation mode: per-element inserts so the interim
        // report cadence lands exactly on every `report_every`-th value.
        let mut sketch =
            UnknownN::<T>::with_options(args.epsilon, args.delta, opts).with_seed(args.seed);
        sketch.set_metrics(stats.handle());
        sketch.set_journal(journal.clone());
        let mut skipped = 0u64;
        for line in input.lines() {
            let line = line?;
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            match T::parse(trimmed) {
                Some(v) => {
                    sketch.insert(v);
                    if sketch.n().is_multiple_of(args.report_every) {
                        report(
                            sketch.query_many(&args.phis),
                            sketch.n(),
                            &args.phis,
                            &mut output,
                            true,
                        )?;
                    }
                    if args.stats_interval > 0 && sketch.n().is_multiple_of(args.stats_interval) {
                        stats.emit(sketch.n(), Some(sketch.audit()), None, true)?;
                    }
                }
                None => skipped += 1,
            }
        }
        let quantiles = report(
            sketch.query_many(&args.phis),
            sketch.n(),
            &args.phis,
            &mut output,
            false,
        )?;
        report_skipped(skipped, &mut output)?;
        stats.emit(sketch.n(), Some(sketch.publish_audit()), None, false)?;
        stats.export()?;
        Ok(Summary {
            n: sketch.n(),
            skipped,
            quantiles,
            memory_elements: sketch.memory_bound_elements(),
        })
    } else if args.shards > 1 {
        // Sharded bulk mode: chunks are dealt round-robin to a worker pool
        // over bounded channels, and the shards' final buffers merge at a
        // §6 coordinator.
        let mut sketch = ShardedSketch::<T>::new_with_obs(
            args.shards,
            args.epsilon,
            args.delta,
            opts,
            args.seed,
            stats.handle(),
            journal.clone(),
        );
        let mut dispatched = 0u64;
        let mut next_emit = interval_start(args.stats_interval);
        let skipped = ingest_lines(input, |chunk: &[T]| {
            sketch.insert_batch(chunk);
            dispatched += chunk.len() as u64;
            if dispatched >= next_emit {
                next_emit = next_threshold(dispatched, args.stats_interval);
                // Per-shard audits only exist once workers finish, so the
                // interim report is the live metrics snapshot alone.
                stats.emit(dispatched, None, None, true)?;
            }
            Ok(())
        })?;
        let memory_elements = sketch.memory_bound_elements();
        let outcome = sketch.finish()?;
        let quantiles = report(
            outcome.query_many(&args.phis),
            outcome.total_n(),
            &args.phis,
            &mut output,
            false,
        )?;
        report_skipped(skipped, &mut output)?;
        stats.emit(
            outcome.total_n(),
            None,
            Some(outcome.telemetry().clone()),
            false,
        )?;
        stats.export()?;
        Ok(Summary {
            n: outcome.total_n(),
            skipped,
            quantiles,
            memory_elements,
        })
    } else {
        // Bulk mode: gather parsed values and feed the sketch's batched
        // fast path.
        let mut sketch =
            UnknownN::<T>::with_options(args.epsilon, args.delta, opts).with_seed(args.seed);
        sketch.set_metrics(stats.handle());
        sketch.set_journal(journal.clone());
        let mut next_emit = interval_start(args.stats_interval);
        let skipped = ingest_lines(input, |chunk: &[T]| {
            sketch.insert_batch(chunk);
            if sketch.n() >= next_emit {
                next_emit = next_threshold(sketch.n(), args.stats_interval);
                stats.emit(sketch.n(), Some(sketch.audit()), None, true)?;
            }
            Ok(())
        })?;
        let quantiles = report(
            sketch.query_many(&args.phis),
            sketch.n(),
            &args.phis,
            &mut output,
            false,
        )?;
        report_skipped(skipped, &mut output)?;
        stats.emit(sketch.n(), Some(sketch.publish_audit()), None, false)?;
        stats.export()?;
        Ok(Summary {
            n: sketch.n(),
            skipped,
            quantiles,
            memory_elements: sketch.memory_bound_elements(),
        })
    }
}

/// First ingest count at which an interim stats report is due
/// (`u64::MAX` disables the cadence entirely).
fn interval_start(interval: u64) -> u64 {
    if interval > 0 {
        interval
    } else {
        u64::MAX
    }
}

/// Next report threshold after one fired at ingest count `n` (chunked
/// ingestion can jump several multiples of `interval` at once; exactly
/// one report is emitted per crossing).
fn next_threshold(n: u64, interval: u64) -> u64 {
    (n / interval + 1).saturating_mul(interval)
}

/// Parse lines into values, feeding `sink` with chunks of up to 1024;
/// returns how many lines were skipped as unparseable.
fn ingest_lines<T: CliValue, R: BufRead>(
    input: R,
    mut sink: impl FnMut(&[T]) -> std::io::Result<()>,
) -> std::io::Result<u64> {
    const CHUNK: usize = 1024;
    let mut skipped = 0u64;
    let mut buf: Vec<T> = Vec::with_capacity(CHUNK);
    for line in input.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        match T::parse(trimmed) {
            Some(v) => {
                buf.push(v);
                if buf.len() == CHUNK {
                    sink(&buf)?;
                    buf.clear();
                }
            }
            None => skipped += 1,
        }
    }
    if !buf.is_empty() {
        sink(&buf)?;
    }
    Ok(skipped)
}

fn report_skipped<W: Write>(skipped: u64, output: &mut W) -> std::io::Result<()> {
    if skipped > 0 {
        writeln!(output, "# skipped {skipped} unparseable lines")?;
    }
    Ok(())
}

fn report<T: CliValue, W: Write>(
    answers: Option<Vec<T>>,
    n: u64,
    phis: &[f64],
    output: &mut W,
    interim: bool,
) -> std::io::Result<Vec<(f64, String)>> {
    let Some(answers) = answers else {
        writeln!(output, "# empty input")?;
        return Ok(Vec::new());
    };
    let pairs: Vec<(f64, String)> = phis
        .iter()
        .copied()
        .zip(answers.iter().map(CliValue::render))
        .collect();
    let tag = if interim {
        format!("@{n} ")
    } else {
        String::new()
    };
    for (phi, v) in &pairs {
        writeln!(output, "{tag}p{phi}\t{v}")?;
    }
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(input: &str, args: &Args) -> (Summary, String) {
        let mut out = Vec::new();
        let summary = run(args, input.as_bytes(), &mut out).expect("io on buffers");
        (summary, String::from_utf8(out).expect("utf8 output"))
    }

    fn args_with_phis(phis: &[f64]) -> Args {
        Args {
            epsilon: 0.05,
            delta: 0.01,
            phis: phis.to_vec(),
            ..Args::default()
        }
    }

    #[test]
    fn small_input_is_exact() {
        let input = "5\n1\n4\n2\n3\n";
        let (summary, out) = run_on(input, &args_with_phis(&[0.5, 1.0]));
        assert_eq!(summary.n, 5);
        assert_eq!(summary.skipped, 0);
        assert_eq!(
            summary.quantiles,
            vec![(0.5, "3".to_string()), (1.0, "5".to_string())]
        );
        assert!(out.contains("p0.5\t3"));
        assert!(out.contains("p1\t5"));
    }

    #[test]
    fn unparseable_lines_are_counted_not_fatal() {
        let input = "10\nhello\n20\n\n30\nNaN\n";
        let (summary, out) = run_on(input, &args_with_phis(&[0.5]));
        assert_eq!(summary.n, 3);
        assert_eq!(summary.skipped, 2); // blank lines are ignored silently
        assert!(out.contains("# skipped 2"));
    }

    #[test]
    fn negative_numbers_are_ordered_correctly() {
        let input = "-5\n-1\n-3\n0\n2\n";
        let (summary, _) = run_on(input, &args_with_phis(&[0.0, 1.0]));
        assert_eq!(
            summary.quantiles,
            vec![(0.0, "-5".to_string()), (1.0, "2".to_string())]
        );
    }

    #[test]
    fn float_mode_parses_and_orders() {
        let mut args = args_with_phis(&[0.0, 0.5, 1.0]);
        args.float = true;
        let input = "2.5\n-0.5\n1.25\n1e3\nNaN\n";
        let (summary, out) = run_on(input, &args);
        assert_eq!(summary.n, 4);
        assert_eq!(summary.skipped, 1, "NaN must be skipped: {out}");
        assert_eq!(summary.quantiles[0].1, "-0.5");
        assert_eq!(summary.quantiles[2].1, "1000");
    }

    #[test]
    fn integer_mode_rejects_floats() {
        let (summary, _) = run_on("1.5\n2\n", &args_with_phis(&[0.5]));
        assert_eq!(summary.n, 1);
        assert_eq!(summary.skipped, 1);
    }

    #[test]
    fn empty_input_reports_gracefully() {
        let (summary, out) = run_on("", &args_with_phis(&[0.5]));
        assert_eq!(summary.n, 0);
        assert!(summary.quantiles.is_empty());
        assert!(out.contains("# empty input"));
    }

    #[test]
    fn interim_reports_at_cadence() {
        let mut args = args_with_phis(&[0.5]);
        args.report_every = 10;
        let input: String = (1..=25).map(|i| format!("{i}\n")).collect();
        let (summary, out) = run_on(&input, &args);
        assert_eq!(summary.n, 25);
        assert!(out.contains("@10 p0.5"));
        assert!(out.contains("@20 p0.5"));
    }

    #[test]
    fn sharded_mode_matches_bulk_accounting_and_accuracy() {
        let input: String = (0..60_000u64)
            .map(|i| format!("{}\n", (i * 2654435761) % 60_000))
            .collect();
        let mut args = args_with_phis(&[0.5]);
        args.shards = 3;
        let (summary, out) = run_on(&input, &args);
        assert_eq!(summary.n, 60_000);
        assert_eq!(summary.skipped, 0);
        let med: f64 = summary.quantiles[0].1.parse().unwrap();
        assert!(
            (med - 30_000.0).abs() <= 0.05 * 60_000.0 + 1.0,
            "median {med}: {out}"
        );
    }

    #[test]
    fn sharded_mode_counts_skipped_lines() {
        let mut args = args_with_phis(&[0.5]);
        args.shards = 2;
        let (summary, out) = run_on("1\nnope\n2\n3\nbad\n", &args);
        assert_eq!(summary.n, 3);
        assert_eq!(summary.skipped, 2);
        assert!(out.contains("# skipped 2"));
    }

    fn run_with_stats_on(input: &str, args: &Args) -> (Summary, String, String) {
        let mut out = Vec::new();
        let mut stats = Vec::new();
        let summary =
            run_with_stats(args, input.as_bytes(), &mut out, &mut stats).expect("io on buffers");
        (
            summary,
            String::from_utf8(out).expect("utf8 output"),
            String::from_utf8(stats).expect("utf8 stats"),
        )
    }

    #[test]
    fn stats_json_reports_audit_headroom_and_metrics() {
        let mut args = args_with_phis(&[0.5]);
        args.stats = Some(StatsFormat::Json);
        let input: String = (0..20_000u64)
            .map(|i| format!("{}\n", (i * 2654435761) % 20_000))
            .collect();
        let (summary, _, stats) = run_with_stats_on(&input, &args);
        assert_eq!(summary.n, 20_000);
        let lines: Vec<&str> = stats.lines().collect();
        assert_eq!(lines.len(), 1, "final report only: {stats}");
        let report: StatsReport = serde_json::from_str(lines[0]).expect("valid JSON stats line");
        assert!(!report.interim);
        assert_eq!(report.n, 20_000);
        let audit = report
            .audit
            .expect("single-sketch mode publishes the audit");
        assert_eq!(audit.n, 20_000);
        assert!(audit.headroom >= 0.0, "headroom gauge: {}", audit.headroom);
        assert!(report.pipeline.is_none());
        assert!(report.metrics.counters.contains_key("engine.collapses"));
        assert_eq!(
            report.metrics.gauges.get("audit.headroom").copied(),
            Some(audit.headroom),
            "publish_audit must mirror the audit into the recorder"
        );
    }

    #[test]
    fn stats_interval_emits_interim_reports_in_bulk_mode() {
        let mut args = args_with_phis(&[0.5]);
        args.stats = Some(StatsFormat::Json);
        args.stats_interval = 5_000;
        let input: String = (0..12_000u64).map(|i| format!("{i}\n")).collect();
        let (_, _, stats) = run_with_stats_on(&input, &args);
        let reports: Vec<StatsReport> = stats
            .lines()
            .map(|l| serde_json::from_str(l).expect("valid JSONL"))
            .collect();
        // Crossings at 5k and 10k (chunk granularity) plus the final report.
        assert_eq!(reports.len(), 3, "{stats}");
        assert!(reports[0].interim && reports[1].interim && !reports[2].interim);
        assert!(reports[0].n >= 5_000 && reports[0].n < 5_000 + 1024);
        assert!(reports[1].n >= 10_000 && reports[1].n < 10_000 + 1024);
        assert_eq!(reports[2].n, 12_000);
        for r in &reports {
            assert!(r.audit.is_some());
        }
    }

    #[test]
    fn stats_text_mode_renders_audit_and_snapshot() {
        let mut args = args_with_phis(&[0.5]);
        args.stats = Some(StatsFormat::Text);
        let input: String = (0..5_000u64).map(|i| format!("{i}\n")).collect();
        let (_, out, stats) = run_with_stats_on(&input, &args);
        assert!(!out.contains("# stats"), "stats stay off stdout: {out}");
        assert!(stats.contains("# stats n=5000"), "{stats}");
        assert!(stats.contains("audit.headroom"), "{stats}");
        assert!(stats.contains("engine.collapses"), "{stats}");
    }

    #[test]
    fn stats_in_sharded_mode_carries_pipeline_telemetry() {
        let mut args = args_with_phis(&[0.5]);
        args.stats = Some(StatsFormat::Json);
        args.shards = 2;
        let input: String = (0..30_000u64).map(|i| format!("{i}\n")).collect();
        let (summary, _, stats) = run_with_stats_on(&input, &args);
        assert_eq!(summary.n, 30_000);
        let report: StatsReport =
            serde_json::from_str(stats.lines().last().unwrap()).expect("valid JSON");
        let pipeline = report.pipeline.expect("sharded mode reports telemetry");
        assert_eq!(pipeline.merged.elements, 30_000);
        assert_eq!(pipeline.per_shard.len(), 2);
        assert!(report
            .metrics
            .counters
            .contains_key("pipeline.shard.batches[0]"));
    }

    #[test]
    fn stats_in_every_mode_follows_its_own_cadence() {
        let mut args = args_with_phis(&[0.5]);
        args.stats = Some(StatsFormat::Json);
        args.stats_interval = 40;
        args.report_every = 25;
        let input: String = (1..=100u64).map(|i| format!("{i}\n")).collect();
        let (_, out, stats) = run_with_stats_on(&input, &args);
        assert!(out.contains("@25 p0.5"), "{out}");
        let reports: Vec<StatsReport> = stats
            .lines()
            .map(|l| serde_json::from_str(l).expect("valid JSONL"))
            .collect();
        // Interim at exactly n = 40 and 80 (per-element mode), then final.
        assert_eq!(reports.len(), 3, "{stats}");
        assert_eq!(reports[0].n, 40);
        assert_eq!(reports[1].n, 80);
        assert_eq!(reports[2].n, 100);
    }

    #[test]
    fn trace_flag_writes_chrome_trace_json_with_shard_tracks() {
        let path = std::env::temp_dir().join(format!("mrl_cli_trace_{}.json", std::process::id()));
        let mut args = args_with_phis(&[0.5]);
        args.shards = 2;
        args.trace = Some(path.to_string_lossy().into_owned());
        let input: String = (0..20_000u64).map(|i| format!("{i}\n")).collect();
        let (summary, _) = run_on(&input, &args);
        assert_eq!(summary.n, 20_000);
        let text = std::fs::read_to_string(&path).expect("--trace wrote the file");
        std::fs::remove_file(&path).ok();
        assert!(text.starts_with("{\"traceEvents\":["), "{text}");
        assert!(text.contains("\"name\":\"driver\""), "producer ring named");
        assert!(text.contains("\"name\":\"shard[0]\""), "worker rings named");
        assert!(text.contains("\"name\":\"shard.dispatch\""), "{summary:?}");
        assert!(
            text.contains("\"name\":\"seal\""),
            "engine events flow through"
        );
        let parsed: serde::Value = serde_json::from_str(&text).expect("valid JSON trace");
        assert!(matches!(parsed, serde::Value::Object(_)));
    }

    #[test]
    fn prom_flag_writes_exposition_text_without_stats() {
        let path = std::env::temp_dir().join(format!("mrl_cli_prom_{}.prom", std::process::id()));
        let mut args = args_with_phis(&[0.5]);
        args.prom = Some(path.to_string_lossy().into_owned());
        assert!(args.stats.is_none(), "--prom alone must create a recorder");
        let input: String = (0..20_000u64).map(|i| format!("{i}\n")).collect();
        run_on(&input, &args);
        let text = std::fs::read_to_string(&path).expect("--prom wrote the file");
        std::fs::remove_file(&path).ok();
        assert!(text.contains("# TYPE"), "{text}");
        assert!(text.contains("engine_collapses"), "{text}");
        assert!(text.contains("mrl_obs_dropped_updates"), "{text}");
    }

    #[test]
    fn same_seed_runs_are_bitwise_identical_across_modes() {
        let input: String = (0..40_000u64)
            .map(|i| format!("{}\n", (i * 2654435761) % 40_000))
            .collect();
        for shards in [1usize, 3] {
            let mut args = args_with_phis(&[0.1, 0.5, 0.9]);
            args.shards = shards;
            args.seed = 42;
            let (s1, out1) = run_on(&input, &args);
            let (s2, out2) = run_on(&input, &args);
            assert_eq!(out1, out2, "--seed must pin the output (shards={shards})");
            assert_eq!(s1.quantiles, s2.quantiles);
            assert_eq!(s1.n, s2.n);
        }
    }

    #[test]
    fn large_stream_is_approximately_right() {
        let input: String = (0..50_000u64)
            .map(|i| format!("{}\n", (i * 48271) % 50_000))
            .collect();
        let (summary, _) = run_on(&input, &args_with_phis(&[0.5]));
        let med: f64 = summary.quantiles[0].1.parse().unwrap();
        assert!(
            (med - 25_000.0).abs() <= 0.05 * 50_000.0 + 1.0,
            "median {med}"
        );
    }
}
