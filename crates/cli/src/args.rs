//! Hand-rolled argument parsing for `mrl-quantiles` (no CLI-framework
//! dependency; the surface is five flags).

use std::fmt;

/// Rendering for the `--stats` telemetry report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StatsFormat {
    /// Human-readable aligned text.
    Text,
    /// One JSON object per report line (machine-readable).
    Json,
}

/// Parsed command-line options.
#[derive(Clone, Debug, PartialEq)]
pub struct Args {
    /// Approximation guarantee ε.
    pub epsilon: f64,
    /// Failure probability δ.
    pub delta: f64,
    /// Quantiles to report.
    pub phis: Vec<f64>,
    /// Sketch seed.
    pub seed: u64,
    /// Print running estimates every `report_every` lines (0 = only at
    /// end-of-stream).
    pub report_every: u64,
    /// Shard ingestion across this many worker threads (1 = in-process).
    pub shards: usize,
    /// Parse input as floating-point numbers instead of integers.
    pub float: bool,
    /// Emit a telemetry report (metrics snapshot + live ε-audit) to the
    /// stats stream at end-of-run, in the given format.
    pub stats: Option<StatsFormat>,
    /// Also emit interim telemetry every `stats_interval` parsed values
    /// (0 = final report only). Requires `--stats`.
    pub stats_interval: u64,
    /// Attach the flight recorder and write a chrome-trace
    /// (Perfetto-loadable) JSON file here at end-of-run.
    pub trace: Option<String>,
    /// Write the final metrics snapshot here in Prometheus text
    /// exposition format at end-of-run.
    pub prom: Option<String>,
    /// Print the help text and exit.
    pub help: bool,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            epsilon: 0.01,
            delta: 1e-4,
            phis: vec![0.5],
            seed: 0,
            report_every: 0,
            shards: 1,
            float: false,
            stats: None,
            stats_interval: 0,
            trace: None,
            prom: None,
            help: false,
        }
    }
}

/// A malformed command line.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// The usage text.
pub const USAGE: &str = "\
mrl-quantiles: single-pass approximate quantiles over stdin (MRL99)

USAGE:
    <numbers on stdin, one per line> | mrl-quantiles [OPTIONS]

OPTIONS:
    --eps <float>     rank-error guarantee epsilon in (0,1)   [default: 0.01]
    --delta <float>   failure probability delta in (0,1)      [default: 1e-4]
    --phi <list>      comma-separated quantiles in [0,1]      [default: 0.5]
    --seed <u64>      sampler seed                            [default: 0]
    --every <u64>     also report every N input lines         [default: off]
    --shards <usize>  parallel ingestion worker threads       [default: 1]
    --float           parse input as floating-point numbers
    --stats[=FORMAT]  emit a telemetry report (metrics + live eps-audit)
                      to stderr; FORMAT is text (default) or json
    --stats-interval <u64>
                      also emit interim telemetry every N parsed values
                      (requires --stats)                    [default: off]
    --trace <path>    attach the flight recorder and write a chrome-trace
                      JSON file (open in https://ui.perfetto.dev)
    --prom <path>     write the final metrics snapshot in Prometheus text
                      exposition format
    --help            show this text

Input lines that do not parse are counted and skipped. Values are read as
i64 by default (negative numbers welcome) or as f64 with --float (NaN
lines are skipped).";

impl Args {
    /// Parse `argv[1..]`.
    pub fn parse<I, S>(argv: I) -> Result<Args, ParseError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut args = Args::default();
        let mut it = argv.into_iter();
        while let Some(flag) = it.next() {
            let flag = flag.as_ref();
            let mut value_for = |name: &str| -> Result<String, ParseError> {
                it.next()
                    .map(|v| v.as_ref().to_string())
                    .ok_or_else(|| ParseError(format!("{name} requires a value")))
            };
            match flag {
                "--eps" => {
                    args.epsilon = value_for("--eps")?
                        .parse()
                        .map_err(|e| ParseError(format!("--eps: {e}")))?;
                }
                "--delta" => {
                    args.delta = value_for("--delta")?
                        .parse()
                        .map_err(|e| ParseError(format!("--delta: {e}")))?;
                }
                "--phi" => {
                    let raw = value_for("--phi")?;
                    let mut phis = Vec::new();
                    for part in raw.split(',') {
                        let phi: f64 = part
                            .trim()
                            .parse()
                            .map_err(|e| ParseError(format!("--phi '{part}': {e}")))?;
                        if !(0.0..=1.0).contains(&phi) {
                            return Err(ParseError(format!("--phi {phi} outside [0, 1]")));
                        }
                        phis.push(phi);
                    }
                    if phis.is_empty() {
                        return Err(ParseError("--phi needs at least one value".into()));
                    }
                    args.phis = phis;
                }
                "--seed" => {
                    args.seed = value_for("--seed")?
                        .parse()
                        .map_err(|e| ParseError(format!("--seed: {e}")))?;
                }
                "--every" => {
                    args.report_every = value_for("--every")?
                        .parse()
                        .map_err(|e| ParseError(format!("--every: {e}")))?;
                }
                "--shards" => {
                    args.shards = value_for("--shards")?
                        .parse()
                        .map_err(|e| ParseError(format!("--shards: {e}")))?;
                }
                "--float" => args.float = true,
                "--stats" => args.stats = Some(StatsFormat::Text),
                "--stats=text" => args.stats = Some(StatsFormat::Text),
                "--stats=json" => args.stats = Some(StatsFormat::Json),
                "--stats-interval" => {
                    args.stats_interval = value_for("--stats-interval")?
                        .parse()
                        .map_err(|e| ParseError(format!("--stats-interval: {e}")))?;
                }
                "--trace" => args.trace = Some(value_for("--trace")?),
                "--prom" => args.prom = Some(value_for("--prom")?),
                "--help" | "-h" => args.help = true,
                other if other.starts_with("--stats=") => {
                    return Err(ParseError(format!(
                        "--stats format must be text or json, got '{}'",
                        &other["--stats=".len()..]
                    )));
                }
                other => return Err(ParseError(format!("unknown flag: {other}"))),
            }
        }
        if !(args.epsilon > 0.0 && args.epsilon < 1.0) {
            return Err(ParseError(format!("--eps {} outside (0, 1)", args.epsilon)));
        }
        if !(args.delta > 0.0 && args.delta < 1.0) {
            return Err(ParseError(format!("--delta {} outside (0, 1)", args.delta)));
        }
        if args.shards == 0 {
            return Err(ParseError("--shards must be at least 1".into()));
        }
        if args.shards > 1 && args.report_every > 0 {
            return Err(ParseError(
                "--shards > 1 is incompatible with --every (interim reports \
                 need a single in-process sketch)"
                    .into(),
            ));
        }
        if args.stats_interval > 0 && args.stats.is_none() {
            return Err(ParseError(
                "--stats-interval requires --stats (nothing to emit otherwise)".into(),
            ));
        }
        if args.trace.as_deref() == Some("") {
            return Err(ParseError("--trace requires a non-empty path".into()));
        }
        if args.prom.as_deref() == Some("") {
            return Err(ParseError("--prom requires a non-empty path".into()));
        }
        Ok(args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_when_no_flags() {
        let a = Args::parse(Vec::<String>::new()).unwrap();
        assert_eq!(a, Args::default());
    }

    #[test]
    fn parses_all_flags() {
        let a = Args::parse([
            "--eps",
            "0.05",
            "--delta",
            "0.001",
            "--phi",
            "0.25,0.5,0.99",
            "--seed",
            "7",
            "--every",
            "1000",
        ])
        .unwrap();
        assert_eq!(a.epsilon, 0.05);
        assert_eq!(a.delta, 0.001);
        assert_eq!(a.phis, vec![0.25, 0.5, 0.99]);
        assert_eq!(a.seed, 7);
        assert_eq!(a.report_every, 1000);
    }

    #[test]
    fn rejects_bad_epsilon() {
        assert!(Args::parse(["--eps", "1.5"]).is_err());
        assert!(Args::parse(["--eps", "0"]).is_err());
        assert!(Args::parse(["--eps", "abc"]).is_err());
    }

    #[test]
    fn rejects_out_of_range_phi() {
        assert!(Args::parse(["--phi", "1.2"]).is_err());
        assert!(Args::parse(["--phi", ""]).is_err());
    }

    #[test]
    fn rejects_unknown_flag_and_missing_value() {
        assert!(Args::parse(["--frobnicate"]).is_err());
        assert!(Args::parse(["--eps"]).is_err());
    }

    #[test]
    fn parses_shards_and_rejects_bad_values() {
        assert_eq!(Args::parse(["--shards", "4"]).unwrap().shards, 4);
        assert_eq!(Args::parse(Vec::<String>::new()).unwrap().shards, 1);
        assert!(Args::parse(["--shards", "0"]).is_err());
        assert!(Args::parse(["--shards", "x"]).is_err());
    }

    #[test]
    fn shards_conflict_with_interim_reports() {
        assert!(Args::parse(["--shards", "2", "--every", "100"]).is_err());
        // shards=1 with --every stays fine.
        assert!(Args::parse(["--shards", "1", "--every", "100"]).is_ok());
    }

    #[test]
    fn float_flag() {
        assert!(Args::parse(["--float"]).unwrap().float);
        assert!(!Args::parse(Vec::<String>::new()).unwrap().float);
    }

    #[test]
    fn stats_flag_forms() {
        assert_eq!(Args::parse(Vec::<String>::new()).unwrap().stats, None);
        assert_eq!(
            Args::parse(["--stats"]).unwrap().stats,
            Some(StatsFormat::Text)
        );
        assert_eq!(
            Args::parse(["--stats=text"]).unwrap().stats,
            Some(StatsFormat::Text)
        );
        assert_eq!(
            Args::parse(["--stats=json"]).unwrap().stats,
            Some(StatsFormat::Json)
        );
        assert!(Args::parse(["--stats=yaml"]).is_err());
    }

    #[test]
    fn stats_interval_requires_stats() {
        let a = Args::parse(["--stats=json", "--stats-interval", "5000"]).unwrap();
        assert_eq!(a.stats_interval, 5000);
        assert!(Args::parse(["--stats-interval", "5000"]).is_err());
        assert!(Args::parse(["--stats", "--stats-interval", "x"]).is_err());
    }

    #[test]
    fn trace_and_prom_take_paths() {
        let a = Args::parse(["--trace", "/tmp/t.json", "--prom", "/tmp/m.prom"]).unwrap();
        assert_eq!(a.trace.as_deref(), Some("/tmp/t.json"));
        assert_eq!(a.prom.as_deref(), Some("/tmp/m.prom"));
        let d = Args::parse(Vec::<String>::new()).unwrap();
        assert_eq!(d.trace, None);
        assert_eq!(d.prom, None);
        assert!(Args::parse(["--trace"]).is_err());
        assert!(Args::parse(["--prom"]).is_err());
        assert!(Args::parse(["--trace", ""]).is_err());
        assert!(Args::parse(["--prom", ""]).is_err());
    }

    #[test]
    fn help_flag() {
        assert!(Args::parse(["--help"]).unwrap().help);
        assert!(Args::parse(["-h"]).unwrap().help);
    }
}
