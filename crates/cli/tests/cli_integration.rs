//! End-to-end tests of the `mrl-quantiles` binary itself (spawned as a
//! child process, exercising argument handling, stdin framing and exit
//! codes).

use std::io::Write;
use std::process::{Command, Stdio};

fn binary() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mrl-quantiles"))
}

fn run_with_input(args: &[&str], input: &str) -> (String, String, i32) {
    let mut child = binary()
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(input.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("binary finishes");
    (
        String::from_utf8(out.stdout).expect("utf8 stdout"),
        String::from_utf8(out.stderr).expect("utf8 stderr"),
        out.status.code().unwrap_or(-1),
    )
}

#[test]
fn median_of_small_input() {
    let input: String = (1..=100).map(|i| format!("{i}\n")).collect();
    let (stdout, stderr, code) = run_with_input(&["--eps", "0.05", "--phi", "0.5"], &input);
    assert_eq!(code, 0, "stderr: {stderr}");
    assert!(stdout.contains("p0.5\t50"), "stdout: {stdout}");
    assert!(stderr.contains("n=100"), "stderr: {stderr}");
}

#[test]
fn multiple_phis_and_seed() {
    let input: String = (1..=1000).map(|i| format!("{i}\n")).collect();
    let (stdout, _, code) = run_with_input(
        &["--eps", "0.05", "--phi", "0.1,0.9", "--seed", "3"],
        &input,
    );
    assert_eq!(code, 0);
    assert!(stdout.contains("p0.1\t"));
    assert!(stdout.contains("p0.9\t"));
}

#[test]
fn help_exits_zero_without_reading_stdin() {
    let (stdout, _, code) = run_with_input(&["--help"], "");
    assert_eq!(code, 0);
    assert!(stdout.contains("USAGE"));
}

#[test]
fn bad_flag_exits_two_with_usage() {
    let (_, stderr, code) = run_with_input(&["--bogus"], "");
    assert_eq!(code, 2);
    assert!(stderr.contains("unknown flag"));
    assert!(stderr.contains("USAGE"));
}

#[test]
fn bad_epsilon_exits_two() {
    let (_, stderr, code) = run_with_input(&["--eps", "7"], "");
    assert_eq!(code, 2);
    assert!(stderr.contains("--eps"));
}

#[test]
fn garbage_lines_are_reported_not_fatal() {
    let (stdout, _, code) = run_with_input(&[], "1\nfoo\n2\nbar\n3\n");
    assert_eq!(code, 0);
    assert!(stdout.contains("# skipped 2"), "stdout: {stdout}");
}

#[test]
fn empty_stdin_is_graceful() {
    let (stdout, stderr, code) = run_with_input(&[], "");
    assert_eq!(code, 0, "stderr: {stderr}");
    assert!(stdout.contains("# empty input"));
}

#[test]
fn stats_json_goes_to_stderr_as_valid_json() {
    let input: String = (0..20_000u64)
        .map(|i| format!("{}\n", (i * 2654435761) % 20_000))
        .collect();
    let (stdout, stderr, code) = run_with_input(&["--eps", "0.05", "--stats=json"], &input);
    assert_eq!(code, 0, "stderr: {stderr}");
    assert!(stdout.contains("p0.5\t"), "stdout stays pure: {stdout}");
    assert!(!stdout.contains('{'), "no JSON on stdout: {stdout}");
    let json_lines: Vec<&str> = stderr.lines().filter(|l| l.starts_with('{')).collect();
    assert_eq!(json_lines.len(), 1, "one final report: {stderr}");
    let report: mrl_cli::StatsReport =
        serde_json::from_str(json_lines[0]).expect("stderr stats line is valid JSON");
    assert_eq!(report.n, 20_000);
    let audit = report.audit.expect("audit present in single-sketch mode");
    assert!(audit.headroom >= 0.0);
    assert!(report.metrics.gauges.contains_key("audit.headroom"));
}

#[test]
fn stats_text_renders_on_stderr() {
    let input: String = (0..5_000u64).map(|i| format!("{i}\n")).collect();
    let (_, stderr, code) = run_with_input(&["--eps", "0.05", "--stats"], &input);
    assert_eq!(code, 0);
    assert!(stderr.contains("# stats n=5000"), "stderr: {stderr}");
    assert!(stderr.contains("audit.headroom"), "stderr: {stderr}");
}
