//! A minimal binary column format and its streaming scan.
//!
//! Layout: 8-byte magic, 8-byte little-endian row count, then the rows as
//! little-endian `u64`. The row count makes the file self-describing (and
//! lets tests exercise the known-`N` algorithms against disk data), but
//! the scan also works on truncated files — it simply ends early, which is
//! exactly the unknown-`N` situation.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// File magic: `mrlcol01`.
pub const COLUMN_MAGIC: [u8; 8] = *b"mrlcol01";

/// Streaming writer for the binary column format.
///
/// Values are buffered and flushed through `BufWriter`; the row count in
/// the header is back-patched on [`ColumnWriter::finish`].
#[derive(Debug)]
pub struct ColumnWriter {
    file: BufWriter<File>,
    path: PathBuf,
    rows: u64,
}

impl ColumnWriter {
    /// Create (truncate) `path` and write the header.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let mut file = BufWriter::new(File::create(path.as_ref())?);
        file.write_all(&COLUMN_MAGIC)?;
        file.write_all(&0u64.to_le_bytes())?; // placeholder row count
        Ok(Self {
            file,
            path: path.as_ref().to_path_buf(),
            rows: 0,
        })
    }

    /// Append one value.
    pub fn push(&mut self, value: u64) -> io::Result<()> {
        self.file.write_all(&value.to_le_bytes())?;
        self.rows += 1;
        Ok(())
    }

    /// Append every value of an iterator.
    // alloc: `push` here is ColumnWriter::push — a buffered file write,
    // not Vec::push; the analyzer's name-based matcher cannot see the
    // receiver type (DESIGN.md §3.11).
    pub fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) -> io::Result<()> {
        for v in iter {
            self.push(v)?;
        }
        Ok(())
    }

    /// Rows written so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Flush, back-patch the row count, and close. Returns the row count.
    pub fn finish(mut self) -> io::Result<u64> {
        self.file.flush()?;
        let file = self
            .file
            .into_inner()
            .map_err(io::IntoInnerError::into_error)?;
        drop(file);
        // Back-patch the header.
        use std::io::{Seek, SeekFrom};
        let mut f = std::fs::OpenOptions::new().write(true).open(&self.path)?;
        f.seek(SeekFrom::Start(COLUMN_MAGIC.len() as u64))?;
        f.write_all(&self.rows.to_le_bytes())?;
        Ok(self.rows)
    }
}

/// Buffered forward scan of a binary column file.
///
/// Iterates `io::Result<u64>`; use [`ColumnScan::values`] when read errors
/// should simply end the stream (with a counter of how many occurred).
#[derive(Debug)]
pub struct ColumnScan {
    file: BufReader<File>,
    declared_rows: u64,
    read_rows: u64,
}

impl ColumnScan {
    /// Open `path`, validating the magic and reading the declared row
    /// count.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let mut file = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 8];
        file.read_exact(&mut magic)?;
        if magic != COLUMN_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not an mrl column file (bad magic)",
            ));
        }
        let mut count = [0u8; 8];
        file.read_exact(&mut count)?;
        Ok(Self {
            file,
            declared_rows: u64::from_le_bytes(count),
            read_rows: 0,
        })
    }

    /// The row count declared in the header (0 for files written by a
    /// crashed writer that never called `finish`).
    pub fn declared_rows(&self) -> u64 {
        self.declared_rows
    }

    /// Rows read so far.
    pub fn read_rows(&self) -> u64 {
        self.read_rows
    }

    /// Adapt into a plain `Iterator<Item = u64>` that stops at end-of-file
    /// or the first short read (a truncated trailing value is dropped).
    pub fn values(self) -> impl Iterator<Item = u64> {
        self.filter_map(Result::ok)
    }

    /// Read up to `max` values into `out` (cleared first), returning how
    /// many were produced — `0` only at end of file. Errors end the chunk
    /// early and are returned; values decoded before the error are kept in
    /// `out`. Pairs with sketch batch ingestion (`insert_batch`).
    pub fn read_chunk(&mut self, out: &mut Vec<u64>, max: usize) -> io::Result<usize> {
        out.clear();
        while out.len() < max {
            match self.next() {
                Some(Ok(v)) => out.push(v),
                Some(Err(e)) => return Err(e),
                None => break,
            }
        }
        Ok(out.len())
    }
}

impl Iterator for ColumnScan {
    type Item = io::Result<u64>;

    fn next(&mut self) -> Option<Self::Item> {
        let mut buf = [0u8; 8];
        let mut filled = 0usize;
        while filled < 8 {
            match self.file.read(&mut buf[filled..]) {
                Ok(0) if filled == 0 => return None, // clean EOF
                Ok(0) => return None,                // truncated tail: drop
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Some(Err(e)),
            }
        }
        self.read_rows += 1;
        Some(Ok(u64::from_le_bytes(buf)))
    }
}

/// A re-openable scan: multi-pass algorithms (e.g. two-pass exact
/// selection) need to read the same data more than once.
#[derive(Clone, Debug)]
pub struct Reiterable {
    path: PathBuf,
}

impl Reiterable {
    /// Wrap a column file path.
    pub fn new<P: AsRef<Path>>(path: P) -> Self {
        Self {
            path: path.as_ref().to_path_buf(),
        }
    }

    /// Open a fresh scan (panics on IO errors — multi-pass callers have
    /// already validated the file on pass one).
    pub fn scan(&self) -> impl Iterator<Item = u64> {
        ColumnScan::open(&self.path)
            .expect("re-opening a previously valid column file")
            .values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mrl-io-test-{tag}-{}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_preserves_values() {
        let path = temp_path("roundtrip");
        let mut w = ColumnWriter::create(&path).unwrap();
        let data: Vec<u64> = (0..10_000).map(|i| i * 37 % 9973).collect();
        w.extend(data.iter().copied()).unwrap();
        assert_eq!(w.finish().unwrap(), 10_000);

        let scan = ColumnScan::open(&path).unwrap();
        assert_eq!(scan.declared_rows(), 10_000);
        let back: Vec<u64> = scan.values().collect();
        assert_eq!(back, data);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_column() {
        let path = temp_path("empty");
        let w = ColumnWriter::create(&path).unwrap();
        assert_eq!(w.finish().unwrap(), 0);
        let scan = ColumnScan::open(&path).unwrap();
        assert_eq!(scan.declared_rows(), 0);
        assert_eq!(scan.values().count(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let path = temp_path("badmagic");
        std::fs::write(&path, b"not a column file at all").unwrap();
        let err = ColumnScan::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_tail_is_dropped_not_fatal() {
        let path = temp_path("truncated");
        let mut w = ColumnWriter::create(&path).unwrap();
        w.extend([1u64, 2, 3]).unwrap();
        w.finish().unwrap();
        // Chop 3 bytes off the last value.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);
        let back: Vec<u64> = ColumnScan::open(&path).unwrap().values().collect();
        assert_eq!(back, vec![1, 2]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn read_chunk_covers_the_file() {
        let path = temp_path("chunks");
        let mut w = ColumnWriter::create(&path).unwrap();
        w.extend((0..10_000u64).map(|i| i * 3)).unwrap();
        w.finish().unwrap();
        let mut scan = ColumnScan::open(&path).unwrap();
        let mut buf = Vec::new();
        let mut got = Vec::new();
        loop {
            let n = scan.read_chunk(&mut buf, 1024).unwrap();
            if n == 0 {
                break;
            }
            assert!(n <= 1024);
            got.extend_from_slice(&buf);
        }
        assert_eq!(got.len(), 10_000);
        assert_eq!(scan.read_rows(), 10_000);
        assert!(got.iter().enumerate().all(|(i, &v)| v == i as u64 * 3));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reiterable_supports_multiple_passes() {
        let path = temp_path("reiter");
        let mut w = ColumnWriter::create(&path).unwrap();
        w.extend(0..1_000u64).unwrap();
        w.finish().unwrap();
        let r = Reiterable::new(&path);
        assert_eq!(r.scan().count(), 1_000);
        assert_eq!(r.scan().sum::<u64>(), 499_500);
        std::fs::remove_file(&path).unwrap();
    }
}
