//! Disk-resident dataset substrate.
//!
//! The paper targets "online **or disk-resident** datasets" processed in a
//! single pass (§1): the quantile algorithms never need the data in
//! memory, only a forward scan. This crate provides that scan:
//!
//! * [`ColumnWriter`] / [`ColumnScan`] — a minimal binary column format
//!   (little-endian `u64` values with a small header), written streaming
//!   and read back as a buffered iterator;
//! * [`csv_column`] — a single numeric column out of a CSV file, scanned
//!   without materialising rows;
//! * [`Reiterable`] — re-openable scans for the multi-pass algorithms
//!   (`mrl-exact`'s two-pass selection needs to read the data twice);
//! * [`column_quantiles`] / [`column_quantiles_sharded`] — the closed
//!   loop: chunked scans feeding a sketch (optionally a sharded worker
//!   pool) in one pass.
//!
//! Everything streams through fixed-size buffers — the working set stays
//! `O(1)` regardless of file size, matching the algorithms it feeds.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod column;
mod csv;
mod ingest;

pub use column::{ColumnScan, ColumnWriter, Reiterable, COLUMN_MAGIC};
pub use csv::{csv_column, CsvColumnScan};
pub use ingest::{
    column_quantiles, column_quantiles_sharded, column_quantiles_sharded_with_metrics,
    column_quantiles_with_metrics, ColumnQuantiles, INGEST_CHUNK,
};
