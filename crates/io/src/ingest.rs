//! Column-scan → sketch ingestion: the disk-resident single pass.
//!
//! These helpers close the loop between the scan layer and the quantile
//! algorithms: a column file is read in fixed-size chunks
//! ([`ColumnScan::read_chunk`]) and fed to a sketch's batched ingestion
//! path, so the working set stays one chunk plus the sketch's `O(b·k)`
//! state regardless of file size. The sharded variant deals the same
//! chunks round-robin to a [`ShardedSketch`] worker pool, overlapping
//! decode with sketch maintenance across cores.

use std::io;
use std::path::Path;

use mrl_core::{EpsilonAudit, OptimizerOptions, UnknownN};
use mrl_obs::MetricsHandle;
use mrl_parallel::{PipelineTelemetry, ShardedSketch};

use crate::column::ColumnScan;

/// Values handed to the sketch per `read_chunk` call — one channel batch
/// in the sharded pipeline, and large enough to amortise per-call costs.
pub const INGEST_CHUNK: usize = 4096;

/// Quantile estimates computed from one pass over a column file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnQuantiles {
    /// Rows consumed from the file.
    pub n: u64,
    /// The estimates, in the order of the requested `phis` (empty when the
    /// file held no rows).
    pub quantiles: Vec<u64>,
}

/// Single pass over the column file at `path`: approximate `phis`-quantiles
/// with the certified `(ε, δ)` guarantee, unknown-`N` (truncated files
/// simply end early).
pub fn column_quantiles<P: AsRef<Path>>(
    path: P,
    epsilon: f64,
    delta: f64,
    phis: &[f64],
    opts: OptimizerOptions,
    seed: u64,
) -> io::Result<ColumnQuantiles> {
    column_quantiles_with_metrics(
        path,
        epsilon,
        delta,
        phis,
        opts,
        seed,
        MetricsHandle::disabled(),
    )
    .map(|(q, _)| q)
}

/// As [`column_quantiles`], publishing engine metrics through `metrics`
/// during the scan and the final ε-audit at its end. Also returns the
/// audit reading directly.
#[allow(clippy::too_many_arguments)]
pub fn column_quantiles_with_metrics<P: AsRef<Path>>(
    path: P,
    epsilon: f64,
    delta: f64,
    phis: &[f64],
    opts: OptimizerOptions,
    seed: u64,
    metrics: MetricsHandle,
) -> io::Result<(ColumnQuantiles, EpsilonAudit)> {
    let mut scan = ColumnScan::open(path)?;
    let mut sketch = UnknownN::<u64>::with_options(epsilon, delta, opts).with_seed(seed);
    sketch.set_metrics(metrics);
    let mut chunk = Vec::with_capacity(INGEST_CHUNK);
    while scan.read_chunk(&mut chunk, INGEST_CHUNK)? > 0 {
        sketch.insert_batch(&chunk);
    }
    let audit = sketch.publish_audit();
    Ok((
        ColumnQuantiles {
            n: sketch.n(),
            quantiles: sketch.query_many(phis).unwrap_or_default(),
        },
        audit,
    ))
}

/// As [`column_quantiles`], with decode and sketch maintenance overlapped:
/// chunks are dealt round-robin to a pool of `shards` sketch workers and
/// the shards' shipments merged by the §6 coordinator protocol.
///
/// # Panics
/// Panics if `shards == 0`.
pub fn column_quantiles_sharded<P: AsRef<Path>>(
    path: P,
    shards: usize,
    epsilon: f64,
    delta: f64,
    phis: &[f64],
    opts: OptimizerOptions,
    seed: u64,
) -> io::Result<ColumnQuantiles> {
    column_quantiles_sharded_with_metrics(
        path,
        shards,
        epsilon,
        delta,
        phis,
        opts,
        seed,
        MetricsHandle::disabled(),
    )
    .map(|(q, _)| q)
}

/// As [`column_quantiles_sharded`], publishing pipeline metrics (per-shard
/// batch latency, queue depths, backpressure stalls) through `metrics`.
/// Also returns the merged pipeline telemetry.
#[allow(clippy::too_many_arguments)]
pub fn column_quantiles_sharded_with_metrics<P: AsRef<Path>>(
    path: P,
    shards: usize,
    epsilon: f64,
    delta: f64,
    phis: &[f64],
    opts: OptimizerOptions,
    seed: u64,
    metrics: MetricsHandle,
) -> io::Result<(ColumnQuantiles, PipelineTelemetry)> {
    let mut scan = ColumnScan::open(path)?;
    let config = mrl_analysis_config(epsilon, delta, opts);
    let mut sketch = ShardedSketch::<u64>::from_config_with_metrics(config, shards, seed, metrics)
        .with_batch_size(INGEST_CHUNK);
    let mut chunk = Vec::with_capacity(INGEST_CHUNK);
    while scan.read_chunk(&mut chunk, INGEST_CHUNK)? > 0 {
        sketch.insert_batch(&chunk);
    }
    let outcome = sketch.finish()?;
    let quantiles = ColumnQuantiles {
        n: outcome.total_n(),
        quantiles: outcome.query_many(phis).unwrap_or_default(),
    };
    Ok((quantiles, outcome.telemetry().clone()))
}

/// Resolve the certified `(ε, δ)` configuration (thin wrapper so the two
/// sharded entry points share one optimizer call site).
fn mrl_analysis_config(
    epsilon: f64,
    delta: f64,
    opts: OptimizerOptions,
) -> mrl_core::UnknownNConfig {
    mrl_core::UnknownN::<u64>::with_options(epsilon, delta, opts)
        .config()
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnWriter;
    use std::path::PathBuf;

    fn fast() -> OptimizerOptions {
        OptimizerOptions::fast()
    }

    fn write_column(tag: &str, values: impl Iterator<Item = u64>) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mrl-ingest-test-{tag}-{}", std::process::id()));
        let mut w = ColumnWriter::create(&p).unwrap();
        w.extend(values).unwrap();
        w.finish().unwrap();
        p
    }

    #[test]
    fn single_pass_matches_the_file() {
        let n = 120_000u64;
        let path = write_column("single", (0..n).map(|i| (i * 2654435761) % n));
        let out = column_quantiles(&path, 0.05, 0.01, &[0.25, 0.5, 0.75], fast(), 7).unwrap();
        assert_eq!(out.n, n);
        for (q, phi) in out.quantiles.iter().zip([0.25, 0.5, 0.75]) {
            assert!(
                (*q as f64 - phi * n as f64).abs() <= 0.05 * n as f64 + 1.0,
                "phi={phi}: {q}"
            );
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sharded_pass_agrees_with_single_within_epsilon() {
        let n = 120_000u64;
        let path = write_column("sharded", (0..n).map(|i| (i * 48271) % n));
        let eps = 0.05;
        let single = column_quantiles(&path, eps, 0.01, &[0.5], fast(), 7).unwrap();
        let sharded = column_quantiles_sharded(&path, 4, eps, 0.01, &[0.5], fast(), 7).unwrap();
        assert_eq!(single.n, n);
        assert_eq!(sharded.n, n);
        // Both carry an ε rank guarantee, so they differ by at most 2ε·n in
        // value on this near-uniform column.
        let (a, b) = (single.quantiles[0] as f64, sharded.quantiles[0] as f64);
        assert!((a - b).abs() <= 2.0 * eps * n as f64 + 2.0, "{a} vs {b}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn metrics_variants_report_audit_and_telemetry() {
        use std::sync::Arc;

        use mrl_obs::InMemoryRecorder;

        let n = 60_000u64;
        let path = write_column("metrics", (0..n).map(|i| (i * 2654435761) % n));

        let rec = Arc::new(InMemoryRecorder::new());
        let (out, audit) = column_quantiles_with_metrics(
            &path,
            0.05,
            0.01,
            &[0.5],
            fast(),
            7,
            MetricsHandle::new(rec.clone()),
        )
        .unwrap();
        assert_eq!(out.n, n);
        assert_eq!(audit.n, n);
        assert!(audit.headroom >= 0.0);
        assert_eq!(
            rec.gauge_value(mrl_core::audit::metrics::HEADROOM),
            Some(audit.headroom)
        );

        let (out, telemetry) = column_quantiles_sharded_with_metrics(
            &path,
            2,
            0.05,
            0.01,
            &[0.5],
            fast(),
            7,
            MetricsHandle::new(Arc::new(InMemoryRecorder::new())),
        )
        .unwrap();
        assert_eq!(out.n, n);
        assert_eq!(telemetry.merged.elements, n);
        assert_eq!(telemetry.per_shard.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_yields_no_quantiles() {
        let path = write_column("empty", std::iter::empty());
        let out = column_quantiles(&path, 0.1, 0.01, &[0.5], fast(), 1).unwrap();
        assert_eq!(out.n, 0);
        assert!(out.quantiles.is_empty());
        let out = column_quantiles_sharded(&path, 2, 0.1, 0.01, &[0.5], fast(), 1).unwrap();
        assert_eq!(out.n, 0);
        assert!(out.quantiles.is_empty());
        std::fs::remove_file(&path).unwrap();
    }
}
