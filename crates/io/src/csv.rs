//! Single-column CSV scanning.
//!
//! Reads one numeric column out of a comma-separated file without
//! materialising rows. Deliberately minimal: no quoting or escaping (the
//! synthetic table exports this repository works with don't use them);
//! malformed cells are counted and skipped rather than aborting the scan —
//! a one-pass aggregation over a billion rows should not die on row
//! 999 999 999.

use std::fs::File;
use std::io::{self, BufRead, BufReader};
use std::path::Path;

/// Streaming scan of one CSV column as `u64`.
#[derive(Debug)]
pub struct CsvColumnScan {
    reader: BufReader<File>,
    column: usize,
    line: String,
    skipped: u64,
    rows: u64,
}

impl CsvColumnScan {
    /// Open `path` and scan column `column` (0-based). When `has_header`
    /// is true the first line is consumed and ignored.
    pub fn open<P: AsRef<Path>>(path: P, column: usize, has_header: bool) -> io::Result<Self> {
        let mut reader = BufReader::new(File::open(path)?);
        if has_header {
            let mut header = String::new();
            reader.read_line(&mut header)?;
        }
        Ok(Self {
            reader,
            column,
            line: String::new(),
            skipped: 0,
            rows: 0,
        })
    }

    /// Read up to `max` values into `out` (cleared first), returning how
    /// many were produced — `0` only at end of input. Feeds sketch batch
    /// ingestion (`insert_batch`) without per-value iterator dispatch in
    /// the caller's loop.
    pub fn read_chunk(&mut self, out: &mut Vec<u64>, max: usize) -> usize {
        out.clear();
        while out.len() < max {
            match self.next() {
                Some(v) => out.push(v),
                None => break,
            }
        }
        out.len()
    }

    /// Cells that failed to parse (or rows missing the column) so far.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Values produced so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }
}

impl Iterator for CsvColumnScan {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        loop {
            self.line.clear();
            match self.reader.read_line(&mut self.line) {
                Ok(0) => return None,
                Ok(_) => {}
                Err(_) => return None,
            }
            let trimmed = self.line.trim_end_matches(['\n', '\r']);
            if trimmed.is_empty() {
                continue;
            }
            match trimmed.split(',').nth(self.column) {
                Some(cell) => match cell.trim().parse::<u64>() {
                    Ok(v) => {
                        self.rows += 1;
                        return Some(v);
                    }
                    Err(_) => {
                        self.skipped += 1;
                        continue;
                    }
                },
                None => {
                    self.skipped += 1;
                    continue;
                }
            }
        }
    }
}

/// Convenience: scan column `column` of `path` (header expected when
/// `has_header`), yielding all parseable values.
pub fn csv_column<P: AsRef<Path>>(
    path: P,
    column: usize,
    has_header: bool,
) -> io::Result<CsvColumnScan> {
    CsvColumnScan::open(path, column, has_header)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::path::PathBuf;

    fn temp_csv(tag: &str, contents: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mrl-io-csv-{tag}-{}.csv", std::process::id()));
        let mut f = File::create(&p).unwrap();
        f.write_all(contents.as_bytes()).unwrap();
        p
    }

    #[test]
    fn scans_the_requested_column() {
        let p = temp_csv(
            "basic",
            "id,amount,region\n1,500,west\n2,1200,east\n3,80,west\n",
        );
        let scan = csv_column(&p, 1, true).unwrap();
        let vals: Vec<u64> = scan.collect();
        assert_eq!(vals, vec![500, 1200, 80]);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn malformed_cells_are_skipped_and_counted() {
        let p = temp_csv("malformed", "a\n10\nnot-a-number\n20\n\n30\n");
        let mut scan = csv_column(&p, 0, true).unwrap();
        let mut vals = Vec::new();
        for v in scan.by_ref() {
            vals.push(v);
        }
        assert_eq!(vals, vec![10, 20, 30]);
        assert_eq!(scan.skipped(), 1);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn missing_column_counts_as_skipped() {
        let p = temp_csv("narrow", "1,2\n3\n4,5\n");
        let mut scan = csv_column(&p, 1, false).unwrap();
        let mut vals = Vec::new();
        for v in scan.by_ref() {
            vals.push(v);
        }
        assert_eq!(vals, vec![2, 5]);
        assert_eq!(scan.skipped(), 1);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn read_chunk_delivers_everything_in_chunks() {
        let contents: String = (0..100u64).map(|i| format!("{i},{}\n", i * 10)).collect();
        let p = temp_csv("chunked", &contents);
        let mut scan = csv_column(&p, 1, false).unwrap();
        let mut buf = Vec::new();
        let mut got = Vec::new();
        loop {
            let n = scan.read_chunk(&mut buf, 7);
            if n == 0 {
                break;
            }
            assert!(n <= 7);
            got.extend_from_slice(&buf);
        }
        assert_eq!(got, (0..100u64).map(|i| i * 10).collect::<Vec<_>>());
        assert_eq!(scan.rows(), 100);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn windows_line_endings() {
        let p = temp_csv("crlf", "x\r\n7\r\n8\r\n");
        let vals: Vec<u64> = csv_column(&p, 0, true).unwrap().collect();
        assert_eq!(vals, vec![7, 8]);
        std::fs::remove_file(&p).unwrap();
    }
}
