//! The disk-resident pipeline end-to-end: generate a table to disk, scan
//! it once through the sketch, and compare against exact quantiles of the
//! same file — the paper's single-pass-over-disk-data setting.

use mrl_core::{OptimizerOptions, UnknownN};
use mrl_exact::rank_error;
use mrl_io::{ColumnScan, ColumnWriter, Reiterable};

fn temp_path(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("mrl-io-pipeline-{tag}-{}", std::process::id()));
    p
}

#[test]
fn single_pass_over_disk_column_meets_guarantee() {
    let path = temp_path("sketch");
    let n = 300_000u64;
    {
        let mut w = ColumnWriter::create(&path).unwrap();
        w.extend((0..n).map(|i| (i * 2654435761) % 1_000_003))
            .unwrap();
        assert_eq!(w.finish().unwrap(), n);
    }

    // One streaming pass: the file never fits in the sketch's memory.
    let mut sketch =
        UnknownN::<u64>::with_options(0.02, 0.01, OptimizerOptions::fast()).with_seed(4);
    for v in ColumnScan::open(&path).unwrap().values() {
        sketch.insert(v);
    }
    assert_eq!(sketch.n(), n);

    // Ground truth from a second (test-only) pass.
    let data: Vec<u64> = ColumnScan::open(&path).unwrap().values().collect();
    for phi in [0.1, 0.5, 0.9] {
        let ans = sketch.query(phi).unwrap();
        assert!(
            rank_error(&data, &ans, phi) <= 0.02,
            "phi={phi} over disk data"
        );
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn two_pass_exact_selection_over_disk() {
    let path = temp_path("twopass");
    let n = 50_000u64;
    {
        let mut w = ColumnWriter::create(&path).unwrap();
        w.extend((0..n).map(|i| (i * 48271) % 99_991)).unwrap();
        w.finish().unwrap();
    }
    let reiter = Reiterable::new(&path);
    let r = n / 2;
    let got = mrl_exact::two_pass_select(|| reiter.scan(), r, 7);
    let mut data: Vec<u64> = reiter.scan().collect();
    data.sort_unstable();
    assert_eq!(got, data[(r - 1) as usize]);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn sketch_memory_stays_flat_while_file_grows() {
    let path = temp_path("flatmem");
    let mut w = ColumnWriter::create(&path).unwrap();
    w.extend(0..400_000u64).unwrap();
    w.finish().unwrap();

    let mut sketch =
        UnknownN::<u64>::with_options(0.05, 0.01, OptimizerOptions::fast()).with_seed(9);
    let bound = sketch.memory_bound_elements();
    for (i, v) in ColumnScan::open(&path).unwrap().values().enumerate() {
        sketch.insert(v);
        if i % 50_000 == 0 {
            assert!(sketch.memory_elements() <= bound);
        }
    }
    assert!(sketch.memory_elements() <= bound);
    std::fs::remove_file(&path).unwrap();
}
