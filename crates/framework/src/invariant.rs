//! Runtime invariant auditor (feature `invariant-audit`).
//!
//! The analysis crate certifies a `(b, k, h)` schedule *offline*: a
//! data-free replay computes the per-k tree-error coefficients `g_pre` /
//! `g_post` and proves `(W + w_max)/2 ≤ g·N/k ≤ ε·N` at every prefix
//! (PAPER.md §4, Lemmas 4–5). With this feature enabled, the engine
//! re-checks that certificate — plus the structural MRL invariants — on the
//! *live* tree after every seal, collapse and finish, turning the offline
//! proof into an always-on oracle for tests and proptests:
//!
//! * **Weight conservation** — the mass visible to `Output` equals the
//!   number of stream elements consumed (finish may round the partial
//!   buffer's tail block up by less than one block).
//! * **Sortedness** — every populated buffer is sorted, except slots whose
//!   seal was deliberately deferred (tracked raw until collapse/query).
//! * **Occupancy legality** — at most `b` allocated slots, full buffers
//!   hold exactly `k` elements, weights are positive, and no buffer sits
//!   above the deepest level the tree has reached.
//! * **Certified error bound** — the live `(W + w_max)/2` never exceeds
//!   the phase's certified coefficient `g · mass/k`, nor `ε · mass`.
//!
//! The auditor is compiled out entirely without the feature; with it, each
//! audit is `O(b·k)` (dominated by the sortedness scan) per seal/collapse —
//! fine for tests, not for production ingestion.

/// The offline-certified error coefficients for one `(b, k, h)` schedule,
/// attached to an engine via
/// [`Engine::set_certified_schedule`](crate::Engine::set_certified_schedule).
///
/// `g_pre` and `g_post` come from
/// `mrl_analysis::simulate::ScheduleScalars` (the data-free replay's
/// per-prefix extrema of `(W + w_max)/(2·mass/k)`); `alpha` and `epsilon`
/// from the certified configuration. The auditor asserts the live tree
/// never exceeds them.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CertifiedSchedule {
    /// Max of `(W + w_max)/(2m)` over pre-onset prefixes, in per-k units.
    pub g_pre: f64,
    /// Max of `(W + w_max)/(2m)` over post-onset prefixes, in per-k units.
    pub g_post: f64,
    /// Certified error split: the deterministic tree gets `α·ε` after
    /// sampling onset, the sampling error `(1−α)·ε`.
    pub alpha: f64,
    /// The target rank-error fraction `ε` the schedule was certified for.
    pub epsilon: f64,
}

impl CertifiedSchedule {
    /// The certified ceiling on the live tree error `(W + w_max)/2` at a
    /// prefix of `mass` weighted units, for the given phase. One extra
    /// rank absorbs the engine's `div_ceil` integer rounding.
    pub fn tree_budget(&self, sampling_started: bool, mass: u64, k: usize) -> f64 {
        let g = if sampling_started {
            self.g_post
        } else {
            self.g_pre
        };
        g * mass as f64 / k as f64 + 1.0
    }

    /// The paper-level ceiling `ε·mass` (plus the same rounding slack):
    /// pre-onset the whole budget is the tree's, post-onset `α·ε ≤ ε`
    /// still bounds it.
    pub fn epsilon_budget(&self, mass: u64) -> f64 {
        self.epsilon * mass as f64 + 1.0
    }
}
