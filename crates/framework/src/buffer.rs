//! Buffers: the unit of storage in the MRL framework.
//!
//! The algorithm manages `b` buffers, each able to hold `k` elements.
//! Buffers are always labelled *empty*, *partial* or *full* (§3), carry a
//! positive integer weight, and — once populated — an integer *level*
//! recording their position in the collapse tree (§3.5–3.6).

use crate::radix::{try_sort_fixed, RadixScratch};

/// Lifecycle label of a buffer (§3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BufferState {
    /// Holds no elements and may be given to `New`.
    Empty,
    /// Holds exactly `k` elements; eligible for `Collapse`.
    Full,
    /// Holds fewer than `k` elements because the stream ran dry mid-`New`.
    /// Participates only in `Output`.
    Partial,
}

/// A weighted, levelled buffer of sorted elements.
///
/// Invariant: when the state is `Full` or `Partial`, `data` is sorted in
/// non-decreasing order. Every element logically stands for `weight`
/// consecutive input elements.
#[derive(Clone, Debug)]
pub struct Buffer<T> {
    data: Vec<T>,
    weight: u64,
    level: u32,
    state: BufferState,
}

impl<T: Ord> Buffer<T> {
    /// A fresh empty buffer with storage reserved for `k` elements.
    // alloc: one reservation per buffer slot, at engine construction or
    // slot recycling (once per fill), never per element.
    pub fn empty(k: usize) -> Self {
        Self {
            data: Vec::with_capacity(k),
            weight: 0,
            level: 0,
            state: BufferState::Empty,
        }
    }

    /// Populate this buffer with `data` (sorted internally), `weight` and
    /// `level`, marking it `Full` if `data.len() == k` and `Partial`
    /// otherwise. Input that is already sorted is detected in `O(k)` and
    /// adopted without the `O(k log k)` sort.
    ///
    /// # Panics
    /// Panics if the buffer is not empty, `data` is empty, `data` exceeds
    /// `k`, or `weight == 0`.
    pub fn populate(&mut self, mut data: Vec<T>, weight: u64, level: u32, k: usize) {
        if !data.is_sorted() {
            data.sort_unstable();
        }
        self.populate_sorted(data, weight, level, k);
    }

    /// As [`Buffer::populate`] for input the caller guarantees is already
    /// sorted (collapse output, run-merged seals, shipped buffers). Skips
    /// even the `O(k)` sortedness check in release builds.
    ///
    /// # Panics
    /// Panics if the buffer is not empty, `data` is empty, `data` exceeds
    /// `k`, or `weight == 0`. Debug builds also assert sortedness.
    pub fn populate_sorted(&mut self, data: Vec<T>, weight: u64, level: u32, k: usize) {
        debug_assert!(data.is_sorted(), "populate_sorted requires sorted data");
        self.populate_raw(data, weight, level, k);
    }

    /// Construct a populated buffer directly from sorted `data` (the §6
    /// shipping path and tests).
    ///
    /// # Panics
    /// As [`Buffer::populate_sorted`].
    pub fn from_sorted(data: Vec<T>, weight: u64, level: u32, k: usize) -> Self {
        let mut buf = Self::empty(0);
        buf.populate_sorted(data, weight, level, k);
        buf
    }

    /// As [`Buffer::populate_sorted`] but without the sortedness contract:
    /// the engine's deferred-seal path parks raw fill data here and tracks
    /// the obligation to [`Buffer::make_sorted`] it before the data is read.
    ///
    /// # Panics
    /// Panics if the buffer is not empty, `data` is empty, `data` exceeds
    /// `k`, or `weight == 0`.
    pub(crate) fn populate_raw(&mut self, data: Vec<T>, weight: u64, level: u32, k: usize) {
        assert_eq!(
            self.state,
            BufferState::Empty,
            "populate requires an empty buffer"
        );
        assert!(
            !data.is_empty(),
            "cannot populate a buffer with no elements"
        );
        assert!(data.len() <= k, "buffer over capacity");
        assert!(weight > 0, "buffer weight must be positive");
        self.state = if data.len() == k {
            BufferState::Full
        } else {
            BufferState::Partial
        };
        self.data = data;
        self.weight = weight;
        self.level = level;
    }

    /// Restore the sorted invariant for data parked by
    /// [`Buffer::populate_raw`], routing through the radix kernel when
    /// the element type is fixed-width (the engine threads its arena's
    /// radix scratch here from every deferred-seal sort site).
    pub(crate) fn make_sorted_with(&mut self, radix: &mut RadixScratch<T>)
    where
        T: 'static,
    {
        if !try_sort_fixed(&mut self.data, radix) {
            self.data.sort_unstable();
        }
    }

    /// Return the buffer to the `Empty` state, retaining its allocation.
    pub fn clear(&mut self) {
        self.data.clear();
        self.weight = 0;
        self.level = 0;
        self.state = BufferState::Empty;
    }

    /// Take the (empty) backing storage out of the buffer, for reuse as
    /// scratch elsewhere. The buffer stays `Empty` and is left with no
    /// reserved capacity; `populate` hands it a vector again.
    ///
    /// # Panics
    /// Panics if the buffer is not empty.
    pub fn take_storage(&mut self) -> Vec<T> {
        assert_eq!(
            self.state,
            BufferState::Empty,
            "take_storage requires an empty buffer"
        );
        std::mem::take(&mut self.data)
    }
}

impl<T> Buffer<T> {
    /// The sorted contents.
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Number of elements currently stored.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when no elements are stored.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The buffer weight `w(X)`: how many input elements each stored element
    /// represents.
    pub fn weight(&self) -> u64 {
        self.weight
    }

    /// The buffer's level in the collapse tree.
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Raise the level (used by collapse policies that promote a lone
    /// lowest-level buffer, §3.6).
    ///
    /// # Panics
    /// Panics if `level` would decrease.
    pub fn promote(&mut self, level: u32) {
        assert!(level >= self.level, "buffer levels never decrease");
        self.level = level;
    }

    /// The lifecycle state.
    pub fn state(&self) -> BufferState {
        self.state
    }

    /// The weighted mass of the buffer: `len · weight`. Saturating —
    /// weight conservation keeps every mass ≤ the stream length, so
    /// saturation only defends against corrupted state.
    pub fn mass(&self) -> u64 {
        (self.data.len() as u64).saturating_mul(self.weight)
    }

    /// Snapshot of the scheduling-relevant metadata.
    pub fn meta(&self, index: usize) -> BufferMeta {
        BufferMeta {
            index,
            weight: self.weight,
            level: self.level,
            state: self.state,
        }
    }
}

/// Metadata describing one buffer to a collapse policy.
///
/// Policies decide *which* buffers to collapse purely from this view, which
/// lets `mrl-analysis` simulate collapse schedules without any data.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BufferMeta {
    /// Position of the buffer in the engine's slot table.
    pub index: usize,
    /// Buffer weight `w(X)`.
    pub weight: u64,
    /// Level in the collapse tree.
    pub level: u32,
    /// Lifecycle state.
    pub state: BufferState,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn populate_sorts_and_labels() {
        let mut b = Buffer::empty(4);
        assert_eq!(b.state(), BufferState::Empty);
        b.populate(vec![3, 1, 2, 4], 2, 1, 4);
        assert_eq!(b.state(), BufferState::Full);
        assert_eq!(b.data(), &[1, 2, 3, 4]);
        assert_eq!(b.weight(), 2);
        assert_eq!(b.level(), 1);
        assert_eq!(b.mass(), 8);
    }

    #[test]
    fn short_fill_is_partial() {
        let mut b = Buffer::empty(4);
        b.populate(vec![5, 2], 8, 3, 4);
        assert_eq!(b.state(), BufferState::Partial);
        assert_eq!(b.len(), 2);
        assert_eq!(b.mass(), 16);
    }

    #[test]
    fn clear_recycles() {
        let mut b = Buffer::empty(2);
        b.populate(vec![1, 2], 1, 0, 2);
        b.clear();
        assert_eq!(b.state(), BufferState::Empty);
        assert!(b.is_empty());
        b.populate(vec![9, 8], 4, 2, 2);
        assert_eq!(b.data(), &[8, 9]);
    }

    #[test]
    fn take_storage_recycles_the_allocation() {
        let mut b = Buffer::empty(4);
        b.populate(vec![4, 3, 2, 1], 1, 0, 4);
        b.clear();
        let storage = b.take_storage();
        assert!(storage.is_empty());
        assert!(storage.capacity() >= 4);
        b.populate(vec![9], 2, 1, 4);
        assert_eq!(b.data(), &[9]);
    }

    #[test]
    #[should_panic(expected = "empty buffer")]
    fn take_storage_of_populated_buffer_panics() {
        let mut b = Buffer::empty(2);
        b.populate(vec![1, 2], 1, 0, 2);
        let _ = b.take_storage();
    }

    #[test]
    fn from_sorted_adopts_without_sorting() {
        let b = Buffer::from_sorted(vec![1, 2, 3, 4], 2, 1, 4);
        assert_eq!(b.state(), BufferState::Full);
        assert_eq!(b.data(), &[1, 2, 3, 4]);
        assert_eq!(b.weight(), 2);
        let p = Buffer::from_sorted(vec![7], 8, 0, 4);
        assert_eq!(p.state(), BufferState::Partial);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "sorted")]
    fn from_sorted_rejects_unsorted_in_debug() {
        let _ = Buffer::from_sorted(vec![3, 1], 1, 0, 4);
    }

    #[test]
    #[should_panic(expected = "empty buffer")]
    fn double_populate_panics() {
        let mut b = Buffer::empty(2);
        b.populate(vec![1, 2], 1, 0, 2);
        b.populate(vec![3, 4], 1, 0, 2);
    }

    #[test]
    #[should_panic(expected = "never decrease")]
    fn demotion_panics() {
        let mut b = Buffer::empty(2);
        b.populate(vec![1, 2], 1, 5, 2);
        b.promote(3);
    }
}
