//! Sorted-run tracking and run merging: the sort-free sealing substrate.
//!
//! `New` (§3.1) fills a buffer from the stream and sorts it. But the fill
//! rarely arrives in random order: collapse output is already sorted,
//! ascending streams are one run, and batched ingestion delivers a small
//! number of sorted segments. [`RunTracker`] records run boundaries as
//! elements are appended (one comparison per element — the same
//! comparison the engine previously spent on its `filler_sorted` flag),
//! and [`merge_sorted_runs`] seals the buffer with a bottom-up merge of
//! the `r` runs in `O(k log r)` instead of `sort_unstable`'s
//! `O(k log k)`. When a fill degenerates into many short runs (uniformly
//! random input), the tracker *saturates*: boundary recording stops, and
//! sealing falls back to `sort_unstable`, which is the optimal tool for
//! that shape — run tracking never costs more than the flag it replaced.
//! For fixed-width key types the saturated fallback now routes through
//! the radix kernel instead (see [`crate::radix`]).

use crate::radix::{try_sort_fixed, RadixScratch};

/// Records the start index of each maximal non-decreasing run in an
/// append-only buffer.
///
/// The tracker holds the invariant `starts[0] == 0`; `starts.len()` is the
/// number of runs once any element has been appended. Tracking stops once
/// the run count exceeds `limit` (the *saturated* state): past that point a
/// run merge would be slower than a plain sort, so exact boundaries no
/// longer matter.
#[derive(Clone, Debug)]
pub struct RunTracker {
    starts: Vec<usize>,
    limit: usize,
}

impl RunTracker {
    /// A tracker that saturates beyond `limit` runs.
    pub fn new(limit: usize) -> Self {
        Self {
            starts: vec![0],
            limit: limit.max(1),
        }
    }

    /// Forget all boundaries (the backing buffer was emptied).
    pub fn reset(&mut self) {
        self.starts.truncate(1);
    }

    /// True while the buffer is a single non-decreasing run (in particular
    /// for an empty buffer).
    pub fn is_single_run(&self) -> bool {
        self.starts.len() == 1
    }

    /// True once more than `limit` boundaries were seen; sealing should
    /// sort rather than merge.
    pub fn is_saturated(&self) -> bool {
        self.starts.len() > self.limit
    }

    /// Run start indices (always begins with 0).
    pub fn starts(&self) -> &[usize] {
        &self.starts
    }

    /// Record that the element at index `at` starts a new run (its
    /// predecessor compared greater). No-op when saturated.
    // alloc: starts grows to at most limit + 1 entries (saturation stops
    // recording), a one-off cost per fill, not per element.
    #[inline]
    pub fn note_boundary(&mut self, at: usize) {
        if !self.is_saturated() {
            self.starts.push(at);
        }
    }

    /// Scan `data[base..]` (just appended in bulk) for run boundaries,
    /// including the boundary between `data[base - 1]` and `data[base]`.
    /// Stops scanning early once saturated.
    // panic-free: the scan starts at max(base, 1), so data[i - 1] is valid
    // for every visited i.
    // alloc: as note_boundary — bounded by the saturation limit.
    pub fn observe_extend<T: Ord>(&mut self, data: &[T], base: usize) {
        let from = base.max(1);
        for i in from..data.len() {
            if self.is_saturated() {
                return;
            }
            if data[i - 1] > data[i] {
                self.starts.push(i);
            }
        }
    }

    /// Rebuild boundaries from scratch for `data` (snapshot restore).
    pub fn rebuild<T: Ord>(&mut self, data: &[T]) {
        self.reset();
        self.observe_extend(data, 0);
    }

    /// Sort `data` in place using whatever structure was tracked: nothing
    /// for a single run, a bottom-up run merge below saturation, and
    /// `sort_unstable` past it. `scratch` holds the merge's ping-pong
    /// buffer and bounds vectors, all of which keep their allocations
    /// across calls — a seal allocates nothing once the scratch is warm.
    pub fn sort_data_with<T: Ord + Clone>(&self, data: &mut Vec<T>, scratch: &mut MergeScratch<T>) {
        if self.is_single_run() {
            return;
        }
        if self.is_saturated() {
            data.sort_unstable();
        } else {
            merge_sorted_runs_with(data, &self.starts, scratch);
        }
    }

    /// As [`sort_data_with`](Self::sort_data_with), additionally routing
    /// the saturated-tracker sort through the radix kernel when the
    /// element type is fixed-width. The engine's seal path threads both
    /// scratches from its arena.
    pub fn sort_data_with_radix<T: Ord + Clone + 'static>(
        &self,
        data: &mut Vec<T>,
        scratch: &mut MergeScratch<T>,
        radix: &mut RadixScratch<T>,
    ) {
        if self.is_single_run() {
            return;
        }
        if self.is_saturated() {
            if !try_sort_fixed(data, radix) {
                data.sort_unstable();
            }
        } else {
            merge_sorted_runs_with(data, &self.starts, scratch);
        }
    }

    /// As [`sort_data_with`](Self::sort_data_with) with only the ping-pong
    /// buffer retained by the caller. Convenience for cold paths (queries,
    /// tests); the engine's seal path threads a full [`MergeScratch`].
    pub fn sort_data<T: Ord + Clone>(&self, data: &mut Vec<T>, scratch: &mut Vec<T>) {
        if self.is_single_run() {
            return;
        }
        if self.is_saturated() {
            data.sort_unstable();
        } else {
            merge_sorted_runs(data, &self.starts, scratch);
        }
    }
}

/// Reusable storage for [`merge_sorted_runs_with`]: the ping-pong element
/// buffer plus the two run-bounds vectors of the bottom-up merge. All
/// three retain capacity across calls, so a warm scratch makes the merge
/// allocation-free.
#[derive(Clone, Debug)]
pub struct MergeScratch<T> {
    buf: Vec<T>,
    bounds: Vec<usize>,
    next_bounds: Vec<usize>,
}

// Manual impl: the derive would demand `T: Default`, which empty vectors
// do not need.
impl<T> Default for MergeScratch<T> {
    fn default() -> Self {
        Self {
            buf: Vec::new(),
            bounds: Vec::new(),
            next_bounds: Vec::new(),
        }
    }
}

/// The saturation limit for a buffer of `k` elements: past this many
/// runs, the bottom-up merge stops beating one `sort_unstable` over the
/// whole buffer. The `seal_crossover` bench group
/// (`crates/bench/benches/collapse.rs`) puts the crossover at r ≈ 4–8
/// for every k from 256 to 4096 — pdqsort's cost is nearly flat in the
/// run count while the merge pays a full pass over the buffer per
/// doubling of r — so the limit is a small constant, not a fraction of
/// k. At r ≤ 4 the merge wins (or ties within noise) in every measured
/// cell; by r = 8 it loses at every k.
pub fn run_merge_limit(_k: usize) -> usize {
    4
}

/// Merge the sorted runs of `data` (delimited by `run_starts`, which must
/// begin with 0) into fully sorted order, in place, using `scratch` as the
/// ping-pong buffer. Bottom-up: each pass merges adjacent run pairs, so
/// `r` runs cost `⌈log₂ r⌉` passes over the data — `O(n log r)` total.
///
/// The merge is stable (ties favour the earlier run), which coincides with
/// any correct sort for the `Ord`-equal elements the engine stores.
// panic-free: bounds is run_starts (ascending indices into data, headed by
// 0) plus data.len(); every range slice below is delimited by adjacent
// bounds entries guarded by the `bi + 2 < bounds.len()` loop conditions.
// alloc: the bounds entries are O(r) per seal (r ≤ saturation limit) and
// stay within the capacity the scratch retains across seals.
pub fn merge_sorted_runs_with<T: Ord + Clone>(
    data: &mut Vec<T>,
    run_starts: &[usize],
    scratch: &mut MergeScratch<T>,
) {
    debug_assert_eq!(run_starts.first(), Some(&0), "runs must start at 0");
    if run_starts.len() <= 1 {
        return;
    }
    let n = data.len();
    // One up-front reservation; otherwise the first pass's pushes grow
    // the ping-pong buffer through a cascade of reallocations.
    let buf = &mut scratch.buf;
    buf.clear();
    buf.reserve(n);
    let bounds = &mut scratch.bounds;
    bounds.clear();
    bounds.extend_from_slice(run_starts);
    bounds.push(n);
    let next_bounds = &mut scratch.next_bounds;
    next_bounds.clear();
    // `data` is always the current source; `buf` receives the pass.
    while bounds.len() > 2 {
        buf.clear();
        next_bounds.clear();
        let mut bi = 0;
        while bi + 2 < bounds.len() {
            next_bounds.push(buf.len());
            crate::kernels::merge_two(
                &data[bounds[bi]..bounds[bi + 1]],
                &data[bounds[bi + 1]..bounds[bi + 2]],
                buf,
            );
            bi += 2;
        }
        if bi + 1 < bounds.len() {
            // Odd run out: carry it to the next pass unchanged.
            next_bounds.push(buf.len());
            buf.extend_from_slice(&data[bounds[bi]..bounds[bi + 1]]);
        }
        next_bounds.push(buf.len());
        std::mem::swap(data, buf);
        std::mem::swap(bounds, next_bounds);
    }
    debug_assert_eq!(data.len(), n);
}

/// As [`merge_sorted_runs_with`] with only the ping-pong buffer retained
/// by the caller; the bounds vectors are rebuilt per call. Convenience
/// for cold paths — the seal path threads a full [`MergeScratch`].
pub fn merge_sorted_runs<T: Ord + Clone>(
    data: &mut Vec<T>,
    run_starts: &[usize],
    scratch: &mut Vec<T>,
) {
    let mut full = MergeScratch {
        buf: std::mem::take(scratch),
        bounds: Vec::new(),
        next_bounds: Vec::new(),
    };
    merge_sorted_runs_with(data, run_starts, &mut full);
    *scratch = full.buf;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn merged(mut data: Vec<u64>, starts: &[usize]) -> Vec<u64> {
        let mut scratch = Vec::new();
        merge_sorted_runs(&mut data, starts, &mut scratch);
        data
    }

    #[test]
    fn merges_two_runs() {
        assert_eq!(
            merged(vec![1, 4, 9, 2, 3, 10], &[0, 3]),
            vec![1, 2, 3, 4, 9, 10]
        );
    }

    #[test]
    fn merges_many_runs_including_odd_counts() {
        for r in 1..9usize {
            let mut data = Vec::new();
            let mut starts = Vec::new();
            for run in 0..r as u64 {
                starts.push(data.len());
                data.extend((0..5u64).map(|i| i * 7 + run));
            }
            let mut expect = data.clone();
            expect.sort_unstable();
            assert_eq!(merged(data, &starts), expect, "r={r}");
        }
    }

    #[test]
    fn single_run_is_untouched() {
        assert_eq!(merged(vec![1, 2, 3], &[0]), vec![1, 2, 3]);
        assert_eq!(merged(vec![], &[0]), Vec::<u64>::new());
    }

    #[test]
    fn tracker_detects_runs_per_push_and_bulk() {
        let mut t = RunTracker::new(16);
        let mut data: Vec<u64> = Vec::new();
        for &v in &[3u64, 5, 5, 2, 9, 1] {
            if data.last().is_some_and(|last| *last > v) {
                t.note_boundary(data.len());
            }
            data.push(v);
        }
        assert_eq!(t.starts(), &[0, 3, 5]);
        assert!(!t.is_single_run());
        let base = data.len();
        data.extend_from_slice(&[4, 6, 0]);
        t.observe_extend(&data, base);
        // The trailing run `1` extends through `4, 6`; only `0` breaks it.
        assert_eq!(t.starts(), &[0, 3, 5, 8]);
        let mut scratch = Vec::new();
        let mut sorted = data.clone();
        t.sort_data(&mut sorted, &mut scratch);
        let mut expect = data;
        expect.sort_unstable();
        assert_eq!(sorted, expect);
    }

    #[test]
    fn tracker_saturates_and_falls_back_to_sort() {
        let mut t = RunTracker::new(2);
        let data: Vec<u64> = vec![9, 8, 7, 6, 5, 4];
        t.observe_extend(&data, 0);
        assert!(t.is_saturated());
        let mut sorted = data.clone();
        let mut scratch = Vec::new();
        t.sort_data(&mut sorted, &mut scratch);
        assert_eq!(sorted, vec![4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn tracker_reset_and_rebuild() {
        let mut t = RunTracker::new(8);
        t.note_boundary(3);
        t.reset();
        assert!(t.is_single_run());
        t.rebuild(&[1u64, 2, 0, 5]);
        assert_eq!(t.starts(), &[0, 2]);
    }

    #[test]
    fn run_merge_limit_is_the_measured_crossover() {
        // Pinned by the seal_crossover bench group: the run merge stops
        // beating sort_unstable past ~4 runs at every measured k.
        for k in [8, 256, 1024, 4096] {
            assert_eq!(run_merge_limit(k), 4);
        }
    }
}
