//! Branchless merge/selection kernels for the collapse hot path.
//!
//! The classic two-pointer merge and the weighted-selection walk both spend
//! most of their time on one unpredictable branch per step: *which source's
//! head merges next*. On uniformly random data that branch is a coin flip,
//! and each mispredict costs more than the comparison itself — in situ the
//! walk runs ~2.5× slower than microbenchmarks (which quietly train the
//! predictor by replaying the same arrays) suggest. The kernels here
//! restate each step so the data-dependent choice becomes a conditional
//! move feeding an unconditional store:
//!
//! * [`merge_two`] — stable branchless merge, 4-wide unrolled main loop;
//! * [`select_two_weighted`] — fused merge + weighted selection over two
//!   sources, emitting via unconditional overwrite (`out[ti] = v; ti +=
//!   hit`) instead of a taken-or-not push branch.
//!
//! Every kernel has a scalar reference twin (`*_scalar`) whose output is
//! bitwise identical; the `scalar-kernels` cargo feature forces the
//! reference implementations everywhere so equivalence proptests and
//! differential debugging can pin down a kernel regression. `std::simd`
//! remains nightly-only, so portable chunking is done with fixed-width
//! manual unrolling, which the compiler autovectorises where profitable.

/// True when the branchless/chunked kernels are in use; false when the
/// `scalar-kernels` feature pins the scalar references.
#[inline]
pub fn chunked_kernels_enabled() -> bool {
    cfg!(not(feature = "scalar-kernels"))
}

/// Width of the unrolled main loops. Eight merge steps touch at most
/// 8 × 8 bytes per source for primitive elements — one cache line — so
/// wider unrolling stops paying while narrower leaves bounds checks in
/// the loop body.
const UNROLL: usize = 8;

/// Stable two-pointer merge of sorted `a` and `b`, appended to `out`:
/// the scalar reference for [`merge_two`].
// panic-free: i < a.len() and j < b.len() guard every index; the tail
// slices use the loop-exit values, which are ≤ the lengths.
// alloc: out is the caller's reserved scratch; pushes stay in capacity.
pub fn merge_two_scalar<T: Ord + Clone>(a: &[T], b: &[T], out: &mut Vec<T>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i].clone());
            i += 1;
        } else {
            out.push(b[j].clone());
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

/// Stable merge of sorted `a` and `b`, appended to `out` (ties favour
/// `a`). Branchless: each step selects the next head with a conditional
/// move and advances both cursors arithmetically, so throughput does not
/// depend on how the inputs interleave. Identical output to
/// [`merge_two_scalar`].
// panic-free: the unrolled loop runs only while both sides have ≥ UNROLL
// unconsumed elements (each step consumes exactly one from either side);
// the remainder loop guards i/j individually, and the tails use the exit
// values.
// alloc: out is the caller's reserved scratch; the up-front reserve keeps
// every push in capacity.
pub fn merge_two<T: Ord + Clone>(a: &[T], b: &[T], out: &mut Vec<T>) {
    use std::hint::select_unpredictable as sel;
    if !chunked_kernels_enabled() {
        return merge_two_scalar(a, b, out);
    }
    out.reserve(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i + UNROLL <= a.len() && j + UNROLL <= b.len() {
        for _ in 0..UNROLL {
            let take_a = a[i] <= b[j];
            out.push(sel(take_a, &a[i], &b[j]).clone());
            i += take_a as usize;
            j += usize::from(!take_a);
        }
    }
    while i < a.len() && j < b.len() {
        let take_a = a[i] <= b[j];
        out.push(sel(take_a, &a[i], &b[j]).clone());
        i += take_a as usize;
        j += usize::from(!take_a);
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

/// True when `targets` is compatible with the single-crossing selection
/// kernels: strictly increasing with consecutive gaps of at least
/// `max_step` (the largest weight any one merge step can add), so each
/// merge step crosses at most one target and the kernels' `ti += hit`
/// emission cannot fall behind. Collapse targets (spacing `w = Σwᵢ`,
/// every step adding some `wᵢ < w`) always qualify.
// panic-free: windows(2) yields exactly-two-element slices, so w[0]/w[1]
// are in bounds; checked_sub rejects non-increasing pairs instead of
// wrapping.
pub fn targets_single_crossing(targets: &[u64], max_step: u64) -> bool {
    targets.first().is_none_or(|&t| t >= 1)
        && targets
            .windows(2)
            .all(|w| w[1].checked_sub(w[0]).is_some_and(|d| d >= max_step))
}

/// Select the elements at 1-indexed weighted positions `targets` of the
/// weighted merge of two sorted sources (`a` with per-element weight `wa`,
/// `b` with `wb`): the fused branchless form of the two-source dense
/// selection walk, with identical output.
///
/// Requires [`targets_single_crossing`]`(targets, wa.max(wb))`; the caller
/// (the dense dispatch in `select_weighted_with`) checks this and falls
/// back to the scalar walk otherwise. `out` is cleared first.
///
/// Each step overwrites `out[ti]` with the current head unconditionally
/// and advances `ti` only when the accumulated mass crossed the next
/// target — the emit decision becomes data flow instead of a mispredicted
/// branch. The overwritten prefix is discarded by the final truncate.
// panic-free: out is resized to targets.len() + 1 up front, and ti grows
// by at most one per step while bounded by targets.len() (the loop
// condition), so out[ti] and targets[ti] stay in range; the exhausted-
// source tail indexes rest[(t - cum - 1) / w], in bounds because every
// remaining target is ≤ the total mass cum + rest.len()·w.
// out is the caller's reused scratch; the resize stays within the
// capacity reserved by earlier collapses after the first.
pub fn select_two_weighted<T: Ord + Clone>(
    a: &[T],
    wa: u64,
    b: &[T],
    wb: u64,
    targets: &[u64],
    out: &mut Vec<T>,
) {
    use std::hint::select_unpredictable as sel;
    debug_assert!(targets_single_crossing(targets, wa.max(wb)));
    out.clear();
    if targets.is_empty() {
        return;
    }
    // Two empty sources cannot carry the ≥ 1 mass the first target
    // demands (targets are ≤ total mass), so the early return only fires
    // on a violated contract — and then emitting nothing beats panicking.
    let Some(seed) = a.first().or(b.first()).cloned() else {
        return;
    };
    // One slot of slack so the unconditional store stays in bounds on the
    // step that crosses the final target.
    out.resize(targets.len() + 1, seed);
    let (mut i, mut j) = (0usize, 0usize);
    let mut cum: u64 = 0;
    let mut ti = 0usize;
    while ti + UNROLL <= targets.len() && i + UNROLL <= a.len() && j + UNROLL <= b.len() {
        for _ in 0..UNROLL {
            let take_a = a[i] <= b[j];
            let v = sel(take_a, &a[i], &b[j]);
            cum += sel(take_a, wa, wb);
            out[ti] = v.clone();
            ti += usize::from(targets[ti] <= cum);
            i += take_a as usize;
            j += usize::from(!take_a);
        }
    }
    while ti < targets.len() && i < a.len() && j < b.len() {
        let take_a = a[i] <= b[j];
        let v = sel(take_a, &a[i], &b[j]);
        cum += sel(take_a, wa, wb);
        out[ti] = v.clone();
        ti += usize::from(targets[ti] <= cum);
        i += take_a as usize;
        j += usize::from(!take_a);
    }
    // One source exhausted (or all targets just hit): the survivor is a
    // single weighted run, so the remaining targets index it directly.
    let (rest, w) = if i < a.len() {
        (&a[i..], wa)
    } else {
        (&b[j..], wb)
    };
    while ti < targets.len() {
        let offset = ((targets[ti] - cum - 1) / w) as usize;
        out[ti] = rest[offset].clone();
        ti += 1;
    }
    out.truncate(targets.len());
}

/// As [`select_two_weighted`] for **evenly spaced** targets `first,
/// first + spacing, …` (`count` of them): the collapse shape, where the
/// spacing is the output weight `w` and `first` the §3.2 phase offset.
///
/// Dropping the target vector removes the `targets[ti]` load from the
/// emission dependency chain — the next-target bound lives in a register
/// and advances by a masked add — and lets the exhausted-source tail run
/// on strength-reduced index increments instead of one division per
/// target. Requires `spacing ≥ wa.max(wb)` and `first ≥ 1` (collapse
/// targets always qualify: spacing `w = Σwᵢ` > each `wᵢ`).
///
/// The main loop takes **two merge steps per iteration, speculatively**:
/// both candidate heads for the second step are loaded before the first
/// step's outcome is known, so every load address depends only on
/// `(i, j)` at block granularity and the second comparison resolves with
/// one conditional move. All data-dependent choices go through
/// [`std::hint::select_unpredictable`] — on a 50/50 merge the plain `if`
/// compiles to a branch that mispredicts every other step, which is the
/// dominant cost of the walk (measured ~5 ns/step branchy vs ~3.6 ns
/// speculative on uniform u64 collapses).
// All indexing happens inside `select_two_spaced_core`, justified
// there; out is the caller's reused scratch (resize only, within
// capacity after the first collapse).
#[allow(clippy::too_many_arguments)]
pub fn select_two_weighted_spaced<T: Ord + Clone>(
    a: &[T],
    wa: u64,
    b: &[T],
    wb: u64,
    first: u64,
    spacing: u64,
    count: usize,
    out: &mut Vec<T>,
) {
    debug_assert!(first >= 1 && spacing >= wa.max(wb));
    out.clear();
    if count == 0 {
        return;
    }
    // Contract (`first` ≤ total mass) guarantees a non-empty source;
    // on violation emit nothing instead of panicking.
    let Some(seed) = a.first().or(b.first()).cloned() else {
        return;
    };
    out.resize(count.saturating_add(1), seed);
    select_two_spaced_core(a, wa, b, wb, 0, first, spacing, count, 0, out);
    out.truncate(count);
}

/// Shared engine of the spaced two-source walks: runs the speculative
/// merge over `a`/`b` starting from accumulated mass `cum`, next target
/// `next_t` and output slot `ti`, into a pre-resized `out` (one slot of
/// slack past `count`). [`select_two_weighted_spaced`] enters it at the
/// origin; [`select_three_weighted_spaced`] enters it mid-walk once its
/// first source is exhausted.
// panic-free: as select_two_weighted_spaced — callers size out to
// count + 1 and pass ti ≤ count; both loops advance ti at most once per
// store under the `ti < count` bound, and the exhausted-source tail's
// running index stays within rest by the mass contract.
#[allow(clippy::too_many_arguments)]
fn select_two_spaced_core<T: Ord + Clone>(
    a: &[T],
    wa: u64,
    b: &[T],
    wb: u64,
    mut cum: u64,
    mut next_t: u64,
    spacing: u64,
    count: usize,
    mut ti: usize,
    out: &mut [T],
) {
    use std::hint::select_unpredictable as sel;
    let (mut i, mut j) = (0usize, 0usize);
    while ti + 2 <= count && i + 2 <= a.len() && j + 2 <= b.len() {
        let a0 = &a[i];
        let a1 = &a[i + 1];
        let b0 = &b[j];
        let b1 = &b[j + 1];
        let t1 = a0 <= b0;
        // Step 2 compares a[i + t1] with b[j + !t1]; both candidate
        // comparisons are computed eagerly, then the real one is picked.
        let t2 = sel(t1, a1 <= b0, a0 <= b1);
        let v1 = sel(t1, a0, b0);
        let w1 = sel(t1, wa, wb);
        let v2 = sel(t2, sel(t1, a1, a0), sel(t1, b0, b1));
        let w2 = sel(t2, wa, wb);
        let cum1 = cum + w1;
        cum = cum1 + w2;
        out[ti] = v1.clone();
        let hit1 = next_t <= cum1;
        ti += hit1 as usize;
        next_t += spacing & (hit1 as u64).wrapping_neg();
        out[ti] = v2.clone();
        let hit2 = next_t <= cum;
        ti += hit2 as usize;
        next_t += spacing & (hit2 as u64).wrapping_neg();
        let taken_a = t1 as usize + t2 as usize;
        i += taken_a;
        j += 2 - taken_a;
    }
    while ti < count && i < a.len() && j < b.len() {
        let take_a = a[i] <= b[j];
        let v = sel(take_a, &a[i], &b[j]);
        cum += sel(take_a, wa, wb);
        out[ti] = v.clone();
        let hit = next_t <= cum;
        ti += hit as usize;
        next_t += spacing & (hit as u64).wrapping_neg();
        i += take_a as usize;
        j += usize::from(!take_a);
    }
    // One source exhausted: the survivor is a single weighted run. The
    // remaining targets advance by a constant `spacing`, so their indices
    // advance by `spacing / w` with a `spacing % w` remainder carry — no
    // per-target division.
    let (rest, w) = if i < a.len() {
        (&a[i..], wa)
    } else {
        (&b[j..], wb)
    };
    if ti < count {
        let dq = (spacing / w) as usize;
        let dr = spacing % w;
        let mut off = ((next_t - cum - 1) / w) as usize;
        let mut rem = (next_t - cum - 1) % w;
        while ti < count {
            out[ti] = rest[off].clone();
            ti += 1;
            rem += dr;
            let carry = rem >= w;
            off += dq + carry as usize;
            rem -= w & (carry as u64).wrapping_neg();
        }
    }
}

/// As [`select_two_weighted_spaced`] for **three** sorted weighted
/// sources: the direct form of the 3-source collapse, which the adaptive
/// policy emits constantly at rate 1 (a parked level-0 pair plus one
/// higher-weight survivor, three distinct weights). The previous route —
/// materialise `(element, weight)` pairs, pair-merge them, then sweep —
/// moved every element through memory twice before selecting; this walk
/// reads each source in place.
///
/// Each step resolves the 3-way minimum with two comparisons through
/// [`std::hint::select_unpredictable`] (a 3-wide tournament mispredicts
/// on random merges just like the 2-way case), then advances exactly one
/// source. Once any source is exhausted the survivors continue on
/// [`select_two_spaced_core`] from the walk's accumulated state.
/// Requires `first ≥ 1` and `spacing ≥ wa.max(wb).max(wc)` (collapse
/// targets qualify: spacing `w = Σwᵢ` > each `wᵢ`).
// panic-free: out is resized to count + 1 up front and ti advances at
// most once per store under the `ti < count` bound; the handoff passes
// the same slack buffer and a ti ≤ count to the two-source core, whose
// own bounds argument then applies. At most one survivor slice can be
// empty, and the core reads an empty slice only through its exhausted-
// source tail guard.
// out is the caller's reused scratch (resize only, within capacity after
// the first collapse).
#[allow(clippy::too_many_arguments)]
pub fn select_three_weighted_spaced<T: Ord + Clone>(
    a: &[T],
    wa: u64,
    b: &[T],
    wb: u64,
    c: &[T],
    wc: u64,
    first: u64,
    spacing: u64,
    count: usize,
    out: &mut Vec<T>,
) {
    use std::hint::select_unpredictable as sel;
    debug_assert!(first >= 1 && spacing >= wa.max(wb).max(wc));
    out.clear();
    if count == 0 {
        return;
    }
    // Contract (`first` ≤ total mass) guarantees a non-empty source;
    // on violation emit nothing instead of panicking.
    let Some(seed) = a.first().or(b.first()).or(c.first()).cloned() else {
        return;
    };
    out.resize(count.saturating_add(1), seed);
    let (mut i, mut j, mut l) = (0usize, 0usize, 0usize);
    let mut cum: u64 = 0;
    let mut ti = 0usize;
    let mut next_t = first;
    while ti < count && i < a.len() && j < b.len() && l < c.len() {
        // All three pairwise comparisons issue independently (no compare
        // feeding another compare's operand), then two select levels pick
        // the minimum — the 3-way analogue of the speculative trick in
        // the two-source walk.
        let ab = a[i] <= b[j];
        let ac = a[i] <= c[l];
        let bc = b[j] <= c[l];
        let take_a = ab & ac;
        let take_b = !ab & bc;
        let v = sel(take_a, &a[i], sel(take_b, &b[j], &c[l]));
        cum += sel(take_a, wa, sel(take_b, wb, wc));
        out[ti] = v.clone();
        let hit = next_t <= cum;
        ti += hit as usize;
        next_t += spacing & (hit as u64).wrapping_neg();
        i += take_a as usize;
        j += take_b as usize;
        l += (!take_a & !take_b) as usize;
    }
    // First exhaustion: hand the two survivors (either may itself be
    // empty only if the mass contract already places every remaining
    // target in the other) to the two-source core, resuming at the
    // current mass and target.
    if i >= a.len() {
        select_two_spaced_core(
            &b[j..],
            wb,
            &c[l..],
            wc,
            cum,
            next_t,
            spacing,
            count,
            ti,
            out,
        );
    } else if j >= b.len() {
        select_two_spaced_core(
            &a[i..],
            wa,
            &c[l..],
            wc,
            cum,
            next_t,
            spacing,
            count,
            ti,
            out,
        );
    } else {
        select_two_spaced_core(
            &a[i..],
            wa,
            &b[j..],
            wb,
            cum,
            next_t,
            spacing,
            count,
            ti,
            out,
        );
    }
    out.truncate(count);
}

/// Select the elements at 1-indexed weighted positions `targets` of an
/// already merged sequence of `(element, weight)` pairs, under the same
/// single-crossing contract as [`select_two_weighted`]. This is the final
/// pass of the ≥ 3-source dense path: the sources are first pair-merged
/// into one weighted run (`merge_sorted_runs` over `(T, u64)` tuples),
/// then selected in one branchless sweep here.
// panic-free: as select_two_weighted — out holds targets.len() + 1 slots,
// ti advances at most once per pair and the loop stops at targets.len().
// out is the caller's reused scratch (resize only, within capacity after
// the first collapse).
pub fn select_merged_weighted<T: Ord + Clone>(
    pairs: &[(T, u64)],
    targets: &[u64],
    out: &mut Vec<T>,
) {
    out.clear();
    if targets.is_empty() {
        return;
    }
    let seed = match pairs.first() {
        Some((v, _)) => v.clone(),
        // Contract: targets ≤ total mass, so a non-empty target set
        // implies a non-empty merge.
        None => {
            assert!(
                targets.is_empty(),
                "ran out of mass before all targets were selected"
            );
            return;
        }
    };
    out.resize(targets.len() + 1, seed);
    let mut cum: u64 = 0;
    let mut ti = 0usize;
    let mut pi = 0usize;
    while ti + UNROLL <= targets.len() && pi + UNROLL <= pairs.len() {
        for _ in 0..UNROLL {
            let (v, w) = &pairs[pi];
            cum += w;
            out[ti] = v.clone();
            ti += usize::from(targets[ti] <= cum);
            pi += 1;
        }
    }
    while ti < targets.len() && pi < pairs.len() {
        let (v, w) = &pairs[pi];
        cum += w;
        out[ti] = v.clone();
        ti += usize::from(targets[ti] <= cum);
        pi += 1;
    }
    assert!(
        ti == targets.len(),
        "ran out of mass before all targets were selected"
    );
    out.truncate(targets.len());
}

/// As [`select_merged_weighted`] for evenly spaced targets `first,
/// first + spacing, …` (`count` of them) — the ≥ 3-source collapse shape.
/// The next-target bound advances by a masked register add instead of a
/// `targets[ti]` load on the emission chain.
// panic-free: as select_merged_weighted — out holds count + 1 slots and
// ti advances at most once per pair while bounded by count.
// out is the caller's reused scratch (resize only, within capacity after
// the first collapse).
pub fn select_merged_weighted_spaced<T: Ord + Clone>(
    pairs: &[(T, u64)],
    first: u64,
    spacing: u64,
    count: usize,
    out: &mut Vec<T>,
) {
    debug_assert!(first >= 1);
    out.clear();
    if count == 0 {
        return;
    }
    let seed = match pairs.first() {
        Some((v, _)) => v.clone(),
        // Contract: targets ≤ total mass, so a non-empty target set
        // implies a non-empty merge.
        None => {
            assert!(
                count == 0,
                "ran out of mass before all targets were selected"
            );
            return;
        }
    };
    out.resize(count.saturating_add(1), seed);
    let mut cum: u64 = 0;
    let mut ti = 0usize;
    let mut pi = 0usize;
    let mut next_t = first;
    while ti + UNROLL <= count && pi + UNROLL <= pairs.len() {
        for _ in 0..UNROLL {
            let (v, w) = &pairs[pi];
            cum += w;
            out[ti] = v.clone();
            let hit = next_t <= cum;
            ti += hit as usize;
            next_t += spacing & (hit as u64).wrapping_neg();
            pi += 1;
        }
    }
    while ti < count && pi < pairs.len() {
        let (v, w) = &pairs[pi];
        cum += w;
        out[ti] = v.clone();
        let hit = next_t <= cum;
        ti += hit as usize;
        next_t += spacing & (hit as u64).wrapping_neg();
        pi += 1;
    }
    assert!(
        ti == count,
        "ran out of mass before all targets were selected"
    );
    out.truncate(count);
}

/// Minimum and maximum of `data` in one pass: the scalar reference for
/// [`slice_min_max`].
pub fn slice_min_max_scalar<T: Ord + Clone>(data: &[T]) -> Option<(T, T)> {
    let (first, rest) = data.split_first()?;
    let mut lo = first.clone();
    let mut hi = first.clone();
    for x in rest {
        if *x < lo {
            lo = x.clone();
        }
        if *x > hi {
            hi = x.clone();
        }
    }
    Some((lo, hi))
}

/// Minimum and maximum of `data` in one chunked pass: eight independent
/// accumulator lanes over `chunks_exact(UNROLL)` blocks, reduced at the
/// end. Splitting the running min/max across lanes breaks the
/// loop-carried dependency on a single accumulator, and for primitive
/// element types the lane updates compile to vector min/max (the
/// `min_max_u64`/`min_max_u32` instantiations are asm-checked in CI).
/// Identical result to [`slice_min_max_scalar`]; `ExtremeValue` uses it
/// to screen whole batches against the heap thresholds before touching
/// the heaps.
pub fn slice_min_max<T: Ord + Clone>(data: &[T]) -> Option<(T, T)> {
    if !chunked_kernels_enabled() || data.len() < UNROLL * 2 {
        return slice_min_max_scalar(data);
    }
    let (first, rest) = data.split_first()?;
    let mut lo: [T; UNROLL] = std::array::from_fn(|_| first.clone());
    let mut hi: [T; UNROLL] = std::array::from_fn(|_| first.clone());
    let mut chunks = rest.chunks_exact(UNROLL);
    for c in chunks.by_ref() {
        for (slot, x) in lo.iter_mut().zip(c) {
            *slot = x.clone().min(slot.clone());
        }
        for (slot, x) in hi.iter_mut().zip(c) {
            *slot = x.clone().max(slot.clone());
        }
    }
    let mut best_lo = first.clone();
    let mut best_hi = first.clone();
    for x in chunks.remainder().iter().chain(lo.iter()).chain(hi.iter()) {
        if *x < best_lo {
            best_lo = x.clone();
        }
        if *x > best_hi {
            best_hi = x.clone();
        }
    }
    Some((best_lo, best_hi))
}

/// Concrete `u64` instantiation of [`slice_min_max`], exported so the CI
/// asm smoke check has a symbol whose codegen it can inspect for vector
/// min/max patterns.
pub fn min_max_u64(data: &[u64]) -> Option<(u64, u64)> {
    slice_min_max(data)
}

/// Concrete `u32` instantiation of [`slice_min_max`] for the CI asm
/// smoke check (`vpminud`/`vpmaxud` exist from SSE4.1/AVX2, making the
/// 32-bit lane pattern the easiest vectorisation witness).
pub fn min_max_u32(data: &[u32]) -> Option<(u32, u32)> {
    slice_min_max(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn merged_ref(a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut out = Vec::new();
        merge_two_scalar(a, b, &mut out);
        out
    }

    #[test]
    fn branchless_merge_matches_scalar_on_adversarial_shapes() {
        let shapes: Vec<(Vec<u64>, Vec<u64>)> = vec![
            (vec![], vec![]),
            (vec![1], vec![]),
            (vec![], vec![2]),
            ((0..100).collect(), (50..150).collect()),
            (vec![5; 40], vec![5; 17]),
            (
                (0..64).map(|i| i * 2).collect(),
                (0..64).map(|i| i * 2 + 1).collect(),
            ),
            ((0..31).collect(), (100..131).collect()),
            ((100..131).collect(), (0..31).collect()),
        ];
        for (a, b) in shapes {
            let mut out = Vec::new();
            merge_two(&a, &b, &mut out);
            assert_eq!(out, merged_ref(&a, &b), "a={a:?} b={b:?}");
        }
    }

    #[test]
    fn merge_is_stable_for_tied_keys() {
        // Tuples ordered by the first field only would need Ord overrides;
        // instead check stability with (key, tag) pairs whose Ord is
        // lexicographic but where all ties share a key prefix.
        let a = vec![(5u64, 0u8), (5, 1)];
        let b = vec![(5u64, 2u8)];
        let mut out = Vec::new();
        merge_two(&a, &b, &mut out);
        // a's elements sort before b's tied element here because the tag
        // participates in Ord; what matters is agreement with the scalar.
        let mut reference = Vec::new();
        merge_two_scalar(&a, &b, &mut reference);
        assert_eq!(out, reference);
    }

    #[test]
    fn single_crossing_check() {
        assert!(targets_single_crossing(&[2, 6, 10], 4));
        assert!(!targets_single_crossing(&[2, 5, 10], 4));
        assert!(!targets_single_crossing(&[0, 4], 4));
        assert!(targets_single_crossing(&[], 9));
        assert!(targets_single_crossing(&[7], 100));
    }

    #[test]
    fn select_two_matches_walk_on_skewed_weights() {
        let a: Vec<u64> = (0..64).map(|i| i * 3).collect();
        let b: Vec<u64> = (0..64).map(|i| i * 5 + 1).collect();
        for (wa, wb) in [(1u64, 1u64), (7, 1), (1, 7), (1000, 3)] {
            let w = wa + wb;
            let targets: Vec<u64> = (0..64u64).map(|j| j * (64 * w / 64) + w / 2 + 1).collect();
            assert!(targets_single_crossing(&targets, wa.max(wb)));
            let mut out = Vec::new();
            select_two_weighted(&a, wa, &b, wb, &targets, &mut out);
            let sources = [
                crate::merge::WeightedSource::new(&a, wa),
                crate::merge::WeightedSource::new(&b, wb),
            ];
            let reference = crate::merge::select_weighted(&sources, &targets);
            assert_eq!(out, reference, "wa={wa} wb={wb}");
        }
    }

    #[test]
    fn spaced_select_matches_target_vector_kernels() {
        // Collapse-shaped progressions: spacing = total weight, varying
        // phase offsets, sources of unequal length so one exhausts early
        // and the strength-reduced tail runs.
        let a: Vec<u64> = (0..96).map(|i| i * 7 % 251).collect();
        let b: Vec<u64> = (0..32).map(|i| i * 11 % 251).collect();
        let mut a = a;
        let mut b = b;
        a.sort_unstable();
        b.sort_unstable();
        for (wa, wb) in [(1u64, 1u64), (3, 1), (1, 3), (4, 2)] {
            let spacing = wa + wb;
            let mass = wa * a.len() as u64 + wb * b.len() as u64;
            for first in [spacing / 2 + 1, spacing.div_ceil(2), 1, spacing] {
                let count = ((mass - first) / spacing + 1) as usize;
                let targets: Vec<u64> = (0..count as u64).map(|j| first + j * spacing).collect();
                assert!(targets_single_crossing(&targets, wa.max(wb)));
                let mut reference = Vec::new();
                select_two_weighted(&a, wa, &b, wb, &targets, &mut reference);
                let mut out = Vec::new();
                select_two_weighted_spaced(&a, wa, &b, wb, first, spacing, count, &mut out);
                assert_eq!(out, reference, "two-source wa={wa} wb={wb} first={first}");

                let mut pairs: Vec<(u64, u64)> = a
                    .iter()
                    .map(|&v| (v, wa))
                    .chain(b.iter().map(|&v| (v, wb)))
                    .collect();
                pairs.sort_by_key(|&(v, _)| v);
                let mut merged_ref = Vec::new();
                select_merged_weighted(&pairs, &targets, &mut merged_ref);
                let mut merged_out = Vec::new();
                select_merged_weighted_spaced(&pairs, first, spacing, count, &mut merged_out);
                assert_eq!(
                    merged_out, merged_ref,
                    "merged wa={wa} wb={wb} first={first}"
                );
            }
        }
    }

    #[test]
    fn spaced_select_empty_and_single() {
        let mut out = vec![99u64];
        select_two_weighted_spaced(&[1u64, 2], 1, &[3u64], 1, 1, 2, 0, &mut out);
        assert!(out.is_empty());
        select_two_weighted_spaced(&[5u64], 3, &[], 1, 2, 3, 1, &mut out);
        assert_eq!(out, vec![5]);
        select_merged_weighted_spaced(&[(7u64, 4u64)], 4, 4, 1, &mut out);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn min_max_matches_scalar_on_all_lengths() {
        for n in 0..64usize {
            let v: Vec<u64> = (0..n as u64).map(|i| (i * 2654435761) % 97).collect();
            assert_eq!(slice_min_max(&v), slice_min_max_scalar(&v), "n={n}");
            if n > 0 {
                let expect = (*v.iter().min().unwrap_or(&0), *v.iter().max().unwrap_or(&0));
                assert_eq!(slice_min_max(&v), Some(expect));
            }
        }
        assert_eq!(slice_min_max::<u64>(&[]), None);
        assert_eq!(min_max_u64(&[9, 2, 7]), Some((2, 9)));
        assert_eq!(min_max_u32(&[5]), Some((5, 5)));
        // Non-Copy element type exercises the clone-based lanes.
        let words: Vec<String> = ["pear", "apple", "quince", "fig", "kiwi"]
            .iter()
            .cycle()
            .take(40)
            .map(|s| s.to_string())
            .collect();
        assert_eq!(
            slice_min_max(&words),
            Some(("apple".to_string(), "quince".to_string()))
        );
    }

    #[test]
    fn select_merged_matches_brute_force() {
        let pairs: Vec<(u64, u64)> = vec![(1, 3), (2, 1), (4, 5), (9, 2), (9, 2)];
        let mass: u64 = pairs.iter().map(|(_, w)| w).sum();
        let mut flat = Vec::new();
        for (v, w) in &pairs {
            for _ in 0..*w {
                flat.push(*v);
            }
        }
        let targets: Vec<u64> = vec![1, 7, mass];
        assert!(targets_single_crossing(&targets, 5));
        let mut out = Vec::new();
        select_merged_weighted(&pairs, &targets, &mut out);
        let reference: Vec<u64> = targets.iter().map(|&t| flat[(t - 1) as usize]).collect();
        assert_eq!(out, reference);
    }
}
