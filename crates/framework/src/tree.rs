//! Optional recording of the collapse tree (§3.5).
//!
//! The paper visualises algorithms as trees whose vertices are the logical
//! buffers produced during a run (Figures 2 and 3). [`TreeRecorder`]
//! reconstructs that tree from a live engine so the `tree_shapes` experiment
//! binary can render it, and so tests can verify structural properties
//! (weights of internal nodes equal the sum of their children's, leaf counts
//! per level match the paper's formulas, ...).

/// What produced a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// Populated from the stream by `New`.
    Leaf,
    /// Output of a `Collapse`.
    Collapse,
}

/// One logical buffer in the tree.
#[derive(Clone, Debug)]
pub struct TreeNode {
    /// Buffer weight.
    pub weight: u64,
    /// Buffer level.
    pub level: u32,
    /// Children (indices into the recorder's node table); empty for leaves.
    pub children: Vec<usize>,
    /// Leaf or collapse output.
    pub kind: NodeKind,
}

/// Records every logical buffer created during a run.
#[derive(Clone, Debug, Default)]
pub struct TreeRecorder {
    nodes: Vec<TreeNode>,
}

impl TreeRecorder {
    /// Create an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a leaf; returns its node id.
    // alloc: one node per completed buffer — once per k-element fill, not
    // per element.
    pub fn add_leaf(&mut self, weight: u64, level: u32) -> usize {
        self.nodes.push(TreeNode {
            weight,
            level,
            children: Vec::new(),
            kind: NodeKind::Leaf,
        });
        self.nodes.len() - 1
    }

    /// Record a collapse output over `children`; returns its node id.
    // alloc: one node per collapse — amortised over the fills that filled
    // the collapsed buffers.
    pub fn add_collapse(&mut self, weight: u64, level: u32, children: Vec<usize>) -> usize {
        debug_assert!(children.iter().all(|&c| c < self.nodes.len()));
        self.nodes.push(TreeNode {
            weight,
            level,
            children,
            kind: NodeKind::Collapse,
        });
        self.nodes.len() - 1
    }

    /// All recorded nodes, in creation order.
    pub fn nodes(&self) -> &[TreeNode] {
        &self.nodes
    }

    /// Number of leaves recorded.
    pub fn leaf_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Leaf)
            .count()
    }

    /// Render the subtrees rooted at `roots` as indented ASCII, one line per
    /// node, labelled with weight and level (the format of Figures 2–3).
    pub fn render(&self, roots: &[usize]) -> String {
        let mut out = String::new();
        for &r in roots {
            self.render_node(r, 0, &mut out);
        }
        out
    }

    fn render_node(&self, id: usize, depth: usize, out: &mut String) {
        let n = &self.nodes[id];
        let kind = match n.kind {
            NodeKind::Leaf => "leaf",
            NodeKind::Collapse => "collapse",
        };
        out.push_str(&format!(
            "{:indent$}[w={} L{} {}]\n",
            "",
            n.weight,
            n.level,
            kind,
            indent = depth * 2
        ));
        for &c in &n.children {
            self.render_node(c, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_renders() {
        let mut t = TreeRecorder::new();
        let a = t.add_leaf(1, 0);
        let b = t.add_leaf(1, 0);
        let c = t.add_collapse(2, 1, vec![a, b]);
        assert_eq!(t.leaf_count(), 2);
        assert_eq!(t.nodes()[c].weight, 2);
        let s = t.render(&[c]);
        assert!(s.contains("[w=2 L1 collapse]"));
        assert!(s.contains("  [w=1 L0 leaf]"));
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    fn weights_of_internal_nodes_sum_children() {
        let mut t = TreeRecorder::new();
        let leaves: Vec<usize> = (0..3).map(|_| t.add_leaf(2, 1)).collect();
        let c = t.add_collapse(6, 2, leaves.clone());
        let sum: u64 = leaves.iter().map(|&l| t.nodes()[l].weight).sum();
        assert_eq!(t.nodes()[c].weight, sum);
    }
}
