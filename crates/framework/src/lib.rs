//! The buffer/collapse framework of Manku, Rajagopalan and Lindsay.
//!
//! This crate implements the deterministic substrate that the MRL99 paper
//! (*Random Sampling Techniques for Space Efficient Online Computation of
//! Order Statistics of Large Datasets*, SIGMOD 1999) builds on — the general
//! framework introduced in the authors' earlier MRL98 paper:
//!
//! * [`Buffer`]: `b` buffers of `k` elements each, labelled empty, partial or
//!   full, with a positive integer *weight* per buffer.
//! * The three operations algorithms are composed from (§3): **New** (fill an
//!   empty buffer from the stream, sampling one element per block of `r`),
//!   **Collapse** (merge `c` full buffers into one, keeping `k` equally
//!   spaced elements of the weighted merge), and **Output** (weighted
//!   selection across the remaining buffers).
//! * [`policy`]: pluggable collapse policies — the MRL99 adaptive
//!   lowest-level policy (§3.6), Munro–Paterson, and Alsabti–Ranka–Singh —
//!   operating purely on buffer *metadata* so the analysis crate can simulate
//!   schedules without data.
//! * [`schedule`]: sampling-rate schedules — the MRL99 non-uniform schedule
//!   (§3.7: rate doubles each time the tree grows past height `h`) and a
//!   fixed-rate schedule for the known-`N` algorithms.
//! * [`Engine`]: the streaming composition of all of the above, with exact
//!   tree accounting ([`TreeStats`]) for the paper's Lemmas 4 and 5.
//!
//! End-user algorithms (`UnknownN`, `KnownN`, extreme values, histograms)
//! live in the `mrl-core` crate; this crate is the reusable machinery.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod arena;
mod buffer;
pub mod cdf;
pub mod engine;
#[cfg(feature = "invariant-audit")]
pub mod invariant;
pub mod kernels;
mod merge;
pub mod policy;
pub mod radix;
mod runs;
pub mod schedule;
mod snapshot;
pub mod spine;
mod stats;
mod tree;
mod types;

pub use arena::ScratchArena;
pub use buffer::{Buffer, BufferMeta, BufferState};
pub use cdf::CdfPoint;
pub use engine::{Engine, EngineConfig};
#[cfg(feature = "invariant-audit")]
pub use invariant::CertifiedSchedule;
pub use kernels::{slice_min_max, slice_min_max_scalar};
pub use merge::{
    collapse_targets, output_position, select_weighted, select_weighted_into, select_weighted_with,
    total_mass, SelectScratch, WeightedSource,
};
pub use policy::{
    AdaptiveLowestLevel, AlsabtiRankaSingh, CollapseDecision, CollapsePolicy, MunroPaterson,
};
pub use radix::{
    sort_fixed, try_sort_fixed, FixedWidthKey, RadixScratch, RADIX_MAX_LEN, RADIX_MIN_LEN,
};
pub use runs::{
    merge_sorted_runs, merge_sorted_runs_with, run_merge_limit, MergeScratch, RunTracker,
};
pub use schedule::{FixedRate, LeafCountSchedule, Mrl99Schedule, RateSchedule};
pub use snapshot::{BufferSnapshot, EngineSnapshot};
pub use spine::QuerySpine;
pub use stats::TreeStats;
pub use tree::{TreeNode, TreeRecorder};
pub use types::OrderedF64;
