//! Collapse policies: which full buffers to collapse when space runs out.
//!
//! The MRL framework composes algorithms from `New`/`Collapse`/`Output`; the
//! *collapse policy* is what distinguishes the algorithms the paper discusses
//! (§2.1, §3.6):
//!
//! * [`AdaptiveLowestLevel`] — MRL99 §3.6: collapse **all** buffers at the
//!   lowest occupied level, promoting a lone lowest buffer first. This is the
//!   policy the paper's analysis (leaf counts `L_d`, `L_s`) assumes.
//! * [`MunroPaterson`] — binary collapses of two equal-level buffers
//!   (`β = 2` in §4.4), the classic \[MP80\] scheme.
//! * [`AlsabtiRankaSingh`] — collapse everything at once (\[ARS97\]), a flat
//!   tree that trades accuracy for minimal bookkeeping.
//!
//! Policies see only [`BufferMeta`], never data, so the `mrl-analysis` crate
//! can replay schedules symbolically.

use crate::buffer::{BufferMeta, BufferState};

/// What the engine should do when it must reclaim a buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CollapseDecision {
    /// `(slot index, new level)` promotions to apply before collapsing.
    pub promotions: Vec<(usize, u32)>,
    /// Slot indices (≥ 2) of the full buffers to collapse, all at the same
    /// level after promotions.
    pub collapse: Vec<usize>,
    /// Level assigned to the collapse output.
    pub output_level: u32,
}

impl CollapseDecision {
    /// Reset to an empty decision, keeping both vectors' capacity.
    pub fn clear(&mut self) {
        self.promotions.clear();
        self.collapse.clear();
        self.output_level = 0;
    }
}

/// A rule choosing which full buffers to collapse.
///
/// Implementations must be deterministic functions of the metadata so that
/// data-free schedule simulation reproduces real executions exactly.
pub trait CollapsePolicy {
    /// Human-readable policy name (used in reports and benches).
    fn name(&self) -> &'static str;

    /// Decide a collapse given the metadata of **all full buffers**
    /// (`metas` is non-empty and contains only `Full` entries), writing
    /// the result into `out` (cleared first). The engine threads one
    /// reused [`CollapseDecision`] through every collapse so the steady
    /// state decides without allocating; `out`'s vectors may also be used
    /// as working space before the final content is in place.
    fn choose_into(&self, metas: &[BufferMeta], out: &mut CollapseDecision);

    /// As [`choose_into`](Self::choose_into), returning a fresh decision.
    /// Convenience for tests and one-shot analysis; steady-state callers
    /// should reuse a decision via `choose_into`.
    fn choose(&self, metas: &[BufferMeta]) -> CollapseDecision {
        let mut out = CollapseDecision::default();
        self.choose_into(metas, &mut out);
        out
    }
}

/// Shared helper: the lowest level among full buffers and the next-lowest
/// occupied level (if any), with the slots at the lowest level written
/// into `at_lowest` (cleared first).
// panic-free: callers pass a non-empty `metas` (CollapsePolicy::choose
// contract, debug_asserted below), so min() is Some.
fn level_profile(metas: &[BufferMeta], at_lowest: &mut Vec<usize>) -> (u32, Option<u32>) {
    debug_assert!(!metas.is_empty());
    debug_assert!(metas.iter().all(|m| m.state == BufferState::Full));
    let lowest = metas.iter().map(|m| m.level).min().expect("nonempty");
    at_lowest.clear();
    at_lowest.extend(metas.iter().filter(|m| m.level == lowest).map(|m| m.index));
    let next = metas.iter().map(|m| m.level).filter(|&l| l > lowest).min();
    (lowest, next)
}

/// MRL99 §3.6: collapse the entire set of buffers at the lowest occupied
/// level; if that set is a singleton, promote it to the next occupied level
/// first (and keep promoting until at least two buffers share the lowest
/// level).
#[derive(Clone, Copy, Debug, Default)]
pub struct AdaptiveLowestLevel;

impl CollapsePolicy for AdaptiveLowestLevel {
    fn name(&self) -> &'static str {
        "adaptive-lowest-level"
    }

    // panic-free: the len >= 2 entry assert is the documented contract;
    // with out.collapse.len() == 1 a second level must exist (`next` is
    // Some) and out.collapse[0] exists because `lowest` came from the same
    // metas.
    // alloc: `out` is the engine's reused decision scratch; its vectors are
    // bounded by the buffer count, so every push reuses capacity after the
    // first few collapses.
    fn choose_into(&self, metas: &[BufferMeta], out: &mut CollapseDecision) {
        assert!(metas.len() >= 2, "collapse needs at least two full buffers");
        out.clear();
        let (lowest, next) = level_profile(metas, &mut out.collapse);
        if out.collapse.len() >= 2 {
            out.output_level = lowest + 1;
            return;
        }
        // Lone buffer at the lowest level: promote it to the next occupied
        // level, where it joins at least one other buffer.
        let target = next.expect("metas.len() >= 2 so another level exists");
        let lone = out.collapse[0];
        out.collapse.clear();
        out.collapse
            .extend(metas.iter().filter(|m| m.level == target).map(|m| m.index));
        out.collapse.push(lone);
        out.collapse.sort_unstable();
        out.promotions.push((lone, target));
        out.output_level = target + 1;
    }
}

/// Munro–Paterson \[MP80\]: binary collapses. Pick the lowest level holding at
/// least two buffers and collapse exactly two of them; if every level is a
/// singleton, promote the lowest buffer to the next occupied level first.
#[derive(Clone, Copy, Debug, Default)]
pub struct MunroPaterson;

impl CollapsePolicy for MunroPaterson {
    fn name(&self) -> &'static str {
        "munro-paterson"
    }

    // panic-free: the len >= 2 entry assert is the documented contract;
    // windows(2) yields exactly-two-element slices, and by_level[0]/[1]
    // exist because by_level.len() == metas.len() >= 2.
    // alloc: `out` is the engine's reused decision scratch; its vectors are
    // bounded by the buffer count, so every push reuses capacity after the
    // first few collapses.
    fn choose_into(&self, metas: &[BufferMeta], out: &mut CollapseDecision) {
        assert!(metas.len() >= 2, "collapse needs at least two full buffers");
        out.clear();
        // Lowest level with >= 2 buffers, if any. out.promotions doubles
        // as the (index, level) sort scratch — it is cleared again before
        // the real promotion (if any) is recorded.
        let by_level = &mut out.promotions;
        by_level.extend(metas.iter().map(|m| (m.index, m.level)));
        by_level.sort_unstable_by_key(|&(i, l)| (l, i));
        for w in by_level.windows(2) {
            if w[0].1 == w[1].1 {
                let (pair_a, pair_b, level) = (w[0].0, w[1].0, w[0].1);
                out.collapse.push(pair_a);
                out.collapse.push(pair_b);
                out.output_level = level + 1;
                out.promotions.clear();
                return;
            }
        }
        // All distinct: promote the lowest to the second-lowest and collapse
        // that pair.
        let (lowest_idx, lowest_level) = by_level[0];
        let (partner_idx, target_level) = by_level[1];
        debug_assert!(target_level > lowest_level);
        out.collapse.push(lowest_idx.min(partner_idx));
        out.collapse.push(lowest_idx.max(partner_idx));
        out.promotions.clear();
        out.promotions.push((lowest_idx, target_level));
        out.output_level = target_level + 1;
    }
}

/// Alsabti–Ranka–Singh \[ARS97\]: collapse **all** full buffers into one,
/// regardless of level. Produces a flat, high-degree tree.
#[derive(Clone, Copy, Debug, Default)]
pub struct AlsabtiRankaSingh;

impl CollapsePolicy for AlsabtiRankaSingh {
    fn name(&self) -> &'static str {
        "alsabti-ranka-singh"
    }

    // panic-free: the len >= 2 entry assert is the documented contract, so
    // max() over metas is Some.
    fn choose_into(&self, metas: &[BufferMeta], out: &mut CollapseDecision) {
        assert!(metas.len() >= 2, "collapse needs at least two full buffers");
        out.clear();
        let max_level = metas.iter().map(|m| m.level).max().expect("nonempty");
        out.collapse.extend(metas.iter().map(|m| m.index));
        out.collapse.sort_unstable();
        out.output_level = max_level + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(index: usize, weight: u64, level: u32) -> BufferMeta {
        BufferMeta {
            index,
            weight,
            level,
            state: BufferState::Full,
        }
    }

    #[test]
    fn adaptive_collapses_all_at_lowest() {
        let metas = [meta(0, 1, 0), meta(1, 1, 0), meta(2, 4, 2), meta(3, 1, 0)];
        let d = AdaptiveLowestLevel.choose(&metas);
        assert!(d.promotions.is_empty());
        assert_eq!(d.collapse, vec![0, 1, 3]);
        assert_eq!(d.output_level, 1);
    }

    #[test]
    fn adaptive_promotes_lone_lowest() {
        let metas = [meta(0, 2, 1), meta(1, 4, 2), meta(2, 4, 2)];
        let d = AdaptiveLowestLevel.choose(&metas);
        assert_eq!(d.promotions, vec![(0, 2)]);
        assert_eq!(d.collapse, vec![0, 1, 2]);
        assert_eq!(d.output_level, 3);
    }

    #[test]
    fn munro_paterson_collapses_exactly_two() {
        let metas = [meta(0, 1, 0), meta(1, 1, 0), meta(2, 1, 0)];
        let d = MunroPaterson.choose(&metas);
        assert_eq!(d.collapse.len(), 2);
        assert_eq!(d.output_level, 1);
        assert!(d.promotions.is_empty());
    }

    #[test]
    fn munro_paterson_promotes_when_levels_distinct() {
        let metas = [meta(0, 1, 0), meta(1, 2, 1), meta(2, 4, 2)];
        let d = MunroPaterson.choose(&metas);
        assert_eq!(d.promotions, vec![(0, 1)]);
        assert_eq!(d.collapse, vec![0, 1]);
        assert_eq!(d.output_level, 2);
    }

    #[test]
    fn ars_collapses_everything() {
        let metas = [meta(0, 1, 0), meta(1, 2, 1), meta(2, 8, 3)];
        let d = AlsabtiRankaSingh.choose(&metas);
        assert_eq!(d.collapse, vec![0, 1, 2]);
        assert_eq!(d.output_level, 4);
    }

    #[test]
    fn decisions_are_deterministic() {
        let metas = [meta(0, 1, 0), meta(1, 1, 0), meta(2, 2, 1)];
        assert_eq!(
            AdaptiveLowestLevel.choose(&metas),
            AdaptiveLowestLevel.choose(&metas)
        );
        assert_eq!(MunroPaterson.choose(&metas), MunroPaterson.choose(&metas));
        assert_eq!(
            AlsabtiRankaSingh.choose(&metas),
            AlsabtiRankaSingh.choose(&metas)
        );
    }
}
