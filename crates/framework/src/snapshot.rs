//! Serializable snapshots of a running engine.
//!
//! Quantile sketches in databases outlive processes: a histogram
//! maintained over a growing table is checkpointed with the table. A
//! [`EngineSnapshot`] captures the engine's full logical state — buffers,
//! the in-progress fill, the pending sampler block, the tree accounting,
//! and the rate-schedule state — so a restored engine continues the stream
//! with the same guarantee.
//!
//! The only thing not carried over is the PRNG's internal state: restore
//! takes a fresh seed. The guarantee is unaffected (the analysis only
//! needs each block's representative to be uniform and independent, which
//! holds regardless of where the seed changes), but a restored run's
//! outputs are not bit-identical to the uninterrupted run's.

use serde::{Deserialize, Serialize};

use crate::buffer::{Buffer, BufferState};
use crate::engine::{Engine, EngineConfig};
use crate::policy::CollapsePolicy;
use crate::schedule::RateSchedule;
use crate::stats::TreeStats;

/// One buffer's state within a snapshot.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct BufferSnapshot<T> {
    /// Sorted contents (empty for an empty slot).
    pub data: Vec<T>,
    /// Buffer weight (0 for an empty slot).
    pub weight: u64,
    /// Tree level.
    pub level: u32,
    /// `true` when the buffer is `Partial` rather than `Full`.
    pub partial: bool,
}

/// The serializable state of an [`Engine`].
///
/// Generic over the element type and the rate schedule (the collapse
/// policies are stateless unit structs and are supplied again at restore).
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct EngineSnapshot<T, R> {
    /// `b`.
    pub num_buffers: usize,
    /// `k`.
    pub buffer_size: usize,
    /// Lazy-allocation thresholds (all zero for upfront allocation).
    pub allocation: Vec<u64>,
    /// Non-empty buffers.
    pub buffers: Vec<BufferSnapshot<T>>,
    /// Elements of the in-progress `New` (completed blocks only).
    pub filler: Vec<T>,
    /// Rate of the in-progress `New`.
    pub fill_rate: u64,
    /// Level of the in-progress `New`.
    pub fill_level: u32,
    /// Whether a `New` is in progress.
    pub filling: bool,
    /// Representative and element count of the pending (incomplete) block.
    pub pending_block: Option<(T, u64)>,
    /// Even-weight collapse offset alternation phase.
    pub collapse_high_phase: bool,
    /// Exact tree accounting.
    pub stats: TreeStats,
    /// Rate-schedule state.
    pub schedule: R,
    /// Whether `finish()` was called.
    pub finished: bool,
}

impl<T, P, R> Engine<T, P, R>
where
    T: Ord + Clone + 'static,
    P: CollapsePolicy,
    R: RateSchedule + Clone,
{
    /// Capture the engine's logical state.
    pub fn snapshot(&self) -> EngineSnapshot<T, R> {
        let buffers = self
            .raw_buffers()
            .iter()
            .enumerate()
            .filter(|(_, b)| b.state() != BufferState::Empty)
            .map(|(i, b)| {
                let mut data = b.data().to_vec();
                // A deferred-seal slot holds raw data; the snapshot's copy
                // is sorted so restore can assert the invariant.
                if self.slot_is_unsorted(i) {
                    data.sort_unstable();
                }
                BufferSnapshot {
                    data,
                    weight: b.weight(),
                    level: b.level(),
                    partial: b.state() == BufferState::Partial,
                }
            })
            .collect();
        let (filler, fill_rate, fill_level, filling) = self.fill_state();
        EngineSnapshot {
            num_buffers: self.config().num_buffers,
            buffer_size: self.config().buffer_size,
            allocation: self.allocation_thresholds().to_vec(),
            buffers,
            filler: filler.to_vec(),
            fill_rate,
            fill_level,
            filling,
            pending_block: self.pending_block(),
            collapse_high_phase: self.collapse_phase(),
            stats: self.stats().clone(),
            schedule: self.schedule_state().clone(),
            finished: self.is_finished(),
        }
    }

    /// Rebuild an engine from a snapshot, with a fresh sampler seed.
    ///
    /// # Panics
    /// Panics if the snapshot is internally inconsistent (buffer counts or
    /// sizes exceeding `b`/`k`).
    pub fn restore(snapshot: EngineSnapshot<T, R>, policy: P, seed: u64) -> Self {
        let config = EngineConfig::new(snapshot.num_buffers, snapshot.buffer_size);
        assert!(
            snapshot.buffers.len() <= snapshot.num_buffers,
            "snapshot holds more buffers than b"
        );
        let mut engine =
            Engine::with_allocation(config, policy, snapshot.schedule, snapshot.allocation, seed);
        let k = snapshot.buffer_size;
        let mut slots: Vec<Buffer<T>> = Vec::with_capacity(snapshot.buffers.len());
        for bs in snapshot.buffers {
            assert!(bs.data.len() <= k, "snapshot buffer exceeds k");
            assert!(
                bs.partial == (bs.data.len() < k),
                "snapshot partial flag disagrees with length"
            );
            assert!(
                bs.data.is_sorted(),
                "snapshot buffer contents must be sorted"
            );
            // Validated sorted above, so restore skips the re-sort the old
            // `populate` path paid on every checkpointed buffer.
            slots.push(Buffer::from_sorted(bs.data, bs.weight, bs.level, k));
        }
        engine.restore_internals(
            slots,
            snapshot.filler,
            snapshot.fill_rate,
            snapshot.fill_level,
            snapshot.filling,
            snapshot.pending_block,
            snapshot.collapse_high_phase,
            snapshot.stats,
            snapshot.finished,
        );
        engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AdaptiveLowestLevel, FixedRate, Mrl99Schedule};

    fn engine_with_data(n: u64) -> Engine<u64, AdaptiveLowestLevel, Mrl99Schedule> {
        let mut e = Engine::new(
            EngineConfig::new(4, 16),
            AdaptiveLowestLevel,
            Mrl99Schedule::new(2),
            5,
        );
        for i in 0..n {
            e.insert((i * 2654435761) % 1_000_003);
        }
        e
    }

    #[test]
    fn snapshot_roundtrip_preserves_queries() {
        let e = engine_with_data(10_000);
        let before: Vec<u64> = e.query_many(&[0.1, 0.5, 0.9]).unwrap();
        let snap = e.snapshot();
        let restored: Engine<u64, _, Mrl99Schedule> =
            Engine::restore(snap, AdaptiveLowestLevel, 99);
        let after = restored.query_many(&[0.1, 0.5, 0.9]).unwrap();
        assert_eq!(before, after, "restore must reproduce Output exactly");
        assert_eq!(restored.n(), 10_000);
    }

    #[test]
    fn snapshot_mid_block_preserves_mass() {
        // 10_000 is unlikely to land on a block boundary once sampling has
        // engaged; the pending block must survive the round-trip.
        let e = engine_with_data(9_999);
        let snap = e.snapshot();
        let restored: Engine<u64, _, Mrl99Schedule> = Engine::restore(snap, AdaptiveLowestLevel, 1);
        assert_eq!(restored.output_mass(), e.output_mass());
        assert_eq!(restored.n(), e.n());
    }

    #[test]
    fn restored_engine_continues_with_guarantee() {
        let mut e = engine_with_data(50_000);
        let snap = e.snapshot();
        let mut restored: Engine<u64, _, Mrl99Schedule> =
            Engine::restore(snap, AdaptiveLowestLevel, 7);
        // Continue both engines over the same remaining stream.
        for i in 50_000u64..120_000 {
            let v = (i * 2654435761) % 1_000_003;
            e.insert(v);
            restored.insert(v);
        }
        assert_eq!(e.n(), restored.n());
        // Different randomness after the split, same guarantee: both
        // medians near 500k for this near-uniform stream.
        let a = e.query(0.5).unwrap() as f64;
        let b = restored.query(0.5).unwrap() as f64;
        for (name, v) in [("original", a), ("restored", b)] {
            assert!(
                (v - 500_000.0).abs() < 60_000.0,
                "{name} median {v} drifted"
            );
        }
    }

    #[test]
    fn snapshot_of_finished_engine() {
        let mut e = engine_with_data(777);
        e.finish();
        let snap = e.snapshot();
        let restored: Engine<u64, _, Mrl99Schedule> = Engine::restore(snap, AdaptiveLowestLevel, 3);
        assert!(restored.is_finished());
        assert_eq!(restored.query(0.5), e.query(0.5));
    }

    #[test]
    fn fixed_rate_schedule_snapshots_too() {
        let mut e: Engine<u64, _, FixedRate> = Engine::new(
            EngineConfig::new(3, 8),
            AdaptiveLowestLevel,
            FixedRate::new(4),
            1,
        );
        for i in 0..1_000u64 {
            e.insert(i);
        }
        let snap = e.snapshot();
        let restored: Engine<u64, _, FixedRate> = Engine::restore(snap, AdaptiveLowestLevel, 2);
        assert_eq!(restored.current_rate(), 4);
        assert_eq!(restored.output_mass(), e.output_mass());
    }

    #[test]
    #[should_panic(expected = "exceeds k")]
    fn inconsistent_snapshot_is_rejected() {
        let e = engine_with_data(100);
        let mut snap = e.snapshot();
        snap.buffer_size = 2; // corrupt
        let _: Engine<u64, _, Mrl99Schedule> = Engine::restore(snap, AdaptiveLowestLevel, 1);
    }
}
