//! The streaming engine: `New` / `Collapse` / `Output` composed under a
//! collapse policy and a sampling-rate schedule.
//!
//! [`Engine`] is the common machinery behind every algorithm in the paper:
//!
//! * unknown-`N` (§3): [`crate::AdaptiveLowestLevel`] + [`crate::Mrl99Schedule`],
//! * known-`N` deterministic (MRL98/\[MP80\]/\[ARS97\]): any policy +
//!   [`crate::FixedRate`]`::new(1)`,
//! * known-`N` sampled: any policy + [`crate::FixedRate`]`::new(r)`.
//!
//! `Output` is non-destructive and may be invoked at any prefix of the
//! stream, which is what makes the algorithm suitable for online
//! aggregation (§3.7, \[Hel97\]).

use mrl_obs::{CollapsePath, EventKind, JournalHandle, Key, MetricsHandle, SealKernel};
use mrl_sampling::{rng_from_seed, BlockSampler, SketchRng};

use crate::arena::ScratchArena;
use crate::buffer::{Buffer, BufferState};
use crate::kernels::{
    chunked_kernels_enabled, select_merged_weighted_spaced, select_three_weighted_spaced,
    select_two_weighted_spaced,
};
use crate::merge::{
    collapse_first_target, collapse_targets_into, output_position, select_weighted,
    select_weighted_with, total_mass, WeightedSource,
};
use crate::policy::CollapsePolicy;
use crate::radix::try_sort_fixed;
use crate::runs::{merge_sorted_runs_with, run_merge_limit, RunTracker};
use crate::schedule::RateSchedule;
use crate::spine::QuerySpine;
use crate::stats::TreeStats;
use crate::tree::TreeRecorder;

/// Metric keys the engine emits (all on buffer-seal or collapse
/// granularity — once per `k` raw elements at most — so an attached
/// recorder costs a few atomic ops per buffer and a disabled
/// [`MetricsHandle`] costs one predicted branch per seal).
pub mod metrics {
    use mrl_obs::Key;

    /// Counter: seals adopted as-is because the fill arrived sorted.
    pub const SEAL_PRESORTED: Key = Key::new("engine.seal.presorted");
    /// Counter: seals that bottom-up merged the tracked runs.
    pub const SEAL_RUN_MERGE: Key = Key::new("engine.seal.run_merge");
    /// Counter: seals parked raw (sort deferred to collapse/query time).
    pub const SEAL_PARKED_RAW: Key = Key::new("engine.seal.parked_raw");
    /// Histogram: nanoseconds per seal (`take_filler`).
    pub const SEAL_NS: Key = Key::new("engine.seal.ns");
    /// Counter, labelled by level: completed leaves per buffer level.
    pub const LEAVES_BY_LEVEL: &str = "engine.leaves";
    /// Counter: collapse operations (`C`).
    pub const COLLAPSES: Key = Key::new("engine.collapses");
    /// Histogram: nanoseconds per collapse.
    pub const COLLAPSE_NS: Key = Key::new("engine.collapse.ns");
    /// Counter: collapses through the all-raw equal-weight fast path.
    pub const COLLAPSE_RAW_FAST_PATH: Key = Key::new("engine.collapse.raw_fast_path");
    /// Gauge: the Lemma 4/5 weight sum `W` after the latest collapse.
    pub const COLLAPSE_WEIGHT_SUM: Key = Key::new("engine.collapse.weight_sum");
    /// Gauge, labelled by level: occupied (full/partial) buffers per level.
    pub const OCCUPANCY_BY_LEVEL: &str = "engine.buffers.occupied";
    /// Gauge: allocated buffer slots.
    pub const BUFFERS_ALLOCATED: Key = Key::new("engine.buffers.allocated");
    /// Counter: sampling-rate doublings.
    pub const RATE_TRANSITIONS: Key = Key::new("engine.rate.transitions");
    /// Gauge: the current sampling rate `r`.
    pub const RATE_CURRENT: Key = Key::new("engine.rate.current");
    /// Gauge: stream position `N` at sampling onset (set once).
    pub const SAMPLING_ONSET_N: Key = Key::new("engine.sampling.onset_n");
    /// Gauge: cumulative random draws consumed by the block sampler.
    pub const SAMPLER_DRAWS: Key = Key::new("engine.sampler.draws");
    /// Gauge: stream elements consumed (`N`), refreshed at each seal.
    pub const ELEMENTS: Key = Key::new("engine.elements");
}

/// Sizing of an engine: `b` buffers of `k` elements each.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Number of buffers `b` (≥ 2).
    pub num_buffers: usize,
    /// Elements per buffer `k` (≥ 1).
    pub buffer_size: usize,
}

impl EngineConfig {
    /// Create a configuration, validating `b ≥ 2` and `k ≥ 1`.
    ///
    /// # Panics
    /// Panics on invalid sizes.
    pub fn new(num_buffers: usize, buffer_size: usize) -> Self {
        assert!(num_buffers >= 2, "need at least two buffers to collapse");
        assert!(buffer_size >= 1, "buffer size must be positive");
        Self {
            num_buffers,
            buffer_size,
        }
    }

    /// The paper's memory metric: `b · k` elements.
    pub fn memory_elements(&self) -> usize {
        self.num_buffers * self.buffer_size
    }
}

/// Single-pass approximate-quantile engine.
///
/// Generic over the element type `T`, the [`CollapsePolicy`] `P` and the
/// [`RateSchedule`] `R`. Elements are inserted one at a time with
/// [`Engine::insert`]; quantile estimates are available at any moment via
/// [`Engine::query`].
#[derive(Clone, Debug)]
pub struct Engine<T, P, R> {
    config: EngineConfig,
    /// Allocated buffer slots; may be shorter than `b` under a lazy
    /// allocation schedule (§5).
    buffers: Vec<Buffer<T>>,
    /// `allocation[i]` = number of leaves that must exist before slot `i`
    /// may be allocated (all zero by default: allocate up front).
    allocation: Vec<u64>,
    policy: P,
    rate_schedule: R,
    sampler: BlockSampler<T>,
    filler: Vec<T>,
    /// Sorted-run boundaries of `filler`, tracked per push (one comparison
    /// per element) so sealing merges the runs in `O(k log r)` instead of
    /// sorting from scratch, and queries on an already-sorted fill skip
    /// the snapshot-and-sort entirely.
    filler_runs: RunTracker,
    /// Slots holding raw (deliberately unsorted) fill data. When a fill
    /// saturates the run tracker, sealing *defers* the sort: if the slot is
    /// later collapsed together with other raw equal-weight slots, one sort
    /// of the concatenation replaces the per-buffer sorts plus the merge
    /// walk. Read paths (`query_many`, snapshots, `into_buffers`) sort on
    /// demand, so the invariant "populated buffers are sorted" holds
    /// everywhere outside this engine. Stored as a per-slot mask (grown
    /// alongside the lazily allocated slot table) so marking a seal is a
    /// flag store, not a push.
    unsorted_mask: Vec<bool>,
    fill_rate: u64,
    fill_level: u32,
    filling: bool,
    collapse_high_phase: bool,
    /// All scratch storage reused across seals, collapses, gauge
    /// publications and `extend` staging, so steady-state streaming
    /// allocates nothing (see [`ScratchArena`]).
    scratch: ScratchArena<T>,
    stats: TreeStats,
    metrics: MetricsHandle,
    /// Flight-recorder handle: structured lifecycle events (seals,
    /// collapses with provenance, rate transitions, spine rebuilds) at
    /// the same once-per-`k`-elements granularity as the metrics.
    /// Disabled by default — one predicted branch per site.
    journal: JournalHandle,
    recorder: Option<TreeRecorder>,
    slot_nodes: Vec<Option<usize>>,
    sample_tap: Option<Vec<(T, u64)>>,
    max_allocated: usize,
    finished: bool,
    /// Ingest epoch: incremented by every mutation that can change what a
    /// query observes (insert, batch insert, collapse, finish, snapshot
    /// restore). The cached query spine records the epoch it was built
    /// at; a mismatch marks it stale.
    epoch: u64,
    /// Serve `query`/`query_many`/`rank_of`/`cdf` from the epoch-cached
    /// spine (the default). Disabled, every query re-runs the direct
    /// weighted merge — kept for differential testing of the cache.
    query_cache: bool,
    rng: SketchRng,
    /// The offline-certified error coefficients this engine is audited
    /// against after every seal/collapse (feature `invariant-audit`).
    #[cfg(feature = "invariant-audit")]
    certified: Option<crate::invariant::CertifiedSchedule>,
}

impl<T, P, R> Engine<T, P, R>
where
    T: Ord + Clone + 'static,
    P: CollapsePolicy,
    R: RateSchedule,
{
    /// Create an engine with all buffers allocated up front.
    pub fn new(config: EngineConfig, policy: P, rate_schedule: R, seed: u64) -> Self {
        let allocation = vec![0; config.num_buffers];
        Self::with_allocation(config, policy, rate_schedule, allocation, seed)
    }

    /// Create an engine with a lazy buffer-allocation schedule (§5):
    /// `allocation[i]` is the number of leaves that must have been created
    /// before buffer `i` is allocated. Must be non-decreasing, with
    /// `allocation[0] == 0`.
    ///
    /// # Panics
    /// Panics if the schedule is malformed.
    pub fn with_allocation(
        config: EngineConfig,
        policy: P,
        rate_schedule: R,
        allocation: Vec<u64>,
        seed: u64,
    ) -> Self {
        assert_eq!(
            allocation.len(),
            config.num_buffers,
            "allocation schedule must cover every buffer"
        );
        assert_eq!(
            allocation[0], 0,
            "the first buffer must be available immediately"
        );
        assert!(
            allocation.windows(2).all(|w| w[0] <= w[1]),
            "allocation schedule must be non-decreasing"
        );
        let rate = rate_schedule.rate();
        Self {
            config,
            buffers: Vec::new(),
            allocation,
            policy,
            rate_schedule,
            sampler: BlockSampler::new(rate),
            filler: Vec::with_capacity(config.buffer_size),
            filler_runs: RunTracker::new(run_merge_limit(config.buffer_size)),
            unsorted_mask: Vec::new(),
            fill_rate: rate,
            fill_level: 0,
            filling: false,
            collapse_high_phase: false,
            scratch: ScratchArena::default(),
            stats: TreeStats::default(),
            metrics: MetricsHandle::disabled(),
            journal: JournalHandle::disabled(),
            recorder: None,
            slot_nodes: Vec::new(),
            sample_tap: None,
            max_allocated: 0,
            finished: false,
            epoch: 0,
            query_cache: true,
            rng: rng_from_seed(seed),
            #[cfg(feature = "invariant-audit")]
            certified: None,
        }
    }

    /// Enable recording of the full collapse tree (Figures 2–3). Call before
    /// inserting data.
    pub fn enable_tree_recording(&mut self) {
        assert_eq!(self.stats.elements, 0, "enable recording before inserting");
        self.recorder = Some(TreeRecorder::new());
    }

    /// Enable recording of every emitted sample element and its weight
    /// (test support: lets tests compute the exact weighted quantile of the
    /// sample sequence fed to the deterministic tree).
    pub fn enable_sample_tap(&mut self) {
        assert_eq!(self.stats.elements, 0, "enable the tap before inserting");
        self.sample_tap = Some(Vec::new());
    }

    /// The engine configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Stream elements consumed so far.
    pub fn n(&self) -> u64 {
        // Saturating: both counters track disjoint parts of one stream, so
        // their sum is the stream length and cannot wrap unless the stream
        // itself exceeds u64 — degrade to a pinned count, never wrap.
        self.stats.elements.saturating_add(self.sampler.pending())
    }

    /// True once [`Engine::finish`] has been called.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Tree statistics (exact accounting of `W`, `C`, leaves, `Σnᵢ²`).
    pub fn stats(&self) -> &TreeStats {
        &self.stats
    }

    /// Attach a metrics sink (see [`metrics`] for the emitted keys). The
    /// default handle is disabled and costs one predicted branch per
    /// seal/collapse; may be attached or swapped at any point.
    pub fn set_metrics(&mut self, metrics: MetricsHandle) {
        self.metrics = metrics;
    }

    /// The attached metrics handle (disabled by default).
    pub fn metrics(&self) -> &MetricsHandle {
        &self.metrics
    }

    /// Attach a flight-recorder journal (see [`mrl_obs::EventKind`] for
    /// the emitted events). The default handle is disabled and costs one
    /// predicted branch per seal/collapse; may be attached or swapped at
    /// any point.
    pub fn set_journal(&mut self, journal: JournalHandle) {
        self.journal = journal;
    }

    /// The attached journal handle (disabled by default).
    pub fn journal(&self) -> &JournalHandle {
        &self.journal
    }

    /// The current ingest epoch (see the `epoch` field): changes exactly
    /// when a query could start observing different state.
    pub fn ingest_epoch(&self) -> u64 {
        self.epoch
    }

    /// Enable or disable the epoch-cached query spine (enabled by
    /// default). With the cache off, every query re-runs the direct
    /// weighted-merge path — useful for differential testing.
    pub fn set_query_cache_enabled(&mut self, enabled: bool) {
        self.query_cache = enabled;
        if !enabled {
            self.scratch.spine.borrow_mut().invalidate();
            self.journal
                .record(EventKind::SpineInvalidate { epoch: self.epoch });
        }
    }

    /// Mark queryable state as changed. Wrapping: only equality with the
    /// spine's build epoch matters, and 2⁶⁴ mutations cannot revisit a
    /// stale spine's epoch without 2⁶⁴ − 1 intervening queries missing.
    fn bump_epoch(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
    }

    /// Run `f` over the current query spine, rebuilding it first if the
    /// ingest epoch moved since it was last materialised. `None` when the
    /// cache is disabled (callers then take the direct merge path).
    pub(crate) fn with_current_spine<U>(&self, f: impl FnOnce(&QuerySpine<T>) -> U) -> Option<U> {
        if !self.query_cache {
            return None;
        }
        let mut spine = self.scratch.spine.borrow_mut();
        if !spine.is_current(self.epoch) {
            let rebuild_begin = self.journal.now_ns();
            spine.rebuild(self.epoch, |pairs| {
                self.for_each_weighted(|v, w| pairs.push((v.clone(), w)));
            });
            if let Some(begin) = rebuild_begin {
                let end = self.journal.now_ns().unwrap_or(begin);
                self.journal.record_at(
                    end,
                    EventKind::SpineRebuild {
                        epoch: self.epoch,
                        pairs: spine.len() as u64,
                        dur_ns: end.saturating_sub(begin),
                    },
                );
            }
        }
        Some(f(&spine))
    }

    /// The recorded collapse tree, if recording was enabled.
    pub fn recorder(&self) -> Option<&TreeRecorder> {
        self.recorder.as_ref()
    }

    /// The recorded sample sequence, if the tap was enabled.
    pub fn sample_tap(&self) -> Option<&[(T, u64)]> {
        self.sample_tap.as_deref()
    }

    /// Node ids (into the recorder) of the current root buffers, if
    /// recording was enabled.
    pub fn root_nodes(&self) -> Vec<usize> {
        self.slot_nodes
            .iter()
            .zip(&self.buffers)
            .filter(|(_, b)| b.state() != BufferState::Empty)
            .filter_map(|(n, _)| *n)
            .collect()
    }

    /// Buffer slots currently allocated.
    pub fn allocated_slots(&self) -> usize {
        self.buffers.len()
    }

    /// High-water mark of allocated slots.
    pub fn max_allocated_slots(&self) -> usize {
        self.max_allocated
    }

    /// Current memory footprint in elements (allocated slots × `k`).
    pub fn memory_elements(&self) -> usize {
        self.buffers.len() * self.config.buffer_size
    }

    /// Current sampling rate of the `New` operation.
    pub fn current_rate(&self) -> u64 {
        self.rate_schedule.rate()
    }

    /// True once the non-uniform sampler has moved past rate 1.
    pub fn sampling_started(&self) -> bool {
        self.rate_schedule.sampling_started()
    }

    /// Insert one stream element.
    ///
    /// # Panics
    /// Panics if called after [`Engine::finish`].
    // alloc: filler.push lands in capacity reserved by the recycled slot
    // storage (complete_fill) and note_boundary's run starts are bounded by
    // the saturation cap; the sample tap is opt-in test support.
    pub fn insert(&mut self, item: T) {
        assert!(!self.finished, "cannot insert after finish()");
        self.bump_epoch();
        if !self.filling {
            self.begin_fill();
        }
        if let Some(repr) = self.sampler.offer(item, &mut self.rng) {
            self.stats.record_block(self.fill_rate);
            if let Some(tap) = &mut self.sample_tap {
                tap.push((repr.clone(), self.fill_rate));
            }
            if self.filler.last().is_some_and(|last| *last > repr) {
                self.filler_runs.note_boundary(self.filler.len());
            }
            self.filler.push(repr);
            if self.filler.len() == self.config.buffer_size {
                self.complete_fill();
            }
        }
    }

    /// Insert a batch of stream elements.
    ///
    /// Equivalent in distribution to inserting the elements one at a time,
    /// but the filling/finished checks are hoisted out of the per-element
    /// loop and the block sampler consumes one random draw per **block**
    /// instead of one per element (at rate 1, none at all) — see
    /// [`BlockSampler::offer_slice`]. The consumed random stream differs
    /// from the per-element path, so a seeded run is reproducible only
    /// against the same chunking of the input.
    ///
    /// # Panics
    /// Panics if called after [`Engine::finish`].
    // alloc: as in `insert` — pushes go into recycled k-capacity filler
    // storage; the sample tap is opt-in test support.
    pub fn insert_batch(&mut self, items: &[T]) {
        assert!(!self.finished, "cannot insert after finish()");
        if !items.is_empty() {
            self.bump_epoch();
        }
        let mut rest = items;
        while !rest.is_empty() {
            if !self.filling {
                self.begin_fill();
            }
            // Raw stream elements this fill can still absorb: each of the
            // `room` free filler slots stands for `fill_rate` elements,
            // less whatever the pending block has already consumed.
            let room = (self.config.buffer_size - self.filler.len()) as u64;
            // Saturating: begin_fill guarantees room ≥ 1 and the pending
            // block never exceeds one fill's worth (pending < fill_rate),
            // so absorb ≥ 1 in practice; saturation only defends corrupted
            // state from looping on a wrapped subtraction.
            let absorb = room
                .saturating_mul(self.fill_rate)
                .saturating_sub(self.sampler.pending());
            let take = absorb.min(rest.len() as u64) as usize;
            let (chunk, tail) = rest.split_at(take);
            rest = tail;
            if self.fill_rate == 1 {
                // Every element is its own block: bypass the sampler and
                // bulk-copy straight into the filler.
                if let Some(tap) = self.sample_tap.as_mut() {
                    for v in chunk {
                        tap.push((v.clone(), 1));
                    }
                }
                let base = self.filler.len();
                self.filler.extend_from_slice(chunk);
                self.filler_runs.observe_extend(&self.filler, base);
                self.stats.record_blocks(1, chunk.len() as u64);
            } else {
                let emitted = {
                    let filler = &mut self.filler;
                    let filler_runs = &mut self.filler_runs;
                    let fill_rate = self.fill_rate;
                    let mut tap = self.sample_tap.as_mut();
                    self.sampler.offer_slice(chunk, &mut self.rng, &mut |repr| {
                        if let Some(tap) = tap.as_mut() {
                            tap.push((repr.clone(), fill_rate));
                        }
                        if filler.last().is_some_and(|last| *last > repr) {
                            filler_runs.note_boundary(filler.len());
                        }
                        filler.push(repr);
                    })
                };
                self.stats.record_blocks(self.fill_rate, emitted as u64);
            }
            if self.filler.len() == self.config.buffer_size {
                debug_assert_eq!(self.sampler.pending(), 0);
                self.complete_fill();
            }
        }
    }

    /// Insert every element of an iterator. Internally gathers elements
    /// into fixed-size batches and feeds them to [`Engine::insert_batch`],
    /// so bulk loading through `extend` gets the batched fast path. The
    /// staging buffer lives in the scratch arena: repeated `extend` calls
    /// reuse one CHUNK-capacity vector and allocate nothing.
    pub fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        const CHUNK: usize = 1024;
        let mut iter = iter.into_iter();
        // Staging leaves the arena for the duration so insert_batch can
        // borrow `&mut self` while the batch is alive.
        let mut buf = std::mem::take(&mut self.scratch.stage);
        loop {
            buf.clear();
            buf.extend(iter.by_ref().take(CHUNK));
            if buf.is_empty() {
                break;
            }
            self.insert_batch(&buf);
            if buf.len() < CHUNK {
                break;
            }
        }
        buf.clear();
        self.scratch.stage = buf;
    }

    /// Declare end-of-stream: the partially filled buffer (if any) becomes a
    /// `Partial` buffer (§3.1). Queries remain available; further inserts
    /// panic.
    // panic-free: empty_slot() is Some because begin_fill reserved a slot
    // for the fill in progress (filling == true on this branch), and the
    // deferred-seal sweep indexes buffers by 0..len.
    // alloc: tap is opt-in test support; filler.push has reserved capacity.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.bump_epoch();
        if self.filling {
            if let Some((tail, pending)) = self.sampler.flush() {
                // The trailing incomplete block still contributes its
                // representative; per the paper the partial buffer's
                // elements all carry the buffer weight `r` (the analysis
                // excludes the partial buffer from Lemma 5, §4.2).
                self.stats.record_block(pending);
                if let Some(tap) = &mut self.sample_tap {
                    tap.push((tail.clone(), self.fill_rate));
                }
                if self.filler.last().is_some_and(|last| *last > tail) {
                    self.filler_runs.note_boundary(self.filler.len());
                }
                self.filler.push(tail);
            }
            if !self.filler.is_empty() {
                let (mut data, sorted) = self.take_filler();
                if !sorted && !try_sort_fixed(&mut data, &mut self.scratch.radix) {
                    data.sort_unstable();
                }
                let idx = self
                    .empty_slot()
                    .expect("begin_fill reserved an empty slot");
                self.buffers[idx].populate_sorted(
                    data,
                    self.fill_rate,
                    self.fill_level,
                    self.config.buffer_size,
                );
                if let Some(rec) = &mut self.recorder {
                    self.slot_nodes[idx] = Some(rec.add_leaf(self.fill_rate, self.fill_level));
                }
            }
            self.filling = false;
        }
        // Restore the sorted invariant on any slot whose seal was deferred:
        // once finished, every populated buffer is sorted and the engine can
        // be snapshotted, drained or queried with no special cases.
        for idx in 0..self.buffers.len() {
            if self.slot_is_unsorted(idx) {
                self.buffers[idx].make_sorted_with(&mut self.scratch.radix);
            }
        }
        self.unsorted_mask.fill(false);
        self.finished = true;
        #[cfg(feature = "invariant-audit")]
        self.audit_invariants("finish");
    }

    /// Estimate the φ-quantile of everything inserted so far.
    ///
    /// Non-destructive: this is the paper's `Output` operation, which "does
    /// not destroy or modify the state \[and\] can be invoked as many times as
    /// required" (§3.7). Returns `None` before any element has arrived.
    pub fn query(&self, phi: f64) -> Option<T> {
        self.query_many(&[phi]).map(|mut v| v.remove(0))
    }

    /// Estimate several quantiles at once from one merge pass. Results are
    /// returned in the order of `phis`. Returns `None` before any element
    /// has arrived.
    // panic-free: buffer indices come from enumerate(); out[original] and
    // the closing expect hold because `order` carries every index 0..len
    // exactly once, so every slot is filled before unwrapping.
    pub fn query_many(&self, phis: &[f64]) -> Option<Vec<T>> {
        // Cached read path: every phi is a binary search over the spine
        // (rebuilt at most once per ingest epoch). The spine's positional
        // lookup returns exactly the element the weighted-merge selection
        // below would pick, so the two paths answer identically.
        if let Some(cached) = self.with_current_spine(|spine| {
            let s = spine.total();
            if s == 0 {
                return None;
            }
            let mut out = Vec::with_capacity(phis.len());
            for &phi in phis {
                out.push(spine.lookup(output_position(phi, s))?.clone());
            }
            Some(out)
        }) {
            return cached;
        }
        // Only clone-and-sort the in-progress fill when it is actually out
        // of order; an ascending stream (or a freshly started fill) reads
        // straight from `filler`, and a mildly disordered one merges its
        // tracked runs instead of sorting from scratch.
        let sorted_holder: Option<Vec<T>> = if self.filler_runs.is_single_run() {
            None
        } else {
            let mut v = self.filler.clone();
            let mut scratch = Vec::new();
            self.filler_runs.sort_data(&mut v, &mut scratch);
            Some(v)
        };
        let filler_view: &[T] = sorted_holder.as_deref().unwrap_or(&self.filler);
        // Deferred-seal slots hold raw data; queries read a sorted copy
        // (Output never mutates state, §3.7).
        let raw_copies: Vec<(usize, Vec<T>)> = (0..self.buffers.len())
            .filter(|&i| self.slot_is_unsorted(i))
            .map(|i| {
                let mut v = self.buffers[i].data().to_vec();
                v.sort_unstable();
                (i, v)
            })
            .collect();
        let pending = self.sampler.peek();
        let mut sources: Vec<WeightedSource<'_, T>> = Vec::new();
        for (i, b) in self.buffers.iter().enumerate() {
            if b.state() != BufferState::Empty {
                let data = raw_copies
                    .iter()
                    .find(|(j, _)| *j == i)
                    .map(|(_, v)| v.as_slice())
                    .unwrap_or_else(|| b.data());
                sources.push(WeightedSource::new(data, b.weight()));
            }
        }
        if !filler_view.is_empty() {
            sources.push(WeightedSource::new(filler_view, self.fill_rate));
        }
        let tail_holder;
        if let Some((tail, seen)) = pending {
            tail_holder = [tail.clone()];
            sources.push(WeightedSource::new(&tail_holder, seen));
        }
        let s = total_mass(&sources);
        if s == 0 {
            return None;
        }
        // Map each phi to its weighted position, select in sorted order,
        // then restore the caller's order. Callers overwhelmingly pass
        // ascending phis, whose positions are already sorted — skip the
        // per-call sort then.
        let mut order: Vec<(u64, usize)> = phis
            .iter()
            .map(|&phi| output_position(phi, s))
            .zip(0..)
            .collect();
        if !order.is_sorted() {
            order.sort_unstable();
        }
        let targets: Vec<u64> = order.iter().map(|&(p, _)| p).collect();
        let picked = select_weighted(&sources, &targets);
        let mut out: Vec<Option<T>> = vec![None; phis.len()];
        for ((_, original), value) in order.into_iter().zip(picked) {
            out[original] = Some(value);
        }
        Some(
            out.into_iter()
                .map(|v| v.expect("every slot filled"))
                .collect(),
        )
    }

    /// Total weighted mass visible to `Output` right now. Equals [`Engine::n`]
    /// while streaming; may exceed it by less than one block after
    /// [`Engine::finish`] (the partial buffer rounds its tail block's weight
    /// up to `r`).
    pub fn output_mass(&self) -> u64 {
        let mut s: u64 = self
            .buffers
            .iter()
            .filter(|b| b.state() != BufferState::Empty)
            .map(Buffer::mass)
            .sum();
        // Saturating like Buffer::mass: the total is the stream length by
        // weight conservation, so wrapping is impossible in a consistent
        // engine — pin rather than wrap if state is ever corrupted.
        s = s.saturating_add((self.filler.len() as u64).saturating_mul(self.fill_rate));
        if let Some((_, seen)) = self.sampler.peek() {
            s = s.saturating_add(seen);
        }
        s
    }

    /// Greatest weight among the buffers `Output` would consult (the
    /// `w_max` of Lemma 4). Zero if no data.
    pub fn w_max(&self) -> u64 {
        let mut w = self
            .buffers
            .iter()
            .filter(|b| b.state() != BufferState::Empty)
            .map(Buffer::weight)
            .max()
            .unwrap_or(0);
        if !self.filler.is_empty() || self.sampler.peek().is_some() {
            w = w.max(self.fill_rate);
        }
        w
    }

    /// The deterministic part of the rank-error guarantee at this instant:
    /// `(W + w_max)/2` weighted-rank units (weakened Lemma 4). The sampling
    /// error comes on top of this, controlled by ε, δ and the schedule.
    pub fn tree_error_bound(&self) -> u64 {
        self.stats.tree_error_bound(self.w_max())
    }

    /// Collapse **all** full buffers into one (used by the parallel
    /// protocol, §6, before shipping buffers to the coordinator). No-op if
    /// fewer than two buffers are full.
    // panic-free: the collected slot list holds valid buffer indices by
    // construction (enumerate over the live buffers).
    pub fn collapse_all_full(&mut self) {
        self.bump_epoch();
        // The slot list leaves the arena for the duration so
        // perform_collapse can borrow `&mut self` while it is alive.
        let mut full = std::mem::take(&mut self.scratch.slots);
        full.clear();
        full.extend(
            self.buffers
                .iter()
                .enumerate()
                .filter(|(_, b)| b.state() == BufferState::Full)
                .map(|(i, _)| i),
        );
        if full.len() >= 2 {
            if let Some(max_level) = full.iter().map(|&i| self.buffers[i].level()).max() {
                self.perform_collapse(&full, max_level + 1);
            }
        }
        full.clear();
        self.scratch.slots = full;
    }

    /// Tear down the engine and return its non-empty buffers
    /// (full-or-partial), e.g. for shipping to a parallel coordinator.
    pub fn into_buffers(mut self) -> Vec<Buffer<T>> {
        self.finish();
        self.buffers
            .drain(..)
            .filter(|b| b.state() != BufferState::Empty)
            .collect()
    }

    // ---- snapshot support (see crate::snapshot) --------------------------

    /// All buffer slots (including empty ones), for snapshotting.
    pub(crate) fn raw_buffers(&self) -> &[Buffer<T>] {
        &self.buffers
    }

    /// True when slot `idx` holds raw deferred-seal data; the snapshot
    /// writer sorts its copy of such a slot before serialising.
    pub(crate) fn slot_is_unsorted(&self, idx: usize) -> bool {
        self.unsorted_mask.get(idx).copied().unwrap_or(false)
    }

    /// Flag slot `idx` as holding raw deferred-seal data, growing the mask
    /// to cover lazily allocated slots.
    // panic-free: the resize directly above guarantees idx is in bounds.
    fn mark_unsorted(&mut self, idx: usize) {
        if self.unsorted_mask.len() <= idx {
            self.unsorted_mask.resize(idx + 1, false);
        }
        self.unsorted_mask[idx] = true;
    }

    /// Lazy-allocation thresholds.
    pub(crate) fn allocation_thresholds(&self) -> &[u64] {
        &self.allocation
    }

    /// In-progress fill: (elements, rate, level, active?).
    pub(crate) fn fill_state(&self) -> (&[T], u64, u32, bool) {
        (&self.filler, self.fill_rate, self.fill_level, self.filling)
    }

    /// The pending (incomplete) block's representative and element count.
    pub(crate) fn pending_block(&self) -> Option<(T, u64)> {
        self.sampler.peek().map(|(v, seen)| (v.clone(), seen))
    }

    /// Even-weight collapse alternation phase.
    pub(crate) fn collapse_phase(&self) -> bool {
        self.collapse_high_phase
    }

    /// The rate schedule's current state.
    pub(crate) fn schedule_state(&self) -> &R {
        &self.rate_schedule
    }

    /// Overwrite the internals from a snapshot (called by
    /// [`Engine::restore`] on a freshly constructed engine).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn restore_internals(
        &mut self,
        buffers: Vec<Buffer<T>>,
        filler: Vec<T>,
        fill_rate: u64,
        fill_level: u32,
        filling: bool,
        pending: Option<(T, u64)>,
        collapse_high_phase: bool,
        stats: TreeStats,
        finished: bool,
    ) {
        assert!(filler.len() < self.config.buffer_size || !filling);
        // Slot table: the restored buffers plus one empty slot when a fill
        // is in progress (begin_fill had reserved one).
        self.buffers = buffers;
        if filling {
            self.buffers.push(Buffer::empty(self.config.buffer_size));
        }
        assert!(
            self.buffers.len() <= self.config.num_buffers,
            "snapshot exceeds the buffer budget"
        );
        self.slot_nodes = vec![None; self.buffers.len()];
        self.max_allocated = self.buffers.len();
        // Snapshots always carry sorted buffer data (the writer sorts raw
        // slots' copies), so no deferred-seal marks survive a restore.
        self.unsorted_mask.fill(false);
        self.filler_runs.rebuild(&filler);
        self.filler = filler;
        self.fill_rate = fill_rate;
        self.fill_level = fill_level;
        self.filling = filling;
        self.sampler = BlockSampler::with_pending(fill_rate, pending);
        self.collapse_high_phase = collapse_high_phase;
        self.stats = stats;
        self.finished = finished;
        self.bump_epoch();
    }

    // ---- invariant auditor (feature "invariant-audit") -------------------

    /// Attach the offline-certified error coefficients: every subsequent
    /// seal/collapse/finish re-checks the live tree against them (see
    /// [`crate::invariant`]).
    #[cfg(feature = "invariant-audit")]
    pub fn set_certified_schedule(&mut self, certified: crate::invariant::CertifiedSchedule) {
        self.certified = Some(certified);
    }

    /// The attached certificate, if any.
    #[cfg(feature = "invariant-audit")]
    pub fn certified_schedule(&self) -> Option<&crate::invariant::CertifiedSchedule> {
        self.certified.as_ref()
    }

    /// Assert every MRL structural invariant plus the analysis-certified
    /// error bound on the live tree. Called after each seal, collapse and
    /// finish; also callable from tests at arbitrary quiescent points.
    ///
    /// # Panics
    /// Panics (with `context` in the message) on any violated invariant.
    // arith: the auditor recomputes accounting identities to *check* them;
    // `mass - n` is guarded by `mass >= n` in the same condition and the
    // sums mirror n()/output_mass(), whose bounds are established there.
    #[cfg(feature = "invariant-audit")]
    pub fn audit_invariants(&self, context: &str) {
        let k = self.config.buffer_size;
        // Weight conservation: the mass `Output` sees is exactly the
        // elements consumed — except after finish, where the partial
        // buffer's tail block rounds its weight up by < one block.
        let mass = self.output_mass();
        let n = self.n();
        if self.finished {
            assert!(
                mass >= n && mass - n < self.fill_rate.max(1),
                "[{context}] finished mass {mass} must round n {n} up by < one block \
                 (rate {})",
                self.fill_rate
            );
        } else {
            assert_eq!(
                mass, n,
                "[{context}] weight conservation: output mass {mass} != elements {n}"
            );
        }
        // Occupancy legality and sortedness, per slot.
        assert!(
            self.buffers.len() <= self.config.num_buffers,
            "[{context}] {} slots allocated, budget is {}",
            self.buffers.len(),
            self.config.num_buffers
        );
        for (idx, b) in self.buffers.iter().enumerate() {
            match b.state() {
                BufferState::Empty => continue,
                BufferState::Full => assert_eq!(
                    b.data().len(),
                    k,
                    "[{context}] full buffer {idx} holds {} of {k} elements",
                    b.data().len()
                ),
                BufferState::Partial => assert!(
                    !b.data().is_empty() && b.data().len() <= k,
                    "[{context}] partial buffer {idx} holds {} of {k} elements",
                    b.data().len()
                ),
            }
            assert!(
                b.weight() >= 1,
                "[{context}] buffer {idx} has weight {}",
                b.weight()
            );
            // The partial buffer sealed by finish() carries the in-progress
            // fill's level, which may not have a completed leaf yet — allow
            // `fill_level` alongside the deepest recorded level.
            let level_cap = self.stats.max_level.max(self.fill_level);
            assert!(
                b.level() <= level_cap,
                "[{context}] buffer {idx} at level {} above the tree's max {level_cap}",
                b.level()
            );
            if !self.slot_is_unsorted(idx) {
                assert!(
                    b.data().is_sorted(),
                    "[{context}] buffer {idx} (weight {}, level {}) is not sorted",
                    b.weight(),
                    b.level()
                );
            }
        }
        // The certified bound: the live Lemma-4 tree error must stay within
        // what the data-free replay proved for this (b, k, h) schedule. The
        // replay covers the *streaming* schedule only — once finished, the
        // §6 shipping collapse (`collapse_all_full`) merges across levels
        // in a way the certificate never modelled, and its error is
        // accounted by the coordinator's merge analysis instead.
        if let Some(cert) = &self.certified {
            if mass > 0 && !self.finished {
                let sampling = self.rate_schedule.sampling_started();
                let bound = self.tree_error_bound() as f64;
                let budget = cert.tree_budget(sampling, mass, k);
                assert!(
                    bound <= budget,
                    "[{context}] tree error {bound} exceeds certified g·mass/k = {budget} \
                     (sampling {sampling}, mass {mass}, k {k})"
                );
                let eps_budget = cert.epsilon_budget(mass);
                assert!(
                    bound <= eps_budget,
                    "[{context}] tree error {bound} exceeds ε·mass = {eps_budget} (mass {mass})"
                );
            }
        }
    }

    // ---- internals ------------------------------------------------------

    fn empty_slot(&self) -> Option<usize> {
        self.buffers
            .iter()
            .position(|b| b.state() == BufferState::Empty)
    }

    // panic-free: allocation[allocated] is indexed only while allocated <
    // num_buffers, and the allocation schedule is built with num_buffers
    // entries at construction.
    // alloc: buffer-slot growth happens at most num_buffers times over the
    // engine's whole lifetime — the paper's b·k memory budget, not a
    // per-element cost.
    fn begin_fill(&mut self) {
        debug_assert!(!self.filling);
        debug_assert_eq!(self.sampler.pending(), 0);
        // Secure an empty slot: allocate lazily when the schedule allows,
        // collapse otherwise.
        while self.empty_slot().is_none() {
            let allocated = self.buffers.len();
            let may_allocate = allocated < self.config.num_buffers
                && self.stats.leaves >= self.allocation[allocated];
            let full_count = self
                .buffers
                .iter()
                .filter(|b| b.state() == BufferState::Full)
                .count();
            if may_allocate || full_count < 2 {
                assert!(
                    allocated < self.config.num_buffers,
                    "no empty buffer, none allocatable, and fewer than two full buffers"
                );
                self.buffers.push(Buffer::empty(self.config.buffer_size));
                self.slot_nodes.push(None);
                self.max_allocated = self.max_allocated.max(self.buffers.len());
            } else {
                self.collapse_once();
            }
        }
        let rate = self.rate_schedule.rate();
        if rate != self.fill_rate {
            self.metrics.counter_add(metrics::RATE_TRANSITIONS, 1);
            self.journal.record(EventKind::RateTransition {
                from: self.fill_rate,
                to: rate,
            });
        }
        self.metrics.gauge_set(metrics::RATE_CURRENT, rate as f64);
        self.fill_rate = rate;
        self.fill_level = self.rate_schedule.new_buffer_level();
        self.sampler.reset_with_rate(self.fill_rate);
        self.filling = true;
    }

    /// Take the completed fill out of the engine: a single-run fill is
    /// adopted as-is, few runs are k-way merged (`O(k log r)`), and a
    /// saturated tracker returns the data **unsorted** (`false` flag) so
    /// the sort can be deferred to collapse time, where raw siblings are
    /// sorted together in one pass.
    fn take_filler(&mut self) -> (Vec<T>, bool) {
        let timer = self.metrics.timer(metrics::SEAL_NS);
        let seal_begin = self.journal.now_ns();
        // Run count before saturation truncates it (saturated fills report
        // the tracker's limit + 1, the point at which counting stopped).
        let runs = self.filler_runs.starts().len() as u64;
        let mut data = std::mem::take(&mut self.filler);
        let (sorted, kernel) = if self.filler_runs.is_saturated() {
            self.metrics.counter_add(metrics::SEAL_PARKED_RAW, 1);
            (false, SealKernel::ParkedRaw)
        } else {
            let (seal_key, kernel) = if self.filler_runs.is_single_run() {
                (metrics::SEAL_PRESORTED, SealKernel::Presorted)
            } else {
                (metrics::SEAL_RUN_MERGE, SealKernel::RunMerge)
            };
            self.filler_runs.sort_data_with_radix(
                &mut data,
                &mut self.scratch.merge,
                &mut self.scratch.radix,
            );
            self.metrics.counter_add(seal_key, 1);
            (true, kernel)
        };
        timer.stop();
        if let Some(begin) = seal_begin {
            let end = self.journal.now_ns().unwrap_or(begin);
            self.journal.record_at(
                end,
                EventKind::BufferSeal {
                    level: self.fill_level,
                    kernel,
                    k: data.len() as u64,
                    runs,
                    dur_ns: end.saturating_sub(begin),
                },
            );
        }
        self.filler_runs.reset();
        (data, sorted)
    }

    // panic-free: empty_slot() is Some — begin_fill reserved the slot this
    // fill is completing into, and nothing between could occupy it.
    fn complete_fill(&mut self) {
        debug_assert_eq!(self.filler.len(), self.config.buffer_size);
        let (data, sorted) = self.take_filler();
        let idx = self
            .empty_slot()
            .expect("begin_fill reserved an empty slot");
        // Recycle the slot's retired allocation as the next fill's storage
        // instead of allocating a fresh vector per seal.
        self.filler = self.buffers[idx].take_storage();
        self.filler.reserve(self.config.buffer_size);
        self.buffers[idx].populate_raw(
            data,
            self.fill_rate,
            self.fill_level,
            self.config.buffer_size,
        );
        if !sorted {
            debug_assert!(!self.slot_is_unsorted(idx));
            self.mark_unsorted(idx);
        }
        if let Some(rec) = &mut self.recorder {
            self.slot_nodes[idx] = Some(rec.add_leaf(self.fill_rate, self.fill_level));
        }
        self.stats.record_leaf(self.fill_level);
        self.metrics
            .counter_add(Key::labeled(metrics::LEAVES_BY_LEVEL, self.fill_level), 1);
        if self.metrics.is_enabled() {
            self.publish_state_gauges();
        }
        self.rate_schedule.observe_level(self.fill_level);
        self.rate_schedule.observe_leaves(self.stats.leaves);
        if self.rate_schedule.sampling_started() && self.stats.record_onset() {
            self.metrics
                .gauge_set(metrics::SAMPLING_ONSET_N, self.stats.elements as f64);
        }
        self.filling = false;
        #[cfg(feature = "invariant-audit")]
        self.audit_invariants("seal");
    }

    /// Refresh the point-in-time gauges (buffer occupancy by level,
    /// allocation, stream position, sampler draws). Called once per sealed
    /// buffer, and only when a recorder is attached.
    // panic-free: occupied[level] is preceded by resize(level + 1, …) on
    // the same branch whenever it is out of range.
    fn publish_state_gauges(&mut self) {
        let occupied = &mut self.scratch.occupancy;
        occupied.clear();
        for b in &self.buffers {
            if b.state() != BufferState::Empty {
                let level = b.level() as usize;
                if occupied.len() <= level {
                    occupied.resize(level + 1, 0);
                }
                occupied[level] += 1;
            }
        }
        for (level, &count) in occupied.iter().enumerate() {
            if count > 0 {
                self.metrics.gauge_set(
                    Key::labeled(metrics::OCCUPANCY_BY_LEVEL, level as u32),
                    count as f64,
                );
            }
        }
        self.metrics
            .gauge_set(metrics::BUFFERS_ALLOCATED, self.buffers.len() as f64);
        self.metrics
            .gauge_set(metrics::ELEMENTS, self.stats.elements as f64);
        self.metrics
            .gauge_set(metrics::SAMPLER_DRAWS, self.sampler.draws() as f64);
    }

    // panic-free: promotion/collapse indices come from the policy, which
    // only sees metas built from real slot indices via enumerate().
    fn collapse_once(&mut self) {
        let mut metas = std::mem::take(&mut self.scratch.meta);
        metas.clear();
        metas.extend(
            self.buffers
                .iter()
                .enumerate()
                .filter(|(_, b)| b.state() == BufferState::Full)
                .map(|(i, b)| b.meta(i)),
        );
        let mut decision = std::mem::take(&mut self.scratch.decision);
        self.policy.choose_into(&metas, &mut decision);
        self.scratch.meta = metas;
        for &(idx, level) in &decision.promotions {
            self.buffers[idx].promote(level);
        }
        assert!(
            decision.collapse.len() >= 2,
            "policy must collapse >= 2 buffers"
        );
        self.perform_collapse(&decision.collapse, decision.output_level);
        decision.clear();
        self.scratch.decision = decision;
    }

    // panic-free: `slots` holds ≥ 2 valid, distinct buffer indices (asserted
    // by collapse_once, constructed by collapse_all_full's enumerate); the
    // raw fast path's strided gather stays in bounds because its last index
    // (first - 1)/w0 + (k - 1)·c < c·k = |concat| (and iterator adapters
    // cannot overrun regardless).
    // alloc: recorder bookkeeping and the scalar-reference mode's source
    // list run once per collapse (every k·2^level elements), amortised O(1)
    // per element; everything else works inside the scratch arena.
    fn perform_collapse(&mut self, slots: &[usize], output_level: u32) {
        let collapse_timer = self.metrics.timer(metrics::COLLAPSE_NS);
        let collapse_begin = self.journal.now_ns();
        if let Some(begin) = collapse_begin {
            // Full provenance, recorded while the sources are intact: one
            // event per source buffer, contiguously ahead of the collapse
            // event on the same thread's ring. All sources share the
            // already-taken begin timestamp — provenance is identity, not
            // timing, and skipping the per-source clock read keeps the
            // attached overhead inside the BENCH_obs.json bar.
            for &i in slots {
                let b = &self.buffers[i];
                self.journal.record_at(
                    begin,
                    EventKind::CollapseSource {
                        slot: i as u32,
                        level: b.level(),
                        weight: b.weight(),
                        len: b.data().len() as u64,
                    },
                );
            }
        }
        let w: u64 = slots.iter().map(|&i| self.buffers[i].weight()).sum();
        let high = if w.is_multiple_of(2) {
            let phase = self.collapse_high_phase;
            self.collapse_high_phase = !self.collapse_high_phase;
            phase
        } else {
            false
        };
        // Collapse targets always form the arithmetic progression
        // `first + j·w` (§3.2); the chunked paths below consume the
        // progression parameters directly and never materialise a target
        // vector.
        let first = collapse_first_target(w, high);
        let k = self.config.buffer_size;
        let mut new_data = std::mem::take(&mut self.scratch.select_out);
        let w0 = self.buffers[slots[0]].weight();
        let equal_weights =
            slots.len() >= 2 && slots.iter().all(|&i| self.buffers[i].weight() == w0);
        let all_raw = slots.iter().all(|&i| self.slot_is_unsorted(i));
        // The concat path serves two shapes: every input raw (one sort of
        // the concatenation replaces the deferred per-buffer sorts plus
        // the merge walk, in either kernel mode), and — with the chunked
        // kernels on — any ≥ 3-way equal-weight collapse, where one
        // concat sort beats the pair-merge materialisation even though
        // the inputs are already sorted. Scalar mode keeps ≥ 3-way sorted
        // collapses on the classic walk so the reference path stays
        // exercised.
        let concat_path =
            equal_weights && (all_raw || (chunked_kernels_enabled() && slots.len() >= 3));
        if concat_path {
            // Equal weight `w0` everywhere: concatenate, sort once, and
            // index the evenly spaced targets directly. Position `t`
            // (1-based) of the weighted merged sequence is the sorted
            // concatenation's element `(t - 1) / w0`, and sorting the
            // concatenation yields the same value sequence as merging the
            // individually sorted inputs, so the selected elements are
            // identical to the general path's.
            let concat = &mut self.scratch.concat;
            concat.clear();
            for &i in slots {
                concat.extend_from_slice(self.buffers[i].data());
            }
            if !try_sort_fixed(concat, &mut self.scratch.radix) {
                concat.sort_unstable();
            }
            if all_raw {
                self.metrics.counter_add(metrics::COLLAPSE_RAW_FAST_PATH, 1);
            }
            // Target positions step by `w = c·w0`, so the indices step by
            // exactly `c` from `(first - 1) / w0` — a strided gather, no
            // per-target division.
            let start = ((first - 1) / w0) as usize;
            new_data.clear();
            new_data.extend(
                concat
                    .iter()
                    .skip(start)
                    .step_by(slots.len())
                    .take(k)
                    .cloned(),
            );
        } else {
            // Mixed weights: restore the sorted invariant on any raw input
            // first (the sort deferred from its seal happens here instead),
            // then run the weighted merge selection.
            for &i in slots {
                // Field access (not clear_unsorted) keeps the borrow
                // disjoint from the live metrics timer.
                let raw = self
                    .unsorted_mask
                    .get_mut(i)
                    .map(|m| std::mem::replace(m, false))
                    .unwrap_or(false);
                if raw {
                    self.buffers[i].make_sorted_with(&mut self.scratch.radix);
                }
            }
            // Collapse targets are spaced `w` apart while each merge step
            // adds some wᵢ ≤ w − 1, so the single-crossing contract of the
            // branchless kernels always holds here and they can run
            // directly over the buffers — no per-collapse source list. Two
            // and three sources — together all but a sliver of the mixed
            // collapses the adaptive policy emits — walk the buffers in
            // place; only ≥ 4 sources pay the pair-merge materialisation.
            if chunked_kernels_enabled() && slots.len() == 2 {
                let (a, b) = (&self.buffers[slots[0]], &self.buffers[slots[1]]);
                select_two_weighted_spaced(
                    a.data(),
                    a.weight(),
                    b.data(),
                    b.weight(),
                    first,
                    w,
                    k,
                    &mut new_data,
                );
            } else if chunked_kernels_enabled() && slots.len() == 3 {
                let (a, b, c) = (
                    &self.buffers[slots[0]],
                    &self.buffers[slots[1]],
                    &self.buffers[slots[2]],
                );
                select_three_weighted_spaced(
                    a.data(),
                    a.weight(),
                    b.data(),
                    b.weight(),
                    c.data(),
                    c.weight(),
                    first,
                    w,
                    k,
                    &mut new_data,
                );
            } else if chunked_kernels_enabled() {
                // ≥ 4 sources: pair-merge the buffers into one weighted
                // run inside the arena, then one branchless sweep.
                let (pairs, starts, pair_merge) = self.scratch.select.pair_parts_mut();
                pairs.clear();
                starts.clear();
                for &i in slots {
                    starts.push(pairs.len());
                    let b = &self.buffers[i];
                    let w_i = b.weight();
                    pairs.extend(b.data().iter().map(|v| (v.clone(), w_i)));
                }
                merge_sorted_runs_with(pairs, starts, pair_merge);
                select_merged_weighted_spaced(pairs, first, w, k, &mut new_data);
            } else {
                // Scalar-reference mode (`scalar-kernels`): the classic
                // walk over a per-collapse source list and a materialised
                // target vector.
                let mut targets = std::mem::take(&mut self.scratch.targets);
                collapse_targets_into(k, w, high, &mut targets);
                let sources: Vec<WeightedSource<'_, T>> = slots
                    .iter()
                    .map(|&i| WeightedSource::new(self.buffers[i].data(), self.buffers[i].weight()))
                    .collect();
                select_weighted_with(&sources, &targets, &mut new_data, &mut self.scratch.select);
                self.scratch.targets = targets;
            }
        }
        if let Some(rec) = &mut self.recorder {
            let children: Vec<usize> = slots.iter().filter_map(|&i| self.slot_nodes[i]).collect();
            let node = rec.add_collapse(w, output_level, children);
            for &i in slots {
                self.slot_nodes[i] = None;
            }
            self.slot_nodes[slots[0]] = Some(node);
        }
        for &i in slots {
            self.buffers[i].clear();
        }
        // Cleared slots no longer hold raw data (fast-path inputs keep their
        // marks until here); the output below is sorted, so no new mark.
        for &i in slots {
            if let Some(m) = self.unsorted_mask.get_mut(i) {
                *m = false;
            }
        }
        // Recycle the cleared output slot's old allocation as the next
        // collapse's selection scratch: steady-state collapsing then swaps
        // two k-capacity vectors back and forth without allocating.
        self.scratch.select_out = self.buffers[slots[0]].take_storage();
        // Collapse output comes out of the weighted selection already
        // sorted — adopt it without a re-sort.
        self.buffers[slots[0]].populate_sorted(new_data, w, output_level, self.config.buffer_size);
        self.stats.record_collapse(w, output_level);
        self.metrics.counter_add(metrics::COLLAPSES, 1);
        self.metrics.gauge_set(
            metrics::COLLAPSE_WEIGHT_SUM,
            self.stats.collapse_weight_sum as f64,
        );
        collapse_timer.stop();
        if let Some(begin) = collapse_begin {
            let path = if concat_path {
                CollapsePath::Concat
            } else if chunked_kernels_enabled() && slots.len() == 2 {
                CollapsePath::TwoSource
            } else if chunked_kernels_enabled() && slots.len() == 3 {
                CollapsePath::ThreeSource
            } else if chunked_kernels_enabled() {
                CollapsePath::PairMerge
            } else {
                CollapsePath::Scalar
            };
            let end = self.journal.now_ns().unwrap_or(begin);
            self.journal.record_at(
                end,
                EventKind::Collapse {
                    output_level,
                    sources: slots.len() as u32,
                    path,
                    weight_sum: w,
                    dur_ns: end.saturating_sub(begin),
                },
            );
        }
        self.rate_schedule.observe_level(output_level);
        if self.rate_schedule.sampling_started() && self.stats.record_onset() {
            self.metrics
                .gauge_set(metrics::SAMPLING_ONSET_N, self.stats.elements as f64);
        }
        #[cfg(feature = "invariant-audit")]
        self.audit_invariants("collapse");
    }
}
