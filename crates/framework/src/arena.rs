//! The per-engine scratch arena: one owner for every buffer the
//! ingest→seal→collapse path reuses across operations.
//!
//! Steady-state streaming must not allocate (MRL-A003): each seal and each
//! collapse works entirely inside storage retained from earlier
//! operations. Historically that storage was a loose set of `*_scratch`
//! fields on [`crate::Engine`]; the arena gathers them into one struct so
//! the ownership story is visible in a single place, the borrow-splitting
//! idiom (`std::mem::take` a sub-buffer, use it, put it back) is applied
//! uniformly, and new hot-path code has an obvious home for its scratch
//! instead of a new ad-hoc field.
//!
//! All buffers hold their *capacity* across uses while logically empty
//! between operations; none of them carries engine state. Dropping the
//! arena (or replacing it with `Default::default()`) only costs future
//! re-reservations, never correctness.

use std::cell::RefCell;

use crate::buffer::BufferMeta;
use crate::merge::SelectScratch;
use crate::policy::CollapseDecision;
use crate::radix::RadixScratch;
use crate::runs::MergeScratch;
use crate::spine::QuerySpine;

/// Scratch storage reused by the engine's seal and collapse paths.
///
/// See the field docs for which operation owns which buffer; the engine
/// threads these through the call graph by `&mut` (or `std::mem::take`
/// where a buffer must outlive a second `&mut self` borrow).
#[derive(Clone, Debug)]
pub struct ScratchArena<T> {
    /// Seal-time run merge: ping-pong buffer plus run-bounds scratch
    /// (`RunTracker::sort_data_with`).
    pub(crate) merge: MergeScratch<T>,
    /// Raw-collapse concatenation: the deferred-seal inputs are gathered
    /// here and sorted in one pass.
    pub(crate) concat: Vec<T>,
    /// Collapse output staging: the selection writes here, then the vector
    /// is swapped into the output buffer slot (whose retired storage
    /// becomes the next collapse's staging via `take_storage`).
    pub(crate) select_out: Vec<T>,
    /// Internals of the weighted-selection kernels: walk positions, the
    /// `(element, weight)` pair buffers of the multi-source merge path and
    /// their run bounds.
    pub(crate) select: SelectScratch<T>,
    /// Collapse target positions (`collapse_targets_into`).
    pub(crate) targets: Vec<u64>,
    /// Full-buffer metadata snapshot handed to the collapse policy.
    pub(crate) meta: Vec<BufferMeta>,
    /// Occupancy-by-level counts for the metrics gauges.
    pub(crate) occupancy: Vec<u64>,
    /// Slot-index list for whole-set collapses (`collapse_all_full`).
    pub(crate) slots: Vec<usize>,
    /// Staging buffer that batches `Engine::extend`'s iterator into
    /// `insert_batch` calls.
    pub(crate) stage: Vec<T>,
    /// Collapse-policy decision scratch (`CollapsePolicy::choose_into`):
    /// the promotion and collapse-slot vectors are refilled each collapse.
    pub(crate) decision: CollapseDecision,
    /// Radix-seal ping-pong buffer (`radix::sort_fixed`), used by every
    /// seal and raw-collapse sort when the element type is fixed-width.
    pub(crate) radix: RadixScratch<T>,
    /// The epoch-cached query spine. `RefCell` because queries take
    /// `&self` (Output never mutates sketch state, §3.7) but the first
    /// query after an ingest epoch bump materialises the merged view
    /// here; a stale spine is never *wrong*, only rebuilt — dropping the
    /// arena still costs only re-reservations plus one rebuild.
    pub(crate) spine: RefCell<QuerySpine<T>>,
}

// Manual impl: the derive would demand `T: Default`, which empty vectors
// do not need.
impl<T> Default for ScratchArena<T> {
    fn default() -> Self {
        Self {
            merge: MergeScratch::default(),
            concat: Vec::new(),
            select_out: Vec::new(),
            select: SelectScratch::default(),
            targets: Vec::new(),
            meta: Vec::new(),
            occupancy: Vec::new(),
            slots: Vec::new(),
            stage: Vec::new(),
            decision: CollapseDecision::default(),
            radix: RadixScratch::default(),
            spine: RefCell::new(QuerySpine::default()),
        }
    }
}
