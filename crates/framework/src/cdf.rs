//! Inverse-quantile (rank) queries and CDF export.
//!
//! The paper's §1.1 motivates quantiles through query optimizers:
//! "Quantiles are used by query optimizers to provide selectivity
//! estimates for simple predicates on table values." A selectivity
//! estimate for `col <= v` is exactly an (approximate) **rank** query —
//! the inverse of `Output`. This module adds:
//!
//! * [`Engine::rank_of`] — the weighted fraction of elements `< v` and
//!   `<= v` (the predicate selectivities), with the same error structure
//!   as quantile queries;
//! * [`Engine::cdf`] — the full stepwise CDF of the sketch's weighted
//!   contents, for plotting or exporting to an optimizer's statistics
//!   catalogue.

use crate::buffer::BufferState;
use crate::engine::Engine;
use crate::merge::WeightedSource;
use crate::policy::CollapsePolicy;
use crate::schedule::RateSchedule;

/// One step of an exported CDF: everything `<= value` has cumulative
/// weighted fraction `cumulative`.
#[derive(Clone, Debug, PartialEq)]
pub struct CdfPoint<T> {
    /// Step value.
    pub value: T,
    /// Weighted fraction of the stream `<= value` (in `(0, 1]`).
    pub cumulative: f64,
}

impl<T, P, R> Engine<T, P, R>
where
    T: Ord + Clone + 'static,
    P: CollapsePolicy,
    R: RateSchedule,
{
    /// Approximate selectivities of the predicates `x < v` and `x <= v`:
    /// returns `(frac_below, frac_at_most)` as fractions of the stream.
    /// `None` before any element has arrived.
    ///
    /// The estimate's error has the same structure as a quantile query's:
    /// the deterministic tree contributes up to
    /// [`Engine::tree_error_bound`]` / N` and sampling the usual
    /// `(1−α)·ε` share.
    pub fn rank_of(&self, value: &T) -> Option<(f64, f64)> {
        // Cached read path: two binary searches over the spine instead of
        // a full weighted scan per call.
        if let Some(cached) = self.with_current_spine(|spine| {
            let s = spine.total();
            if s == 0 {
                return None;
            }
            let (below, at_most) = spine.rank(value);
            Some((below as f64 / s as f64, at_most as f64 / s as f64))
        }) {
            return cached;
        }
        let mass = self.output_mass();
        if mass == 0 {
            return None;
        }
        let mut below: u64 = 0;
        let mut at_most: u64 = 0;
        self.for_each_weighted(|v, w| {
            if v < value {
                below += w;
            }
            if v <= value {
                at_most += w;
            }
        });
        Some((below as f64 / mass as f64, at_most as f64 / mass as f64))
    }

    /// Export the stepwise CDF of the sketch's weighted contents: one
    /// point per distinct stored value, in ascending order, with strictly
    /// increasing cumulative fractions ending at 1.0. Empty before any
    /// element has arrived.
    ///
    /// At most `b·k + k` points — a bounded-size approximate description
    /// of the whole distribution (the "synopsis" of §1.5).
    pub fn cdf(&self) -> Vec<CdfPoint<T>> {
        // Cached read path: the spine *is* the stepwise CDF in weighted
        // form — emit it directly (only the returned Vec is allocated; the
        // sort-and-coalesce work is amortised across the epoch).
        if let Some(cached) = self.with_current_spine(|spine| {
            let s = spine.total();
            spine
                .points()
                .map(|(value, cum)| CdfPoint {
                    value: value.clone(),
                    cumulative: cum as f64 / s as f64,
                })
                .collect()
        }) {
            return cached;
        }
        let mass = self.output_mass();
        if mass == 0 {
            return Vec::new();
        }
        let mut weighted: Vec<(T, u64)> = Vec::new();
        self.for_each_weighted(|v, w| weighted.push((v.clone(), w)));
        weighted.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let mut out: Vec<CdfPoint<T>> = Vec::with_capacity(weighted.len());
        let mut cum: u64 = 0;
        for (value, w) in weighted {
            cum += w;
            match out.last_mut() {
                Some(last) if last.value == value => {
                    last.cumulative = cum as f64 / mass as f64;
                }
                _ => out.push(CdfPoint {
                    value,
                    cumulative: cum as f64 / mass as f64,
                }),
            }
        }
        out
    }

    /// Visit every (element, weight) pair `Output` would consult (also
    /// the feed for the query spine's rebuild in `engine.rs`).
    pub(crate) fn for_each_weighted<F: FnMut(&T, u64)>(&self, mut f: F) {
        for b in self.raw_buffers() {
            if b.state() != BufferState::Empty {
                for v in b.data() {
                    f(v, b.weight());
                }
            }
        }
        let (filler, rate, _, _) = self.fill_state();
        for v in filler {
            f(v, rate);
        }
        if let Some((v, seen)) = self.pending_block() {
            f(&v, seen);
        }
    }
}

/// Free-standing helper mirroring [`Engine::rank_of`] for already-merged
/// weighted sources (used by the parallel coordinator).
pub fn rank_of_sources<T: Ord>(sources: &[WeightedSource<'_, T>], value: &T) -> (u64, u64) {
    let mut below = 0u64;
    let mut at_most = 0u64;
    // Saturating: Σ weights over all elements is the total mass, which
    // weight conservation keeps ≤ the stream length, but a corrupted input
    // should clamp the rank rather than wrap it past the true value.
    for s in sources {
        for v in s.data {
            if v < value {
                below = below.saturating_add(s.weight);
            }
            if v <= value {
                at_most = at_most.saturating_add(s.weight);
            }
        }
    }
    (below, at_most)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AdaptiveLowestLevel, EngineConfig, FixedRate, Mrl99Schedule};

    fn engine(n: u64) -> Engine<u64, AdaptiveLowestLevel, Mrl99Schedule> {
        let mut e = Engine::new(
            EngineConfig::new(4, 32),
            AdaptiveLowestLevel,
            Mrl99Schedule::new(2),
            3,
        );
        for i in 0..n {
            e.insert((i * 2654435761) % n);
        }
        e
    }

    #[test]
    fn rank_of_tracks_uniform_values() {
        let n = 200_000u64;
        let e = engine(n);
        // This small ad-hoc config is not certified for any particular
        // epsilon; score against its own instantaneous bound plus sampling
        // slack.
        let tol = e.tree_error_bound() as f64 / n as f64 + 0.02;
        for frac in [0.1, 0.5, 0.9] {
            let v = (frac * n as f64) as u64;
            let (below, _) = e.rank_of(&v).unwrap();
            assert!(
                (below - frac).abs() < tol,
                "rank_of({v}) = {below}, expected ~{frac} (tol {tol:.4})"
            );
        }
    }

    #[test]
    fn rank_of_extremes() {
        let e = engine(10_000);
        let (below_min, _) = e.rank_of(&0).unwrap();
        assert_eq!(below_min, 0.0);
        let (_, at_most_max) = e.rank_of(&u64::MAX).unwrap();
        assert!((at_most_max - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rank_of_is_inverse_of_query() {
        let e = engine(100_000);
        for phi in [0.2, 0.5, 0.8] {
            let q = e.query(phi).unwrap();
            let (below, at_most) = e.rank_of(&q).unwrap();
            // rank_of and query consult the same weighted contents, so
            // they must agree exactly (no extra approximation on top).
            assert!(
                below <= phi && at_most >= phi,
                "phi={phi}: rank interval [{below}, {at_most}] misses"
            );
        }
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let e = engine(50_000);
        let cdf = e.cdf();
        assert!(!cdf.is_empty());
        for w in cdf.windows(2) {
            assert!(w[0].value < w[1].value, "values not strictly ascending");
            assert!(w[0].cumulative < w[1].cumulative, "cdf not increasing");
        }
        assert!((cdf.last().unwrap().cumulative - 1.0).abs() < 1e-12);
        // Bounded size: at most b*k + k + 1 points.
        assert!(cdf.len() <= 4 * 32 + 32 + 1);
    }

    #[test]
    fn cdf_of_duplicates_merges_steps() {
        let mut e: Engine<u64, _, _> = Engine::new(
            EngineConfig::new(3, 8),
            AdaptiveLowestLevel,
            FixedRate::new(1),
            1,
        );
        for i in 0..100u64 {
            e.insert(i % 3);
        }
        let cdf = e.cdf();
        assert_eq!(cdf.len(), 3);
        assert!((cdf[2].cumulative - 1.0).abs() < 1e-12);
        // Roughly a third each.
        assert!((cdf[0].cumulative - 1.0 / 3.0).abs() < 0.05);
    }

    #[test]
    fn empty_engine_has_no_cdf() {
        let e: Engine<u64, AdaptiveLowestLevel, FixedRate> = Engine::new(
            EngineConfig::new(2, 4),
            AdaptiveLowestLevel,
            FixedRate::new(1),
            1,
        );
        assert!(e.cdf().is_empty());
        assert!(e.rank_of(&5).is_none());
    }
}
