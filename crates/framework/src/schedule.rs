//! Sampling-rate schedules: how the rate of the `New` operation evolves.
//!
//! The heart of MRL99 is the **non-uniform** schedule of §3.7: the algorithm
//! starts deterministic (rate 1, new buffers at level 0); once the collapse
//! tree reaches height `h`, sampling begins with rate 2 and new buffers at
//! level 1; each time the tree grows another level the rate doubles. The
//! effect is that early stream elements are sampled with higher probability
//! than later ones, which is what lets the algorithm handle a stream of
//! unknown length with the space of the best known-`N` algorithms.

/// How the engine picks the sampling rate and level of the next `New`.
pub trait RateSchedule {
    /// Current block size `r`: `New` keeps one element per block of `r`.
    fn rate(&self) -> u64;

    /// Level assigned to buffers produced by `New` at the current rate.
    fn new_buffer_level(&self) -> u32;

    /// Notify the schedule that a buffer now exists at `level` (either a
    /// `New` output or a `Collapse` output). May change the rate.
    fn observe_level(&mut self, level: u32);

    /// Notify the schedule that `leaves` `New` operations have completed
    /// (used by the leaf-count onset of §5; default no-op).
    fn observe_leaves(&mut self, leaves: u64) {
        let _ = leaves;
    }

    /// True once the rate has exceeded 1 (sampling onset, §3.7).
    fn sampling_started(&self) -> bool;
}

use serde::{Deserialize, Serialize};

/// The MRL99 non-uniform schedule (§3.7).
///
/// Rate 1 and level 0 until the first buffer at height `h` appears; then,
/// whenever the first buffer at height `h + i` is produced (`i ≥ 0`),
/// subsequent `New` operations run at rate `2^{i+1}` and their buffers get
/// level `i + 1`.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq, Eq)]
pub struct Mrl99Schedule {
    h: u32,
    max_level_seen: u32,
    seen_any: bool,
}

impl Mrl99Schedule {
    /// Create the schedule with sampling-onset height `h ≥ 1`.
    ///
    /// # Panics
    /// Panics if `h == 0` (the tree trivially starts at height 0, so `h = 0`
    /// would mean sampling before any data arrives).
    pub fn new(h: u32) -> Self {
        assert!(h >= 1, "onset height h must be at least 1");
        Self {
            h,
            max_level_seen: 0,
            seen_any: false,
        }
    }

    /// The onset height `h`.
    pub fn h(&self) -> u32 {
        self.h
    }

    /// The greatest buffer level observed so far (tree height).
    pub fn height(&self) -> u32 {
        if self.seen_any {
            self.max_level_seen
        } else {
            0
        }
    }
}

impl RateSchedule for Mrl99Schedule {
    fn rate(&self) -> u64 {
        if !self.seen_any || self.max_level_seen < self.h {
            1
        } else {
            let i = self.max_level_seen - self.h;
            1u64 << (i + 1)
        }
    }

    fn new_buffer_level(&self) -> u32 {
        if !self.seen_any || self.max_level_seen < self.h {
            0
        } else {
            self.max_level_seen - self.h + 1
        }
    }

    fn observe_level(&mut self, level: u32) {
        if !self.seen_any || level > self.max_level_seen {
            self.seen_any = true;
            self.max_level_seen = self.max_level_seen.max(level);
        }
    }

    fn sampling_started(&self) -> bool {
        self.seen_any && self.max_level_seen >= self.h
    }
}

/// A constant-rate schedule: rate `r` forever, new buffers at level 0.
///
/// `FixedRate::new(1)` gives the deterministic known-`N` algorithms of
/// MRL98/\[MP80\]/\[ARS97\]; `r > 1` gives the uniformly sampled known-`N`
/// variant (the sampling rate can be fixed up front precisely because `N` is
/// known).
#[derive(Clone, Copy, Debug, Serialize, Deserialize, PartialEq, Eq)]
pub struct FixedRate {
    rate: u64,
}

impl FixedRate {
    /// Create a constant-rate schedule.
    ///
    /// # Panics
    /// Panics if `rate == 0`.
    pub fn new(rate: u64) -> Self {
        assert!(rate >= 1, "sampling rate must be at least 1");
        Self { rate }
    }
}

impl RateSchedule for FixedRate {
    fn rate(&self) -> u64 {
        self.rate
    }

    fn new_buffer_level(&self) -> u32 {
        0
    }

    fn observe_level(&mut self, _level: u32) {}

    fn sampling_started(&self) -> bool {
        self.rate > 1
    }
}

/// The §5 variant of the non-uniform schedule: deterministic until exactly
/// `L_d` leaves have been created ("When L_d New operations have been
/// carried out, we start sampling and we follow the original algorithm"),
/// then rate-doubling anchored at the tree height reached at onset.
///
/// This is the onset rule the dynamic buffer-allocation algorithm needs:
/// with buffers allocated lazily, the tree reaches any fixed height far too
/// early, so the trigger must be the leaf count, not the height.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq, Eq)]
pub struct LeafCountSchedule {
    l_d: u64,
    leaves: u64,
    max_level: u32,
    /// Tree height at onset; sampling rate is `2^{max_level − base + 1}`
    /// once set.
    base: Option<u32>,
}

impl LeafCountSchedule {
    /// Start sampling after exactly `l_d ≥ 1` leaves.
    ///
    /// # Panics
    /// Panics if `l_d == 0`.
    pub fn new(l_d: u64) -> Self {
        assert!(l_d >= 1, "need at least one deterministic leaf");
        Self {
            l_d,
            leaves: 0,
            max_level: 0,
            base: None,
        }
    }

    /// The configured onset leaf count.
    pub fn l_d(&self) -> u64 {
        self.l_d
    }
}

impl RateSchedule for LeafCountSchedule {
    fn rate(&self) -> u64 {
        match self.base {
            None => 1,
            Some(base) => 1u64 << (self.max_level.saturating_sub(base) + 1),
        }
    }

    fn new_buffer_level(&self) -> u32 {
        match self.base {
            None => 0,
            Some(base) => self.max_level.saturating_sub(base) + 1,
        }
    }

    fn observe_level(&mut self, level: u32) {
        self.max_level = self.max_level.max(level);
    }

    fn observe_leaves(&mut self, leaves: u64) {
        self.leaves = leaves;
        if self.base.is_none() && self.leaves >= self.l_d {
            self.base = Some(self.max_level);
        }
    }

    fn sampling_started(&self) -> bool {
        self.base.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_deterministic_below_h() {
        let mut s = Mrl99Schedule::new(3);
        assert_eq!(s.rate(), 1);
        assert_eq!(s.new_buffer_level(), 0);
        s.observe_level(0);
        s.observe_level(1);
        s.observe_level(2);
        assert_eq!(s.rate(), 1);
        assert_eq!(s.new_buffer_level(), 0);
        assert!(!s.sampling_started());
    }

    #[test]
    fn onset_at_height_h_doubles_rate_per_level() {
        let mut s = Mrl99Schedule::new(3);
        s.observe_level(3); // first buffer at height h: i = 0
        assert!(s.sampling_started());
        assert_eq!(s.rate(), 2);
        assert_eq!(s.new_buffer_level(), 1);
        s.observe_level(4); // height h+1: i = 1
        assert_eq!(s.rate(), 4);
        assert_eq!(s.new_buffer_level(), 2);
        s.observe_level(7); // height h+4: i = 4
        assert_eq!(s.rate(), 32);
        assert_eq!(s.new_buffer_level(), 5);
    }

    #[test]
    fn observing_lower_levels_never_regresses() {
        let mut s = Mrl99Schedule::new(2);
        s.observe_level(4);
        let r = s.rate();
        s.observe_level(1);
        s.observe_level(3);
        assert_eq!(s.rate(), r);
    }

    #[test]
    fn h_one_starts_sampling_at_first_collapse() {
        let mut s = Mrl99Schedule::new(1);
        assert_eq!(s.rate(), 1);
        s.observe_level(0); // leaves do not trigger
        assert_eq!(s.rate(), 1);
        s.observe_level(1); // first collapse output
        assert_eq!(s.rate(), 2);
    }

    #[test]
    fn leaf_count_schedule_triggers_on_leaves() {
        let mut s = LeafCountSchedule::new(5);
        assert_eq!(s.rate(), 1);
        // Height grows but leaves have not reached l_d: still deterministic.
        s.observe_level(3);
        s.observe_leaves(4);
        assert!(!s.sampling_started());
        assert_eq!(s.rate(), 1);
        // Fifth leaf: onset, anchored at the current height 3.
        s.observe_leaves(5);
        assert!(s.sampling_started());
        assert_eq!(s.rate(), 2);
        assert_eq!(s.new_buffer_level(), 1);
        // Each further height gained doubles the rate.
        s.observe_level(4);
        assert_eq!(s.rate(), 4);
        assert_eq!(s.new_buffer_level(), 2);
        s.observe_level(6);
        assert_eq!(s.rate(), 16);
    }

    #[test]
    fn fixed_rate_is_constant() {
        let mut s = FixedRate::new(8);
        s.observe_level(10);
        assert_eq!(s.rate(), 8);
        assert_eq!(s.new_buffer_level(), 0);
        assert!(s.sampling_started());
        assert!(!FixedRate::new(1).sampling_started());
    }
}
