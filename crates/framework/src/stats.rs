//! Exact accounting of the collapse tree, mirroring the quantities in the
//! paper's analysis (§4):
//!
//! * `W` — the sum of weights of all `Collapse` outputs (Lemma 4/5),
//! * `C` — the number of `Collapse` operations,
//! * `Σnᵢ²` — the sum of squared block sizes over emitted sample elements,
//!   which together with `N = Σnᵢ` gives the Hoeffding quantity
//!   `X = (Σnᵢ)² / Σnᵢ²` of Lemma 2.
//!
//! These are maintained incrementally by the engine and exposed so tests can
//! assert the Lemma 4 bound `rank error ≤ (W + w_max)/2` against brute-force
//! computations, and so the analysis crate's data-free simulator can be
//! cross-checked against real executions.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Running statistics of an engine's collapse tree.
#[derive(Clone, Debug, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct TreeStats {
    /// Stream elements consumed so far (`N`).
    pub elements: u64,
    /// Completed (full) `New` buffers, i.e. leaves of the tree.
    pub leaves: u64,
    /// Leaves per level (level 0 = pre-sampling, level `i ≥ 1` = rate `2^i`).
    pub leaves_by_level: BTreeMap<u32, u64>,
    /// Number of `Collapse` operations performed (`C`).
    pub collapses: u64,
    /// Sum of the weights of all `Collapse` outputs (`W`).
    pub collapse_weight_sum: u64,
    /// `Σ nᵢ²` over sample elements emitted so far (`nᵢ` = block size).
    pub sum_block_sq: u64,
    /// Greatest buffer level produced so far (tree height).
    pub max_level: u32,
    /// `N` at the moment sampling started, if it has.
    pub sampling_onset_n: Option<u64>,
}

impl TreeStats {
    /// Record that a block of `n` elements emitted one sample element.
    ///
    /// Accumulation saturates instead of wrapping: `n²` alone overflows
    /// `u64` once the block size passes `2³²` (the doubling schedule gets
    /// there after enough rate transitions on a very long stream), and a
    /// wrapped `Σnᵢ²` would silently corrupt the Hoeffding `X` statistic.
    /// Saturated accounting keeps `X` a conservative (under-) estimate.
    pub fn record_block(&mut self, n: u64) {
        self.record_blocks(n, 1);
    }

    /// Record `count` consecutive blocks of `n` elements, one sample element
    /// each. Exactly equivalent to `count` calls of [`TreeStats::record_block`];
    /// the batched ingestion path uses this to keep accounting off the
    /// per-element hot loop. Saturates rather than wraps at `u64::MAX`.
    pub fn record_blocks(&mut self, n: u64, count: u64) {
        self.elements = self.elements.saturating_add(n.saturating_mul(count));
        let sq = (n as u128)
            .saturating_mul(n as u128)
            .saturating_mul(count as u128)
            .min(u64::MAX as u128) as u64;
        self.sum_block_sq = self.sum_block_sq.saturating_add(sq);
    }

    /// Record a completed `New` buffer at `level`. Saturates like the
    /// block accounting.
    pub fn record_leaf(&mut self, level: u32) {
        self.leaves = self.leaves.saturating_add(1);
        let per_level = self.leaves_by_level.entry(level).or_insert(0);
        *per_level = per_level.saturating_add(1);
        self.max_level = self.max_level.max(level);
    }

    /// Record a `Collapse` whose output has weight `w` at `level`.
    /// Saturates like the block accounting: `W` bounds a rank error and a
    /// saturated bound is still a valid (if pessimistic) error report,
    /// where a wrapped one would understate the error.
    pub fn record_collapse(&mut self, w: u64, level: u32) {
        self.collapses = self.collapses.saturating_add(1);
        self.collapse_weight_sum = self.collapse_weight_sum.saturating_add(w);
        self.max_level = self.max_level.max(level);
    }

    /// Record the onset of sampling. Returns `true` the first time (when
    /// the onset was actually recorded), so callers can publish the event.
    pub fn record_onset(&mut self) -> bool {
        if self.sampling_onset_n.is_none() {
            self.sampling_onset_n = Some(self.elements);
            true
        } else {
            false
        }
    }

    /// Fold another tree's accounting into this one (per-shard telemetry
    /// aggregation): additive quantities sum (saturating), `max_level`
    /// takes the maximum, and the merged sampling onset is the earliest of
    /// the two. The merged `X` is a conservative summary — Lemma 2 applies
    /// per worker, not to the concatenation.
    pub fn absorb(&mut self, other: &TreeStats) {
        self.elements = self.elements.saturating_add(other.elements);
        self.leaves = self.leaves.saturating_add(other.leaves);
        for (&level, &count) in &other.leaves_by_level {
            let per_level = self.leaves_by_level.entry(level).or_insert(0);
            *per_level = per_level.saturating_add(count);
        }
        self.collapses = self.collapses.saturating_add(other.collapses);
        self.collapse_weight_sum = self
            .collapse_weight_sum
            .saturating_add(other.collapse_weight_sum);
        self.sum_block_sq = self.sum_block_sq.saturating_add(other.sum_block_sq);
        self.max_level = self.max_level.max(other.max_level);
        self.sampling_onset_n = match (self.sampling_onset_n, other.sampling_onset_n) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
    }

    /// The Hoeffding quantity `X = (Σnᵢ)² / Σnᵢ²` of Lemma 2 for the sample
    /// emitted so far. Equals `N` while no sampling has happened. Returns 0.0
    /// before any input.
    pub fn hoeffding_x(&self) -> f64 {
        if self.sum_block_sq == 0 {
            return 0.0;
        }
        let n = self.elements as f64;
        n * n / self.sum_block_sq as f64
    }

    /// The deterministic part of the rank-error guarantee at this instant:
    /// `(W + w_max)/2` (weakened Lemma 4), where the caller supplies the
    /// current `w_max` (greatest weight among buffers that would participate
    /// in `Output`).
    pub fn tree_error_bound(&self, w_max: u64) -> u64 {
        self.collapse_weight_sum.saturating_add(w_max).div_ceil(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_accumulates() {
        let mut s = TreeStats::default();
        for _ in 0..4 {
            s.record_block(1);
        }
        s.record_leaf(0);
        assert_eq!(s.elements, 4);
        assert_eq!(s.leaves, 1);
        assert_eq!(s.sum_block_sq, 4);
        assert!((s.hoeffding_x() - 4.0).abs() < 1e-12);

        // A sampled leaf: 4 blocks of 8.
        for _ in 0..4 {
            s.record_block(8);
        }
        s.record_leaf(1);
        assert_eq!(s.elements, 36);
        assert_eq!(s.sum_block_sq, 4 + 4 * 64);
        // X = 36^2 / 260
        assert!((s.hoeffding_x() - 1296.0 / 260.0).abs() < 1e-9);

        s.record_collapse(2, 1);
        s.record_collapse(4, 2);
        assert_eq!(s.collapses, 2);
        assert_eq!(s.collapse_weight_sum, 6);
        assert_eq!(s.max_level, 2);
        assert_eq!(s.tree_error_bound(4), 5);
    }

    #[test]
    fn onset_recorded_once() {
        let mut s = TreeStats::default();
        s.record_block(1);
        assert!(s.record_onset());
        s.record_block(1);
        assert!(!s.record_onset());
        assert_eq!(s.sampling_onset_n, Some(1));
    }

    #[test]
    fn huge_blocks_saturate_instead_of_wrapping() {
        // n = 2^33: n² = 2^66 overflows u64 on its own. The old
        // `n * n * count` accumulation wrapped (2^66 mod 2^64 = 0 — the
        // statistic silently stopped growing); saturation pins it at
        // u64::MAX, which keeps X conservative.
        let mut s = TreeStats::default();
        let n = 1u64 << 33;
        s.record_blocks(n, 4);
        assert_eq!(s.elements, n * 4);
        assert_eq!(s.sum_block_sq, u64::MAX);
        // X stays finite and positive under saturation.
        assert!(s.hoeffding_x() > 0.0);
        assert!(s.hoeffding_x().is_finite());
    }

    #[test]
    fn batched_and_scalar_paths_agree_at_large_sizes() {
        // Below the saturation point the two paths must agree exactly,
        // including at block sizes where n²·count approaches u64::MAX.
        let n = (1u64 << 31) + 12_345;
        let count = 3u64;
        let mut batched = TreeStats::default();
        batched.record_blocks(n, count);
        let mut scalar = TreeStats::default();
        for _ in 0..count {
            scalar.record_block(n);
        }
        assert_eq!(batched, scalar);
        assert_eq!(batched.sum_block_sq, n * n * count);
    }

    #[test]
    fn element_count_saturates_at_u64_max() {
        let mut s = TreeStats::default();
        s.record_blocks(u64::MAX, 2);
        assert_eq!(s.elements, u64::MAX);
        assert_eq!(s.sum_block_sq, u64::MAX);
    }

    #[test]
    fn absorb_sums_additive_fields_and_minimizes_onset() {
        let mut a = TreeStats::default();
        a.record_blocks(2, 10);
        a.record_leaf(1);
        a.record_collapse(3, 2);
        a.sampling_onset_n = Some(40);

        let mut b = TreeStats::default();
        b.record_blocks(4, 5);
        b.record_leaf(1);
        b.record_leaf(3);
        b.record_collapse(5, 3);
        b.sampling_onset_n = Some(25);

        let mut merged = a.clone();
        merged.absorb(&b);
        assert_eq!(merged.elements, a.elements + b.elements);
        assert_eq!(merged.leaves, 3);
        assert_eq!(merged.leaves_by_level.get(&1), Some(&2));
        assert_eq!(merged.leaves_by_level.get(&3), Some(&1));
        assert_eq!(merged.collapses, 2);
        assert_eq!(merged.collapse_weight_sum, 8);
        assert_eq!(merged.sum_block_sq, a.sum_block_sq + b.sum_block_sq);
        assert_eq!(merged.max_level, 3);
        assert_eq!(merged.sampling_onset_n, Some(25));

        // Absorbing an empty accounting is the identity.
        let mut id = b.clone();
        id.absorb(&TreeStats::default());
        assert_eq!(id, b);
    }

    #[test]
    fn x_is_n_before_sampling() {
        let mut s = TreeStats::default();
        for _ in 0..100 {
            s.record_block(1);
        }
        assert!((s.hoeffding_x() - 100.0).abs() < 1e-12);
    }
}
