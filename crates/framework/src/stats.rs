//! Exact accounting of the collapse tree, mirroring the quantities in the
//! paper's analysis (§4):
//!
//! * `W` — the sum of weights of all `Collapse` outputs (Lemma 4/5),
//! * `C` — the number of `Collapse` operations,
//! * `Σnᵢ²` — the sum of squared block sizes over emitted sample elements,
//!   which together with `N = Σnᵢ` gives the Hoeffding quantity
//!   `X = (Σnᵢ)² / Σnᵢ²` of Lemma 2.
//!
//! These are maintained incrementally by the engine and exposed so tests can
//! assert the Lemma 4 bound `rank error ≤ (W + w_max)/2` against brute-force
//! computations, and so the analysis crate's data-free simulator can be
//! cross-checked against real executions.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Running statistics of an engine's collapse tree.
#[derive(Clone, Debug, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct TreeStats {
    /// Stream elements consumed so far (`N`).
    pub elements: u64,
    /// Completed (full) `New` buffers, i.e. leaves of the tree.
    pub leaves: u64,
    /// Leaves per level (level 0 = pre-sampling, level `i ≥ 1` = rate `2^i`).
    pub leaves_by_level: BTreeMap<u32, u64>,
    /// Number of `Collapse` operations performed (`C`).
    pub collapses: u64,
    /// Sum of the weights of all `Collapse` outputs (`W`).
    pub collapse_weight_sum: u64,
    /// `Σ nᵢ²` over sample elements emitted so far (`nᵢ` = block size).
    pub sum_block_sq: u64,
    /// Greatest buffer level produced so far (tree height).
    pub max_level: u32,
    /// `N` at the moment sampling started, if it has.
    pub sampling_onset_n: Option<u64>,
}

impl TreeStats {
    /// Record that a block of `n` elements emitted one sample element.
    pub fn record_block(&mut self, n: u64) {
        self.elements += n;
        self.sum_block_sq += n * n;
    }

    /// Record `count` consecutive blocks of `n` elements, one sample element
    /// each. Exactly equivalent to `count` calls of [`TreeStats::record_block`];
    /// the batched ingestion path uses this to keep accounting off the
    /// per-element hot loop.
    pub fn record_blocks(&mut self, n: u64, count: u64) {
        self.elements += n * count;
        self.sum_block_sq += n * n * count;
    }

    /// Record a completed `New` buffer at `level`.
    pub fn record_leaf(&mut self, level: u32) {
        self.leaves += 1;
        *self.leaves_by_level.entry(level).or_insert(0) += 1;
        self.max_level = self.max_level.max(level);
    }

    /// Record a `Collapse` whose output has weight `w` at `level`.
    pub fn record_collapse(&mut self, w: u64, level: u32) {
        self.collapses += 1;
        self.collapse_weight_sum += w;
        self.max_level = self.max_level.max(level);
    }

    /// Record the onset of sampling.
    pub fn record_onset(&mut self) {
        if self.sampling_onset_n.is_none() {
            self.sampling_onset_n = Some(self.elements);
        }
    }

    /// The Hoeffding quantity `X = (Σnᵢ)² / Σnᵢ²` of Lemma 2 for the sample
    /// emitted so far. Equals `N` while no sampling has happened. Returns 0.0
    /// before any input.
    pub fn hoeffding_x(&self) -> f64 {
        if self.sum_block_sq == 0 {
            return 0.0;
        }
        let n = self.elements as f64;
        n * n / self.sum_block_sq as f64
    }

    /// The deterministic part of the rank-error guarantee at this instant:
    /// `(W + w_max)/2` (weakened Lemma 4), where the caller supplies the
    /// current `w_max` (greatest weight among buffers that would participate
    /// in `Output`).
    pub fn tree_error_bound(&self, w_max: u64) -> u64 {
        (self.collapse_weight_sum + w_max).div_ceil(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_accumulates() {
        let mut s = TreeStats::default();
        for _ in 0..4 {
            s.record_block(1);
        }
        s.record_leaf(0);
        assert_eq!(s.elements, 4);
        assert_eq!(s.leaves, 1);
        assert_eq!(s.sum_block_sq, 4);
        assert!((s.hoeffding_x() - 4.0).abs() < 1e-12);

        // A sampled leaf: 4 blocks of 8.
        for _ in 0..4 {
            s.record_block(8);
        }
        s.record_leaf(1);
        assert_eq!(s.elements, 36);
        assert_eq!(s.sum_block_sq, 4 + 4 * 64);
        // X = 36^2 / 260
        assert!((s.hoeffding_x() - 1296.0 / 260.0).abs() < 1e-9);

        s.record_collapse(2, 1);
        s.record_collapse(4, 2);
        assert_eq!(s.collapses, 2);
        assert_eq!(s.collapse_weight_sum, 6);
        assert_eq!(s.max_level, 2);
        assert_eq!(s.tree_error_bound(4), 5);
    }

    #[test]
    fn onset_recorded_once() {
        let mut s = TreeStats::default();
        s.record_block(1);
        s.record_onset();
        s.record_block(1);
        s.record_onset();
        assert_eq!(s.sampling_onset_n, Some(1));
    }

    #[test]
    fn x_is_n_before_sampling() {
        let mut s = TreeStats::default();
        for _ in 0..100 {
            s.record_block(1);
        }
        assert!((s.hoeffding_x() - 100.0).abs() < 1e-12);
    }
}
