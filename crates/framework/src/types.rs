//! Element-type helpers.

use std::cmp::Ordering;
use std::fmt;

/// A totally ordered `f64` that rejects NaN at construction.
///
/// The framework is generic over `T: Ord + Clone`; `f64` is only partially
/// ordered, so floating-point streams wrap their values in `OrderedF64`.
/// `-0.0` and `+0.0` compare equal; infinities are allowed and ordered.
#[derive(Clone, Copy, Debug, PartialEq, PartialOrd)]
pub struct OrderedF64(f64);

impl OrderedF64 {
    /// Wrap a float, returning `None` for NaN.
    pub fn new(value: f64) -> Option<Self> {
        if value.is_nan() {
            None
        } else {
            Some(Self(value))
        }
    }

    /// Wrap a float, panicking on NaN. Convenient for literals and
    /// generators that cannot produce NaN.
    ///
    /// # Panics
    /// Panics if `value` is NaN.
    pub fn from_f64(value: f64) -> Self {
        Self::new(value).expect("NaN cannot be ordered")
    }

    /// The wrapped value.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for OrderedF64 {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for OrderedF64 {
    // panic-free: NaN is rejected at construction, so partial_cmp on the
    // wrapped values is always Some.
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("OrderedF64 is NaN-free")
    }
}

impl fmt::Display for OrderedF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl From<OrderedF64> for f64 {
    fn from(v: OrderedF64) -> f64 {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_like_f64() {
        let mut v = vec![
            OrderedF64::from_f64(3.5),
            OrderedF64::from_f64(-1.0),
            OrderedF64::from_f64(f64::INFINITY),
            OrderedF64::from_f64(0.0),
            OrderedF64::from_f64(f64::NEG_INFINITY),
        ];
        v.sort();
        let got: Vec<f64> = v.into_iter().map(f64::from).collect();
        assert_eq!(got, vec![f64::NEG_INFINITY, -1.0, 0.0, 3.5, f64::INFINITY]);
    }

    #[test]
    fn nan_is_rejected() {
        assert!(OrderedF64::new(f64::NAN).is_none());
        assert!(OrderedF64::new(1.0).is_some());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn from_f64_panics_on_nan() {
        let _ = OrderedF64::from_f64(f64::NAN);
    }
}
