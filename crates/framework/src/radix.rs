//! Radix sealing for fixed-width keys: the type-specialised sort that
//! closes the gap comparison sorting cannot.
//!
//! Every seal and every raw-collapse concatenation in the engine funnels
//! through one `sort`, and for the uniformly random streams that saturate
//! the run tracker that sort *is* the ingest hot path. Comparison-based
//! summaries carry a proven lower bound (Cormode & Veselý 2019), but the
//! element types streamed in practice — integers, timestamps, floats —
//! have fixed-width keys, and an LSD radix sort over 8-bit digits touches
//! each element once per *live* byte column instead of once per
//! comparison level. This module provides:
//!
//! * [`FixedWidthKey`] — the order-preserving bit mapping (`u8`..`u64`,
//!   `i64` via sign-bit flip, [`OrderedF64`] via the standard sign-flip
//!   total-order mapping);
//! * [`sort_fixed`] — the LSD kernel: ping-pong scratch owned by the
//!   arena, per-digit histograms fused into the previous scatter pass,
//!   and constant byte columns skipped outright (a stream of values below
//!   2⁴⁰ costs five passes, not eight);
//! * [`try_sort_fixed`] — the dispatch shim the seal/collapse paths call:
//!   radix when the element type is fixed-width and the slice clears the
//!   measured crossover, `false` (caller falls back to `sort_unstable`)
//!   otherwise.
//!
//! The dispatch is a safe `dyn Any` downcast rather than specialisation
//! (stable Rust has none): the engine stays generic over `T: Ord`, and
//! the downcast resolves to a concrete key type — or to the comparison
//! fallback — at a cost of a few pointer compares per *sort call*, not
//! per element.

use std::any::Any;

use crate::types::OrderedF64;

/// An element type whose total order is realised by a fixed-width
/// unsigned key, making it radix-sortable.
///
/// The contract: `a < b ⇔ a.ordered_bits() < b.ordered_bits()` for all
/// `Ord`-distinct values, and only the low `BYTES` bytes of the key may
/// ever be non-constant across values (high bytes beyond `BYTES · 8`
/// bits must be zero). `Ord`-equal values may map to distinct keys (the
/// `OrderedF64` zeros do); the radix order is then one of the valid
/// unstable orders of the comparison sort.
pub trait FixedWidthKey: Ord + Copy + 'static {
    /// Number of low-order key bytes that can vary (1..=8).
    const BYTES: u32;
    /// The order-preserving key.
    fn ordered_bits(self) -> u64;
}

impl FixedWidthKey for u8 {
    const BYTES: u32 = 1;
    #[inline(always)]
    fn ordered_bits(self) -> u64 {
        self as u64
    }
}

impl FixedWidthKey for u16 {
    const BYTES: u32 = 2;
    #[inline(always)]
    fn ordered_bits(self) -> u64 {
        self as u64
    }
}

impl FixedWidthKey for u32 {
    const BYTES: u32 = 4;
    #[inline(always)]
    fn ordered_bits(self) -> u64 {
        self as u64
    }
}

impl FixedWidthKey for u64 {
    const BYTES: u32 = 8;
    #[inline(always)]
    fn ordered_bits(self) -> u64 {
        self
    }
}

impl FixedWidthKey for i64 {
    const BYTES: u32 = 8;
    #[inline(always)]
    fn ordered_bits(self) -> u64 {
        // Flipping the sign bit maps i64::MIN..=i64::MAX monotonically
        // onto 0..=u64::MAX.
        (self as u64) ^ (1 << 63)
    }
}

impl FixedWidthKey for OrderedF64 {
    const BYTES: u32 = 8;
    #[inline(always)]
    fn ordered_bits(self) -> u64 {
        // The standard IEEE-754 total-order mapping: positive floats get
        // their sign bit set (shifting them above every negative), and
        // negative floats are bitwise complemented (reversing their
        // magnitude order). NaN is rejected at OrderedF64 construction,
        // so the one non-monotone region of the mapping is unreachable.
        // -0.0 maps strictly below +0.0 — a valid unstable order for two
        // Ord-equal values.
        let b = self.get().to_bits();
        if b >> 63 == 1 {
            !b
        } else {
            b | (1 << 63)
        }
    }
}

/// Reusable storage for [`sort_fixed`]: the ping-pong element buffer.
/// (The per-digit histograms are 256-entry stack arrays.) Capacity is
/// retained across calls, so a warm scratch makes the sort
/// allocation-free; it lives in the engine's [`crate::ScratchArena`].
#[derive(Clone, Debug)]
pub struct RadixScratch<T> {
    buf: Vec<T>,
}

// Manual impl: the derive would demand `T: Default`, which an empty
// vector does not need.
impl<T> Default for RadixScratch<T> {
    fn default() -> Self {
        Self { buf: Vec::new() }
    }
}

/// Minimum slice length at which the radix kernel beats `sort_unstable`,
/// pinned by the `radix_crossover` bench group
/// (`crates/bench/benches/collapse.rs`). The window is narrower than the
/// asymptotic O(n) vs O(n log n) story suggests: below ~1K elements the
/// fixed per-pass overhead (histogram zeroing, the priming pass) loses to
/// pdqsort's branchless partitioning, and the gap only closes once the
/// log-factor passes pdqsort pays catch up. Measured on the CI host
/// (single core, 40-bit uniform u64): n=256 radix ≈ 1.4× slower, n=1280
/// radix ≈ 1.1–1.2× faster, n=4096 ≈ tie. A single-buffer seal
/// (`k = 256` in the shipped configuration) therefore stays on
/// `sort_unstable`; the equal-weight concat collapse (`c·k ≈ 1280`) and
/// larger mixed collapses take the radix path.
///
/// The MSD bucket path (below) moved the lower crossover back down:
/// measured on the CI host, one bucket scatter plus insertion repair
/// beats `sort_unstable` from n≈64 (n=256: ~5 vs ~9 ns/elem) up to
/// [`BUCKET_MAX_LEN`], above which the LSD passes take over.
pub const RADIX_MIN_LEN: usize = 64;

/// Maximum slice length routed to the radix kernel. Above ~8K elements
/// the byte-wise scatter's random writes fall out of L1/L2 and
/// `sort_unstable`'s sequential partitioning wins again (measured: at
/// n=16384 radix is ~15–20% slower). Engine collapse slices are at most
/// a few multiples of `b·k`, so shipped configurations sit inside the
/// window; the cap only declines pathological ad-hoc sizes.
pub const RADIX_MAX_LEN: usize = 8192;

/// Longest slice the single-scatter MSD bucket path accepts. Up to here
/// the expected bucket occupancy (n/256 ≤ 8) keeps the insertion repair
/// near-linear and the whole sort at one scatter pass; beyond it the
/// multi-pass LSD path wins (measured crossover ≈ 2–4K: bucket 8.4 vs
/// LSD ~11 ns/elem at n=2048, but 16.4 vs ~12 at n=4096).
const BUCKET_MAX_LEN: usize = 2048;

/// Skew guard for the bucket path: if any single bucket would receive
/// more than this many keys, the insertion repair's inversion bound
/// (`Σ cᵢ²/2 ≤ max·n/2`) is no longer cheap, so the attempt is abandoned
/// in favour of the LSD passes (which cost the same on any
/// distribution). Uniform streams sit far below the guard — at n=2048
/// the mean occupancy is 8 — so the abandoned histogram pass is only
/// paid on genuinely skewed data.
const BUCKET_MAX_COUNT: u32 = 64;

/// Sort `data` by its fixed-width key.
///
/// One priming pass computes the bitwise OR and AND of every key, which
/// identifies the bit columns that actually vary. Slices up to
/// [`BUCKET_MAX_LEN`] then try the MSD bucket path: one scatter by the
/// 8-bit digit anchored at the highest varying bit (everything above it
/// is constant, so that digit alone orders the buckets), followed by an
/// insertion repair whose cost is exactly the surviving within-bucket
/// inversions — near-linear when keys spread across the buckets, which
/// the [`BUCKET_MAX_COUNT`] guard enforces before committing.
///
/// Longer or guard-rejected slices fall back to LSD radix over 8-bit
/// digits: each varying byte column costs one counting-scatter pass
/// between `data` and the scratch buffer, with the next column's
/// histogram computed during the current scatter (so a column costs one
/// pass over the data, not two). Constant columns are skipped outright.
///
/// Output order: non-decreasing by `ordered_bits`, which refines the
/// `Ord` order (see [`FixedWidthKey`]) — a valid unstable sort.
// panic-free: every array index is structurally bounded — live ≤ 8
// because it increments once per byte column (BYTES ≤ 8), shifts[pass]
// reads pass < live ≤ 8, and histogram indices come from byte_of, which
// masks to 8 bits (< 256).
pub fn sort_fixed<K: FixedWidthKey>(data: &mut Vec<K>, scratch: &mut RadixScratch<K>) {
    let n = data.len();
    if n < 2 {
        return;
    }
    // Priming pass: which byte columns vary? A column is constant iff
    // every key agrees on it, i.e. the OR and AND accumulators match
    // there — so the varying columns are exactly the set bits of
    // `or ^ and`.
    let mut or_acc = 0u64;
    let mut and_acc = !0u64;
    for &x in data.iter() {
        let bits = x.ordered_bits();
        or_acc |= bits;
        and_acc &= bits;
    }
    let varying = or_acc ^ and_acc;
    let mut shifts = [0u32; 8];
    let mut live = 0usize;
    for d in 0..K::BYTES {
        let shift = d * 8;
        if (varying >> shift) & 0xFF != 0 {
            shifts[live] = shift;
            live += 1;
        }
    }
    if live == 0 {
        // All keys identical ⇒ all elements Ord-equal ⇒ already sorted.
        return;
    }
    // Ping-pong buffer: resized (never pushed) so steady-state sorts
    // reuse the retained capacity. The fill value is arbitrary — every
    // slot is overwritten by the first scatter.
    if scratch.buf.len() != n {
        let Some(&first) = data.first() else { return };
        scratch.buf.clear();
        scratch.buf.resize(n, first);
    }
    if n <= BUCKET_MAX_LEN && bucket_sort(data, &mut scratch.buf, varying) {
        return;
    }
    // Histogram of the first live column (the only separate counting
    // pass — later columns are counted during the preceding scatter).
    let mut cur_hist = [0u32; 256];
    let s0 = shifts[0];
    for &x in data.iter() {
        cur_hist[byte_of(x, s0)] += 1;
    }
    let mut from_data = true;
    for pass in 0..live {
        let shift = shifts[pass];
        let next_shift = if pass + 1 < live {
            shifts[pass + 1]
        } else {
            shift
        };
        let mut next_hist = [0u32; 256];
        // Exclusive prefix sums: histogram → starting offsets.
        let mut run = 0u32;
        for slot in cur_hist.iter_mut() {
            let c = *slot;
            *slot = run;
            run += c;
        }
        if from_data {
            scatter_count(
                data,
                &mut scratch.buf,
                &mut cur_hist,
                shift,
                next_shift,
                &mut next_hist,
            );
        } else {
            scatter_count(
                &scratch.buf,
                data,
                &mut cur_hist,
                shift,
                next_shift,
                &mut next_hist,
            );
        }
        from_data = !from_data;
        cur_hist = next_hist;
    }
    if !from_data {
        // Odd number of passes: the sorted order lives in the scratch
        // buffer; an O(1) pointer swap adopts it (the capacities trade
        // places, which is fine — both are seal-sized and reused).
        std::mem::swap(data, &mut scratch.buf);
    }
}

#[inline(always)]
fn byte_of<K: FixedWidthKey>(x: K, shift: u32) -> usize {
    ((x.ordered_bits() >> shift) & 0xFF) as usize
}

/// The MSD bucket path: scatter by the 8-bit digit whose MSB is the
/// highest varying key bit, then repair the surviving within-bucket
/// inversions with one insertion pass. Returns `false` without touching
/// `data` when the histogram shows a bucket over [`BUCKET_MAX_COUNT`]
/// (skewed keys — the repair bound would not be cheap); the caller then
/// owes the LSD passes. `buf` must already hold `n` slots.
///
/// Correctness does not depend on the digit choice: the scatter orders
/// buckets by a field that includes the topmost varying bit (all bits
/// above it are constant across keys), and the insertion pass is a full
/// sort of the scattered sequence — the digit only determines how few
/// inversions survive for it to repair.
// panic-free: histogram/cursor indices are masked to 8 bits (< 256);
// scatter cursors stay below n exactly as in scatter_count; the repair
// indexes j - 1 < j ≤ i < n with j > 0 guarded by the loop condition.
fn bucket_sort<K: FixedWidthKey>(data: &mut [K], buf: &mut [K], varying: u64) -> bool {
    let n = data.len();
    // varying != 0 (the caller handled the all-constant case), so the
    // subtraction cannot wrap; saturating keeps the expression total.
    let top = 63u32.saturating_sub(varying.leading_zeros());
    let shift = top.saturating_sub(7);
    let mut hist = [0u32; 256];
    for &x in data.iter() {
        hist[byte_of(x, shift)] += 1;
    }
    // Exclusive prefix sums + skew guard in one sweep over the 256 slots.
    let mut run = 0u32;
    let mut max = 0u32;
    for slot in hist.iter_mut() {
        let c = *slot;
        max = max.max(c);
        *slot = run;
        run += c;
    }
    if max > BUCKET_MAX_COUNT {
        return false;
    }
    for &x in data.iter() {
        let b = byte_of(x, shift);
        let p = hist[b] as usize;
        buf[p] = x;
        hist[b] = p as u32 + 1;
    }
    // Insertion repair: cost = number of within-bucket inversions,
    // bounded by max·n/2 via the guard and ~n/2 in the uniform case.
    for i in 1..n {
        let x = buf[i];
        let xb = x.ordered_bits();
        let mut j = i;
        while j > 0 && buf[j - 1].ordered_bits() > xb {
            buf[j] = buf[j - 1];
            j -= 1;
        }
        buf[j] = x;
    }
    data.copy_from_slice(buf);
    true
}

/// One scatter pass: distribute `src` into `dst` by the byte at `shift`
/// using `offs` (exclusive prefix sums, mutated into per-bucket write
/// cursors), while tallying the byte at `next_shift` into `next_hist`
/// for the following pass.
// panic-free: bucket indices are masked to 8 bits (< 256 = the array
// length), and every write cursor stays below src.len() == dst.len()
// because the offsets are exclusive prefix sums of a histogram of src —
// bucket b's cursor is incremented exactly hist[b] times starting at
// sum(hist[..b]).
fn scatter_count<K: FixedWidthKey>(
    src: &[K],
    dst: &mut [K],
    offs: &mut [u32; 256],
    shift: u32,
    next_shift: u32,
    next_hist: &mut [u32; 256],
) {
    for &x in src {
        let bits = x.ordered_bits();
        let b = ((bits >> shift) & 0xFF) as usize;
        let p = offs[b] as usize;
        dst[p] = x;
        offs[b] = p as u32 + 1;
        next_hist[((bits >> next_shift) & 0xFF) as usize] += 1;
    }
}

/// Radix-sort `data` if `T` is a fixed-width key type, the chunked
/// kernels are enabled (`scalar-kernels` off) and the slice length falls
/// inside the measured win window `[RADIX_MIN_LEN, RADIX_MAX_LEN]`.
/// Returns `true` when the data was sorted; on `false` the caller owes
/// the comparison fallback (`sort_unstable`).
///
/// Dispatch is a safe `dyn Any` downcast per concrete key type — no
/// unsafe, no specialisation, a handful of `TypeId` compares per call.
// The `&mut Vec` is load-bearing: `dyn Any` downcasting is keyed on the
// concrete `Vec<$ty>` type, and a slice's TypeId would never match.
#[allow(clippy::ptr_arg)]
pub fn try_sort_fixed<T: Ord + 'static>(data: &mut Vec<T>, scratch: &mut RadixScratch<T>) -> bool {
    if !crate::kernels::chunked_kernels_enabled()
        || data.len() < RADIX_MIN_LEN
        || data.len() > RADIX_MAX_LEN
    {
        return false;
    }
    macro_rules! try_key {
        ($ty:ty) => {
            if let Some(d) = (data as &mut dyn Any).downcast_mut::<Vec<$ty>>() {
                // T = $ty here, so the scratch downcast always succeeds;
                // written as a conditional (not an expect) to keep the
                // dispatch panic-free by construction.
                if let Some(s) = (scratch as &mut dyn Any).downcast_mut::<RadixScratch<$ty>>() {
                    sort_fixed(d, s);
                    return true;
                }
                return false;
            }
        };
    }
    try_key!(u64);
    try_key!(u32);
    try_key!(i64);
    try_key!(OrderedF64);
    try_key!(u16);
    try_key!(u8);
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn radixed<K: FixedWidthKey>(mut v: Vec<K>) -> Vec<K> {
        let mut scratch = RadixScratch::default();
        sort_fixed(&mut v, &mut scratch);
        v
    }

    #[test]
    fn matches_sort_unstable_on_u64_shapes() {
        let shapes: Vec<Vec<u64>> = vec![
            Vec::new(),
            vec![5],
            vec![3, 3, 3, 3],
            (0..1000).rev().collect(),
            (0..1000).map(|i| (i * 2654435761) % 997).collect(),
            (0..1000).map(|i| i % 7).collect(),
            (0..1000)
                .map(|i| if i % 2 == 0 { i } else { 1000 - i })
                .collect(),
            vec![u64::MAX, 0, u64::MAX, 1, u64::MAX - 1],
            (0..513).map(|i| (i * 48271) % (1 << 40)).collect(),
        ];
        for v in shapes {
            let mut expect = v.clone();
            expect.sort_unstable();
            assert_eq!(radixed(v), expect);
        }
    }

    #[test]
    fn matches_sort_unstable_on_narrow_and_signed_types() {
        let bytes: Vec<u8> = (0..2000u32).map(|i| (i * 167 % 251) as u8).collect();
        let mut expect = bytes.clone();
        expect.sort_unstable();
        assert_eq!(radixed(bytes), expect);

        let shorts: Vec<u16> = (0..2000u32).map(|i| (i * 40503 % 65521) as u16).collect();
        let mut expect = shorts.clone();
        expect.sort_unstable();
        assert_eq!(radixed(shorts), expect);

        let words: Vec<u32> = (0..2000u32).map(|i| i.wrapping_mul(2654435761)).collect();
        let mut expect = words.clone();
        expect.sort_unstable();
        assert_eq!(radixed(words), expect);

        let signed: Vec<i64> = (0..2000i64)
            .map(|i| (i - 1000).wrapping_mul(2654435761))
            .collect();
        let mut expect = signed.clone();
        expect.sort_unstable();
        assert_eq!(radixed(signed), expect);
    }

    #[test]
    fn float_total_order_edges_sort_by_total_cmp() {
        let v: Vec<OrderedF64> = [
            0.0,
            -0.0,
            1.5,
            -1.5,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            -f64::MIN_POSITIVE,
            5e-324, // smallest positive subnormal
            -5e-324,
            f64::MAX,
            f64::MIN,
        ]
        .into_iter()
        .map(OrderedF64::from_f64)
        .cycle()
        .take(300)
        .collect();
        let mut expect: Vec<f64> = v.iter().map(|x| x.get()).collect();
        expect.sort_by(|a, b| a.total_cmp(b));
        let got: Vec<f64> = radixed(v).into_iter().map(f64::from).collect();
        // Bitwise identity against the total-order reference (radix
        // places -0.0 before +0.0, exactly like total_cmp).
        assert_eq!(
            got.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            expect.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ordered_bits_is_monotone() {
        let signed: Vec<i64> = vec![i64::MIN, -2, -1, 0, 1, 2, i64::MAX];
        for w in signed.windows(2) {
            assert!(w[0].ordered_bits() < w[1].ordered_bits());
        }
        let floats: Vec<OrderedF64> = [
            f64::NEG_INFINITY,
            f64::MIN,
            -1.0,
            -5e-324,
            -0.0,
            0.0,
            5e-324,
            1.0,
            f64::MAX,
            f64::INFINITY,
        ]
        .into_iter()
        .map(OrderedF64::from_f64)
        .collect();
        for w in floats.windows(2) {
            // Strict even across the Ord-equal zeros: the bit mapping
            // refines the order.
            assert!(w[0].ordered_bits() < w[1].ordered_bits());
        }
    }

    #[test]
    fn dispatch_sorts_fixed_width_and_declines_otherwise() {
        let mut ints: Vec<u64> = (0..RADIX_MIN_LEN as u64).rev().collect();
        let mut scratch = RadixScratch::default();
        // Under scalar-kernels the dispatch declines everything by design.
        let sorted = try_sort_fixed(&mut ints, &mut scratch);
        assert_eq!(sorted, crate::kernels::chunked_kernels_enabled());
        if sorted {
            assert!(ints.is_sorted());
        }

        // Below the crossover: declined, caller falls back.
        let mut small: Vec<u64> = vec![3, 1, 2];
        assert!(!try_sort_fixed(&mut small, &mut scratch));
        assert_eq!(small, vec![3, 1, 2]);

        // Non-fixed-width element type: declined.
        let mut strings: Vec<String> = vec!["b".into(), "a".into()];
        let mut s_scratch = RadixScratch::default();
        assert!(!try_sort_fixed(&mut strings, &mut s_scratch));
        assert_eq!(strings, vec!["b".to_string(), "a".to_string()]);
    }

    #[test]
    fn constant_columns_are_skipped_without_breaking_order() {
        // Only the third byte varies: exactly one live pass.
        let v: Vec<u64> = (0..500u64).map(|i| 0xAA00_0000 | ((i % 7) << 16)).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        assert_eq!(radixed(v), expect);
    }

    #[test]
    fn scratch_is_reused_across_calls_of_different_lengths() {
        let mut scratch = RadixScratch::default();
        for n in [100usize, 700, 300, 700] {
            let mut v: Vec<u64> = (0..n as u64).map(|i| (i * 2654435761) % 1013).collect();
            let mut expect = v.clone();
            expect.sort_unstable();
            sort_fixed(&mut v, &mut scratch);
            assert_eq!(v, expect);
        }
    }
}
