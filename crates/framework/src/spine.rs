//! The epoch-cached query spine: one merged weighted view serving many
//! queries.
//!
//! `Output` "does not destroy or modify the state \[and\] can be invoked
//! as many times as required" (§3.7) — but every prior revision of the
//! engine paid the full cost of that invocation each time: clone and
//! sort the in-progress fill, re-sort every deferred-seal slot, walk the
//! weighted merge. A sketch that serves selectivity estimates to a query
//! optimizer answers orders of magnitude more queries than it absorbs
//! collapses, so the read path deserves the same treatment the write
//! path got: do the expensive merge **once per state change**, not once
//! per question.
//!
//! [`QuerySpine`] is that materialisation: every `(value, weight)` pair
//! the engine's `Output` would consult, sorted ascending, with the
//! weights folded into a cumulative array. Once built, each quantile
//! query is a binary search over the cumulative weights
//! ([`QuerySpine::lookup`]) and each rank/CDF query a binary search over
//! the values ([`QuerySpine::rank`]) — `O(log(bk))` against the previous
//! `O(bk log bk)`.
//!
//! Invalidation is by **epoch**: the engine increments a counter on
//! every mutation (insert, batch insert, collapse, finish, snapshot
//! restore), and the spine records the epoch it was built at. A spine
//! whose epoch does not match the engine's is stale and is rebuilt on
//! the next query; nothing is eagerly recomputed during ingest, so
//! write-heavy workloads pay one untaken branch per insert and
//! query-heavy workloads amortise one rebuild across an unbounded run of
//! reads. The spine lives in the engine's scratch arena and retains its
//! buffers across rebuilds, so steady-state operation allocates nothing.

/// A merged, weight-cumulated snapshot of a sketch's queryable contents,
/// tagged with the ingest epoch it was built from.
///
/// `values` is strictly ascending under `Ord` (ties are coalesced during
/// the rebuild, their weights summed) and `cum[i]` is the total weight
/// of `values[..=i]` — so the element at 1-indexed weighted position `t`
/// is `values[partition_point(cum < t)]`, exactly the element the
/// engine's weighted-merge selection would return.
#[derive(Clone, Debug)]
pub struct QuerySpine<T> {
    values: Vec<T>,
    cum: Vec<u64>,
    /// Rebuild staging: the raw `(value, weight)` pairs before sorting
    /// and coalescing. Retained for its capacity.
    pairs: Vec<(T, u64)>,
    built_epoch: u64,
    valid: bool,
}

// Manual impl: the derive would demand `T: Default`, which empty vectors
// do not need.
impl<T> Default for QuerySpine<T> {
    fn default() -> Self {
        Self {
            values: Vec::new(),
            cum: Vec::new(),
            pairs: Vec::new(),
            built_epoch: 0,
            valid: false,
        }
    }
}

impl<T: Ord + Clone> QuerySpine<T> {
    /// True when the spine was built at `epoch` and can serve queries
    /// without a rebuild.
    pub fn is_current(&self, epoch: u64) -> bool {
        self.valid && self.built_epoch == epoch
    }

    /// Drop the cached state (the next query rebuilds). Buffers keep
    /// their capacity.
    pub fn invalidate(&mut self) {
        self.valid = false;
    }

    /// Rebuild the spine at `epoch` from the `(value, weight)` pairs
    /// `fill` appends to the staging buffer. Sorts the pairs, coalesces
    /// `Ord`-equal values (summing their weights, saturating) and
    /// rewrites the value/cumulative arrays in place.
    pub fn rebuild(&mut self, epoch: u64, fill: impl FnOnce(&mut Vec<(T, u64)>)) {
        self.pairs.clear();
        fill(&mut self.pairs);
        self.pairs.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        self.values.clear();
        self.cum.clear();
        let mut running: u64 = 0;
        for (v, w) in self.pairs.drain(..) {
            // Saturating: Σ weights is the stream mass, which weight
            // conservation keeps ≤ the stream length; clamp rather than
            // wrap if state is ever corrupted.
            running = running.saturating_add(w);
            if self.values.last() == Some(&v) {
                if let Some(c) = self.cum.last_mut() {
                    *c = running;
                }
            } else {
                self.values.push(v);
                self.cum.push(running);
            }
        }
        self.built_epoch = epoch;
        self.valid = true;
    }

    /// Total weighted mass of the spine (0 when empty).
    pub fn total(&self) -> u64 {
        self.cum.last().copied().unwrap_or(0)
    }

    /// Number of distinct stored values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the spine holds no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value at 1-indexed weighted position `target` of the logical
    /// sorted-with-multiplicity stream: the first value whose cumulative
    /// weight reaches `target`. Targets beyond the total mass clamp to
    /// the maximum; `None` only when the spine is empty.
    pub fn lookup(&self, target: u64) -> Option<&T> {
        let i = self.cum.partition_point(|&c| c < target);
        self.values.get(i.min(self.values.len().saturating_sub(1)))
    }

    /// Weighted mass strictly below `value` and at-or-below `value` —
    /// the numerators of the `x < v` / `x <= v` selectivities.
    pub fn rank(&self, value: &T) -> (u64, u64) {
        let below_end = self.values.partition_point(|v| v < value);
        let at_most_end = self.values.partition_point(|v| v <= value);
        let mass_through = |end: usize| {
            end.checked_sub(1)
                .and_then(|i| self.cum.get(i))
                .copied()
                .unwrap_or(0)
        };
        (mass_through(below_end), mass_through(at_most_end))
    }

    /// Ascending `(value, cumulative weight)` pairs — the stepwise CDF
    /// in weighted-count form.
    pub fn points(&self) -> impl Iterator<Item = (&T, u64)> {
        self.values.iter().zip(self.cum.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn built(pairs: &[(u64, u64)]) -> QuerySpine<u64> {
        let mut s = QuerySpine::default();
        s.rebuild(1, |out| out.extend_from_slice(pairs));
        s
    }

    #[test]
    fn coalesces_ties_and_accumulates() {
        let s = built(&[(5, 2), (3, 1), (5, 4), (9, 1)]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.total(), 8);
        assert_eq!(
            s.points().collect::<Vec<_>>(),
            vec![(&3, 1), (&5, 7), (&9, 8)]
        );
    }

    #[test]
    fn lookup_matches_expanded_stream() {
        let s = built(&[(10, 3), (20, 2), (30, 1)]);
        // Expanded: 10,10,10,20,20,30 at positions 1..=6.
        let expanded = [10u64, 10, 10, 20, 20, 30];
        for (i, want) in expanded.iter().enumerate() {
            assert_eq!(s.lookup(i as u64 + 1), Some(want), "position {}", i + 1);
        }
        // Clamped beyond the mass; position 0 resolves to the minimum.
        assert_eq!(s.lookup(100), Some(&30));
        assert_eq!(s.lookup(0), Some(&10));
    }

    #[test]
    fn rank_splits_below_and_at_most() {
        let s = built(&[(10, 3), (20, 2), (30, 1)]);
        assert_eq!(s.rank(&5), (0, 0));
        assert_eq!(s.rank(&10), (0, 3));
        assert_eq!(s.rank(&15), (3, 3));
        assert_eq!(s.rank(&20), (3, 5));
        assert_eq!(s.rank(&30), (5, 6));
        assert_eq!(s.rank(&99), (6, 6));
    }

    #[test]
    fn epochs_gate_currency() {
        let mut s = built(&[(1, 1)]);
        assert!(s.is_current(1));
        assert!(!s.is_current(2));
        s.invalidate();
        assert!(!s.is_current(1));
        s.rebuild(2, |out| out.push((7, 7)));
        assert!(s.is_current(2));
        assert_eq!(s.total(), 7);
    }

    #[test]
    fn empty_spine_answers_safely() {
        let s = built(&[]);
        assert_eq!(s.total(), 0);
        assert!(s.is_empty());
        assert_eq!(s.lookup(1), None);
        assert_eq!(s.rank(&5), (0, 0));
    }
}
