//! Weighted merging and selection.
//!
//! `Collapse` and `Output` (§3.2–3.3) are both defined in terms of the same
//! thought experiment: make `w(Xᵢ)` copies of each element of buffer `Xᵢ`,
//! sort everything together, and pick elements at certain positions of the
//! combined sequence. As the paper notes, the copies never need to be
//! materialised. Instead of a heap-based k-way merge that visits (and
//! clones) every element, the selection here advances in **runs**: at each
//! step it finds the source with the smallest head, uses binary search
//! against the other heads to determine the maximal run of consecutive
//! merge output that source contributes, and then indexes any selection
//! targets falling inside the run directly — cloning only the selected
//! elements. With `c` sources and `t` targets this is
//! `O((R + t)·c log k)` where `R ≤ Σ|Xᵢ|` is the number of runs, and in the
//! common cases (few sources interleaving coarsely, or few targets) runs
//! are long and the merge skips nearly all of the input.

use crate::kernels::{
    chunked_kernels_enabled, select_merged_weighted, select_two_weighted, targets_single_crossing,
};
use crate::runs::{merge_sorted_runs_with, MergeScratch};

/// One sorted input to a weighted merge: a slice of non-decreasing elements,
/// each representing `weight` input elements.
#[derive(Clone, Copy, Debug)]
pub struct WeightedSource<'a, T> {
    /// Sorted elements.
    pub data: &'a [T],
    /// Weight of every element in `data`.
    pub weight: u64,
}

impl<'a, T> WeightedSource<'a, T> {
    /// Construct a source; `weight` must be positive.
    pub fn new(data: &'a [T], weight: u64) -> Self {
        assert!(weight > 0, "source weight must be positive");
        Self { data, weight }
    }

    /// Weighted mass contributed by this source.
    ///
    /// Saturating: by construction Σ masses equals the stream length `n`,
    /// which fits u64, but a hostile caller constructing sources directly
    /// must not be able to wrap the accounting.
    pub fn mass(&self) -> u64 {
        (self.data.len() as u64).saturating_mul(self.weight)
    }
}

/// Total weighted mass of a set of sources.
pub fn total_mass<T>(sources: &[WeightedSource<'_, T>]) -> u64 {
    sources.iter().map(WeightedSource::mass).sum()
}

/// Select the elements at 1-indexed weighted positions `targets` (sorted
/// non-decreasing) of the logical sorted-with-multiplicity concatenation of
/// `sources`.
///
/// Returns one element per target (duplicates allowed: several targets may
/// fall on the same heavy element).
///
/// # Panics
/// Panics if `targets` is not sorted, a target is zero, or a target exceeds
/// the total mass.
pub fn select_weighted<T: Ord + Clone>(
    sources: &[WeightedSource<'_, T>],
    targets: &[u64],
) -> Vec<T> {
    let mut out = Vec::with_capacity(targets.len());
    select_weighted_into(sources, targets, &mut out);
    out
}

/// Reusable storage for [`select_weighted_with`]: the multi-source walk
/// positions plus the `(element, weight)` pair buffers of the chunked
/// ≥ 3-source dense path. Capacity persists across calls, so a warm
/// scratch makes selection allocation-free.
#[derive(Clone, Debug)]
pub struct SelectScratch<T> {
    pos: Vec<usize>,
    pairs: Vec<(T, u64)>,
    starts: Vec<usize>,
    pair_merge: MergeScratch<(T, u64)>,
}

// Manual impl: the derive would demand `T: Default`, which empty vectors
// do not need.
impl<T> Default for SelectScratch<T> {
    fn default() -> Self {
        Self {
            pos: Vec::new(),
            pairs: Vec::new(),
            starts: Vec::new(),
            pair_merge: MergeScratch::default(),
        }
    }
}

/// The split borrows of [`SelectScratch::pair_parts_mut`]: pair buffer,
/// run starts, and the pair-merge scratch.
pub(crate) type PairParts<'a, T> = (
    &'a mut Vec<(T, u64)>,
    &'a mut Vec<usize>,
    &'a mut MergeScratch<(T, u64)>,
);

impl<T> SelectScratch<T> {
    /// Split into the pair buffer, its run starts, and the pair-merge
    /// scratch — the pieces of the ≥ 3-source chunked dense path. Exposed
    /// so the engine can build the pair runs straight from its buffers
    /// without materialising a per-collapse source list.
    pub(crate) fn pair_parts_mut(&mut self) -> PairParts<'_, T> {
        (&mut self.pairs, &mut self.starts, &mut self.pair_merge)
    }
}

/// As [`select_weighted`], writing the selected elements into `out`
/// (cleared first). Convenience wrapper over [`select_weighted_with`]
/// with throwaway scratch — hot paths thread a persistent
/// [`SelectScratch`] instead.
pub fn select_weighted_into<T: Ord + Clone>(
    sources: &[WeightedSource<'_, T>],
    targets: &[u64],
    out: &mut Vec<T>,
) {
    let mut scratch = SelectScratch::default();
    select_weighted_with(sources, targets, out, &mut scratch);
}

/// As [`select_weighted`], writing the selected elements into `out`
/// (cleared first) and working entirely inside `scratch`. Lets hot paths
/// — one collapse per filled buffer — reuse every allocation across
/// calls.
///
/// Dense target sets whose spacing satisfies the single-crossing contract
/// dispatch to the branchless kernels ([`select_two_weighted`] /
/// [`select_merged_weighted`]); the scalar walks below remain both the
/// fallback and the bitwise reference (forced by the `scalar-kernels`
/// feature).
// panic-free: the entry asserts are the documented precondition contract
// (see # Panics on select_weighted); past them every index is invariant-
// protected — pos[i] < data.len() loop guards, run offsets bounded by
// run_mass, windows(2) slices are exactly length 2.
// arith: cum accumulates source masses and never exceeds `mass`, itself a
// u64 computed saturating; run_mass ≤ mass for the same reason.
// alloc: out and the scratch vectors are the caller's reused storage
// (capacity persists across collapses); pushes stay within it after the
// first call.
pub fn select_weighted_with<T: Ord + Clone>(
    sources: &[WeightedSource<'_, T>],
    targets: &[u64],
    out: &mut Vec<T>,
    scratch: &mut SelectScratch<T>,
) {
    out.clear();
    let (Some(&first), Some(&last)) = (targets.first(), targets.last()) else {
        return;
    };
    let mass = total_mass(sources);
    assert!(
        targets.windows(2).all(|w| w[0] <= w[1]),
        "targets must be sorted"
    );
    assert!(first >= 1, "weighted positions are 1-indexed");
    assert!(last <= mass, "target {last} exceeds total mass {mass}");

    if let [s] = sources {
        // A single source is one weighted run: pure index arithmetic.
        out.extend(
            targets
                .iter()
                .map(|&t| s.data[((t - 1) / s.weight) as usize].clone()),
        );
        return;
    }

    // Dense targets (the Collapse shape: k targets over c·k elements) take
    // a fused c-way walk that selects during the merge: galloping cannot
    // skip anything when the sources interleave at ~1-element runs, and
    // materialising the merge pays allocation plus a second pass. One head
    // scan and one weight addition per merge step, nothing else.
    let total_elems: usize = sources.iter().map(|s| s.data.len()).sum();
    if targets.len() >= total_elems / 8 {
        let max_w = sources.iter().map(|s| s.weight).max().unwrap_or(1);
        if chunked_kernels_enabled() && targets_single_crossing(targets, max_w) {
            if let [a, b] = sources {
                select_two_weighted(a.data, a.weight, b.data, b.weight, targets, out);
                return;
            }
            // ≥ 3 sources: pair-merge into one weighted run, then one
            // branchless selection sweep. Visits each element twice but
            // with no per-step head scan and no unpredictable emission.
            let (pairs, starts, pair_merge) = scratch.pair_parts_mut();
            pairs.clear();
            starts.clear();
            for s in sources {
                starts.push(pairs.len());
                pairs.extend(s.data.iter().map(|v| (v.clone(), s.weight)));
            }
            merge_sorted_runs_with(pairs, starts, pair_merge);
            select_merged_weighted(pairs, targets, out);
            return;
        }
        if sources.len() == 2 {
            // Two sources dominate adaptive collapse trees; a dedicated
            // two-pointer walk keeps both heads hot and lets the compiler
            // emit conditional moves for the unpredictable comparison.
            let (a, b) = (&sources[0], &sources[1]);
            let (wa, wb) = (a.weight, b.weight);
            let (mut i, mut j) = (0usize, 0usize);
            let mut cum: u64 = 0;
            let mut ti = 0usize;
            while i < a.data.len() && j < b.data.len() {
                let take_a = a.data[i] <= b.data[j];
                let (v, w) = if take_a {
                    (&a.data[i], wa)
                } else {
                    (&b.data[j], wb)
                };
                cum += w;
                while ti < targets.len() && targets[ti] <= cum {
                    out.push(v.clone());
                    ti += 1;
                }
                i += take_a as usize;
                j += usize::from(!take_a);
                if ti == targets.len() {
                    return;
                }
            }
            // One source exhausted: the survivor is a single weighted run,
            // so remaining targets index it directly.
            let (rest, w) = if i < a.data.len() {
                (&a.data[i..], wa)
            } else {
                (&b.data[j..], wb)
            };
            while ti < targets.len() {
                let offset = ((targets[ti] - cum - 1) / w) as usize;
                out.push(rest[offset].clone());
                ti += 1;
            }
            return;
        }
        let pos = &mut scratch.pos;
        pos.clear();
        pos.resize(sources.len(), 0);
        let mut cum: u64 = 0;
        let mut ti = 0usize;
        while ti < targets.len() {
            let mut j = usize::MAX;
            for (i, s) in sources.iter().enumerate() {
                if pos[i] < s.data.len()
                    && (j == usize::MAX || s.data[pos[i]] < sources[j].data[pos[j]])
                {
                    j = i;
                }
            }
            assert!(j != usize::MAX, "ran out of mass before all targets");
            let s = &sources[j];
            cum += s.weight;
            while ti < targets.len() && targets[ti] <= cum {
                out.push(s.data[pos[j]].clone());
                ti += 1;
            }
            pos[j] += 1;
        }
        return;
    }

    // pos[i]: first unconsumed index of sources[i]. Ties between sources
    // are broken by source index (the lower index merges first), matching
    // the ordering a (value, source, position) heap would produce.
    let pos = &mut scratch.pos;
    pos.clear();
    pos.resize(sources.len(), 0);
    let mut cum: u64 = 0;
    let mut ti = 0usize;
    while ti < targets.len() {
        // One scan finds both the source whose head merges next (`j`) and
        // the runner-up (`runner`): the smallest head among the others,
        // lowest index on ties. Only the runner-up can end j's run —
        // every other head is no smaller — so a single galloping search
        // against it replaces one search per source.
        let mut j = usize::MAX;
        let mut runner = usize::MAX;
        for (i, s) in sources.iter().enumerate() {
            if pos[i] >= s.data.len() {
                continue;
            }
            if j == usize::MAX || s.data[pos[i]] < sources[j].data[pos[j]] {
                runner = j;
                j = i;
            } else if runner == usize::MAX || s.data[pos[i]] < sources[runner].data[pos[runner]] {
                runner = i;
            }
        }
        assert!(j != usize::MAX, "ran out of mass before all targets");
        // Maximal run: consecutive elements of source j that all merge
        // before the runner-up's head. The tie-break direction depends on
        // which side of j the runner-up sits: a lower-indexed runner-up
        // merges equal values first.
        let sub = &sources[j].data[pos[j]..];
        let run = if runner == usize::MAX {
            sub.len()
        } else {
            let head = &sources[runner].data[pos[runner]];
            if runner < j {
                gallop_limit(sub, |v| v < head)
            } else {
                gallop_limit(sub, |v| v <= head)
            }
        };
        debug_assert!(run >= 1, "the minimal head always yields a run");
        let w = sources[j].weight;
        let run_mass = run as u64 * w;
        // Targets inside the run index it directly: position `cum + q`
        // lands on run element `(q - 1) / w`.
        while ti < targets.len() && targets[ti] <= cum + run_mass {
            let offset = ((targets[ti] - cum - 1) / w) as usize;
            out.push(sub[offset].clone());
            ti += 1;
        }
        cum += run_mass;
        pos[j] += run;
    }
}

/// First index of `sub` where `pred` fails (`sub` is partitioned: all
/// passing elements precede all failing ones), found by exponential search
/// from the front. Equivalent to `sub.partition_point(pred)` but costs
/// `O(log r)` for answer `r` instead of `O(log len)` — the merge's runs
/// are usually short, the suffix long.
// panic-free: sub[hi] is guarded by hi < sub.len() on the same condition;
// lo ≤ hi/2 + 1 ≤ end ≤ sub.len() keeps the range slice in bounds.
fn gallop_limit<T>(sub: &[T], pred: impl Fn(&T) -> bool) -> usize {
    if sub.first().is_none_or(|v| !pred(v)) {
        return 0;
    }
    // Invariant: pred holds at `hi / 2`; first failure lies in
    // `[hi / 2 + 1, min(hi, len)]`.
    let mut hi = 1usize;
    while hi < sub.len() && pred(&sub[hi]) {
        hi <<= 1;
    }
    let lo = hi / 2 + 1;
    let end = hi.min(sub.len());
    lo + sub[lo..end].partition_point(|v| pred(v))
}

/// The `k` selection positions of a `Collapse` whose output weight is `w`
/// (§3.2).
///
/// * `w` odd: positions `j·w + (w+1)/2` for `j = 0..k`.
/// * `w` even: positions `j·w + w/2` (low phase) or `j·w + (w+2)/2` (high
///   phase); the caller alternates `high` between successive even-weight
///   collapses so the ±½ rounding bias cancels.
pub fn collapse_targets(k: usize, w: u64, high: bool) -> Vec<u64> {
    let mut out = Vec::with_capacity(k);
    collapse_targets_into(k, w, high, &mut out);
    out
}

/// As [`collapse_targets`], writing into `out` (cleared first) so the
/// engine can reuse one scratch vector across collapses.
pub fn collapse_targets_into(k: usize, w: u64, high: bool, out: &mut Vec<u64>) {
    let offset = collapse_first_target(w, high);
    out.clear();
    out.extend((0..k as u64).map(|j| j * w + offset));
}

/// The first selection position of a `Collapse` with output weight `w`
/// (§3.2): the phase offset of the arithmetic progression the targets
/// form. The spaced kernels consume `(first, spacing = w, count = k)`
/// directly instead of a materialised target vector.
pub fn collapse_first_target(w: u64, high: bool) -> u64 {
    assert!(w > 0, "collapse output weight must be positive");
    if w % 2 == 1 {
        w.div_ceil(2)
    } else if high {
        (w + 2) / 2
    } else {
        w / 2
    }
}

/// The weighted position selected by `Output` for quantile `φ` over total
/// mass `s` (§3.3): `⌈φ·s⌉`, clamped into `[1, s]`.
pub fn output_position(phi: f64, s: u64) -> u64 {
    assert!((0.0..=1.0).contains(&phi), "phi must lie in [0, 1]");
    assert!(s > 0, "cannot select from an empty sequence");
    let raw = (phi * s as f64).ceil();
    if raw < 1.0 {
        1
    } else if raw >= s as f64 {
        s
    } else {
        raw as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force reference: materialise all copies and index directly.
    fn select_brute<T: Ord + Clone>(sources: &[WeightedSource<'_, T>], targets: &[u64]) -> Vec<T> {
        let mut all: Vec<T> = Vec::new();
        for s in sources {
            for v in s.data {
                for _ in 0..s.weight {
                    all.push(v.clone());
                }
            }
        }
        all.sort();
        targets
            .iter()
            .map(|&t| all[(t - 1) as usize].clone())
            .collect()
    }

    #[test]
    fn matches_brute_force_on_small_inputs() {
        let a = vec![1, 4, 7, 9];
        let b = vec![2, 2, 8];
        let c = vec![5];
        let sources = [
            WeightedSource::new(&a, 3),
            WeightedSource::new(&b, 1),
            WeightedSource::new(&c, 5),
        ];
        let mass = total_mass(&sources);
        assert_eq!(mass, 4 * 3 + 3 + 5);
        let targets: Vec<u64> = (1..=mass).collect();
        assert_eq!(
            select_weighted(&sources, &targets),
            select_brute(&sources, &targets)
        );
    }

    #[test]
    fn single_target_median() {
        let a = vec![10, 20, 30];
        let sources = [WeightedSource::new(&a, 2)];
        assert_eq!(select_weighted(&sources, &[3]), vec![20]);
        assert_eq!(select_weighted(&sources, &[4]), vec![20]);
        assert_eq!(select_weighted(&sources, &[6]), vec![30]);
    }

    #[test]
    fn repeated_targets_yield_duplicates() {
        let a = vec![5];
        let sources = [WeightedSource::new(&a, 4)];
        assert_eq!(select_weighted(&sources, &[1, 2, 4]), vec![5, 5, 5]);
    }

    #[test]
    fn empty_targets_empty_result() {
        let a = vec![1, 2];
        let sources = [WeightedSource::new(&a, 1)];
        assert!(select_weighted(&sources, &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds total mass")]
    fn overlong_target_panics() {
        let a = vec![1, 2];
        let sources = [WeightedSource::new(&a, 1)];
        let _ = select_weighted(&sources, &[3]);
    }

    #[test]
    fn sparse_targets_over_large_sources_match_brute_force() {
        // Few targets, long interleaved runs: the skip path must agree with
        // the materialised reference.
        let a: Vec<u32> = (0..500).map(|i| i * 3).collect();
        let b: Vec<u32> = (0..300).map(|i| i * 5 + 1).collect();
        let c: Vec<u32> = (0..200).map(|i| i * 7 + 2).collect();
        let sources = [
            WeightedSource::new(&a, 4),
            WeightedSource::new(&b, 2),
            WeightedSource::new(&c, 9),
        ];
        let mass = total_mass(&sources);
        let targets: Vec<u64> = vec![1, 17, mass / 3, mass / 2, mass - 1, mass];
        assert_eq!(
            select_weighted(&sources, &targets),
            select_brute(&sources, &targets)
        );
    }

    #[test]
    fn duplicate_values_across_sources_merge_deterministically() {
        // Heavily tied inputs: every position must match the reference,
        // which is insensitive to tie order because tied values are equal.
        let a = vec![5, 5, 5, 7, 7];
        let b = vec![5, 6, 7, 7];
        let c = vec![5, 5, 8];
        let sources = [
            WeightedSource::new(&a, 2),
            WeightedSource::new(&b, 3),
            WeightedSource::new(&c, 1),
        ];
        let mass = total_mass(&sources);
        let targets: Vec<u64> = (1..=mass).collect();
        assert_eq!(
            select_weighted(&sources, &targets),
            select_brute(&sources, &targets)
        );
    }

    #[test]
    fn select_into_reuses_the_output_vector() {
        let a = vec![1, 2, 3];
        let sources = [WeightedSource::new(&a, 2)];
        let mut out = Vec::with_capacity(8);
        select_weighted_into(&sources, &[1, 4], &mut out);
        assert_eq!(out, vec![1, 2]);
        select_weighted_into(&sources, &[6], &mut out);
        assert_eq!(out, vec![3]);
        select_weighted_into(&sources, &[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn collapse_targets_into_matches_allocating_form() {
        let mut scratch = Vec::new();
        for k in [1usize, 3, 7] {
            for w in [1u64, 2, 5, 8] {
                for high in [false, true] {
                    collapse_targets_into(k, w, high, &mut scratch);
                    assert_eq!(scratch, collapse_targets(k, w, high));
                }
            }
        }
    }

    #[test]
    fn collapse_targets_odd_weight() {
        // w = 3, k = 4: positions j*3 + 2.
        assert_eq!(collapse_targets(4, 3, false), vec![2, 5, 8, 11]);
        // `high` is ignored for odd weights.
        assert_eq!(collapse_targets(4, 3, true), vec![2, 5, 8, 11]);
    }

    #[test]
    fn collapse_targets_even_weight_alternate() {
        // w = 4, k = 3: low phase 2, 6, 10; high phase 3, 7, 11.
        assert_eq!(collapse_targets(3, 4, false), vec![2, 6, 10]);
        assert_eq!(collapse_targets(3, 4, true), vec![3, 7, 11]);
    }

    #[test]
    fn collapse_targets_stay_in_range() {
        for k in 1..8usize {
            for w in 1..10u64 {
                for high in [false, true] {
                    let t = collapse_targets(k, w, high);
                    assert!(t[0] >= 1);
                    assert!(*t.last().unwrap() <= k as u64 * w, "k={k} w={w}");
                }
            }
        }
    }

    #[test]
    fn output_position_basics() {
        assert_eq!(output_position(0.5, 100), 50);
        assert_eq!(output_position(0.0, 100), 1);
        assert_eq!(output_position(1.0, 100), 100);
        assert_eq!(output_position(0.501, 100), 51);
        assert_eq!(output_position(0.5, 1), 1);
    }

    #[test]
    fn output_position_huge_mass_is_clamped() {
        let s = u64::MAX / 2;
        let p = output_position(1.0, s);
        assert_eq!(p, s);
        assert!(output_position(0.9999999, s) <= s);
    }
}
