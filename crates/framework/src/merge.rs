//! Weighted merging and selection.
//!
//! `Collapse` and `Output` (§3.2–3.3) are both defined in terms of the same
//! thought experiment: make `w(Xᵢ)` copies of each element of buffer `Xᵢ`,
//! sort everything together, and pick elements at certain positions of the
//! combined sequence. As the paper notes, the copies never need to be
//! materialised: a k-way merge that advances a cumulative weight counter
//! visits exactly the same positions in `O(Σ|Xᵢ| log c)` time and `O(c)`
//! extra space.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One sorted input to a weighted merge: a slice of non-decreasing elements,
/// each representing `weight` input elements.
#[derive(Clone, Copy, Debug)]
pub struct WeightedSource<'a, T> {
    /// Sorted elements.
    pub data: &'a [T],
    /// Weight of every element in `data`.
    pub weight: u64,
}

impl<'a, T> WeightedSource<'a, T> {
    /// Construct a source; `weight` must be positive.
    pub fn new(data: &'a [T], weight: u64) -> Self {
        assert!(weight > 0, "source weight must be positive");
        Self { data, weight }
    }

    /// Weighted mass contributed by this source.
    pub fn mass(&self) -> u64 {
        self.data.len() as u64 * self.weight
    }
}

/// Total weighted mass of a set of sources.
pub fn total_mass<T>(sources: &[WeightedSource<'_, T>]) -> u64 {
    sources.iter().map(WeightedSource::mass).sum()
}

/// Select the elements at 1-indexed weighted positions `targets` (sorted
/// non-decreasing) of the logical sorted-with-multiplicity concatenation of
/// `sources`.
///
/// Returns one element per target (duplicates allowed: several targets may
/// fall on the same heavy element).
///
/// # Panics
/// Panics if `targets` is not sorted, a target is zero, or a target exceeds
/// the total mass.
pub fn select_weighted<T: Ord + Clone>(
    sources: &[WeightedSource<'_, T>],
    targets: &[u64],
) -> Vec<T> {
    if targets.is_empty() {
        return Vec::new();
    }
    let mass = total_mass(sources);
    assert!(targets.windows(2).all(|w| w[0] <= w[1]), "targets must be sorted");
    assert!(targets[0] >= 1, "weighted positions are 1-indexed");
    assert!(
        *targets.last().expect("targets nonempty") <= mass,
        "target {} exceeds total mass {}",
        targets.last().unwrap(),
        mass
    );

    // Min-heap over the heads of each source. Ties broken by source index so
    // the merge is deterministic.
    #[derive(PartialEq, Eq, PartialOrd, Ord)]
    struct Head<T: Ord>(T, usize, usize); // (value, source, position)

    let mut heap: BinaryHeap<Reverse<Head<T>>> = sources
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.data.is_empty())
        .map(|(i, s)| Reverse(Head(s.data[0].clone(), i, 0)))
        .collect();

    let mut out = Vec::with_capacity(targets.len());
    let mut cum: u64 = 0;
    let mut ti = 0usize;
    while let Some(Reverse(Head(value, src, pos))) = heap.pop() {
        cum += sources[src].weight;
        while ti < targets.len() && targets[ti] <= cum {
            out.push(value.clone());
            ti += 1;
        }
        if ti == targets.len() {
            break;
        }
        let next = pos + 1;
        if next < sources[src].data.len() {
            heap.push(Reverse(Head(sources[src].data[next].clone(), src, next)));
        }
    }
    assert_eq!(out.len(), targets.len(), "ran out of mass before all targets");
    out
}

/// The `k` selection positions of a `Collapse` whose output weight is `w`
/// (§3.2).
///
/// * `w` odd: positions `j·w + (w+1)/2` for `j = 0..k`.
/// * `w` even: positions `j·w + w/2` (low phase) or `j·w + (w+2)/2` (high
///   phase); the caller alternates `high` between successive even-weight
///   collapses so the ±½ rounding bias cancels.
pub fn collapse_targets(k: usize, w: u64, high: bool) -> Vec<u64> {
    assert!(w > 0, "collapse output weight must be positive");
    let offset = if w % 2 == 1 {
        w.div_ceil(2)
    } else if high {
        (w + 2) / 2
    } else {
        w / 2
    };
    (0..k as u64).map(|j| j * w + offset).collect()
}

/// The weighted position selected by `Output` for quantile `φ` over total
/// mass `s` (§3.3): `⌈φ·s⌉`, clamped into `[1, s]`.
pub fn output_position(phi: f64, s: u64) -> u64 {
    assert!((0.0..=1.0).contains(&phi), "phi must lie in [0, 1]");
    assert!(s > 0, "cannot select from an empty sequence");
    let raw = (phi * s as f64).ceil();
    if raw < 1.0 {
        1
    } else if raw >= s as f64 {
        s
    } else {
        raw as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force reference: materialise all copies and index directly.
    fn select_brute<T: Ord + Clone>(sources: &[WeightedSource<'_, T>], targets: &[u64]) -> Vec<T> {
        let mut all: Vec<T> = Vec::new();
        for s in sources {
            for v in s.data {
                for _ in 0..s.weight {
                    all.push(v.clone());
                }
            }
        }
        all.sort();
        targets.iter().map(|&t| all[(t - 1) as usize].clone()).collect()
    }

    #[test]
    fn matches_brute_force_on_small_inputs() {
        let a = vec![1, 4, 7, 9];
        let b = vec![2, 2, 8];
        let c = vec![5];
        let sources = [
            WeightedSource::new(&a, 3),
            WeightedSource::new(&b, 1),
            WeightedSource::new(&c, 5),
        ];
        let mass = total_mass(&sources);
        assert_eq!(mass, 4 * 3 + 3 + 5);
        let targets: Vec<u64> = (1..=mass).collect();
        assert_eq!(select_weighted(&sources, &targets), select_brute(&sources, &targets));
    }

    #[test]
    fn single_target_median() {
        let a = vec![10, 20, 30];
        let sources = [WeightedSource::new(&a, 2)];
        assert_eq!(select_weighted(&sources, &[3]), vec![20]);
        assert_eq!(select_weighted(&sources, &[4]), vec![20]);
        assert_eq!(select_weighted(&sources, &[6]), vec![30]);
    }

    #[test]
    fn repeated_targets_yield_duplicates() {
        let a = vec![5];
        let sources = [WeightedSource::new(&a, 4)];
        assert_eq!(select_weighted(&sources, &[1, 2, 4]), vec![5, 5, 5]);
    }

    #[test]
    fn empty_targets_empty_result() {
        let a = vec![1, 2];
        let sources = [WeightedSource::new(&a, 1)];
        assert!(select_weighted(&sources, &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds total mass")]
    fn overlong_target_panics() {
        let a = vec![1, 2];
        let sources = [WeightedSource::new(&a, 1)];
        let _ = select_weighted(&sources, &[3]);
    }

    #[test]
    fn collapse_targets_odd_weight() {
        // w = 3, k = 4: positions j*3 + 2.
        assert_eq!(collapse_targets(4, 3, false), vec![2, 5, 8, 11]);
        // `high` is ignored for odd weights.
        assert_eq!(collapse_targets(4, 3, true), vec![2, 5, 8, 11]);
    }

    #[test]
    fn collapse_targets_even_weight_alternate() {
        // w = 4, k = 3: low phase 2, 6, 10; high phase 3, 7, 11.
        assert_eq!(collapse_targets(3, 4, false), vec![2, 6, 10]);
        assert_eq!(collapse_targets(3, 4, true), vec![3, 7, 11]);
    }

    #[test]
    fn collapse_targets_stay_in_range() {
        for k in 1..8usize {
            for w in 1..10u64 {
                for high in [false, true] {
                    let t = collapse_targets(k, w, high);
                    assert!(t[0] >= 1);
                    assert!(*t.last().unwrap() <= k as u64 * w, "k={k} w={w}");
                }
            }
        }
    }

    #[test]
    fn output_position_basics() {
        assert_eq!(output_position(0.5, 100), 50);
        assert_eq!(output_position(0.0, 100), 1);
        assert_eq!(output_position(1.0, 100), 100);
        assert_eq!(output_position(0.501, 100), 51);
        assert_eq!(output_position(0.5, 1), 1);
    }

    #[test]
    fn output_position_huge_mass_is_clamped() {
        let s = u64::MAX / 2;
        let p = output_position(1.0, s);
        assert_eq!(p, s);
        assert!(output_position(0.9999999, s) <= s);
    }
}
