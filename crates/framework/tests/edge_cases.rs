//! Edge-case coverage for the engine: degenerate sizes, duplicate-heavy
//! and non-numeric element types, and boundary quantiles.

use mrl_framework::{
    AdaptiveLowestLevel, Engine, EngineConfig, FixedRate, Mrl99Schedule, OrderedF64,
};

#[test]
fn k_equal_one_still_works() {
    // Buffers of a single element: every leaf is one block; collapses pick
    // a single weighted position.
    let mut e: Engine<u64, _, _> = Engine::new(
        EngineConfig::new(3, 1),
        AdaptiveLowestLevel,
        Mrl99Schedule::new(1),
        1,
    );
    for i in 0..1_000u64 {
        e.insert(i);
    }
    assert_eq!(e.output_mass(), 1_000);
    let med = e.query(0.5).unwrap();
    // With k = 1 the error bound is weak, but the answer must at least be
    // an element of the stream, and mass must balance.
    assert!(med < 1_000);
}

#[test]
fn minimal_engine_b2_k1() {
    let mut e: Engine<u64, _, _> = Engine::new(
        EngineConfig::new(2, 1),
        AdaptiveLowestLevel,
        FixedRate::new(1),
        2,
    );
    for i in 0..100u64 {
        e.insert(i);
    }
    assert_eq!(e.output_mass(), 100);
    assert!(e.query(0.5).is_some());
}

#[test]
#[cfg_attr(miri, ignore = "heavy interpreted loop; native jobs cover it")]
fn all_identical_elements() {
    let mut e: Engine<u64, _, _> = Engine::new(
        EngineConfig::new(4, 8),
        AdaptiveLowestLevel,
        Mrl99Schedule::new(2),
        3,
    );
    for _ in 0..50_000 {
        e.insert(42);
    }
    for phi in [0.0, 0.5, 1.0] {
        assert_eq!(e.query(phi), Some(42));
    }
}

#[test]
#[cfg_attr(miri, ignore = "heavy interpreted loop; native jobs cover it")]
fn two_distinct_values_preserve_proportion() {
    // 30% zeros, 70% ones: the 0.29-quantile must be 0 and the
    // 0.31-quantile 1 (within epsilon of the boundary).
    let mut e: Engine<u64, _, _> = Engine::new(
        EngineConfig::new(5, 64),
        AdaptiveLowestLevel,
        Mrl99Schedule::new(3),
        4,
    );
    let n = 100_000u64;
    for i in 0..n {
        e.insert(u64::from(i % 10 >= 3));
    }
    assert_eq!(e.query(0.05).unwrap(), 0);
    assert_eq!(e.query(0.95).unwrap(), 1);
    // The transition happens near 0.3.
    let at_boundary = e.query(0.3).unwrap();
    assert!(at_boundary <= 1);
}

#[test]
#[cfg_attr(miri, ignore = "heavy interpreted loop; native jobs cover it")]
fn float_elements_via_ordered_wrapper() {
    let mut e: Engine<OrderedF64, _, _> = Engine::new(
        EngineConfig::new(4, 32),
        AdaptiveLowestLevel,
        Mrl99Schedule::new(2),
        5,
    );
    let n = 60_000;
    for i in 0..n {
        let x = (f64::from(i) * 0.7301).sin(); // values in [-1, 1]
        e.insert(OrderedF64::from_f64(x));
    }
    // This small uncertified config has a Lemma-4 bound of a few percent
    // of N; the arcsine-distributed sin values make ranks near the median
    // value-sensitive, so allow that bound's worth of slack.
    let bound = e.tree_error_bound() as f64 / f64::from(n);
    let med = e.query(0.5).unwrap().get();
    // |P(sin < med) - 0.5| = |asin(med)|/pi must be within the bound.
    assert!(
        (med.asin() / std::f64::consts::PI).abs() <= bound + 0.01,
        "median of sin values {med} (bound {bound:.3})"
    );
    let lo = e.query(0.01).unwrap().get();
    let hi = e.query(0.99).unwrap().get();
    assert!(lo < -0.8 && hi > 0.8, "tails {lo}/{hi}");
}

#[test]
fn string_elements_sort_lexicographically() {
    let mut e: Engine<String, _, _> = Engine::new(
        EngineConfig::new(3, 16),
        AdaptiveLowestLevel,
        FixedRate::new(1),
        6,
    );
    for i in 0..500u32 {
        e.insert(format!("key-{:04}", (i * 7) % 500));
    }
    // 500 elements through a 3x16 engine collapse a few times; the
    // extremes can shift by the Lemma-4 bound.
    let bound = e.tree_error_bound() as usize;
    let lo: usize = e.query(0.0).unwrap()[4..].parse().unwrap();
    let hi: usize = e.query(1.0).unwrap()[4..].parse().unwrap();
    assert!(lo <= bound, "phi=0 gave rank ~{lo}, bound {bound}");
    assert!(hi >= 499 - bound, "phi=1 gave rank ~{hi}, bound {bound}");
}

#[test]
fn extreme_phi_values_stay_clamped() {
    let mut e: Engine<u64, _, _> = Engine::new(
        EngineConfig::new(3, 8),
        AdaptiveLowestLevel,
        Mrl99Schedule::new(1),
        7,
    );
    for i in 0..10_000u64 {
        e.insert(i);
    }
    // phi = 0 and 1 are in-range per the paper's definition (position
    // clamped to [1, S]).
    let lo = e.query(0.0).unwrap();
    let hi = e.query(1.0).unwrap();
    assert!(lo <= hi);
    assert!(lo < 2_000, "phi=0 answer {lo} too high");
    assert!(hi > 8_000, "phi=1 answer {hi} too low");
}

#[test]
fn exactly_one_element() {
    let mut e: Engine<u64, _, _> = Engine::new(
        EngineConfig::new(2, 4),
        AdaptiveLowestLevel,
        Mrl99Schedule::new(1),
        8,
    );
    e.insert(99);
    for phi in [0.0, 0.5, 1.0] {
        assert_eq!(e.query(phi), Some(99));
    }
    e.finish();
    assert_eq!(e.query(0.5), Some(99));
}

#[test]
fn stream_length_exactly_at_buffer_boundaries() {
    for n in [8u64, 16, 24, 32, 40] {
        let mut e: Engine<u64, _, _> = Engine::new(
            EngineConfig::new(4, 8),
            AdaptiveLowestLevel,
            FixedRate::new(1),
            9,
        );
        for i in 0..n {
            e.insert(i);
        }
        assert_eq!(e.output_mass(), n, "n={n}");
        // Collapses may shift the extremes by the certified bound.
        let bound = e.tree_error_bound();
        assert!(e.query(0.0).unwrap() <= bound, "n={n}");
        assert!(e.query(1.0).unwrap() + bound >= n - 1, "n={n}");
    }
}

#[test]
fn reverse_sorted_heavy_duplicates_mixed() {
    let mut e: Engine<u64, _, _> = Engine::new(
        EngineConfig::new(4, 16),
        AdaptiveLowestLevel,
        Mrl99Schedule::new(2),
        10,
    );
    let n = 30_000u64;
    for i in (0..n).rev() {
        e.insert(i / 100); // 300 distinct values, descending
    }
    let med = e.query(0.5).unwrap();
    assert!(
        (med as f64 - 150.0).abs() < 25.0,
        "median {med} of 300 duplicated values"
    );
}
