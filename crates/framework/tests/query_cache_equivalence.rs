//! Differential property tests for the epoch-cached query spine
//! (DESIGN.md §3.13): two engines fed the identical interleaved
//! insert/query sequence — one serving reads from the cached spine, one
//! with the cache force-disabled so every read re-runs the direct
//! weighted merge — must answer every `query_many`, `rank_of`, and `cdf`
//! call identically, at every prefix of the stream and after `finish`.

use mrl_framework::{AdaptiveLowestLevel, Engine, EngineConfig, Mrl99Schedule};
use proptest::prelude::*;

type E = Engine<u64, AdaptiveLowestLevel, Mrl99Schedule>;

fn engines(b: usize, k: usize, seed: u64) -> (E, E) {
    let cached = Engine::new(
        EngineConfig::new(b, k),
        AdaptiveLowestLevel,
        Mrl99Schedule::new(2),
        seed,
    );
    let mut direct = Engine::new(
        EngineConfig::new(b, k),
        AdaptiveLowestLevel,
        Mrl99Schedule::new(2),
        seed,
    );
    direct.set_query_cache_enabled(false);
    (cached, direct)
}

fn assert_reads_agree(cached: &E, direct: &E, phis: &[f64], probe: u64) {
    assert_eq!(cached.query_many(phis), direct.query_many(phis));
    assert_eq!(cached.rank_of(&probe), direct.rank_of(&probe));
    assert_eq!(cached.cdf(), direct.cdf());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn interleaved_inserts_and_reads_answer_identically(
        ops in proptest::collection::vec((any::<u64>(), any::<u8>()), 1..500),
        b in 2usize..6,
        k_exp in 2u32..7,
        seed in any::<u64>(),
    ) {
        let k = 1usize << k_exp;
        let (mut cached, mut direct) = engines(b, k, seed);
        let phis = [0.01, 0.25, 0.5, 0.75, 0.99];
        for (value, op) in ops {
            // Mostly inserts, with reads sprinkled at arbitrary prefixes
            // (including mid-fill, right after seals, and after
            // collapses) and occasional batch inserts.
            match op % 8 {
                0 => assert_reads_agree(&cached, &direct, &phis, value),
                1 => {
                    let batch = [value, value ^ 0xFF, value % 97];
                    cached.insert_batch(&batch);
                    direct.insert_batch(&batch);
                }
                _ => {
                    cached.insert(value);
                    direct.insert(value);
                }
            }
        }
        assert_reads_agree(&cached, &direct, &phis, 42);
        // Repeated reads with no interleaved ingest hit the warm spine.
        assert_reads_agree(&cached, &direct, &phis, 7);
        cached.finish();
        direct.finish();
        assert_reads_agree(&cached, &direct, &phis, 42);
        prop_assert_eq!(cached.ingest_epoch(), direct.ingest_epoch());
    }

    #[test]
    fn reenabling_the_cache_rebuilds_a_fresh_spine(
        items in proptest::collection::vec(any::<u64>(), 1..300),
        seed in any::<u64>(),
    ) {
        let (mut cached, mut direct) = engines(3, 32, seed);
        for chunk in items.chunks(3) {
            cached.insert_batch(chunk);
            direct.insert_batch(chunk);
        }
        // Warm the spine, disable (dropping it), re-enable, and read
        // again: the rebuilt spine must match the direct path.
        let phis = [0.1, 0.5, 0.9];
        prop_assert_eq!(cached.query_many(&phis), direct.query_many(&phis));
        cached.set_query_cache_enabled(false);
        prop_assert_eq!(cached.query_many(&phis), direct.query_many(&phis));
        cached.set_query_cache_enabled(true);
        prop_assert_eq!(cached.query_many(&phis), direct.query_many(&phis));
        prop_assert_eq!(cached.cdf(), direct.cdf());
    }
}
