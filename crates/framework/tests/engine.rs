//! Integration tests for the streaming engine: exactness in the
//! no-collapse regime, mass conservation, the Lemma-4 error bound, and the
//! behaviour of the non-uniform sampling schedule.

use mrl_framework::{
    AdaptiveLowestLevel, AlsabtiRankaSingh, CollapsePolicy, Engine, EngineConfig, FixedRate,
    Mrl99Schedule, MunroPaterson,
};

type DetEngine = Engine<u64, AdaptiveLowestLevel, FixedRate>;

fn det_engine(b: usize, k: usize, seed: u64) -> DetEngine {
    Engine::new(
        EngineConfig::new(b, k),
        AdaptiveLowestLevel,
        FixedRate::new(1),
        seed,
    )
}

fn mrl99_engine(
    b: usize,
    k: usize,
    h: u32,
    seed: u64,
) -> Engine<u64, AdaptiveLowestLevel, Mrl99Schedule> {
    Engine::new(
        EngineConfig::new(b, k),
        AdaptiveLowestLevel,
        Mrl99Schedule::new(h),
        seed,
    )
}

/// Exact φ-quantile of a slice per the paper's definition: the element at
/// position ⌈φ·N⌉ (1-indexed) of the sorted sequence, clamped to [1, N].
fn exact_quantile(data: &[u64], phi: f64) -> u64 {
    let mut v = data.to_vec();
    v.sort_unstable();
    let n = v.len() as f64;
    let pos = ((phi * n).ceil() as usize).clamp(1, v.len());
    v[pos - 1]
}

/// The weighted-rank interval [lo, hi] that `value` occupies in the weighted
/// sequence `tap` (1-indexed positions), or `None` if the value never
/// completed a block (it can still reach the output via the live tail).
fn weighted_rank_interval(tap: &[(u64, u64)], value: u64) -> Option<(u64, u64)> {
    let mut sorted: Vec<(u64, u64)> = tap.to_vec();
    sorted.sort_unstable();
    let mut cum = 0u64;
    let mut lo = None;
    let mut hi = 0u64;
    for (v, w) in sorted {
        if v == value {
            lo.get_or_insert(cum + 1);
            hi = cum + w;
        }
        cum += w;
    }
    lo.map(|lo| (lo, hi))
}

#[test]
fn single_partial_buffer_is_exact() {
    let mut e = det_engine(3, 100, 1);
    let data: Vec<u64> = vec![42, 17, 99, 3, 55];
    e.extend(data.iter().copied());
    for phi in [0.0, 0.2, 0.5, 0.9, 1.0] {
        assert_eq!(e.query(phi), Some(exact_quantile(&data, phi)), "phi={phi}");
    }
}

#[test]
fn no_collapse_regime_is_exact() {
    // b*k = 300 >= N = 250: leaves fill but never collapse, so Output sees
    // the full data and is exact.
    let mut e = det_engine(3, 100, 2);
    let data: Vec<u64> = (0..250).map(|i| (i * 7919) % 1000).collect();
    e.extend(data.iter().copied());
    for phi in [0.01, 0.25, 0.5, 0.75, 0.99] {
        assert_eq!(e.query(phi), Some(exact_quantile(&data, phi)), "phi={phi}");
    }
    assert_eq!(e.stats().collapses, 0);
}

#[test]
fn mass_is_conserved_while_streaming() {
    let mut e = det_engine(4, 8, 3);
    for i in 0..1000u64 {
        e.insert(i * 13 % 997);
        assert_eq!(
            e.output_mass(),
            i + 1,
            "mass mismatch after {} inserts",
            i + 1
        );
        assert_eq!(e.n(), i + 1);
    }
}

#[test]
fn mass_is_conserved_with_sampling() {
    let mut e = mrl99_engine(4, 8, 2, 4);
    for i in 0..5000u64 {
        e.insert(i);
        assert_eq!(
            e.output_mass(),
            i + 1,
            "mass mismatch after {} inserts",
            i + 1
        );
    }
    assert!(
        e.sampling_started(),
        "5000 elements through a 4x8 engine must sample"
    );
}

#[test]
fn finish_overcounts_less_than_one_block() {
    let mut e = mrl99_engine(4, 8, 2, 5);
    for i in 0..4443u64 {
        e.insert(i);
    }
    let n = e.n();
    let rate = e.current_rate();
    e.finish();
    let s = e.output_mass();
    assert!(s >= n, "finish must not lose mass");
    assert!(s - n < rate, "overcount {} >= one block {}", s - n, rate);
}

#[test]
#[cfg_attr(miri, ignore = "heavy interpreted loop; native jobs cover it")]
fn output_is_nondestructive_and_repeatable() {
    let mut e = mrl99_engine(5, 16, 2, 6);
    for i in 0..3000u64 {
        e.insert((i * 2654435761) % 100_000);
    }
    let a = e.query(0.5);
    let b = e.query(0.5);
    assert_eq!(a, b);
    let many = e.query_many(&[0.25, 0.5, 0.75]).unwrap();
    assert_eq!(many[1], b.unwrap());
    // Continue inserting after a query.
    for i in 0..100u64 {
        e.insert(i);
    }
    assert_eq!(e.n(), 3100);
}

#[test]
fn query_many_matches_individual_queries_in_caller_order() {
    let mut e = det_engine(5, 20, 7);
    for i in 0..700u64 {
        e.insert((i * 31) % 1009);
    }
    let phis = [0.9, 0.1, 0.5, 0.5, 0.0, 1.0];
    let many = e.query_many(&phis).unwrap();
    for (i, &phi) in phis.iter().enumerate() {
        assert_eq!(Some(many[i]), e.query(phi), "phi={phi}");
    }
}

#[test]
fn empty_engine_returns_none() {
    let e = det_engine(3, 4, 8);
    assert_eq!(e.query(0.5), None);
    assert_eq!(e.n(), 0);
    assert_eq!(e.output_mass(), 0);
}

#[test]
fn lemma4_bound_holds_for_deterministic_run() {
    // Deterministic engine (rate 1): the sample sequence is the input
    // itself, so the output must be within (W + w_max)/2 ranks of the exact
    // quantile.
    for seed in 0..5u64 {
        let mut e = det_engine(4, 16, seed);
        e.enable_sample_tap();
        let data: Vec<u64> = (0..4096u64).map(|i| (i * 48271 + seed) % 65_536).collect();
        e.extend(data.iter().copied());
        let bound = e.tree_error_bound();
        let s = e.output_mass();
        let tap: Vec<(u64, u64)> = e.sample_tap().unwrap().to_vec();
        assert_eq!(tap.len(), data.len(), "rate-1 tap records every element");
        for phi in [0.05, 0.3, 0.5, 0.7, 0.95] {
            let out = e.query(phi).unwrap();
            let pos = ((phi * s as f64).ceil() as u64).clamp(1, s);
            let (lo, hi) = weighted_rank_interval(&tap, out)
                .expect("rate-1 tap records every element, so the answer is in the tap");
            let dist = if pos < lo {
                lo - pos
            } else {
                pos.saturating_sub(hi)
            };
            assert!(
                dist <= bound,
                "seed={seed} phi={phi}: rank distance {dist} exceeds Lemma-4 bound {bound}"
            );
        }
    }
}

#[test]
fn lemma4_bound_holds_for_sampled_tree_over_its_sample() {
    // With sampling, the tree's guarantee is relative to the weighted
    // sample sequence (Figure 1): check the output against the tap.
    for seed in 0..3u64 {
        let mut e = mrl99_engine(4, 12, 2, 100 + seed);
        e.enable_sample_tap();
        for i in 0..20_000u64 {
            e.insert((i * 69621 + seed) % 1_000_003);
        }
        assert!(e.sampling_started());
        let bound = e.tree_error_bound();
        let tap: Vec<(u64, u64)> = e.sample_tap().unwrap().to_vec();
        let tap_mass: u64 = tap.iter().map(|&(_, w)| w).sum();
        // Live tail block: query() sees it, the tap does not (it is pushed
        // on completion); compare at positions within the tap mass only.
        for phi in [0.1, 0.5, 0.9] {
            let out = e.query(phi).unwrap();
            let s = e.output_mass();
            let pos = ((phi * s as f64).ceil() as u64).clamp(1, tap_mass);
            let Some((lo, hi)) = weighted_rank_interval(&tap, out) else {
                // The answer came from the live tail (filler or pending
                // block), which the tap only records on block completion.
                // That is only possible while unfinished mass exists.
                assert!(
                    s > tap_mass,
                    "seed={seed} phi={phi}: answer {out} in neither tap nor live tail"
                );
                continue;
            };
            let dist = if pos < lo {
                lo - pos
            } else {
                pos.saturating_sub(hi)
            };
            // The live tail may shift ranks by up to one block weight.
            let slack = bound + e.current_rate();
            assert!(
                dist <= slack,
                "seed={seed} phi={phi}: distance {dist} exceeds bound {slack}"
            );
        }
    }
}

#[test]
fn sampling_rate_doubles_as_tree_grows() {
    let mut e = mrl99_engine(3, 4, 1, 9);
    let mut rates = vec![e.current_rate()];
    for i in 0..10_000u64 {
        e.insert(i);
        let r = e.current_rate();
        if *rates.last().unwrap() != r {
            rates.push(r);
        }
    }
    // Rates must be 1, 2, 4, 8, ... consecutive powers of two.
    assert!(rates.len() >= 3, "rate never advanced: {rates:?}");
    for (i, &r) in rates.iter().enumerate() {
        assert_eq!(r, if i == 0 { 1 } else { 1 << i }, "rates: {rates:?}");
    }
}

#[test]
#[cfg_attr(miri, ignore = "heavy interpreted loop; native jobs cover it")]
fn memory_is_bounded_by_bk() {
    let (b, k) = (5, 32);
    let mut e = mrl99_engine(b, k, 3, 10);
    for i in 0..100_000u64 {
        e.insert(i);
    }
    assert!(e.memory_elements() <= b * k);
    assert_eq!(e.max_allocated_slots(), b);
}

#[test]
fn lazy_allocation_respects_schedule() {
    let config = EngineConfig::new(4, 8);
    // Buffer 0 immediately, 1 after 1 leaf, 2 after 4 leaves, 3 after 8.
    let mut e: Engine<u64, _, _> = Engine::with_allocation(
        config,
        AdaptiveLowestLevel,
        FixedRate::new(1),
        vec![0, 1, 4, 8],
        11,
    );
    let mut max_slots_at_leaf = Vec::new();
    for i in 0..800u64 {
        e.insert(i);
        max_slots_at_leaf.push((e.stats().leaves, e.allocated_slots()));
    }
    for &(leaves, slots) in &max_slots_at_leaf {
        // No slot may appear before its threshold (allowing the forced
        // allocation when fewer than two buffers are full).
        if leaves < 1 {
            assert!(slots <= 2);
        } else if leaves < 4 {
            assert!(slots <= 3, "slots={slots} at leaves={leaves}");
        }
    }
    assert_eq!(e.allocated_slots(), 4);
    // Still answers queries.
    assert!(e.query(0.5).is_some());
}

#[test]
fn all_policies_produce_valid_runs() {
    let data: Vec<u64> = (0..3000u64).map(|i| (i * 7907) % 10_000).collect();
    let exact = exact_quantile(&data, 0.5);
    let n = data.len() as u64;

    fn check<P: CollapsePolicy>(policy: P, data: &[u64], n: u64, exact: u64) {
        let name = policy.name();
        let mut e = Engine::new(EngineConfig::new(4, 32), policy, FixedRate::new(1), 1);
        e.extend(data.iter().copied());
        assert_eq!(e.output_mass(), n, "{name} lost mass");
        let out = e.query(0.5).unwrap();
        // Rank error within the engine's own certified bound.
        let mut sorted = data.to_vec();
        sorted.sort_unstable();
        let rank_lo = sorted.iter().take_while(|&&v| v < out).count() as u64 + 1;
        let rank_hi = sorted.iter().take_while(|&&v| v <= out).count() as u64;
        let pos = (0.5 * n as f64).ceil() as u64;
        let dist = if pos < rank_lo {
            rank_lo - pos
        } else {
            pos.saturating_sub(rank_hi)
        };
        assert!(
            dist <= e.tree_error_bound(),
            "{name}: rank distance {dist} > bound {} (exact median {exact}, got {out})",
            e.tree_error_bound()
        );
    }
    check(AdaptiveLowestLevel, &data, n, exact);
    check(MunroPaterson, &data, n, exact);
    check(AlsabtiRankaSingh, &data, n, exact);
}

#[test]
fn tree_recording_reconstructs_structure() {
    let mut e = det_engine(3, 4, 12);
    e.enable_tree_recording();
    for i in 0..64u64 {
        e.insert(i);
    }
    let rec = e.recorder().unwrap();
    assert_eq!(rec.leaf_count() as u64, e.stats().leaves);
    // Every collapse node's weight equals the sum of its children's weights.
    for node in rec.nodes() {
        if !node.children.is_empty() {
            let sum: u64 = node.children.iter().map(|&c| rec.nodes()[c].weight).sum();
            assert_eq!(node.weight, sum);
        }
    }
    // Root mass accounts for all full leaves.
    let roots = e.root_nodes();
    assert!(!roots.is_empty());
}

#[test]
fn extremes_of_stream_are_reachable() {
    // phi = 0 returns something <= everything seen at rate 1 with no
    // collapses; with collapses it must still be within bound of minimum.
    let mut e = det_engine(3, 10, 13);
    let data: Vec<u64> = (0..30u64).rev().collect();
    e.extend(data.iter().copied());
    assert_eq!(e.query(0.0), Some(0));
    assert_eq!(e.query(1.0), Some(29));
}

#[test]
#[should_panic(expected = "after finish")]
fn insert_after_finish_panics() {
    let mut e = det_engine(2, 2, 14);
    e.insert(1);
    e.finish();
    e.insert(2);
}

#[test]
fn finish_is_idempotent() {
    let mut e = det_engine(2, 4, 15);
    for i in 0..7u64 {
        e.insert(i);
    }
    e.finish();
    let a = e.query(0.5);
    e.finish();
    assert_eq!(e.query(0.5), a);
}

#[test]
fn collapse_all_full_reduces_to_single_full_buffer() {
    let mut e = det_engine(4, 8, 16);
    for i in 0..32u64 {
        e.insert(i); // exactly 4 full buffers
    }
    e.collapse_all_full();
    let bufs = e.into_buffers();
    assert_eq!(bufs.len(), 1);
    assert_eq!(bufs[0].mass(), 32);
}
