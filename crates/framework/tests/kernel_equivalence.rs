//! Differential property tests for the branchless merge/selection kernels
//! (DESIGN.md §3.12): on adversarial inputs — tie-heavy, all-equal,
//! already-sorted, sawtooth value patterns, and length combinations
//! straddling the unroll width — every chunked kernel must be bitwise
//! identical to its scalar reference and to a naive expand-and-sort
//! oracle, and the evenly-spaced variants must agree with the
//! target-vector variants. The suite runs under both feature configs: by
//! default it exercises the chunked kernels, with `--features
//! scalar-kernels` the same assertions pin the scalar references against
//! the oracle.

use mrl_framework::kernels::{
    merge_two, merge_two_scalar, select_merged_weighted, select_merged_weighted_spaced,
    select_three_weighted_spaced, select_two_weighted, select_two_weighted_spaced,
    targets_single_crossing,
};
use mrl_framework::{select_weighted, WeightedSource};
use proptest::prelude::*;

/// Shape raw draws into one of the adversarial sorted-source patterns.
fn shape(raw: &[u64], pattern: u8) -> Vec<u64> {
    let mut v: Vec<u64> = match pattern % 4 {
        // Tie-heavy: three distinct values, long equal runs.
        0 => raw.iter().map(|x| x % 3).collect(),
        // Distinct ascending: the merge branch is decided by interleaving
        // alone.
        1 => (0..raw.len() as u64).collect(),
        // Degenerate: every element equal, all ties.
        2 => raw.iter().map(|_| 7).collect(),
        // Sawtooth values folded into a small alphabet: moderate ties with
        // irregular interleaving.
        _ => raw.iter().map(|x| x % 16).collect(),
    };
    v.sort_unstable();
    v
}

/// Naive oracle: expand every element `weight` times, sort, and read the
/// 1-indexed weighted positions. Position `t` of the weighted merge of
/// sorted sources is exactly element `t - 1` of the sorted expansion.
fn naive_select(sources: &[(&[u64], u64)], targets: &[u64]) -> Vec<u64> {
    let mut expanded = Vec::new();
    for (data, w) in sources {
        for v in *data {
            for _ in 0..*w {
                expanded.push(*v);
            }
        }
    }
    expanded.sort_unstable();
    targets
        .iter()
        .map(|&t| expanded[(t - 1) as usize])
        .collect()
}

/// The merged `(element, weight)` pair run of two weighted sources, as the
/// ≥ 3-source dense path builds it.
fn paired(a: &[u64], wa: u64, b: &[u64], wb: u64) -> Vec<(u64, u64)> {
    let mut pairs: Vec<(u64, u64)> = a
        .iter()
        .map(|&v| (v, wa))
        .chain(b.iter().map(|&v| (v, wb)))
        .collect();
    pairs.sort_by_key(|&(v, _)| v);
    pairs
}

/// Evenly spaced 1-indexed targets `first + i·spacing` capped at `total`.
fn spaced_targets(first: u64, spacing: u64, total: u64) -> Vec<u64> {
    if first > total {
        return Vec::new();
    }
    (0..=(total - first) / spacing)
        .map(|i| first + i * spacing)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn merge_matches_scalar_and_sorted_concat(
        raw_a in prop_vec(0u64..1_000, 0..48usize),
        raw_b in prop_vec(0u64..1_000, 0..48usize),
        pat_a in any::<u8>(),
        pat_b in any::<u8>(),
    ) {
        let a = shape(&raw_a, pat_a);
        let b = shape(&raw_b, pat_b);
        let mut chunked = Vec::new();
        merge_two(&a, &b, &mut chunked);
        let mut scalar = Vec::new();
        merge_two_scalar(&a, &b, &mut scalar);
        prop_assert_eq!(&chunked, &scalar);
        let mut oracle: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        oracle.sort_unstable();
        prop_assert_eq!(chunked, oracle);
    }

    #[test]
    fn collapse_shape_selection_matches_oracle_in_every_kernel(
        raw_a in prop_vec(0u64..1_000, 0..40usize),
        raw_b in prop_vec(0u64..1_000, 0..40usize),
        pat_a in any::<u8>(),
        pat_b in any::<u8>(),
        wa in 1u64..=4,
        wb in 1u64..=4,
        extra_spacing in 0u64..4,
        first_frac in 0u64..8,
    ) {
        let a = shape(&raw_a, pat_a);
        let b = shape(&raw_b, pat_b);
        let total = a.len() as u64 * wa + b.len() as u64 * wb;
        // Collapse-style spacing (≥ the output weight wa + wb, so a
        // fortiori ≥ each input weight) and an arbitrary phase offset.
        let spacing = wa + wb + extra_spacing;
        let first = 1 + first_frac % spacing;
        let targets = spaced_targets(first, spacing, total);
        prop_assert!(targets_single_crossing(&targets, wa.max(wb)));
        let oracle = naive_select(&[(&a, wa), (&b, wb)], &targets);

        let mut out = Vec::new();
        select_two_weighted(&a, wa, &b, wb, &targets, &mut out);
        prop_assert_eq!(&out, &oracle);

        select_two_weighted_spaced(&a, wa, &b, wb, first, spacing, targets.len(), &mut out);
        prop_assert_eq!(&out, &oracle);

        let pairs = paired(&a, wa, &b, wb);
        select_merged_weighted(&pairs, &targets, &mut out);
        prop_assert_eq!(&out, &oracle);

        select_merged_weighted_spaced(&pairs, first, spacing, targets.len(), &mut out);
        prop_assert_eq!(&out, &oracle);

        // The dispatching walk (chunked by default, the scalar walk under
        // `scalar-kernels`) must agree too.
        if !targets.is_empty() {
            let sources = [WeightedSource::new(&a, wa), WeightedSource::new(&b, wb)];
            prop_assert_eq!(select_weighted(&sources, &targets), oracle);
        }
    }

    #[test]
    fn three_source_collapse_selection_matches_oracle(
        raw_a in prop_vec(0u64..1_000, 0..40usize),
        raw_b in prop_vec(0u64..1_000, 0..40usize),
        raw_c in prop_vec(0u64..1_000, 0..40usize),
        pat_a in any::<u8>(),
        pat_b in any::<u8>(),
        pat_c in any::<u8>(),
        wa in 1u64..=4,
        wb in 1u64..=4,
        wc in 1u64..=4,
        extra_spacing in 0u64..4,
        first_frac in 0u64..8,
    ) {
        // The 3-source collapse shape served by the direct walk: three
        // distinct (or colliding) weights, collapse-style spacing, and
        // any mix of empty/non-empty sources — including lengths that
        // force the walk's first exhaustion onto each source in turn and
        // hand the remainder to the two-source core mid-run.
        let a = shape(&raw_a, pat_a);
        let b = shape(&raw_b, pat_b);
        let c = shape(&raw_c, pat_c);
        let total = a.len() as u64 * wa + b.len() as u64 * wb + c.len() as u64 * wc;
        let spacing = wa + wb + wc + extra_spacing;
        let first = 1 + first_frac % spacing;
        let targets = spaced_targets(first, spacing, total);
        let oracle = naive_select(&[(&a, wa), (&b, wb), (&c, wc)], &targets);

        let mut out = Vec::new();
        select_three_weighted_spaced(
            &a, wa, &b, wb, &c, wc, first, spacing, targets.len(), &mut out,
        );
        prop_assert_eq!(out, oracle);
    }

    #[test]
    fn irregular_single_crossing_targets_match_oracle(
        raw_a in prop_vec(0u64..1_000, 1..40usize),
        raw_b in prop_vec(0u64..1_000, 1..40usize),
        pat_a in any::<u8>(),
        pat_b in any::<u8>(),
        wa in 1u64..=4,
        wb in 1u64..=4,
        gaps in prop_vec(0u64..5, 1..24usize),
    ) {
        // Query-path shape: strictly increasing targets with irregular
        // gaps that still satisfy the single-crossing contract.
        let a = shape(&raw_a, pat_a);
        let b = shape(&raw_b, pat_b);
        let total = a.len() as u64 * wa + b.len() as u64 * wb;
        let max_w = wa.max(wb);
        let mut targets = Vec::new();
        let mut t = 0u64;
        for g in &gaps {
            t += max_w + g;
            if t > total {
                break;
            }
            targets.push(t);
        }
        prop_assert!(targets_single_crossing(&targets, max_w));
        let oracle = naive_select(&[(&a, wa), (&b, wb)], &targets);

        let mut out = Vec::new();
        select_two_weighted(&a, wa, &b, wb, &targets, &mut out);
        prop_assert_eq!(&out, &oracle);

        select_merged_weighted(&paired(&a, wa, &b, wb), &targets, &mut out);
        prop_assert_eq!(&out, &oracle);
    }
}

/// Chunking invariance: sweep both source lengths across every residue
/// around the unroll width (the kernels' main loops run 8-wide with a
/// scalar remainder), on a descending-then-folded sawtooth. Any
/// off-by-one between the unrolled loop, the remainder loop, and the
/// exhausted-source tail shows up as a mismatch at some length pair.
#[test]
fn chunking_boundaries_are_invisible() {
    let lens = [0usize, 1, 2, 7, 8, 9, 15, 16, 17, 23, 31, 33];
    let (wa, wb) = (2u64, 3u64);
    for &la in &lens {
        for &lb in &lens {
            // Descending sawtooth folded to a small alphabet, then sorted:
            // long tie runs whose boundaries land on different residues
            // for every (la, lb).
            let mut a: Vec<u64> = (0..la as u64).map(|i| (la as u64 - i) % 5).collect();
            let mut b: Vec<u64> = (0..lb as u64).map(|i| (lb as u64 - i) % 7).collect();
            a.sort_unstable();
            b.sort_unstable();

            let mut chunked = Vec::new();
            merge_two(&a, &b, &mut chunked);
            let mut scalar = Vec::new();
            merge_two_scalar(&a, &b, &mut scalar);
            assert_eq!(chunked, scalar, "merge mismatch at ({la}, {lb})");

            let total = la as u64 * wa + lb as u64 * wb;
            let spacing = wa + wb;
            for first in [1, spacing / 2 + 1, spacing] {
                let targets = spaced_targets(first, spacing, total);
                let oracle = naive_select(&[(&a, wa), (&b, wb)], &targets);
                let mut out = Vec::new();
                select_two_weighted(&a, wa, &b, wb, &targets, &mut out);
                assert_eq!(out, oracle, "dense select at ({la}, {lb}, {first})");
                select_two_weighted_spaced(&a, wa, &b, wb, first, spacing, targets.len(), &mut out);
                assert_eq!(out, oracle, "spaced select at ({la}, {lb}, {first})");
                select_merged_weighted_spaced(
                    &paired(&a, wa, &b, wb),
                    first,
                    spacing,
                    targets.len(),
                    &mut out,
                );
                assert_eq!(out, oracle, "merged spaced at ({la}, {lb}, {first})");

                // Three-source walk with a third source whose length
                // cycles the exhaustion order relative to (la, lb).
                let wc = 1u64;
                let mut c: Vec<u64> = (0..((la + lb) % 13) as u64).map(|i| i % 3).collect();
                c.sort_unstable();
                let total3 = total + c.len() as u64 * wc;
                let spacing3 = wa + wb + wc;
                let targets3 = spaced_targets(first, spacing3, total3);
                let oracle3 = naive_select(&[(&a, wa), (&b, wb), (&c, wc)], &targets3);
                select_three_weighted_spaced(
                    &a,
                    wa,
                    &b,
                    wb,
                    &c,
                    wc,
                    first,
                    spacing3,
                    targets3.len(),
                    &mut out,
                );
                assert_eq!(out, oracle3, "three-way spaced at ({la}, {lb}, {first})");
            }
        }
    }
}
