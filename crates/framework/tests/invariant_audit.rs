//! The runtime invariant auditor (feature `invariant-audit`): the engine
//! re-checks the MRL structural invariants and an attached certificate
//! after every seal/collapse. These tests drive it through honest runs
//! (the auditor must stay silent) and prove it actually bites by
//! attaching an impossibly tight certificate.
#![cfg(feature = "invariant-audit")]

use mrl_framework::{
    AdaptiveLowestLevel, CertifiedSchedule, Engine, EngineConfig, FixedRate, Mrl99Schedule,
};

#[test]
fn honest_runs_pass_every_audit() {
    // Deterministic and sampled schedules, scrambled input, queries and a
    // finish: every seal/collapse audits itself, and explicit audits at
    // quiescent points must also hold.
    let mut e = Engine::new(
        EngineConfig::new(4, 16),
        AdaptiveLowestLevel,
        Mrl99Schedule::new(2),
        9,
    );
    for i in 0..20_000u64 {
        e.insert((i * 2654435761) % 20_000);
        if i % 4_999 == 0 {
            e.audit_invariants("explicit");
        }
    }
    assert!(e.query(0.5).is_some());
    e.finish();
    e.audit_invariants("after-finish");
}

#[test]
fn deterministic_engine_audits_under_fixed_rate() {
    let mut e = Engine::new(
        EngineConfig::new(3, 8),
        AdaptiveLowestLevel,
        FixedRate::new(1),
        3,
    );
    e.extend((0..5_000u64).rev());
    e.audit_invariants("deterministic");
    e.finish();
}

#[test]
fn generous_certificate_is_accepted() {
    let mut e = Engine::new(
        EngineConfig::new(4, 32),
        AdaptiveLowestLevel,
        Mrl99Schedule::new(2),
        7,
    );
    // The Lemma-4 bound can never exceed mass/2 + w_max/2 <= mass, so a
    // per-k coefficient of k rank units is always satisfiable.
    e.set_certified_schedule(CertifiedSchedule {
        g_pre: 32.0,
        g_post: 32.0,
        alpha: 0.5,
        epsilon: 1.0,
    });
    e.extend((0..50_000u64).map(|i| (i * 48271) % 49_999));
    e.finish();
}

#[test]
#[should_panic(expected = "exceeds certified")]
fn impossible_certificate_trips_the_auditor() {
    let mut e = Engine::new(
        EngineConfig::new(3, 8),
        AdaptiveLowestLevel,
        Mrl99Schedule::new(1),
        5,
    );
    // No schedule satisfies a zero tree-error budget once a collapse has
    // happened; the first collapse's audit must fire.
    e.set_certified_schedule(CertifiedSchedule {
        g_pre: 0.0,
        g_post: 0.0,
        alpha: 0.5,
        epsilon: 0.0,
    });
    e.extend(0..5_000u64);
}

#[test]
fn certificate_budgets_scale_with_mass() {
    let cert = CertifiedSchedule {
        g_pre: 1.5,
        g_post: 2.5,
        alpha: 0.5,
        epsilon: 0.05,
    };
    assert!(cert.tree_budget(false, 1_000, 10) < cert.tree_budget(false, 2_000, 10));
    assert!(cert.tree_budget(true, 1_000, 10) > cert.tree_budget(false, 1_000, 10));
    assert_eq!(cert.epsilon_budget(1_000), 51.0);
}
