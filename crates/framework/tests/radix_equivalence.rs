//! Differential property tests for the radix sealing kernel (DESIGN.md
//! §3.13): on adversarial inputs — tie-heavy, sawtooth, already-sorted,
//! reversed, all-equal, and narrow-alphabet shapes, plus the f64
//! total-order edge cases (negative zero, subnormals, ±infinity) — the
//! radix sort must be bitwise identical to `sort_unstable` for every
//! `FixedWidthKey` type. The suite runs under both feature configs: the
//! default exercises the radix path end to end, and `--features
//! scalar-kernels` pins the dispatch-declined fallback.

use mrl_framework::{
    sort_fixed, try_sort_fixed, OrderedF64, RadixScratch, RADIX_MAX_LEN, RADIX_MIN_LEN,
};
use proptest::prelude::*;

/// Shape raw draws into one of the adversarial input patterns.
fn shape_u64(raw: &[u64], pattern: u8) -> Vec<u64> {
    match pattern % 8 {
        // Tie-heavy: three distinct values, long equal runs.
        0 => raw.iter().map(|x| x % 3).collect(),
        // Already sorted ascending: the priming pass sees maximal runs.
        1 => {
            let mut v = raw.to_vec();
            v.sort_unstable();
            v
        }
        // Reversed: every digit column varies.
        2 => {
            let mut v = raw.to_vec();
            v.sort_unstable();
            v.reverse();
            v
        }
        // Degenerate: every element equal — the all-constant early return.
        3 => raw.iter().map(|_| 0xDEAD_BEEF).collect(),
        // Sawtooth folded into a small alphabet: only the low byte varies,
        // so seven of eight digit columns are skipped.
        4 => raw.iter().map(|x| x % 251).collect(),
        // High-byte-only variation: the low seven columns are constant.
        5 => raw.iter().map(|x| (x % 251) << 56).collect(),
        // Two spread clusters: middle columns constant within clusters.
        6 => raw
            .iter()
            .map(|x| {
                if x % 2 == 0 {
                    x % 17
                } else {
                    u64::MAX - x % 17
                }
            })
            .collect(),
        // Raw uniform draws.
        _ => raw.to_vec(),
    }
}

/// The f64 total-order edge values the sign-flip bit mapping must order
/// correctly, mixed into generated data by index.
const F64_EDGES: &[f64] = &[
    f64::NEG_INFINITY,
    f64::MIN,
    -1.0,
    -f64::MIN_POSITIVE, // largest-magnitude negative subnormal boundary
    -f64::from_bits(1), // smallest-magnitude negative subnormal
    -0.0,
    0.0,
    f64::from_bits(1), // smallest positive subnormal
    f64::MIN_POSITIVE,
    1.0,
    f64::MAX,
    f64::INFINITY,
];

fn shape_f64(raw: &[u64], pattern: u8) -> Vec<OrderedF64> {
    raw.iter()
        .enumerate()
        .map(|(i, &x)| {
            let f = match pattern % 4 {
                // Every element an edge value: dense ties across the
                // special cases, including -0.0 vs +0.0.
                0 => F64_EDGES[x as usize % F64_EDGES.len()],
                // Mixed-sign finite values spanning many exponents.
                1 => (x as i64 as f64) * 1e-3,
                // Edge values sprinkled through ordinary data.
                2 if i % 5 == 0 => F64_EDGES[x as usize % F64_EDGES.len()],
                _ => f64::from_bits(x & !(0x7FF0_0000_0000_0000)), // never NaN/inf: exponent cleared
            };
            OrderedF64::new(f).expect("generated values are never NaN")
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn radix_matches_sort_unstable_u64(
        raw in proptest::collection::vec(any::<u64>(), 0..600),
        pattern in any::<u8>(),
    ) {
        let mut data = shape_u64(&raw, pattern);
        let mut expect = data.clone();
        expect.sort_unstable();
        let mut scratch = RadixScratch::default();
        sort_fixed(&mut data, &mut scratch);
        prop_assert_eq!(data, expect);
    }

    #[test]
    fn radix_matches_sort_unstable_narrow_and_signed(
        raw in proptest::collection::vec(any::<u64>(), 0..400),
        pattern in any::<u8>(),
    ) {
        let shaped = shape_u64(&raw, pattern);
        {
            let mut data: Vec<u32> = shaped.iter().map(|&x| x as u32).collect();
            let mut expect = data.clone();
            expect.sort_unstable();
            sort_fixed(&mut data, &mut RadixScratch::default());
            prop_assert_eq!(data, expect);
        }
        {
            let mut data: Vec<u16> = shaped.iter().map(|&x| x as u16).collect();
            let mut expect = data.clone();
            expect.sort_unstable();
            sort_fixed(&mut data, &mut RadixScratch::default());
            prop_assert_eq!(data, expect);
        }
        {
            let mut data: Vec<u8> = shaped.iter().map(|&x| x as u8).collect();
            let mut expect = data.clone();
            expect.sort_unstable();
            sort_fixed(&mut data, &mut RadixScratch::default());
            prop_assert_eq!(data, expect);
        }
        {
            // Cast straddles the sign flip: half the values land negative.
            let mut data: Vec<i64> = shaped.iter().map(|&x| x as i64).collect();
            let mut expect = data.clone();
            expect.sort_unstable();
            sort_fixed(&mut data, &mut RadixScratch::default());
            prop_assert_eq!(data, expect);
        }
    }

    #[test]
    fn radix_matches_total_order_on_f64_edges(
        raw in proptest::collection::vec(any::<u64>(), 0..400),
        pattern in any::<u8>(),
    ) {
        let mut data = shape_f64(&raw, pattern);
        // Reference: total_cmp is IEEE 754 totalOrder, which the sign-flip
        // bit mapping must reproduce (it orders -0.0 < +0.0 and keeps
        // subnormals between zero and MIN_POSITIVE).
        let mut expect: Vec<f64> = data.iter().map(|v| v.get()).collect();
        expect.sort_unstable_by(|a, b| a.total_cmp(b));
        let mut scratch = RadixScratch::default();
        sort_fixed(&mut data, &mut scratch);
        let got: Vec<u64> = data.iter().map(|v| v.get().to_bits()).collect();
        let want: Vec<u64> = expect.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn dispatch_sorts_iff_kernels_enabled(
        raw in proptest::collection::vec(any::<u64>(), RADIX_MIN_LEN..3 * RADIX_MIN_LEN),
        pattern in any::<u8>(),
    ) {
        let mut data = shape_u64(&raw, pattern);
        let mut expect = data.clone();
        expect.sort_unstable();
        let mut scratch = RadixScratch::default();
        let sorted = try_sort_fixed(&mut data, &mut scratch);
        // Above the crossover the dispatcher accepts fixed-width keys
        // exactly when the chunked kernels are enabled; either way the
        // caller-visible contract is "sorted == true implies sorted data".
        prop_assert_eq!(sorted, mrl_framework::kernels::chunked_kernels_enabled());
        if sorted {
            prop_assert_eq!(data, expect);
        }
    }

    #[test]
    fn dispatch_declines_outside_the_win_window(
        seed in any::<u64>(),
    ) {
        // Below RADIX_MIN_LEN and above RADIX_MAX_LEN the dispatcher must
        // decline (the comparison fallback wins there); `sort_fixed`
        // called directly still sorts correctly at any length.
        let mut scratch = RadixScratch::default();
        for len in [RADIX_MIN_LEN - 1, RADIX_MAX_LEN + 1] {
            let mut data: Vec<u64> =
                (0..len as u64).map(|j| j.wrapping_mul(seed | 1)).collect();
            let mut expect = data.clone();
            prop_assert!(!try_sort_fixed(&mut data, &mut scratch));
            prop_assert_eq!(&data, &expect); // decline leaves data untouched
            expect.sort_unstable();
            sort_fixed(&mut data, &mut scratch);
            prop_assert_eq!(data, expect);
        }
    }

    #[test]
    fn scratch_reuse_across_mixed_types_and_lengths(
        a in proptest::collection::vec(any::<u64>(), 0..300),
        b in proptest::collection::vec(any::<u64>(), 0..100),
        pattern in any::<u8>(),
    ) {
        // One scratch, many calls of different lengths: stale ping-pong
        // contents must never leak into a later sort.
        let mut scratch = RadixScratch::default();
        for raw in [&a, &b, &a] {
            let mut data = shape_u64(raw, pattern);
            let mut expect = data.clone();
            expect.sort_unstable();
            sort_fixed(&mut data, &mut scratch);
            prop_assert_eq!(data, expect);
        }
    }
}
