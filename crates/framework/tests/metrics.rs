//! Engine instrumentation: the metric stream published through an attached
//! [`mrl_obs::Recorder`] must agree with the engine's own exact accounting
//! ([`mrl_framework::TreeStats`]), and a default (disabled) handle must
//! record nothing.

use std::sync::Arc;

use mrl_framework::engine::metrics;
use mrl_framework::{AdaptiveLowestLevel, Engine, EngineConfig, FixedRate, Mrl99Schedule};
use mrl_obs::{InMemoryRecorder, Key, MetricsHandle};

/// Deterministic pseudo-shuffled stream (LCG) so seals exercise the
/// run-merge path rather than the presorted fast path.
fn scrambled(n: u64) -> impl Iterator<Item = u64> {
    (0..n).map(|i| {
        i.wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407)
    })
}

#[test]
fn counters_match_tree_stats_at_rate_one() {
    let rec = Arc::new(InMemoryRecorder::new());
    let mut e = Engine::new(
        EngineConfig::new(5, 16),
        AdaptiveLowestLevel,
        FixedRate::new(1),
        7,
    );
    e.set_metrics(MetricsHandle::new(rec.clone()));
    // 800 = 50 exact buffers: finish() seals no partial fill, so seal
    // counters correspond 1:1 to leaves.
    for v in scrambled(800) {
        e.insert(v);
    }
    e.finish();

    let stats = e.stats().clone();
    assert_eq!(
        rec.counter_value(metrics::COLLAPSES),
        stats.collapses,
        "collapse counter must match exact accounting"
    );
    let leaves_by_level: u64 = stats
        .leaves_by_level
        .keys()
        .map(|&lvl| rec.counter_value(Key::labeled(metrics::LEAVES_BY_LEVEL, lvl)))
        .sum();
    assert_eq!(leaves_by_level, stats.leaves);
    let seals = rec.counter_value(metrics::SEAL_PRESORTED)
        + rec.counter_value(metrics::SEAL_RUN_MERGE)
        + rec.counter_value(metrics::SEAL_PARKED_RAW);
    assert_eq!(seals, stats.leaves);
    assert_eq!(rec.gauge_value(metrics::ELEMENTS), Some(800.0));
    assert_eq!(
        rec.gauge_value(metrics::COLLAPSE_WEIGHT_SUM),
        Some(stats.collapse_weight_sum as f64)
    );
    assert_eq!(rec.dropped(), 0, "no updates may be lost");

    // Latency histograms observed one record per seal / collapse.
    let snap = rec.snapshot();
    let seal_ns = snap
        .histograms
        .get("engine.seal.ns")
        .expect("seal latency histogram present");
    assert_eq!(seal_ns.count, stats.leaves);
    let collapse_ns = snap
        .histograms
        .get("engine.collapse.ns")
        .expect("collapse latency histogram present");
    assert_eq!(collapse_ns.count, stats.collapses);
}

#[test]
#[cfg_attr(miri, ignore = "heavy interpreted loop; native jobs cover it")]
fn rate_transitions_and_onset_are_published() {
    let rec = Arc::new(InMemoryRecorder::new());
    let mut e = Engine::new(
        EngineConfig::new(4, 32),
        AdaptiveLowestLevel,
        Mrl99Schedule::new(3),
        11,
    );
    e.set_metrics(MetricsHandle::new(rec.clone()));
    for v in scrambled(50_000) {
        e.insert(v);
    }
    e.finish();

    assert!(e.sampling_started(), "stream long enough to start sampling");
    assert!(rec.counter_value(metrics::RATE_TRANSITIONS) >= 1);
    assert_eq!(
        rec.gauge_value(metrics::RATE_CURRENT),
        Some(e.current_rate() as f64)
    );
    let onset = e.stats().sampling_onset_n.expect("onset recorded");
    assert_eq!(
        rec.gauge_value(metrics::SAMPLING_ONSET_N),
        Some(onset as f64),
        "onset gauge set exactly once, at the recorded N"
    );
    let draws = rec
        .gauge_value(metrics::SAMPLER_DRAWS)
        .expect("sampler draws gauge");
    assert!(draws > 0.0, "sampling must have consumed randomness");
}

#[test]
fn disabled_handle_is_the_default_and_records_nothing() {
    let mut e = Engine::new(
        EngineConfig::new(4, 8),
        AdaptiveLowestLevel,
        FixedRate::new(1),
        3,
    );
    assert!(!e.metrics().is_enabled());
    for v in 0..200u64 {
        e.insert(v);
    }
    e.finish();
    // Attach a recorder only now: nothing retroactive appears.
    let rec = Arc::new(InMemoryRecorder::new());
    e.set_metrics(MetricsHandle::new(rec.clone()));
    assert_eq!(rec.snapshot().series_count(), 0);
}
