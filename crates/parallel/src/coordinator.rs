//! The coordinator ("Processor P₀") of §6.

use std::cell::RefCell;

use mrl_framework::{
    collapse_targets, output_position, select_weighted, Buffer, BufferState, QuerySpine,
    WeightedSource,
};
use mrl_sampling::{rng_from_seed, BlockSampler, SketchRng};

/// Merges buffers shipped by workers and answers quantile queries over the
/// aggregate of all their inputs.
///
/// Maintains `b` buffer slots of `k` elements plus the staging buffer `B₀`
/// for incoming partial buffers. `add_buffer` accepts each worker's final
/// full/partial buffers in any order; `query` may be called at any time.
#[derive(Debug)]
pub struct Coordinator<T> {
    k: usize,
    b: usize,
    /// Full buffers (weight, level, sorted data).
    full: Vec<(Vec<T>, u64, u32)>,
    /// Staging buffer B₀ for partial content: (unsorted data, weight).
    staging: Option<(Vec<T>, u64)>,
    collapse_high_phase: bool,
    collapses: u64,
    total_weight_shipped: u64,
    rng: SketchRng,
    /// Ingest epoch: bumped on every shipment so queries know when the
    /// cached spine below is stale (same scheme as the engine's).
    epoch: u64,
    /// Epoch-cached merged view of `full` + `staging`: the first query
    /// after a shipment materialises it once; repeated `query_many` /
    /// `rank_of` calls are then binary searches until the next shipment.
    spine: RefCell<QuerySpine<T>>,
}

impl<T: Ord + Clone + 'static> Coordinator<T> {
    /// Create a coordinator with `b ≥ 2` slots of `k` elements.
    ///
    /// # Panics
    /// Panics on `b < 2` or `k == 0`.
    pub fn new(b: usize, k: usize, seed: u64) -> Self {
        assert!(b >= 2, "coordinator needs at least two buffers (§6)");
        assert!(k >= 1, "buffer size must be positive");
        Self {
            k,
            b,
            full: Vec::new(),
            staging: None,
            collapse_high_phase: false,
            collapses: 0,
            total_weight_shipped: 0,
            rng: rng_from_seed(seed),
            epoch: 0,
            spine: RefCell::new(QuerySpine::default()),
        }
    }

    /// Assemble a coordinator from worker shipments (`(n, buffers)` pairs,
    /// as produced by `UnknownN::into_shipment`), returning it together
    /// with the summed element count. Full buffers are staged first and
    /// partials heaviest-first, so every §6 shrink ratio is integral even
    /// in mixed-rate runs (weights are powers of two) regardless of the
    /// order the shipments arrived in.
    pub fn from_shipments<I>(b: usize, k: usize, seed: u64, shipments: I) -> (Self, u64)
    where
        I: IntoIterator<Item = (u64, Vec<Buffer<T>>)>,
    {
        let mut coordinator = Self::new(b, k, seed);
        let mut total_n = 0u64;
        let mut partials: Vec<Buffer<T>> = Vec::new();
        for (n, buffers) in shipments {
            total_n += n;
            for buf in buffers {
                if buf.state() == BufferState::Full {
                    coordinator.add_buffer(buf);
                } else {
                    partials.push(buf);
                }
            }
        }
        partials.sort_by_key(|b| std::cmp::Reverse(b.weight()));
        for buf in partials {
            coordinator.add_buffer(buf);
        }
        (coordinator, total_n)
    }

    /// Accept one shipped buffer (full or partial) from a worker.
    ///
    /// # Panics
    /// Panics if the buffer is empty, oversized, or `Empty`-state.
    pub fn add_buffer(&mut self, buffer: Buffer<T>) {
        assert_ne!(
            buffer.state(),
            BufferState::Empty,
            "cannot ship empty buffers"
        );
        assert!(
            buffer.len() <= self.k,
            "shipped buffer exceeds coordinator k"
        );
        self.epoch = self.epoch.wrapping_add(1);
        self.total_weight_shipped += buffer.mass();
        // The entry assert rejected `Empty`, so a non-`Full` buffer here
        // can only be `Partial`.
        if buffer.state() == BufferState::Full {
            let data = buffer.data().to_vec();
            let w = buffer.weight();
            self.push_full(data, w);
        } else {
            self.add_partial(buffer.data().to_vec(), buffer.weight());
        }
    }

    /// Accept a full buffer's raw content (sorted internally). Shipped
    /// buffers and spilled staging runs are usually sorted already; the
    /// `O(k)` check skips the `O(k log k)` sort then.
    fn push_full(&mut self, mut data: Vec<T>, weight: u64) {
        if !data.is_sorted() {
            data.sort_unstable();
        }
        if self.full.len() >= self.b.saturating_sub(1) {
            // Keep one slot's worth of headroom for B₀ conversions; collapse
            // the lowest level like the single-stream policy.
            self.collapse_lowest();
        }
        // Incoming buffers are assigned level 0 (§6); collapse outputs keep
        // their own levels.
        self.full.push((data, weight, 0));
    }

    /// Fold a partial buffer into the staging buffer `B₀`, equalising
    /// weights by shrink-by-sampling (§6).
    fn add_partial(&mut self, data: Vec<T>, weight: u64) {
        assert!(weight > 0, "partial buffer weight must be positive");
        let (mut incoming, mut w_in) = (data, weight);
        let (mut staged, w0) = match self.staging.take() {
            None => {
                self.staging = Some((incoming, w_in));
                self.spill_staging_if_full();
                return;
            }
            Some(s) => s,
        };
        let mut w_eq = w0;
        if w_in != w_eq {
            // Shrink the lighter buffer at the integer ratio of weights.
            if w_in < w_eq {
                let ratio = exact_ratio(w_eq, w_in);
                incoming = shrink(incoming, ratio, &mut self.rng);
                w_in = w_eq;
            } else {
                let ratio = exact_ratio(w_in, w_eq);
                staged = shrink(staged, ratio, &mut self.rng);
                w_eq = w_in;
            }
        }
        debug_assert_eq!(w_in, w_eq);
        // Copy as many incoming elements as fit; spill B₀ to the full list
        // when it fills (§6).
        for item in incoming {
            staged.push(item);
            if staged.len() == self.k {
                let spill = std::mem::take(&mut staged);
                self.push_full(spill, w_eq);
            }
        }
        if staged.is_empty() {
            self.staging = None;
        } else {
            self.staging = Some((staged, w_eq));
        }
    }

    fn spill_staging_if_full(&mut self) {
        if let Some((staged, w)) = self.staging.take() {
            if staged.len() >= self.k {
                self.push_full(staged, w);
            } else {
                self.staging = Some((staged, w));
            }
        }
    }

    /// Collapse all full buffers at the lowest occupied level (promoting a
    /// lone lowest buffer, exactly like the single-stream policy).
    // panic-free: the len < 2 early return guarantees both min() calls see
    // a candidate (a lone lowest buffer implies a second, higher level),
    // and every index in `at` came from enumerate() over self.full.
    fn collapse_lowest(&mut self) {
        if self.full.len() < 2 {
            return;
        }
        let lowest = self
            .full
            .iter()
            .map(|&(_, _, l)| l)
            .min()
            .expect("nonempty");
        let mut at: Vec<usize> = self
            .full
            .iter()
            .enumerate()
            .filter(|(_, &(_, _, l))| l == lowest)
            .map(|(i, _)| i)
            .collect();
        let mut level = lowest;
        if at.len() == 1 {
            let next = self
                .full
                .iter()
                .map(|&(_, _, l)| l)
                .filter(|&l| l > lowest)
                .min()
                .expect("two or more buffers exist");
            self.full[at[0]].2 = next;
            level = next;
            at = self
                .full
                .iter()
                .enumerate()
                .filter(|(_, &(_, _, l))| l == next)
                .map(|(i, _)| i)
                .collect();
        }
        let w: u64 = at.iter().map(|&i| self.full[i].1).sum();
        let merged = {
            let sources: Vec<WeightedSource<'_, T>> = at
                .iter()
                .map(|&i| WeightedSource::new(&self.full[i].0, self.full[i].1))
                .collect();
            let high = if w.is_multiple_of(2) {
                let phase = self.collapse_high_phase;
                self.collapse_high_phase = !self.collapse_high_phase;
                phase
            } else {
                false
            };
            let targets = collapse_targets(self.k, w, high);
            select_weighted(&sources, &targets)
        };
        // Remove collapsed buffers (descending index), push the output.
        at.sort_unstable_by(|a, b| b.cmp(a));
        for i in at {
            self.full.swap_remove(i);
        }
        self.full.push((merged, w, level + 1));
        self.collapses += 1;
    }

    /// The φ-quantile of the aggregate of everything shipped so far.
    /// `None` before any buffer arrives.
    pub fn query(&self, phi: f64) -> Option<T> {
        self.query_many(&[phi]).map(|mut v| v.remove(0))
    }

    /// Several quantiles over the epoch-cached spine, in caller order.
    ///
    /// The first query after a shipment merges `full` + `staging` into the
    /// spine once (replacing the old per-call multi-source merge, which
    /// also re-sorted a clone of the staging buffer every call); every
    /// later query until the next shipment is one binary search per φ.
    pub fn query_many(&self, phis: &[f64]) -> Option<Vec<T>> {
        self.with_current_spine(|spine| {
            let s = spine.total();
            if s == 0 {
                return None;
            }
            let mut out = Vec::with_capacity(phis.len());
            for &phi in phis {
                out.push(spine.lookup(output_position(phi, s))?.clone());
            }
            Some(out)
        })
    }

    /// Approximate selectivities of `x < v` / `x <= v` over the aggregate
    /// (fractions of the total mass). `None` before any buffer arrives.
    /// Served from the same epoch-cached spine as [`Coordinator::query_many`].
    pub fn rank_of(&self, value: &T) -> Option<(f64, f64)> {
        self.with_current_spine(|spine| {
            let s = spine.total();
            if s == 0 {
                return None;
            }
            let (below, at_most) = spine.rank(value);
            Some((below as f64 / s as f64, at_most as f64 / s as f64))
        })
    }

    /// Run `f` against the spine, rebuilding it first if a shipment has
    /// arrived since it was last materialised.
    fn with_current_spine<U>(&self, f: impl FnOnce(&QuerySpine<T>) -> U) -> U {
        let mut spine = self.spine.borrow_mut();
        if !spine.is_current(self.epoch) {
            spine.rebuild(self.epoch, |pairs| {
                for (data, w, _) in &self.full {
                    for v in data {
                        pairs.push((v.clone(), *w));
                    }
                }
                if let Some((staged, w)) = &self.staging {
                    for v in staged {
                        pairs.push((v.clone(), *w));
                    }
                }
            });
        }
        f(&spine)
    }

    /// Total weighted mass currently represented.
    pub fn mass(&self) -> u64 {
        let mut m: u64 = self.full.iter().map(|(d, w, _)| d.len() as u64 * w).sum();
        if let Some((staged, w)) = &self.staging {
            m += staged.len() as u64 * w;
        }
        m
    }

    /// Total weighted mass shipped in (mass may differ after shrinks:
    /// shrink-by-sampling preserves weight·count only up to the final
    /// incomplete block).
    pub fn shipped_mass(&self) -> u64 {
        self.total_weight_shipped
    }

    /// Collapses performed at the coordinator.
    pub fn collapses(&self) -> u64 {
        self.collapses
    }

    /// Memory bound in elements: `b·k` plus the staging buffer.
    pub fn memory_bound_elements(&self) -> usize {
        (self.b + 1) * self.k
    }

    /// Tear down the coordinator into shippable buffers: its full buffers
    /// (weights retained) plus at most one partial from the staging area.
    /// Used by hierarchical merging (§6's processor groups) to forward a
    /// group's state to a higher-level coordinator.
    pub fn into_buffers(self) -> Vec<Buffer<T>> {
        let k = self.k;
        let mut out = Vec::with_capacity(self.full.len() + 1);
        for (data, weight, level) in self.full {
            // Full slots hold sorted data by construction (push_full sorts
            // on entry; collapse output comes out of the selection sorted).
            out.push(Buffer::from_sorted(data, weight, level, k));
        }
        if let Some((mut staged, weight)) = self.staging {
            if !staged.is_empty() {
                staged.sort_unstable();
                out.push(Buffer::from_sorted(staged, weight, 0, k));
            }
        }
        out
    }
}

/// Exact integer ratio `big / small`, asserting divisibility — worker
/// partial-buffer weights are powers of two (the final sampling rate), so
/// the §6 shrink ratio is always integral.
fn exact_ratio(big: u64, small: u64) -> u64 {
    assert!(big >= small && small > 0);
    assert_eq!(
        big % small,
        0,
        "shrink ratio must be integral (weights {big}/{small})"
    );
    big / small
}

/// Keep one uniformly random element from each consecutive block of
/// `ratio` elements (the §6 shrink).
fn shrink<T>(data: Vec<T>, ratio: u64, rng: &mut SketchRng) -> Vec<T> {
    if ratio == 1 {
        return data;
    }
    let mut sampler = BlockSampler::new(ratio);
    let mut out = Vec::with_capacity(data.len() / ratio as usize + 1);
    for item in data {
        if let Some(repr) = sampler.offer(item, rng) {
            out.push(repr);
        }
    }
    if let Some((tail, _)) = sampler.flush() {
        out.push(tail);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_buffer(data: Vec<u64>, weight: u64, k: usize) -> Buffer<u64> {
        let mut b = Buffer::empty(k);
        b.populate(data, weight, 0, k);
        b
    }

    #[test]
    fn single_full_buffer_roundtrips() {
        let mut c = Coordinator::<u64>::new(3, 4, 1);
        c.add_buffer(full_buffer(vec![1, 2, 3, 4], 2, 4));
        assert_eq!(c.mass(), 8);
        assert_eq!(c.query(0.5), Some(2));
        assert_eq!(c.query(1.0), Some(4));
    }

    #[test]
    fn partial_buffers_with_equal_weights_concatenate() {
        let mut c = Coordinator::<u64>::new(3, 4, 2);
        let mut p1 = Buffer::empty(4);
        p1.populate(vec![10, 20], 2, 0, 4);
        let mut p2 = Buffer::empty(4);
        p2.populate(vec![30], 2, 0, 4);
        c.add_buffer(p1);
        c.add_buffer(p2);
        assert_eq!(c.mass(), 6);
        assert_eq!(c.query(0.0), Some(10));
        assert_eq!(c.query(1.0), Some(30));
    }

    #[test]
    fn partial_spills_into_full_when_k_reached() {
        let mut c = Coordinator::<u64>::new(3, 2, 3);
        let mut p1 = Buffer::empty(2);
        p1.populate(vec![5], 1, 0, 2);
        let mut p2 = Buffer::empty(2);
        p2.populate(vec![7], 1, 0, 2);
        c.add_buffer(p1);
        c.add_buffer(p2); // staging reaches k=2 -> spills to full list
        assert_eq!(c.mass(), 2);
        assert_eq!(c.query(0.5), Some(5));
        assert_eq!(c.query(1.0), Some(7));
    }

    #[test]
    fn weight_equalisation_shrinks_the_lighter_buffer() {
        // W_in = 8, W_0 = 2: the staged buffer shrinks by 4 (the paper's
        // worked example).
        let mut c = Coordinator::<u64>::new(3, 16, 4);
        let mut p1 = Buffer::empty(16);
        p1.populate((0..8u64).collect(), 2, 0, 16);
        c.add_buffer(p1);
        let mut p2 = Buffer::empty(16);
        p2.populate(vec![100, 200], 8, 0, 16);
        c.add_buffer(p2);
        // Staged mass: 8 elems @2 shrunk to 2 elems @8 = 16, plus 2 @8 = 16.
        assert_eq!(c.mass(), 32);
        let q = c.query(1.0).unwrap();
        assert_eq!(q, 200);
    }

    #[test]
    fn many_full_buffers_trigger_collapse_and_stay_accurate() {
        let k = 64usize;
        let mut c = Coordinator::<u64>::new(4, k, 5);
        // 12 workers each ship one full buffer covering a slice of 0..768k.
        for wkr in 0..12u64 {
            let data: Vec<u64> = (0..k as u64).map(|i| wkr * 64 + i).collect();
            c.add_buffer(full_buffer(data, 1, k));
        }
        assert!(c.collapses() > 0);
        let med = c.query(0.5).unwrap() as f64;
        let n = 12.0 * 64.0;
        assert!((med - n / 2.0).abs() <= 0.15 * n, "median {med} of {n}");
    }

    #[test]
    #[should_panic(expected = "integral")]
    fn non_integral_shrink_ratio_panics() {
        let mut c = Coordinator::<u64>::new(3, 8, 6);
        let mut p1 = Buffer::empty(8);
        p1.populate(vec![1, 2, 3], 3, 0, 8);
        c.add_buffer(p1);
        let mut p2 = Buffer::empty(8);
        p2.populate(vec![4, 5], 2, 0, 8);
        c.add_buffer(p2);
    }

    #[test]
    fn empty_coordinator_returns_none() {
        let c = Coordinator::<u64>::new(2, 4, 7);
        assert_eq!(c.query(0.5), None);
        assert_eq!(c.mass(), 0);
        assert_eq!(c.rank_of(&5), None);
    }

    #[test]
    fn rank_of_over_merged_buffers() {
        let mut c = Coordinator::<u64>::new(3, 4, 8);
        c.add_buffer(full_buffer(vec![10, 20, 30, 40], 2, 4));
        c.add_buffer(full_buffer(vec![5, 15, 25, 35], 1, 4));
        // Mass 12; elements <= 20: {10,20}@2 + {5,15}@1 = 6.
        let (below, at_most) = c.rank_of(&20).unwrap();
        assert!((at_most - 6.0 / 12.0).abs() < 1e-12);
        assert!((below - 4.0 / 12.0).abs() < 1e-12);
    }
}
