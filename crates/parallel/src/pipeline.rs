//! Sharded multi-core ingestion: a fixed worker pool fed round-robin
//! batches over bounded channels.
//!
//! [`crate::parallel_quantiles`] implements §6's literal setting — one
//! worker per pre-existing input sequence. [`ShardedSketch`] covers the
//! complementary case: **one** logical stream whose ingestion should use
//! several cores. The stream is cut into fixed-size batches and dealt
//! round-robin to `P` shard workers; each shard runs the single-stream
//! unknown-`N` algorithm on the subsequence it receives, and the final
//! shipments are merged by the same [`Coordinator`] protocol. Because §6
//! allows *any* partition of the input into per-processor sequences, the
//! round-robin partition inherits the full `(ε, δ)` guarantee.
//!
//! The channels are bounded ([`sync_channel`] with a small depth), so a
//! producer that outruns the workers blocks instead of buffering the
//! stream in memory — ingestion stays `O(shards · b · k)` no matter how
//! fast the input arrives.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

use mrl_core::{OptimizerOptions, UnknownN, UnknownNConfig};
use mrl_framework::{Buffer, TreeStats};
use mrl_obs::{EventKind, JournalHandle, Key, MetricsHandle};
use serde::{Deserialize, Serialize};

use crate::Coordinator;

/// Metric keys the sharded pipeline emits (all on batch granularity —
/// once per [`DEFAULT_SHARD_BATCH`] elements — so an attached recorder
/// costs a few atomic ops per batch).
pub mod metrics {
    use mrl_obs::Key;

    /// Gauge, labelled by shard: batches currently in flight on that
    /// shard's bounded channel.
    pub const QUEUE_DEPTH: &str = "pipeline.queue.depth";
    /// Counter: dispatches that found the target queue full and had to
    /// block (backpressure engagements).
    pub const DISPATCH_STALLS: Key = Key::new("pipeline.dispatch.stalls");
    /// Histogram: nanoseconds spent blocked per backpressure stall.
    pub const STALL_NS: Key = Key::new("pipeline.dispatch.stall_ns");
    /// Counter, labelled by shard: batches ingested by that worker.
    pub const BATCHES: &str = "pipeline.shard.batches";
    /// Histogram, labelled by shard: nanoseconds per ingested batch.
    pub const BATCH_NS: &str = "pipeline.shard.batch_ns";
    /// Gauge, labelled by shard: elements that worker has consumed.
    pub const SHARD_ELEMENTS: &str = "pipeline.shard.elements";
    /// Gauge: total elements dispatched by the producer.
    pub const DISPATCHED: Key = Key::new("pipeline.dispatched");
}

/// Why a sharded ingestion run failed.
///
/// A worker that panics poisons only its own shard: the producer notices
/// (its channel disconnects), stops dispatching, and the failure surfaces
/// as a clean error from [`ShardedSketch::finish`] instead of aborting the
/// coordinator with a propagated panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardedError {
    /// The worker thread of `shard` panicked; the elements routed to it are
    /// lost, so no `(ε, δ)`-certified answer exists for this run.
    WorkerPanicked {
        /// Index of the poisoned shard, in `0..shards`.
        shard: usize,
    },
}

impl fmt::Display for ShardedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::WorkerPanicked { shard } => {
                write!(f, "shard {shard} worker panicked; sharded query aborted")
            }
        }
    }
}

impl std::error::Error for ShardedError {}

impl From<ShardedError> for std::io::Error {
    fn from(err: ShardedError) -> Self {
        std::io::Error::other(err)
    }
}

/// Default elements per dispatched batch. Large enough that the channel
/// and wakeup overhead amortises to well under a nanosecond per element;
/// small enough that shards stay busy on modest streams.
pub const DEFAULT_SHARD_BATCH: usize = 4096;

/// Bounded batches in flight per shard: enough to hide scheduling jitter,
/// small enough that backpressure engages before memory does.
const QUEUE_DEPTH: usize = 4;

/// What a worker thread returns when joined: elements ingested, the
/// shard's exact tree accounting, and its surviving buffers.
type ShardShipment<T> = (u64, TreeStats, Vec<Buffer<T>>);

/// A quantile sketch whose ingestion is sharded across a fixed pool of
/// worker threads.
///
/// Feed it with [`ShardedSketch::insert`] / [`ShardedSketch::insert_batch`]
/// from one producer thread; call [`ShardedSketch::finish`] to drain the
/// pipeline and obtain a queryable [`ShardedOutcome`].
///
/// ```
/// use mrl_core::OptimizerOptions;
/// use mrl_parallel::ShardedSketch;
///
/// let mut sketch =
///     ShardedSketch::<u64>::new(2, 0.05, 0.01, OptimizerOptions::fast(), 1);
/// sketch.insert_batch(&(0..100_000u64).collect::<Vec<_>>());
/// let outcome = sketch.finish().expect("no shard panicked");
/// let median = outcome.query(0.5).unwrap();
/// assert!((median as f64 - 50_000.0).abs() <= 0.05 * 100_000.0 + 1.0);
/// ```
#[derive(Debug)]
pub struct ShardedSketch<T> {
    senders: Vec<SyncSender<Vec<T>>>,
    handles: Vec<JoinHandle<ShardShipment<T>>>,
    /// Spent batch buffers returned by the workers; `dispatch` drains this
    /// for its replacement vector so the steady state recycles a fixed pool
    /// of batch allocations instead of allocating one per dispatch.
    recycle: Receiver<Vec<T>>,
    /// Batches in flight per shard channel (producer increments on send,
    /// worker decrements on receive); feeds the queue-depth gauges.
    queue_depths: Vec<Arc<AtomicU64>>,
    pending: Vec<T>,
    next_shard: usize,
    batch: usize,
    dispatched: u64,
    /// First shard observed dead (its channel disconnected, i.e. its worker
    /// panicked). Once set, dispatch stops and `finish` reports the error.
    dead_shard: Option<usize>,
    config: UnknownNConfig,
    seed: u64,
    metrics: MetricsHandle,
    journal: JournalHandle,
}

impl<T: Ord + Clone + Send + 'static> ShardedSketch<T> {
    /// Create a pool of `shards` workers, each running the certified
    /// `(ε, δ)` single-stream configuration.
    ///
    /// # Panics
    /// Panics if `shards == 0`, `ε ∉ (0, 1)` or `δ ∉ (0, 1)`.
    pub fn new(shards: usize, epsilon: f64, delta: f64, opts: OptimizerOptions, seed: u64) -> Self {
        Self::new_with_metrics(
            shards,
            epsilon,
            delta,
            opts,
            seed,
            MetricsHandle::disabled(),
        )
    }

    /// As [`ShardedSketch::new`] with a metrics sink (see [`metrics`]).
    ///
    /// # Panics
    /// Panics if `shards == 0`, `ε ∉ (0, 1)` or `δ ∉ (0, 1)`.
    pub fn new_with_metrics(
        shards: usize,
        epsilon: f64,
        delta: f64,
        opts: OptimizerOptions,
        seed: u64,
        metrics: MetricsHandle,
    ) -> Self {
        let config = mrl_analysis::optimizer::optimize_unknown_n_with(epsilon, delta, opts);
        Self::from_config_with_metrics(config, shards, seed, metrics)
    }

    /// As [`ShardedSketch::new_with_metrics`] with a flight recorder
    /// attached as well (see [`ShardedSketch::from_config_with_obs`]).
    ///
    /// # Panics
    /// Panics if `shards == 0`, `ε ∉ (0, 1)` or `δ ∉ (0, 1)`.
    #[allow(clippy::too_many_arguments)]
    pub fn new_with_obs(
        shards: usize,
        epsilon: f64,
        delta: f64,
        opts: OptimizerOptions,
        seed: u64,
        metrics: MetricsHandle,
        journal: JournalHandle,
    ) -> Self {
        let config = mrl_analysis::optimizer::optimize_unknown_n_with(epsilon, delta, opts);
        Self::from_config_with_obs(config, shards, seed, metrics, journal)
    }

    /// As [`ShardedSketch::new`] with an explicit certified configuration.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn from_config(config: UnknownNConfig, shards: usize, seed: u64) -> Self {
        Self::from_config_with_metrics(config, shards, seed, MetricsHandle::disabled())
    }

    /// As [`ShardedSketch::from_config`] with a metrics sink (see
    /// [`metrics`] for the emitted keys). The handle must be supplied at
    /// construction because the worker threads — which publish per-shard
    /// batch latency and ingest counters — spawn here.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn from_config_with_metrics(
        config: UnknownNConfig,
        shards: usize,
        seed: u64,
        metrics: MetricsHandle,
    ) -> Self {
        Self::from_config_with_obs(config, shards, seed, metrics, JournalHandle::disabled())
    }

    /// As [`ShardedSketch::from_config_with_metrics`] with a flight
    /// recorder attached as well. Each worker names its journal ring
    /// `shard[i]`, wraps every ingested batch in a `shard.batch` span, and
    /// forwards the handle to its per-shard engine so seals and collapses
    /// carry the shard's track. The producer side records
    /// [`EventKind::ShardDispatch`] per hand-off and
    /// [`EventKind::ShardStall`] when backpressure blocks it.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn from_config_with_obs(
        config: UnknownNConfig,
        shards: usize,
        seed: u64,
        metrics: MetricsHandle,
        journal: JournalHandle,
    ) -> Self {
        assert!(shards >= 1, "need at least one shard");
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        let mut queue_depths = Vec::with_capacity(shards);
        // Unbounded return channel for spent batch buffers: workers send
        // their emptied vectors back and `dispatch` reuses them, so at most
        // `shards · (QUEUE_DEPTH + 1) + 1` batch allocations ever exist.
        let (recycle_tx, recycle) = channel::<Vec<T>>();
        for i in 0..shards {
            let (tx, rx) = sync_channel::<Vec<T>>(QUEUE_DEPTH);
            let config = config.clone();
            let shard_seed = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let depth = Arc::new(AtomicU64::new(0));
            let worker_depth = Arc::clone(&depth);
            let worker_metrics = metrics.clone();
            let worker_journal = journal.clone();
            let worker_recycle = recycle_tx.clone();
            handles.push(thread::spawn(move || {
                let shard = i as u32;
                worker_journal.name_thread("shard", Some(shard));
                let mut sketch = UnknownN::from_config(config, shard_seed);
                sketch.set_journal(worker_journal.clone());
                // nondet: single-producer FIFO — this shard's channel is
                // fed only by `dispatch`, so batches arrive in dispatch
                // order no matter how workers are scheduled; the element
                // sequence each shard ingests is timing-invariant.
                while let Ok(mut batch) = rx.recv() {
                    // ordering: relaxed — monitoring gauge; the channel recv
                    // already ordered this after the producer's increment.
                    worker_depth.fetch_sub(1, Ordering::Relaxed);
                    let span = worker_journal.span("shard.batch");
                    let timer = worker_metrics.timer(Key::labeled(metrics::BATCH_NS, shard));
                    sketch.insert_batch(&batch);
                    timer.stop();
                    span.end();
                    worker_metrics.counter_add(Key::labeled(metrics::BATCHES, shard), 1);
                    // Clearing here keeps the element drops on the worker;
                    // a closed return channel (producer gone) just drops
                    // the buffer.
                    batch.clear();
                    let _ = worker_recycle.send(batch);
                }
                worker_metrics.gauge_set(
                    Key::labeled(metrics::SHARD_ELEMENTS, shard),
                    sketch.n() as f64,
                );
                sketch.into_shipment_with_stats()
            }));
            senders.push(tx);
            queue_depths.push(depth);
        }
        Self {
            senders,
            handles,
            recycle,
            queue_depths,
            pending: Vec::with_capacity(DEFAULT_SHARD_BATCH),
            next_shard: 0,
            batch: DEFAULT_SHARD_BATCH,
            dispatched: 0,
            dead_shard: None,
            config,
            seed,
            metrics,
            journal,
        }
    }

    /// Override the dispatch batch size (before inserting data).
    ///
    /// # Panics
    /// Panics if `batch == 0`.
    #[must_use]
    pub fn with_batch_size(mut self, batch: usize) -> Self {
        assert!(batch >= 1, "batch size must be positive");
        assert_eq!(self.n(), 0, "with_batch_size on a non-empty sketch");
        self.batch = batch;
        self
    }

    /// Number of shard workers.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// Elements accepted so far (dispatched plus pending).
    pub fn n(&self) -> u64 {
        self.dispatched + self.pending.len() as u64
    }

    /// The certified per-shard configuration in use.
    pub fn config(&self) -> &UnknownNConfig {
        &self.config
    }

    /// The flight-recorder handle the pipeline (and every shard engine)
    /// records into; disabled unless constructed via
    /// [`ShardedSketch::from_config_with_obs`].
    pub fn journal(&self) -> &JournalHandle {
        &self.journal
    }

    /// Worst-case memory across the worker pool: `shards · b · k` elements
    /// (the coordinator's own bound comes on top at [`ShardedSketch::finish`]).
    pub fn memory_bound_elements(&self) -> usize {
        self.shards() * self.config.memory
    }

    /// Insert one element.
    // alloc: pending carries `batch` capacity once the recycle pool has
    // warmed up (dispatch swaps in a returned buffer), so the push reuses
    // capacity.
    pub fn insert(&mut self, item: T) {
        self.pending.push(item);
        if self.pending.len() >= self.batch {
            self.dispatch();
        }
    }

    /// Insert a slice of elements, dispatching every completed batch.
    pub fn insert_batch(&mut self, items: &[T]) {
        let mut rest = items;
        loop {
            let room = self.batch - self.pending.len();
            if rest.len() < room {
                self.pending.extend_from_slice(rest);
                return;
            }
            let (now, later) = rest.split_at(room);
            self.pending.extend_from_slice(now);
            self.dispatch();
            rest = later;
        }
    }

    /// Insert every element of an iterator.
    pub fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            self.insert(item);
        }
    }

    /// Hand the pending batch to the next shard, blocking while that
    /// shard's queue is full (the pipeline's backpressure). A disconnected
    /// channel means the worker panicked: the shard is marked dead, further
    /// dispatch stops, and [`ShardedSketch::finish`] reports the failure.
    // panic-free: `shard` is next_shard, which is always reduced modulo
    // senders.len(), and queue_depths has one slot per sender.
    fn dispatch(&mut self) {
        // Prefer a spent buffer a worker sent back; until the pool warms up
        // (or if the workers are all gone) fall back to an empty vector that
        // grows to `batch` capacity through the producer's pushes.
        // nondet: which recycled buffer (or none) arrives here varies with
        // worker timing, but every buffer was cleared before its return —
        // only spare capacity differs, never the elements dispatched.
        let replacement = self.recycle.try_recv().unwrap_or_default();
        let batch = std::mem::replace(&mut self.pending, replacement);
        if self.dead_shard.is_some() {
            // The run is already doomed; dropping the batch keeps the
            // producer non-blocking until the error surfaces at finish().
            return;
        }
        self.dispatched += batch.len() as u64;
        let shard = self.next_shard;
        // Count the batch as in flight *before* the send: the worker's
        // decrement is ordered after its receive, which is ordered after
        // this send, so the counter never goes below zero.
        // ordering: Relaxed suffices — the gauge is monitoring-only and the
        // channel send/receive provides the producer→worker happens-before.
        let depth = self.queue_depths[shard].fetch_add(1, Ordering::Relaxed) + 1;
        let delivered = if self.metrics.is_enabled() || self.journal.is_enabled() {
            let len = batch.len() as u64;
            // Distinguish a clean hand-off from a backpressure stall: only
            // the blocking fallback is timed, so the stall histogram
            // measures time actually spent waiting on the slow consumer.
            let delivered = match self.senders[shard].try_send(batch) {
                Ok(()) => true,
                Err(TrySendError::Full(batch)) => {
                    self.metrics.counter_add(metrics::DISPATCH_STALLS, 1);
                    let stall_begin = self.journal.now_ns();
                    let timer = self.metrics.timer(metrics::STALL_NS);
                    let sent = self.senders[shard].send(batch).is_ok();
                    timer.stop();
                    if let Some(begin) = stall_begin {
                        let end = self.journal.now_ns().unwrap_or(begin);
                        self.journal.record_at(
                            end,
                            EventKind::ShardStall {
                                shard: shard as u32,
                                dur_ns: end.saturating_sub(begin),
                            },
                        );
                    }
                    sent
                }
                Err(TrySendError::Disconnected(_)) => false,
            };
            self.journal.record(EventKind::ShardDispatch {
                shard: shard as u32,
                len,
                depth,
            });
            self.metrics.gauge_set(
                Key::labeled(metrics::QUEUE_DEPTH, shard as u32),
                depth as f64,
            );
            self.metrics
                .gauge_set(metrics::DISPATCHED, self.dispatched as f64);
            delivered
        } else {
            self.senders[shard].send(batch).is_ok()
        };
        if !delivered {
            self.dead_shard = Some(shard);
        }
        self.next_shard = (shard + 1) % self.senders.len();
    }

    /// Drain the pipeline: flush the trailing partial batch, close every
    /// channel, join the workers, and merge their shipments at a
    /// [`Coordinator`].
    ///
    /// # Errors
    /// Returns [`ShardedError::WorkerPanicked`] if any shard's worker
    /// thread panicked: its elements are lost, so no certified answer
    /// exists. Every surviving worker is still joined first, so the pool
    /// is fully torn down either way.
    pub fn finish(mut self) -> Result<ShardedOutcome<T>, ShardedError> {
        if !self.pending.is_empty() {
            self.dispatch();
        }
        // Closing the channels ends each worker's receive loop.
        self.senders.clear();
        let mut dead_shard = self.dead_shard;
        let mut per_shard = Vec::with_capacity(self.handles.len());
        let mut shipments: Vec<(u64, Vec<Buffer<T>>)> = Vec::with_capacity(self.handles.len());
        for (shard, h) in self.handles.drain(..).enumerate() {
            match h.join() {
                Ok((n, stats, buffers)) => {
                    per_shard.push(stats);
                    shipments.push((n, buffers));
                }
                // Keep joining the rest: the pool must be fully reaped even
                // when the run is already doomed.
                Err(_) => {
                    dead_shard.get_or_insert(shard);
                }
            }
        }
        if let Some(shard) = dead_shard {
            return Err(ShardedError::WorkerPanicked { shard });
        }
        let workers = shipments.len();
        let (coordinator, total_n) = Coordinator::from_shipments(
            self.config.b,
            self.config.k,
            self.seed ^ 0x00C0_FFEE,
            shipments,
        );
        debug_assert_eq!(total_n, self.dispatched);
        let telemetry = PipelineTelemetry::from_shards(total_n, per_shard);
        Ok(ShardedOutcome {
            coordinator,
            total_n,
            workers,
            telemetry,
        })
    }
}

/// Aggregated pipeline accounting: the exact [`TreeStats`] of every shard
/// worker plus their element-conserving merge. Serializable, so the CLI can
/// embed it in `--stats json` reports.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PipelineTelemetry {
    /// Total elements ingested across all shards.
    pub total_n: u64,
    /// Each worker's final exact tree accounting, in shard order.
    pub per_shard: Vec<TreeStats>,
    /// The shard accountings folded together ([`TreeStats::absorb`]):
    /// elements, leaves, collapses and `W` are sums, `max_level` the
    /// maximum, the sampling onset the earliest across shards.
    pub merged: TreeStats,
}

impl PipelineTelemetry {
    fn from_shards(total_n: u64, per_shard: Vec<TreeStats>) -> Self {
        let mut merged = TreeStats::default();
        for stats in &per_shard {
            merged.absorb(stats);
        }
        Self {
            total_n,
            per_shard,
            merged,
        }
    }
}

/// The queryable result of a sharded ingestion run.
#[derive(Debug)]
pub struct ShardedOutcome<T> {
    coordinator: Coordinator<T>,
    total_n: u64,
    workers: usize,
    telemetry: PipelineTelemetry,
}

impl<T: Ord + Clone + 'static> ShardedOutcome<T> {
    /// The φ-quantile of the whole stream. `None` for an empty stream.
    pub fn query(&self, phi: f64) -> Option<T> {
        self.coordinator.query(phi)
    }

    /// Several quantiles in one merge pass, in caller order.
    pub fn query_many(&self, phis: &[f64]) -> Option<Vec<T>> {
        self.coordinator.query_many(phis)
    }

    /// Approximate selectivities of `x < v` / `x <= v` over the stream.
    pub fn rank_of(&self, value: &T) -> Option<(f64, f64)> {
        self.coordinator.rank_of(value)
    }

    /// Total elements ingested across all shards.
    pub fn total_n(&self) -> u64 {
        self.total_n
    }

    /// Number of shard workers that contributed.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Per-shard and merged exact tree accounting gathered at
    /// [`ShardedSketch::finish`].
    pub fn telemetry(&self) -> &PipelineTelemetry {
        &self.telemetry
    }

    /// The merged coordinator (mass accounting, memory bound, further
    /// hierarchical shipping).
    pub fn coordinator(&self) -> &Coordinator<T> {
        &self.coordinator
    }

    /// Tear down into the coordinator, e.g. to forward the merged state
    /// upward via [`Coordinator::into_buffers`].
    pub fn into_coordinator(self) -> Coordinator<T> {
        self.coordinator
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> OptimizerOptions {
        OptimizerOptions::fast()
    }

    fn uniform(n: u64) -> Vec<u64> {
        (0..n).map(|i| (i.wrapping_mul(2654435761)) % n).collect()
    }

    #[test]
    fn sharded_matches_sequential_mass_accounting() {
        let data = uniform(200_000);
        let mut sharded = ShardedSketch::<u64>::new(4, 0.05, 0.01, fast(), 11);
        for chunk in data.chunks(1000) {
            sharded.insert_batch(chunk);
        }
        assert_eq!(sharded.n(), data.len() as u64);
        let out = sharded.finish().expect("no shard panicked");
        assert_eq!(out.total_n(), data.len() as u64);
        assert_eq!(out.workers(), 4);
        // The coordinator's represented mass equals the shipped mass, which
        // can differ from n only by sampling-tail rounding per shard.
        let mass = out.coordinator().mass();
        let slack = 4 * 1024; // one partial block per shard at the max rate
        assert!(
            (mass as i64 - data.len() as i64).unsigned_abs() <= slack,
            "mass {mass} vs n {}",
            data.len()
        );
    }

    #[test]
    fn sharded_queries_match_single_worker_within_epsilon() {
        let data = uniform(150_000);
        let eps = 0.05;
        let phis = [0.1, 0.25, 0.5, 0.75, 0.9];

        let mut single = ShardedSketch::<u64>::new(1, eps, 0.01, fast(), 3);
        single.insert_batch(&data);
        let single_q = single
            .finish()
            .expect("no shard panicked")
            .query_many(&phis)
            .unwrap();

        let mut sharded = ShardedSketch::<u64>::new(4, eps, 0.01, fast(), 3);
        sharded.insert_batch(&data);
        let sharded_q = sharded
            .finish()
            .expect("no shard panicked")
            .query_many(&phis)
            .unwrap();

        let mut sorted = data.clone();
        sorted.sort_unstable();
        let n = sorted.len() as f64;
        for (qs, label) in [(&single_q, "single"), (&sharded_q, "sharded")] {
            for (q, phi) in qs.iter().zip(phis) {
                let rank = sorted.partition_point(|v| v <= q) as f64;
                let err = (rank - phi * n).abs() / n;
                assert!(err <= eps + 1.0 / n, "{label} phi={phi}: rank error {err}");
            }
        }
    }

    #[test]
    fn single_inserts_and_small_batches_agree_on_n() {
        let mut s = ShardedSketch::<u64>::new(2, 0.1, 0.01, fast(), 5).with_batch_size(100);
        for i in 0..1_234u64 {
            s.insert(i);
        }
        s.insert_batch(&[9, 9, 9]);
        assert_eq!(s.n(), 1_237);
        let out = s.finish().expect("no shard panicked");
        assert_eq!(out.total_n(), 1_237);
        assert!(out.query(0.5).is_some());
    }

    #[test]
    fn telemetry_conserves_elements_and_reports_pipeline_metrics() {
        use mrl_obs::InMemoryRecorder;

        let rec = Arc::new(InMemoryRecorder::new());
        let config =
            mrl_analysis::optimizer::optimize_unknown_n_with(0.05, 0.01, OptimizerOptions::fast());
        let mut s = ShardedSketch::<u64>::from_config_with_metrics(
            config,
            3,
            9,
            MetricsHandle::new(rec.clone()),
        );
        let data = uniform(120_000);
        s.insert_batch(&data);
        let out = s.finish().expect("no shard panicked");

        let t = out.telemetry();
        assert_eq!(t.total_n, 120_000);
        assert_eq!(t.per_shard.len(), 3);
        let sum: u64 = t.per_shard.iter().map(|st| st.elements).sum();
        assert_eq!(sum, t.merged.elements);
        assert_eq!(t.merged.elements, 120_000);

        // Batch counters: every dispatched batch is accounted to a shard.
        let batches: u64 = (0..3)
            .map(|i| rec.counter_value(Key::labeled(metrics::BATCHES, i)))
            .sum();
        assert_eq!(batches, 120_000_u64.div_ceil(DEFAULT_SHARD_BATCH as u64));
        // Per-shard element gauges match the shipped accounting.
        for (i, st) in t.per_shard.iter().enumerate() {
            assert_eq!(
                rec.gauge_value(Key::labeled(metrics::SHARD_ELEMENTS, i as u32)),
                Some(st.elements as f64)
            );
        }
        assert_eq!(rec.gauge_value(metrics::DISPATCHED), Some(120_000.0));
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn journal_records_dispatches_shard_tracks_and_batch_spans() {
        use mrl_obs::EventJournal;

        let journal = Arc::new(EventJournal::with_capacity(8192));
        let handle = JournalHandle::new(Arc::clone(&journal));
        let config =
            mrl_analysis::optimizer::optimize_unknown_n_with(0.05, 0.01, OptimizerOptions::fast());
        let mut s = ShardedSketch::<u64>::from_config_with_obs(
            config,
            2,
            9,
            MetricsHandle::disabled(),
            handle,
        )
        .with_batch_size(64);
        let data = uniform(10_000);
        s.insert_batch(&data);
        let out = s.finish().expect("no shard panicked");
        assert_eq!(out.total_n(), 10_000);

        let dump = journal.drain();
        assert_eq!(dump.lost(), 0);
        let events = || dump.rings.iter().flat_map(|r| r.events.iter());
        // Every completed batch hand-off is journalled by the producer.
        let dispatches = events()
            .filter(|e| matches!(e.kind, EventKind::ShardDispatch { .. }))
            .count();
        assert_eq!(dispatches, 10_000_usize.div_ceil(64));
        // Both workers named their rings `shard[i]`.
        let mut shard_labels: Vec<u32> = dump
            .rings
            .iter()
            .filter_map(|r| r.thread_name)
            .filter(|(name, _)| *name == "shard")
            .filter_map(|(_, label)| label)
            .collect();
        shard_labels.sort_unstable();
        assert_eq!(shard_labels, vec![0, 1]);
        // Each received batch is wrapped in a balanced `shard.batch` span,
        // and the per-shard engines journalled their seals through the
        // forwarded handle.
        let begins = events()
            .filter(|e| matches!(e.kind, EventKind::SpanBegin { .. }))
            .count();
        let ends = events()
            .filter(|e| matches!(e.kind, EventKind::SpanEnd { .. }))
            .count();
        assert_eq!(begins, ends);
        assert_eq!(begins, 10_000_usize.div_ceil(64));
        assert!(events().any(|e| matches!(e.kind, EventKind::BufferSeal { .. })));
    }

    #[test]
    fn empty_stream_returns_none() {
        let s = ShardedSketch::<u64>::new(3, 0.1, 0.01, fast(), 1);
        let out = s.finish().expect("no shard panicked");
        assert_eq!(out.total_n(), 0);
        assert_eq!(out.query(0.5), None);
        assert_eq!(out.rank_of(&7), None);
    }

    /// A configuration whose engine construction asserts (`b = 1` violates
    /// `EngineConfig::new`'s `b ≥ 2` requirement), so every worker panics
    /// the moment it starts. The panic must surface as a clean
    /// [`ShardedError::WorkerPanicked`], not abort the producer.
    fn poisoned_config() -> UnknownNConfig {
        let mut config =
            mrl_analysis::optimizer::optimize_unknown_n_with(0.1, 0.01, OptimizerOptions::fast());
        config.b = 1;
        config
    }

    #[test]
    fn worker_panic_surfaces_as_sharded_error() {
        let mut s = ShardedSketch::<u64>::from_config(poisoned_config(), 2, 7).with_batch_size(8);
        // Keep feeding past the panic: sends to the dead shard's
        // disconnected channel must degrade into `dead_shard`, never panic
        // or block the producer.
        for i in 0..10_000u64 {
            s.insert(i);
        }
        match s.finish() {
            Err(ShardedError::WorkerPanicked { shard }) => assert!(shard < 2),
            Ok(_) => panic!("poisoned run produced an outcome"),
        }
    }

    #[test]
    fn worker_panic_detected_even_without_dispatch() {
        // No data ever dispatched: the dead workers are only discovered at
        // join time, which must still report the lowest poisoned shard.
        let s = ShardedSketch::<u64>::from_config(poisoned_config(), 3, 1);
        assert_eq!(
            s.finish().map(|out| out.total_n()),
            Err(ShardedError::WorkerPanicked { shard: 0 })
        );
    }

    #[test]
    fn worker_panic_error_formats_and_converts() {
        let err = ShardedError::WorkerPanicked { shard: 5 };
        assert!(err.to_string().contains("shard 5"));
        let io: std::io::Error = err.clone().into();
        assert!(io.to_string().contains("shard 5"));
    }

    /// Shutdown/backpressure interleaving: a single-shard pipeline with a
    /// deliberately slow consumer is driven through every queue state
    /// (empty → full → blocked producer → drain → close). Exercises the
    /// bounded-channel protocol end to end: the producer must block (not
    /// drop) on a full queue, and `finish` must drain every in-flight batch
    /// before the worker's channel closes.
    #[test]
    fn backpressure_blocks_then_shutdown_drains_every_batch() {
        for round in 0..16u64 {
            let config = mrl_analysis::optimizer::optimize_unknown_n_with(
                0.1,
                0.01,
                OptimizerOptions::fast(),
            );
            let mut s = ShardedSketch::<u64>::from_config(config, 1, round).with_batch_size(1);
            // QUEUE_DEPTH + 1 batches saturate the queue and park the
            // producer at least once per round; varying the total count
            // shifts which send observes the full queue.
            let total = (QUEUE_DEPTH as u64 + 1) * 64 + round;
            for i in 0..total {
                s.insert(i);
            }
            let out = s.finish().expect("no shard panicked");
            assert_eq!(out.total_n(), total, "round {round} lost a batch");
        }
    }

    #[test]
    fn extend_round_robins_across_shards() {
        let mut s = ShardedSketch::<u64>::new(3, 0.1, 0.01, fast(), 2).with_batch_size(10);
        s.extend(0..95u64);
        let out = s.finish().expect("no shard panicked");
        assert_eq!(out.total_n(), 95);
        assert_eq!(out.workers(), 3);
        let q = out.query(1.0).unwrap();
        assert_eq!(q, 94);
    }
}
