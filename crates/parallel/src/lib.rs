//! Parallel quantile computation (§6).
//!
//! `P` workers each run the single-stream unknown-`N` algorithm on their own
//! input sequence; any sequence may terminate at any time. On termination a
//! worker collapses its full buffers down to at most one full and one
//! partial buffer and ships them — tagged with weights and sizes — to a
//! distinguished coordinator (the paper's "Processor P₀"), which:
//!
//! * assigns level 0 to incoming full buffers, **retaining their weights**;
//! * folds incoming partial buffers into a staging buffer `B₀`, first
//!   equalising weights by *shrink-by-sampling*: the lighter buffer is
//!   subsampled at rate `w_big / w_small` (one random element per block)
//!   and re-weighted (§6's worked example: `W_in = 8`, `W₀ = 2` shrinks
//!   `B₀` by 4);
//! * collapses as needed when its buffer set fills, and finally invokes
//!   `Output` over everything.
//!
//! Interprocessor communication is one buffer shipment per worker — the
//! minimal traffic the paper calls for.
//!
//! Two front ends drive the protocol:
//!
//! * [`parallel_quantiles`] — §6's literal setting: one worker per
//!   pre-existing input sequence;
//! * [`ShardedSketch`] — one logical stream sharded round-robin over a
//!   fixed worker pool behind bounded channels (multi-core ingestion of a
//!   single source with backpressure).

#![warn(missing_docs)]
#![warn(clippy::all)]

mod coordinator;
mod hierarchy;
mod merge;
pub mod pipeline;
mod runner;

pub use coordinator::Coordinator;
pub use hierarchy::{merge_hierarchical, ship_upward};
pub use merge::merge_sketches;
pub use pipeline::{
    PipelineTelemetry, ShardedError, ShardedOutcome, ShardedSketch, DEFAULT_SHARD_BATCH,
};
pub use runner::{parallel_quantiles, ParallelOutcome};
