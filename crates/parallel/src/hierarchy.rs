//! Hierarchical (grouped) merging for high degrees of parallelism (§6).
//!
//! "When the degree of parallelism is very large, collecting output
//! buffers at one node may deteriorate performance significantly. In such
//! a case, we aggregate processors into multiple groups. One designated
//! processor in each group collects the output buffers from all others in
//! its group. In the end, the outputs from these processors can be
//! collected at one processor. As far as theoretical analysis … all that
//! matters is the increase in the height of the tree, which we denote by
//! h'."
//!
//! A group coordinator behaves exactly like the root coordinator; its
//! *own* buffers are then shipped upward: full buffers travel as-is
//! (weights retained), and its staging buffer travels as a partial buffer.

use mrl_framework::{Buffer, BufferState};

use crate::Coordinator;

/// Extract a coordinator's state as shippable buffers (full buffers plus
/// at most one partial from the staging area), for forwarding to a
/// higher-level coordinator.
pub fn ship_upward<T: Ord + Clone + 'static>(coordinator: Coordinator<T>) -> Vec<Buffer<T>> {
    coordinator.into_buffers()
}

/// Merge worker buffer sets through a two-level hierarchy: `group_size`
/// workers per group coordinator, then one root coordinator over the
/// groups. Returns the root. (`b`, `k` size every coordinator; the §6
/// analysis charges the extra level as `+h'` tree height.)
///
/// # Panics
/// Panics if `group_size == 0` or `worker_outputs` is empty.
pub fn merge_hierarchical<T: Ord + Clone + 'static>(
    worker_outputs: Vec<Vec<Buffer<T>>>,
    group_size: usize,
    b: usize,
    k: usize,
    seed: u64,
) -> Coordinator<T> {
    assert!(group_size >= 1, "groups must hold at least one worker");
    assert!(
        !worker_outputs.is_empty(),
        "need at least one worker output"
    );
    let mut root = Coordinator::<T>::new(b, k, seed);
    for (g, group) in worker_outputs.chunks(group_size).enumerate() {
        let mut group_coord =
            Coordinator::<T>::new(b, k, seed ^ (g as u64 + 1).wrapping_mul(0x9E37_79B9));
        // Full buffers first, then partials heaviest-first, so every
        // shrink ratio stays integral (partial weights are powers of two).
        let mut partials: Vec<Buffer<T>> = Vec::new();
        for buffers in group {
            for buf in buffers.iter().cloned() {
                if buf.state() == BufferState::Full {
                    group_coord.add_buffer(buf);
                } else {
                    partials.push(buf);
                }
            }
        }
        partials.sort_by_key(|p| std::cmp::Reverse(p.weight()));
        for p in partials {
            group_coord.add_buffer(p);
        }
        // Ship the group's state to the root.
        let mut shipped = ship_upward(group_coord);
        shipped.sort_by_key(|p| {
            (
                p.state() == BufferState::Partial, // fulls first
                std::cmp::Reverse(p.weight()),
            )
        });
        for buf in shipped {
            root.add_buffer(buf);
        }
    }
    root
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_buffer(data: Vec<u64>, weight: u64, k: usize) -> Buffer<u64> {
        let mut b = Buffer::empty(k);
        b.populate(data, weight, 0, k);
        b
    }

    #[test]
    fn hierarchical_merge_of_sixteen_workers() {
        let k = 32usize;
        // 16 workers, each covering a disjoint slice of 0..16*32.
        let outputs: Vec<Vec<Buffer<u64>>> = (0..16u64)
            .map(|w| {
                let data: Vec<u64> = (0..k as u64).map(|i| w * k as u64 + i).collect();
                vec![full_buffer(data, 1, k)]
            })
            .collect();
        let root = merge_hierarchical(outputs, 4, 4, k, 7);
        let n = 16.0 * k as f64;
        let med = root.query(0.5).unwrap() as f64;
        assert!((med - n / 2.0).abs() <= 0.2 * n, "median {med} of {n}");
        // Mass is conserved through both levels (all-full shipments incur
        // no shrink loss).
        assert_eq!(root.mass(), 16 * k as u64);
    }

    #[test]
    fn flat_and_hierarchical_agree_approximately() {
        let k = 64usize;
        let outputs: Vec<Vec<Buffer<u64>>> = (0..8u64)
            .map(|w| {
                let data: Vec<u64> = (0..k as u64)
                    .map(|i| (w * k as u64 + i) * 7 % 4096)
                    .collect();
                vec![full_buffer(data, 2, k)]
            })
            .collect();
        let flat = merge_hierarchical(outputs.clone(), 8, 4, k, 3); // one group = flat
        let hier = merge_hierarchical(outputs, 2, 4, k, 3);
        let n = flat.mass() as f64;
        for phi in [0.25, 0.5, 0.75] {
            let a = flat.query(phi).unwrap() as f64;
            let b = hier.query(phi).unwrap() as f64;
            // Both are approximations of the same multiset; they must land
            // within a few collapse-errors of each other.
            assert!(
                (a - b).abs() <= 0.25 * 4096.0,
                "phi={phi}: flat {a} vs hierarchical {b} (n={n})"
            );
        }
    }

    #[test]
    fn partials_survive_two_levels() {
        let k = 8usize;
        let mut p1 = Buffer::empty(k);
        p1.populate(vec![1, 2, 3], 2, 0, k);
        let mut p2 = Buffer::empty(k);
        p2.populate(vec![10, 20], 2, 0, k);
        let root = merge_hierarchical(vec![vec![p1], vec![p2]], 1, 3, k, 9);
        // Each went through its own group coordinator, then upward.
        assert_eq!(root.mass(), (3 + 2) * 2);
        assert_eq!(root.query(0.0), Some(1));
        assert_eq!(root.query(1.0), Some(20));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn empty_input_panics() {
        let _ = merge_hierarchical(Vec::<Vec<Buffer<u64>>>::new(), 4, 4, 8, 1);
    }
}
