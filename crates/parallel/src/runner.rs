//! End-to-end parallel execution: spawn one worker thread per input
//! sequence, run the single-stream unknown-`N` algorithm in each, ship the
//! final buffers to a [`Coordinator`], and answer quantiles over the
//! aggregate (§6).

use std::sync::mpsc;
use std::thread;

use mrl_core::{OptimizerOptions, UnknownN, UnknownNConfig};
use mrl_framework::Buffer;

use crate::Coordinator;

/// One worker's shipment tagged with its worker index, so the collector
/// can restore a canonical merge order regardless of completion order.
type IndexedShipment<T> = (usize, (u64, Vec<Buffer<T>>));

/// Result of a parallel run.
#[derive(Clone, Debug)]
pub struct ParallelOutcome<T> {
    /// The requested quantiles, in caller order.
    pub quantiles: Vec<T>,
    /// Total elements consumed across all workers.
    pub total_n: u64,
    /// Number of workers.
    pub workers: usize,
    /// Per-worker memory bound in elements (`b·k`).
    pub worker_memory_elements: usize,
    /// Coordinator memory bound in elements.
    pub coordinator_memory_elements: usize,
}

/// Compute approximate quantiles of the aggregate of `inputs`, running one
/// worker per input sequence (§6's setting: "P separate input sequences,
/// one per processor; any input sequence may terminate at any time").
///
/// Every worker runs the single-stream algorithm with the certified
/// `(ε, δ)` configuration; upon exhaustion it collapses its full buffers
/// and ships at most one full and one partial buffer to the coordinator.
///
/// Returns `None` if every input was empty.
///
/// # Panics
/// Panics if `inputs` is empty or a worker thread panics.
pub fn parallel_quantiles<T, I>(
    inputs: Vec<I>,
    epsilon: f64,
    delta: f64,
    phis: &[f64],
    opts: OptimizerOptions,
    seed: u64,
) -> Option<ParallelOutcome<T>>
where
    T: Ord + Clone + Send + 'static,
    I: IntoIterator<Item = T> + Send,
{
    assert!(!inputs.is_empty(), "need at least one input sequence");
    let config = mrl_analysis_config(epsilon, delta, opts);
    let workers = inputs.len();
    let (ship_tx, ship_rx) = mpsc::channel::<IndexedShipment<T>>();

    thread::scope(|scope| {
        for (i, input) in inputs.into_iter().enumerate() {
            let ship_tx = ship_tx.clone();
            let config = config.clone();
            scope.spawn(move || {
                let mut sketch = UnknownN::from_config(
                    config,
                    seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                // `extend` batches internally: the worker ingests in chunks
                // through the engine's slice fast path rather than paying
                // the per-insert filling checks and RNG draws.
                sketch.extend(input);
                // At most one full + one partial buffer leave the worker.
                ship_tx
                    .send((i, sketch.into_shipment()))
                    .expect("coordinator outlives workers");
            });
        }
        drop(ship_tx);

        // Shipments arrive in thread-completion order, which varies run to
        // run; re-ordering by worker index before the merge makes the
        // coordinator's collapse sequence — and thus the answers — a pure
        // function of (inputs, seed).
        let mut shipments: Vec<IndexedShipment<T>> = ship_rx.into_iter().collect();
        shipments.sort_by_key(|&(i, _)| i);

        let (coordinator, total_n) = Coordinator::<T>::from_shipments(
            config.b,
            config.k,
            seed ^ 0x00C0_FFEE,
            shipments.into_iter().map(|(_, s)| s),
        );

        let quantiles = coordinator.query_many(phis)?;
        Some(ParallelOutcome {
            quantiles,
            total_n,
            workers,
            worker_memory_elements: config.memory,
            coordinator_memory_elements: coordinator.memory_bound_elements(),
        })
    })
}

fn mrl_analysis_config(epsilon: f64, delta: f64, opts: OptimizerOptions) -> UnknownNConfig {
    mrl_analysis::optimizer::optimize_unknown_n_with(epsilon, delta, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> OptimizerOptions {
        OptimizerOptions::fast()
    }

    #[test]
    fn two_workers_cover_disjoint_ranges() {
        let n_per = 100_000u64;
        let inputs = vec![
            (0..n_per).collect::<Vec<u64>>(),
            (n_per..2 * n_per).collect::<Vec<u64>>(),
        ];
        let out = parallel_quantiles(inputs, 0.05, 0.01, &[0.25, 0.5, 0.75], fast(), 1).unwrap();
        assert_eq!(out.total_n, 2 * n_per);
        assert_eq!(out.workers, 2);
        let n = 2.0 * n_per as f64;
        for (q, phi) in out.quantiles.iter().zip([0.25, 0.5, 0.75]) {
            assert!(
                (*q as f64 - phi * n).abs() <= 0.05 * n + 1.0,
                "phi={phi}: {q}"
            );
        }
    }

    #[test]
    fn uneven_worker_loads() {
        // One giant stream, one tiny, one empty-ish: §6 allows any
        // sequence to terminate at any time.
        let inputs = vec![
            (0..300_000u64)
                .map(|i| (i * 2654435761) % 1_000_000)
                .collect::<Vec<u64>>(),
            (0..137u64).map(|i| i * 7_000).collect::<Vec<u64>>(),
            vec![999_999u64],
        ];
        let mut all: Vec<u64> = inputs.iter().flatten().copied().collect();
        let out = parallel_quantiles(inputs, 0.05, 0.01, &[0.5], fast(), 3).unwrap();
        all.sort_unstable();
        let exact = all[all.len() / 2] as f64;
        let got = out.quantiles[0] as f64;
        assert!(
            (got - exact).abs() <= 0.06 * all.len() as f64 * (1_000_000.0 / all.len() as f64),
            "median {got} vs exact {exact}"
        );
        // Rank-based check (values are ~uniform over 0..1e6 so ranks scale).
        let rank = all.iter().filter(|&&v| v <= out.quantiles[0]).count() as f64;
        let err = (rank - all.len() as f64 / 2.0).abs() / all.len() as f64;
        assert!(err <= 0.06, "rank error {err}");
    }

    #[test]
    fn eight_workers_accuracy() {
        let per = 50_000u64;
        let inputs: Vec<Vec<u64>> = (0..8u64)
            .map(|w| {
                (0..per)
                    .map(|i| ((w * per + i) * 48271) % 400_000)
                    .collect()
            })
            .collect();
        let mut all: Vec<u64> = inputs.iter().flatten().copied().collect();
        all.sort_unstable();
        let out = parallel_quantiles(inputs, 0.05, 0.01, &[0.1, 0.9], fast(), 5).unwrap();
        for (q, phi) in out.quantiles.iter().zip([0.1, 0.9]) {
            let rank = all.iter().filter(|&&v| v <= *q).count() as f64;
            let err = (rank - phi * all.len() as f64).abs() / all.len() as f64;
            assert!(err <= 0.06, "phi={phi}: rank error {err}");
        }
    }

    #[test]
    fn single_worker_degenerates_to_sequential() {
        let input = vec![(0..80_000u64).collect::<Vec<u64>>()];
        let out = parallel_quantiles(input, 0.05, 0.01, &[0.5], fast(), 7).unwrap();
        assert!((out.quantiles[0] as f64 - 40_000.0).abs() <= 0.05 * 80_000.0 + 1.0);
    }

    #[test]
    fn all_empty_inputs_return_none() {
        let inputs: Vec<Vec<u64>> = vec![vec![], vec![]];
        assert!(parallel_quantiles(inputs, 0.1, 0.01, &[0.5], fast(), 9).is_none());
    }
}
