//! Serial sketch merging: combine independently built [`UnknownN`]
//! sketches without threads (the map-reduce shape: build sketches
//! wherever the data lives, merge the small sketch states centrally).
//!
//! Semantically identical to [`crate::parallel_quantiles`]'s coordinator
//! stage — each sketch contributes at most one full and one partial buffer
//! after its final collapse (§6).

use mrl_core::UnknownN;
use mrl_framework::{Buffer, BufferState};

use crate::Coordinator;

/// Merge finished sketches into a [`Coordinator`] answering quantiles over
/// the union of their inputs. All sketches must share the same `(b, k)`
/// configuration (build them from one `UnknownNConfig`).
///
/// Returns `None` when every sketch is empty.
///
/// # Panics
/// Panics if `sketches` is empty or configurations disagree.
pub fn merge_sketches<T: Ord + Clone + 'static>(
    sketches: Vec<UnknownN<T>>,
    seed: u64,
) -> Option<Coordinator<T>> {
    assert!(!sketches.is_empty(), "need at least one sketch");
    let (b, k) = {
        let c = sketches[0].config();
        (c.b, c.k)
    };
    let mut any_data = false;
    let mut fulls: Vec<Buffer<T>> = Vec::new();
    let mut partials: Vec<Buffer<T>> = Vec::new();
    for sketch in sketches {
        assert_eq!(
            (sketch.config().b, sketch.config().k),
            (b, k),
            "all sketches must share one (b, k) configuration"
        );
        if sketch.n() > 0 {
            any_data = true;
        }
        let mut engine = sketch.into_engine();
        engine.finish();
        engine.collapse_all_full();
        for buf in engine.into_buffers() {
            if buf.state() == BufferState::Full {
                fulls.push(buf);
            } else {
                partials.push(buf);
            }
        }
    }
    if !any_data {
        return None;
    }
    let mut coordinator = Coordinator::new(b, k, seed);
    for buf in fulls {
        coordinator.add_buffer(buf);
    }
    // Heaviest-first keeps every shrink ratio integral (weights are powers
    // of two).
    partials.sort_by_key(|p| std::cmp::Reverse(p.weight()));
    for buf in partials {
        coordinator.add_buffer(buf);
    }
    Some(coordinator)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrl_core::OptimizerOptions;

    fn config() -> mrl_core::UnknownNConfig {
        mrl_analysis::optimizer::optimize_unknown_n_with(0.05, 0.01, OptimizerOptions::fast())
    }

    #[test]
    fn merged_sketches_cover_the_union() {
        let cfg = config();
        let mut parts = Vec::new();
        for w in 0..4u64 {
            let mut s = UnknownN::<u64>::from_config(cfg.clone(), w);
            s.extend((0..50_000u64).map(|i| w * 50_000 + i));
            parts.push(s);
        }
        let merged = merge_sketches(parts, 9).unwrap();
        let n = 200_000f64;
        for phi in [0.25, 0.5, 0.75] {
            let q = merged.query(phi).unwrap() as f64;
            assert!(
                (q - phi * n).abs() <= 0.06 * n,
                "phi={phi}: merged quantile {q}"
            );
        }
    }

    #[test]
    fn merging_one_sketch_preserves_answers_approximately() {
        let cfg = config();
        let mut s = UnknownN::<u64>::from_config(cfg.clone(), 3);
        s.extend((0..80_000u64).map(|i| (i * 48271) % 80_000));
        let direct = s.query(0.5).unwrap() as f64;
        let merged = merge_sketches(vec![s], 1).unwrap();
        let via_merge = merged.query(0.5).unwrap() as f64;
        // The final collapse perturbs ranks by at most the tree bound.
        assert!(
            (direct - via_merge).abs() <= 0.1 * 80_000.0,
            "direct {direct} vs merged {via_merge}"
        );
    }

    #[test]
    fn empty_sketches_merge_to_none() {
        let cfg = config();
        let parts = vec![
            UnknownN::<u64>::from_config(cfg.clone(), 1),
            UnknownN::<u64>::from_config(cfg.clone(), 2),
        ];
        assert!(merge_sketches(parts, 5).is_none());
    }

    #[test]
    #[should_panic(expected = "share one (b, k)")]
    fn mismatched_configs_panic() {
        let a = UnknownN::<u64>::with_options(0.05, 0.01, OptimizerOptions::fast());
        let b = UnknownN::<u64>::with_options(0.1, 0.01, OptimizerOptions::fast());
        let _ = merge_sketches(vec![a, b], 1);
    }
}
