//! Golden determinism test: two same-seed runs must be bitwise
//! identical even when worker timing is deliberately perturbed. This is
//! the dynamic half of the MRL-A008 contract — the pass certifies no
//! unseeded RNG / hash iteration / clock read / recv completion order
//! reaches the results statically; this test drives the sharded
//! pipeline and the §6 runner under staggered sleeps and background CPU
//! churn (exactly the schedule noise that would expose a surviving
//! completion-order dependence) and pins the full observable surface:
//! a 99-point quantile grid, `rank_of`, `total_n`, and a canonical byte
//! serialization of the coordinator's final buffers.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use mrl_core::OptimizerOptions;
use mrl_framework::{Buffer, BufferState};
use mrl_parallel::{parallel_quantiles, ShardedSketch};

/// Canonical little-endian serialization of the coordinator's buffers:
/// per buffer its state tag, weight, length, then the elements. Two
/// runs agree on these bytes only if every buffer's contents, weight,
/// and order match exactly.
fn canonical_bytes(buffers: &[Buffer<u64>]) -> Vec<u8> {
    let mut out = Vec::new();
    for buf in buffers {
        out.push(match buf.state() {
            BufferState::Empty => 0u8,
            BufferState::Partial => 1,
            BufferState::Full => 2,
        });
        out.extend_from_slice(&buf.weight().to_le_bytes());
        out.extend_from_slice(&(buf.data().len() as u64).to_le_bytes());
        for v in buf.data() {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

/// Threads that burn CPU until dropped, stealing cycles from the shard
/// workers so their completion order varies between runs.
struct Churn {
    stop: Arc<AtomicBool>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl Churn {
    fn start(threads: usize) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let handles = (0..threads)
            .map(|_| {
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let mut x = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        std::hint::black_box(x);
                    }
                })
            })
            .collect();
        Self { stop, handles }
    }
}

impl Drop for Churn {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for h in self.handles.drain(..) {
            h.join().ok();
        }
    }
}

/// Everything a sharded run exposes, pinned for bitwise comparison.
#[derive(PartialEq, Debug)]
struct Observed {
    grid: Vec<u64>,
    total_n: u64,
    rank: Option<(f64, f64)>,
    buffer_bytes: Vec<u8>,
}

/// One sharded-pipeline run. The caller-side chunk sequence is fixed
/// (chunking is part of the input); `perturb` adds scheduling noise
/// only — staggered sleeps between dispatched chunks and CPU churn.
fn sharded_run(data: &[u64], seed: u64, perturb: bool) -> Observed {
    let _churn = perturb.then(|| Churn::start(4));
    let mut sketch = ShardedSketch::<u64>::new(3, 0.05, 0.01, OptimizerOptions::fast(), seed);
    for (i, chunk) in data.chunks(997).enumerate() {
        sketch.insert_batch(chunk);
        if perturb && i % 11 == 0 {
            thread::sleep(Duration::from_micros(300));
        }
    }
    let outcome = sketch.finish().expect("no worker panics");
    let phis: Vec<f64> = (1..100).map(|i| f64::from(i) / 100.0).collect();
    let grid = outcome.query_many(&phis).expect("non-empty input");
    let total_n = outcome.total_n();
    let rank = outcome.rank_of(&(data.len() as u64 / 2));
    let buffer_bytes = canonical_bytes(&outcome.into_coordinator().into_buffers());
    Observed {
        grid,
        total_n,
        rank,
        buffer_bytes,
    }
}

fn skewed_data(n: u64) -> Vec<u64> {
    (0..n).map(|i| (i * 2654435761) % n).collect()
}

#[test]
fn same_seed_sharded_runs_are_bitwise_identical_under_timing_noise() {
    let data = skewed_data(120_000);
    let calm = sharded_run(&data, 0xD5EA_D001, false);
    let noisy = sharded_run(&data, 0xD5EA_D001, true);
    let noisy2 = sharded_run(&data, 0xD5EA_D001, true);
    assert_eq!(calm, noisy, "timing perturbation changed the results");
    assert_eq!(noisy, noisy2, "two perturbed runs disagree");
    assert_eq!(calm.total_n, 120_000);
}

#[test]
fn different_seeds_actually_change_the_sampled_state() {
    // Guards the test above against vacuous equality (e.g. the seed
    // being ignored): with sampling engaged, different seeds must
    // produce different coordinator buffers.
    let data = skewed_data(120_000);
    let a = sharded_run(&data, 1, false);
    let b = sharded_run(&data, 2, false);
    assert_eq!(a.total_n, b.total_n);
    assert_ne!(
        a.buffer_bytes, b.buffer_bytes,
        "seed must reach the samplers"
    );
}

#[test]
fn same_seed_runner_is_identical_despite_uneven_worker_finish_order() {
    // §6 runner: wildly unbalanced inputs finish in arbitrary order;
    // the indexed shipment sort must make the merge order — and thus
    // the answers — a pure function of (inputs, seed).
    let inputs: Vec<Vec<u64>> = vec![
        (0..200_000u64).map(|i| (i * 48271) % 500_000).collect(),
        (0..500u64).map(|i| i * 7).collect(),
        vec![42u64],
        (0..60_000u64).map(|i| (i * 2654435761) % 500_000).collect(),
    ];
    let phis = [0.05, 0.25, 0.5, 0.75, 0.95];
    let run = |perturb: bool| {
        let _churn = perturb.then(|| Churn::start(4));
        parallel_quantiles(
            inputs.clone(),
            0.05,
            0.01,
            &phis,
            OptimizerOptions::fast(),
            7,
        )
        .expect("non-empty input")
    };
    let calm = run(false);
    let noisy = run(true);
    let noisy2 = run(true);
    assert_eq!(calm.quantiles, noisy.quantiles);
    assert_eq!(noisy.quantiles, noisy2.quantiles);
    assert_eq!(calm.total_n, noisy.total_n);
}
