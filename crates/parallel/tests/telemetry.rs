//! Telemetry conservation: whatever the dispatcher's chunking and shard
//! count, the per-shard `TreeStats` the workers ship home must sum to the
//! merged coordinator totals — no element, leaf, collapse, or weight is
//! lost or double-counted on the way through the pipeline.

use proptest::prelude::*;

use mrl_parallel::ShardedSketch;
use mrl_parallel::DEFAULT_SHARD_BATCH;

/// Feed `total` scrambled values through a `shards`-worker pipeline in
/// chunks of `chunk`, returning the finished outcome's telemetry.
fn run_pipeline(
    total: u64,
    shards: usize,
    chunk: usize,
    seed: u64,
) -> mrl_parallel::ShardedOutcome<u64> {
    let mut sketch =
        ShardedSketch::<u64>::new(shards, 0.05, 0.01, mrl_core::OptimizerOptions::fast(), seed);
    let values: Vec<u64> = (0..total)
        .map(|i| i.wrapping_mul(6364136223846793005).wrapping_add(seed))
        .collect();
    for batch in values.chunks(chunk) {
        sketch.insert_batch(batch);
    }
    sketch.finish().expect("no shard panicked")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn per_shard_stats_sum_to_merged_totals(
        total in 1_000u64..40_000,
        shards in 1usize..5,
        chunk in 1usize..5_000,
        seed in 0u64..1_000,
    ) {
        let outcome = run_pipeline(total, shards, chunk, seed);
        let telemetry = outcome.telemetry();

        prop_assert_eq!(telemetry.per_shard.len(), shards);
        prop_assert_eq!(telemetry.total_n, total);
        prop_assert_eq!(outcome.total_n(), total);

        // Additive fields conserve exactly: sums over shards equal the
        // absorbed merged totals.
        let sum_elements: u64 = telemetry.per_shard.iter().map(|s| s.elements).sum();
        let sum_leaves: u64 = telemetry.per_shard.iter().map(|s| s.leaves).sum();
        let sum_collapses: u64 = telemetry.per_shard.iter().map(|s| s.collapses).sum();
        let sum_weight: u64 = telemetry.per_shard.iter().map(|s| s.collapse_weight_sum).sum();
        let sum_block_sq: u64 = telemetry.per_shard.iter().map(|s| s.sum_block_sq).sum();
        prop_assert_eq!(sum_elements, telemetry.merged.elements);
        prop_assert_eq!(sum_elements, total, "every dispatched element reaches a shard sketch");
        prop_assert_eq!(sum_leaves, telemetry.merged.leaves);
        prop_assert_eq!(sum_collapses, telemetry.merged.collapses);
        prop_assert_eq!(sum_weight, telemetry.merged.collapse_weight_sum);
        prop_assert_eq!(sum_block_sq, telemetry.merged.sum_block_sq);

        // Leaves-by-level merges entrywise and re-sums to the leaf total.
        let mut by_level: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
        for shard in &telemetry.per_shard {
            for (&level, &count) in &shard.leaves_by_level {
                *by_level.entry(level).or_insert(0) += count;
            }
        }
        prop_assert_eq!(&by_level, &telemetry.merged.leaves_by_level);
        let level_sum: u64 = telemetry.merged.leaves_by_level.values().sum();
        prop_assert_eq!(level_sum, telemetry.merged.leaves);

        // Max level is the max, onset the earliest shard onset.
        let max_level = telemetry.per_shard.iter().map(|s| s.max_level).max().unwrap_or(0);
        prop_assert_eq!(max_level, telemetry.merged.max_level);
        let min_onset = telemetry.per_shard.iter().filter_map(|s| s.sampling_onset_n).min();
        prop_assert_eq!(min_onset, telemetry.merged.sampling_onset_n);
    }

    #[test]
    fn conservation_holds_at_the_default_batch_size(
        total in 10_000u64..60_000,
        shards in 2usize..4,
    ) {
        let outcome = run_pipeline(total, shards, DEFAULT_SHARD_BATCH, 7);
        let telemetry = outcome.telemetry();
        let sum_elements: u64 = telemetry.per_shard.iter().map(|s| s.elements).sum();
        prop_assert_eq!(sum_elements, total);
        prop_assert_eq!(telemetry.merged.elements, total);
    }
}
