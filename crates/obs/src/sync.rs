//! Swappable concurrency primitives for the lock-free recorder.
//!
//! Compiled normally these are plain re-exports of `std`; under
//! `RUSTFLAGS="--cfg loom"` they swap to the `loom` model checker's
//! instrumented equivalents so `tests/loom.rs` can exhaustively explore
//! the slot-claim CAS, identity-publication and snapshot interleavings.
//! All atomic code in this crate must import from here, never from
//! `std::sync` directly — `cargo xtask lint` does not enforce this one
//! mechanically, but the loom tests only cover what goes through it.

#[cfg(loom)]
pub(crate) use loom::hint::spin_loop;
#[cfg(loom)]
pub(crate) use loom::sync::atomic::{AtomicU64, Ordering};
#[cfg(loom)]
pub(crate) use loom::sync::OnceLock;

#[cfg(not(loom))]
pub(crate) use std::hint::spin_loop;
#[cfg(not(loom))]
pub(crate) use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(loom))]
pub(crate) use std::sync::OnceLock;
