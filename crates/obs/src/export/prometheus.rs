//! Prometheus text exposition (version 0.0.4) export of a
//! [`MetricsSnapshot`] — the pull-based surface a metrics server mounts
//! at `/metrics`.
//!
//! Mapping:
//!
//! * rendered keys sanitise to metric names (`engine.collapse.ns` →
//!   `engine_collapse_ns`); a key's `[label]` suffix becomes a
//!   `{label="N"}` dimension so `shard.elements[3]` stays one metric
//!   with several series;
//! * counters and gauges export directly with `# TYPE` headers;
//! * histograms export as Prometheus *summaries*: `quantile`-labelled
//!   series for p50/p90/p99 plus `_sum` and `_count` — matching the
//!   log₂-bucket recorder, which stores quantile estimates rather than
//!   cumulative `le` buckets;
//! * the recorder's dropped-update tally always exports as
//!   `mrl_obs_dropped_updates` so collectors can alert on series loss.

use std::fmt::Write as _;

use crate::snapshot::MetricsSnapshot;

/// Sanitise a rendered key's base name into the Prometheus name
/// alphabet `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn metric_name(base: &str) -> String {
    let mut out = String::with_capacity(base.len() + 1);
    for (i, c) in base.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Split a rendered key (`name` or `name[label]`) into its sanitised
/// metric name and optional label value.
fn split_key(key: &str) -> (String, Option<&str>) {
    match key.split_once('[') {
        Some((base, rest)) => (metric_name(base), Some(rest.trim_end_matches(']'))),
        None => (metric_name(key), None),
    }
}

/// Format an `f64` the exposition format accepts (`NaN`, `+Inf`,
/// `-Inf` spelled out).
fn number(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

fn labels(label: Option<&str>, extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = Vec::new();
    if let Some(l) = label {
        parts.push(format!("label=\"{l}\""));
    }
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Emit a `# TYPE` header the first time `name` appears.
fn type_header(out: &mut String, last: &mut String, name: &str, kind: &str) {
    if last != name {
        let _ = writeln!(out, "# TYPE {name} {kind}");
        last.clear();
        last.push_str(name);
    }
}

/// Render `snapshot` as Prometheus text exposition format.
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last = String::new();
    for (key, value) in &snapshot.counters {
        let (name, label) = split_key(key);
        type_header(&mut out, &mut last, &name, "counter");
        let _ = writeln!(out, "{name}{} {value}", labels(label, None));
    }
    for (key, value) in &snapshot.gauges {
        let (name, label) = split_key(key);
        type_header(&mut out, &mut last, &name, "gauge");
        let _ = writeln!(out, "{name}{} {}", labels(label, None), number(*value));
    }
    for (key, h) in &snapshot.histograms {
        if h.count == 0 {
            // Registered but never sampled: quantiles would be
            // meaningless zeros.
            continue;
        }
        let (name, label) = split_key(key);
        type_header(&mut out, &mut last, &name, "summary");
        for (q, v) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99)] {
            let _ = writeln!(
                out,
                "{name}{} {}",
                labels(label, Some(("quantile", q))),
                number(v)
            );
        }
        let _ = writeln!(out, "{name}_sum{} {}", labels(label, None), h.sum);
        let _ = writeln!(out, "{name}_count{} {}", labels(label, None), h.count);
    }
    let _ = writeln!(out, "# TYPE mrl_obs_dropped_updates counter");
    let _ = writeln!(out, "mrl_obs_dropped_updates {}", snapshot.dropped);
    out
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::snapshot::HistogramSummary;

    fn sample() -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("engine.collapses".into(), 42);
        snap.counters.insert("shard.batches[0]".into(), 10);
        snap.counters.insert("shard.batches[1]".into(), 12);
        snap.gauges.insert("engine.rate".into(), 8.0);
        snap.histograms.insert(
            "engine.seal.ns".into(),
            HistogramSummary {
                count: 5,
                sum: 500,
                min: 10,
                max: 300,
                mean: 100.0,
                p50: 90.0,
                p90: 250.0,
                p99: 300.0,
            },
        );
        snap.histograms
            .insert("idle.ns".into(), HistogramSummary::default());
        snap.dropped = 3;
        snap
    }

    #[test]
    fn renders_counters_gauges_and_summaries() {
        let text = render(&sample());
        assert!(text.contains("# TYPE engine_collapses counter"));
        assert!(text.contains("engine_collapses 42"));
        assert!(text.contains("shard_batches{label=\"0\"} 10"));
        assert!(text.contains("shard_batches{label=\"1\"} 12"));
        // One TYPE header for the two labelled series.
        assert_eq!(text.matches("# TYPE shard_batches counter").count(), 1);
        assert!(text.contains("# TYPE engine_rate gauge"));
        assert!(text.contains("engine_rate 8"));
        assert!(text.contains("# TYPE engine_seal_ns summary"));
        assert!(text.contains("engine_seal_ns{quantile=\"0.5\"} 90"));
        assert!(text.contains("engine_seal_ns_sum 500"));
        assert!(text.contains("engine_seal_ns_count 5"));
        assert!(text.contains("mrl_obs_dropped_updates 3"));
        // Empty histograms are skipped.
        assert!(!text.contains("idle_ns"));
    }

    #[test]
    fn every_line_is_a_comment_or_name_value_sample() {
        let text = render(&sample());
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(line.starts_with("# TYPE "), "bad comment: {line}");
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("sample line");
            assert!(!series.is_empty());
            assert!(value.parse::<f64>().is_ok(), "unparseable value in: {line}");
        }
    }

    #[test]
    fn special_floats_are_spelled_for_the_exposition_parser() {
        let mut snap = MetricsSnapshot::default();
        snap.gauges.insert("weird".into(), f64::NAN);
        snap.gauges.insert("big".into(), f64::INFINITY);
        let text = render(&snap);
        assert!(text.contains("weird NaN"));
        assert!(text.contains("big +Inf"));
    }
}
