//! Chrome-trace (`trace_event`) JSON export of a journal drain, loadable
//! in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! Mapping:
//!
//! * each ring (= recording thread) is one track (`tid` = ring index,
//!   named via a `thread_name` metadata event when the owner registered
//!   one — the sharded pipeline names its workers `shard[i]`);
//! * spans export as `B`/`E` begin/end pairs — per-thread FIFO order
//!   plus drop-order nesting gives the stack discipline the format
//!   requires;
//! * seals, collapses, spine rebuilds and stalls export as `X` complete
//!   events whose start is `ts − dur`, so a collapse triggered inside
//!   an ingest span renders nested under it;
//! * rate transitions, collapse provenance, dispatches and
//!   invalidations export as `i` instant events.
//!
//! Timestamps are microseconds (the format's unit) relative to the
//! process clock epoch. The JSON is written by hand — the vendored
//! `serde_json` stand-in has no value-tree builder — and validated
//! structurally by `cargo xtask validate-trace` in CI.

use std::fmt::Write as _;

use crate::journal::{EventJournal, EventKind};

/// Process id used for every event (single-process trace).
const PID: u64 = 1;

/// Microseconds with nanosecond precision, rendered as a JSON number.
fn us(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1_000.0)
}

/// Escape a name for a JSON string literal (names are static
/// identifiers, but the exporter must never emit invalid JSON).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn push_event(events: &mut Vec<String>, body: String) {
    events.push(format!("{{{body}}}"));
}

/// Drain `journal` and render the full `trace_event` JSON object
/// (`{"traceEvents": [...], ...}`) as a string.
pub fn to_chrome_trace(journal: &EventJournal) -> String {
    let dump = journal.drain();
    let mut events: Vec<String> = Vec::new();
    push_event(
        &mut events,
        format!(
            "\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{PID},\"args\":{{\"name\":\"mrl\"}}"
        ),
    );
    for ring in &dump.rings {
        let tid = ring.ring as u64;
        let track = match ring.thread_name {
            Some((name, Some(label))) => format!("{name}[{label}]"),
            Some((name, None)) => name.to_string(),
            None => format!("ring{tid}"),
        };
        push_event(
            &mut events,
            format!(
                "\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{PID},\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}",
                esc(&track)
            ),
        );
        for ev in &ring.events {
            let common = |ph: &str, name: &str, cat: &str, ts: String| {
                format!(
                    "\"ph\":\"{ph}\",\"name\":\"{}\",\"cat\":\"{cat}\",\
                     \"pid\":{PID},\"tid\":{tid},\"ts\":{ts}",
                    esc(name)
                )
            };
            let body = match ev.kind {
                EventKind::SpanBegin { name } => common(
                    "B",
                    journal.span_name(name).unwrap_or("span"),
                    "span",
                    us(ev.ts_ns),
                ),
                EventKind::SpanEnd { name, .. } => common(
                    "E",
                    journal.span_name(name).unwrap_or("span"),
                    "span",
                    us(ev.ts_ns),
                ),
                EventKind::BufferSeal {
                    level,
                    kernel,
                    k,
                    runs,
                    dur_ns,
                } => format!(
                    "{},\"dur\":{},\"args\":{{\"level\":{level},\"kernel\":\"{kernel:?}\",\
                     \"k\":{k},\"runs\":{runs}}}",
                    common("X", "seal", "engine", us(ev.ts_ns.saturating_sub(dur_ns))),
                    us(dur_ns)
                ),
                EventKind::Collapse {
                    output_level,
                    sources,
                    path,
                    weight_sum,
                    dur_ns,
                } => format!(
                    "{},\"dur\":{},\"args\":{{\"output_level\":{output_level},\
                     \"sources\":{sources},\"path\":\"{path:?}\",\"weight_sum\":{weight_sum}}}",
                    common(
                        "X",
                        "collapse",
                        "engine",
                        us(ev.ts_ns.saturating_sub(dur_ns))
                    ),
                    us(dur_ns)
                ),
                EventKind::CollapseSource {
                    slot,
                    level,
                    weight,
                    len,
                } => format!(
                    "{},\"s\":\"t\",\"args\":{{\"slot\":{slot},\"level\":{level},\
                     \"weight\":{weight},\"len\":{len}}}",
                    common("i", "collapse.source", "engine", us(ev.ts_ns))
                ),
                EventKind::RateTransition { from, to } => format!(
                    "{},\"s\":\"t\",\"args\":{{\"from\":{from},\"to\":{to}}}",
                    common("i", "rate.transition", "engine", us(ev.ts_ns))
                ),
                EventKind::SpineRebuild {
                    epoch,
                    pairs,
                    dur_ns,
                } => format!(
                    "{},\"dur\":{},\"args\":{{\"epoch\":{epoch},\"pairs\":{pairs}}}",
                    common(
                        "X",
                        "spine.rebuild",
                        "query",
                        us(ev.ts_ns.saturating_sub(dur_ns))
                    ),
                    us(dur_ns)
                ),
                EventKind::SpineInvalidate { epoch } => format!(
                    "{},\"s\":\"t\",\"args\":{{\"epoch\":{epoch}}}",
                    common("i", "spine.invalidate", "query", us(ev.ts_ns))
                ),
                EventKind::ShardDispatch { shard, len, depth } => format!(
                    "{},\"s\":\"t\",\"args\":{{\"shard\":{shard},\"len\":{len},\
                     \"depth\":{depth}}}",
                    common("i", "shard.dispatch", "pipeline", us(ev.ts_ns))
                ),
                EventKind::ShardStall { shard, dur_ns } => format!(
                    "{},\"dur\":{},\"args\":{{\"shard\":{shard}}}",
                    common(
                        "X",
                        "shard.stall",
                        "pipeline",
                        us(ev.ts_ns.saturating_sub(dur_ns))
                    ),
                    us(dur_ns)
                ),
            };
            push_event(&mut events, body);
        }
    }
    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ns\",\
         \"otherData\":{{\"source\":\"mrl-obs flight recorder\",\
         \"events\":{},\"lost\":{}}}}}",
        events.join(","),
        dump.event_count(),
        dump.lost()
    )
}

#[cfg(all(test, not(loom)))]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::journal::{CollapsePath, JournalHandle, SealKernel};

    #[test]
    fn trace_contains_tracks_spans_and_complete_events() {
        let j = Arc::new(EventJournal::with_capacity(64));
        let h = JournalHandle::new(Arc::clone(&j));
        h.name_thread("driver", None);
        {
            let _span = h.span("ingest");
            h.record(EventKind::BufferSeal {
                level: 0,
                kernel: SealKernel::Presorted,
                k: 256,
                runs: 1,
                dur_ns: 1000,
            });
            h.record(EventKind::CollapseSource {
                slot: 0,
                level: 0,
                weight: 1,
                len: 256,
            });
            h.record(EventKind::Collapse {
                output_level: 1,
                sources: 2,
                path: CollapsePath::Concat,
                weight_sum: 2,
                dur_ns: 500,
            });
        }
        let text = to_chrome_trace(&j);
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.contains("\"name\":\"thread_name\""));
        assert!(text.contains("\"name\":\"driver\""));
        assert!(text.contains("\"ph\":\"B\",\"name\":\"ingest\""));
        assert!(text.contains("\"ph\":\"E\",\"name\":\"ingest\""));
        assert!(text.contains("\"ph\":\"X\",\"name\":\"seal\""));
        assert!(text.contains("\"kernel\":\"Presorted\""));
        assert!(text.contains("\"name\":\"collapse.source\""));
        assert!(text.contains("\"path\":\"Concat\""));
        // The vendored parser accepts it as one JSON document.
        let parsed: serde::Value = serde_json::from_str(&text).unwrap();
        match parsed {
            serde::Value::Object(fields) => {
                let trace = fields
                    .iter()
                    .find(|(k, _)| k == "traceEvents")
                    .map(|(_, v)| v)
                    .unwrap();
                match trace {
                    serde::Value::Array(items) => assert!(items.len() >= 6),
                    other => panic!("traceEvents not an array: {other:?}"),
                }
            }
            other => panic!("not an object: {other:?}"),
        }
    }

    #[test]
    fn empty_journal_still_renders_valid_json() {
        let j = EventJournal::with_capacity(4);
        let text = to_chrome_trace(&j);
        let parsed: serde::Value = serde_json::from_str(&text).unwrap();
        assert!(matches!(parsed, serde::Value::Object(_)));
    }
}
