//! Consumers of the flight recorder and metrics snapshot: chrome-trace
//! (Perfetto) JSON, Prometheus exposition text, and the dump-on-panic
//! hook.

use std::sync::{Arc, Mutex, OnceLock, Weak};

use crate::journal::EventJournal;

pub mod perfetto;
pub mod prometheus;

/// How many trailing events the panic hook prints per dump.
const PANIC_REPORT_EVENTS: usize = 64;

/// Journals registered for dump-on-panic. Weak references: a journal
/// that has been dropped is silently skipped, so registration never
/// extends a journal's lifetime.
static REGISTRY: OnceLock<Mutex<Vec<Weak<EventJournal>>>> = OnceLock::new();
/// Whether the chained panic hook has been installed (once per process).
static HOOK_INSTALLED: OnceLock<()> = OnceLock::new();

/// Render the panic-time diagnostic block for every registered, still
/// live journal (empty when none are registered). This is exactly what
/// the installed hook prints to stderr; split out so tests and callers
/// can capture it directly.
pub fn panic_report() -> String {
    let mut out = String::new();
    let Some(registry) = REGISTRY.get() else {
        return out;
    };
    let Ok(guard) = registry.lock() else {
        // A previous panic poisoned the registry lock; losing the dump
        // is better than double-panicking inside the hook.
        return out;
    };
    for weak in guard.iter() {
        if let Some(journal) = weak.upgrade() {
            out.push_str(&journal.diagnostic_report(PANIC_REPORT_EVENTS));
        }
    }
    out
}

/// Register `journal` for dump-on-panic and (once per process) chain a
/// panic hook that drains every registered journal's last
/// [`PANIC_REPORT_EVENTS`] events to stderr before the previous hook
/// runs its report. An invariant-audit failure therefore ships the
/// lifecycle events that led up to it.
pub fn install_panic_hook(journal: &Arc<EventJournal>) {
    let registry = REGISTRY.get_or_init(|| Mutex::new(Vec::new()));
    if let Ok(mut guard) = registry.lock() {
        guard.retain(|w| w.strong_count() > 0);
        guard.push(Arc::downgrade(journal));
    }
    if HOOK_INSTALLED.set(()).is_ok() {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let report = panic_report();
            if !report.is_empty() {
                eprintln!("{report}");
            }
            previous(info);
        }));
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::journal::EventKind;

    #[test]
    fn panic_report_covers_registered_journals_and_skips_dead_ones() {
        let j = Arc::new(EventJournal::with_capacity(16));
        install_panic_hook(&j);
        j.record_at(1, EventKind::RateTransition { from: 1, to: 2 });
        let report = panic_report();
        assert!(report.contains("flight recorder"), "report: {report}");
        assert!(report.contains("RateTransition"), "report: {report}");

        // A dropped journal disappears from subsequent reports.
        let ephemeral = Arc::new(EventJournal::with_capacity(16));
        ephemeral.record_at(9, EventKind::SpineInvalidate { epoch: 99 });
        install_panic_hook(&ephemeral);
        drop(ephemeral);
        let report = panic_report();
        assert!(!report.contains("epoch: 99"), "report: {report}");
    }

    #[test]
    fn hook_survives_an_actual_panic() {
        let j = Arc::new(EventJournal::with_capacity(16));
        install_panic_hook(&j);
        j.record_at(1, EventKind::SpineInvalidate { epoch: 7 });
        let outcome = std::panic::catch_unwind(|| panic!("boom"));
        assert!(outcome.is_err());
    }
}
