//! The flight recorder: a fixed-capacity, lock-free, per-thread ring
//! buffer of structured lifecycle events.
//!
//! Aggregate counters ([`crate::InMemoryRecorder`]) answer *how much*;
//! the journal answers *which one*: which seal picked the parked-raw
//! kernel, which collapse pulled five sources at level 3, which shard
//! stalled behind a full queue. Each event is a fixed five-word record —
//! one header word (tag + two small fields), one timestamp, three
//! payload words — written into a ring owned by the recording thread,
//! so the write path is a handful of atomic stores with no CAS, no
//! locks, and no allocation after the ring's one-time setup.
//!
//! Design points, mirroring the [`crate::MetricsHandle`] contract:
//!
//! * **Disabled path = one predicted branch.** Instrumented code holds a
//!   [`JournalHandle`]; the default (disabled) handle is a `None`, no
//!   clock is read, no event is encoded.
//! * **Single-writer rings.** A thread claims a ring by CAS on first
//!   use and is its only writer forever after; steady-state recording
//!   is plain stores. Drains (exporters, the panic hook) run on any
//!   thread concurrently with writers.
//! * **Overwrite-oldest drop policy.** The ring never blocks the
//!   recording thread: when full it overwrites the oldest slot and the
//!   drain reports how many events were overwritten. Bounded memory is
//!   the stack's whole premise; the journal follows it.
//! * **Torn reads are detected, not prevented.** A drain copies the
//!   published window, then re-reads the writer's reserve counter: any
//!   slot the writer may have begun overwriting during the copy is
//!   discarded and counted, never decoded. The writer bumps `reserve`
//!   *before* touching a slot's words and each payload store is a
//!   release, so a drain that observes a torn word also observes the
//!   bump that disqualifies the slot.
//!
//! All concurrency primitives come from [`crate::sync`], so
//! `RUSTFLAGS="--cfg loom"` swaps in the vendored model checker and
//! `tests/loom_model.rs` explores writer/drain interleavings directly.

use std::sync::Arc;

use crate::key::Key;
use crate::sync::{AtomicU64, OnceLock, Ordering};
use crate::timer;

/// Words per event slot: header, timestamp, three payload words.
const SLOT_WORDS: usize = 5;

/// Per-thread rings the journal can hand out. A scan of this table is
/// the cost of a thread's *first* event; after that the owning ring is
/// found at its claimed index. 32 covers the sharded pipeline's worker
/// count with room for the driver and drainer threads.
const RINGS: usize = 32;

/// Interned span-name table size; span names are static call sites, of
/// which the stack has a handful.
const NAMES: usize = 64;

/// Default ring capacity (events per thread). Power of two.
#[cfg(not(loom))]
const DEFAULT_CAPACITY: usize = 4096;
/// Under the model checker rings shrink so wraparound and overwrite are
/// reachable within a few scheduling decisions.
#[cfg(loom)]
const DEFAULT_CAPACITY: usize = 2;

/// The sort kernel a buffer seal chose (`DESIGN.md` §3.11–3.12).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum SealKernel {
    /// The fill arrived as a single ascending run: no sort at all.
    Presorted = 0,
    /// Few runs: merged via the run-tracking / radix seal.
    RunMerge = 1,
    /// Run tracking saturated: parked raw for a deferred sort.
    ParkedRaw = 2,
}

impl SealKernel {
    fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(Self::Presorted),
            1 => Some(Self::RunMerge),
            2 => Some(Self::ParkedRaw),
            _ => None,
        }
    }
}

/// Which collapse implementation served a [`EventKind::Collapse`]
/// (`DESIGN.md` §3.6, §3.13).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum CollapsePath {
    /// Equal-weight concat fast path (no merge walk).
    Concat = 0,
    /// Direct two-source weighted walk.
    TwoSource = 1,
    /// Direct three-source weighted walk.
    ThreeSource = 2,
    /// ≥ 4 sources: pairwise merge tree.
    PairMerge = 3,
    /// Scalar reference walk (mixed weights, generic `T`).
    Scalar = 4,
}

impl CollapsePath {
    fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(Self::Concat),
            1 => Some(Self::TwoSource),
            2 => Some(Self::ThreeSource),
            3 => Some(Self::PairMerge),
            4 => Some(Self::Scalar),
            _ => None,
        }
    }
}

/// One structured lifecycle event. Encodes into five `u64` words; every
/// variant fits (small fields share the header word, up to three wide
/// fields ride the payload words).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A fill buffer was sealed into a leaf.
    BufferSeal {
        /// Level the sealed buffer entered at.
        level: u32,
        /// Sort kernel the seal chose.
        kernel: SealKernel,
        /// Elements sealed (the engine's `k`, or a short final fill).
        k: u64,
        /// Ascending runs the run tracker counted in the fill.
        runs: u64,
        /// Wall-clock nanoseconds the seal took.
        dur_ns: u64,
    },
    /// Provenance for the next [`EventKind::Collapse`]: one source
    /// buffer's identity and mass. Emitted once per source, immediately
    /// before its collapse event, from the same thread — so a drain
    /// sees `CollapseSource × n, Collapse` contiguously in FIFO order.
    CollapseSource {
        /// Engine slot index of the source buffer.
        slot: u32,
        /// Level of the source buffer.
        level: u32,
        /// Weight of the source buffer.
        weight: u64,
        /// Elements in the source buffer.
        len: u64,
    },
    /// A collapse of several buffers into one.
    Collapse {
        /// Level of the output buffer.
        output_level: u32,
        /// Number of source buffers.
        sources: u32,
        /// Which collapse implementation ran.
        path: CollapsePath,
        /// Sum of the source weights (= output weight).
        weight_sum: u64,
        /// Wall-clock nanoseconds the collapse took.
        dur_ns: u64,
    },
    /// The sampling rate changed between fills (MRL99 §4 schedule).
    RateTransition {
        /// Rate before the transition.
        from: u64,
        /// Rate after the transition.
        to: u64,
    },
    /// The epoch-cached query spine was rebuilt.
    SpineRebuild {
        /// Ingest epoch the spine was rebuilt at.
        epoch: u64,
        /// Distinct `(value, weight)` pairs materialised.
        pairs: u64,
        /// Wall-clock nanoseconds the rebuild took.
        dur_ns: u64,
    },
    /// The query spine was explicitly invalidated (cache disabled or
    /// state restored), as opposed to lazily aging out by epoch.
    SpineInvalidate {
        /// Ingest epoch at invalidation time.
        epoch: u64,
    },
    /// The sharded pipeline dispatched a batch to a worker.
    ShardDispatch {
        /// Destination shard index.
        shard: u32,
        /// Elements in the dispatched batch.
        len: u64,
        /// Approximate queue depth observed at dispatch.
        depth: u64,
    },
    /// A dispatch found the shard's queue full and blocked.
    ShardStall {
        /// Stalled shard index.
        shard: u32,
        /// Nanoseconds spent blocked.
        dur_ns: u64,
    },
    /// A [`crate::ScopedSpan`] opened. `name` is an interned id;
    /// resolve with [`EventJournal::span_name`].
    SpanBegin {
        /// Interned span-name id.
        name: u32,
    },
    /// A [`crate::ScopedSpan`] closed.
    SpanEnd {
        /// Interned span-name id.
        name: u32,
        /// Nanoseconds between begin and end.
        dur_ns: u64,
    },
}

const TAG_BUFFER_SEAL: u8 = 1;
const TAG_COLLAPSE_SOURCE: u8 = 2;
const TAG_COLLAPSE: u8 = 3;
const TAG_RATE_TRANSITION: u8 = 4;
const TAG_SPINE_REBUILD: u8 = 5;
const TAG_SPINE_INVALIDATE: u8 = 6;
const TAG_SHARD_DISPATCH: u8 = 7;
const TAG_SHARD_STALL: u8 = 8;
const TAG_SPAN_BEGIN: u8 = 9;
const TAG_SPAN_END: u8 = 10;

/// Pack `tag` (8 bits), `f1` (24 bits, saturating) and `f2` (32 bits)
/// into one header word.
fn header(tag: u8, f1: u32, f2: u32) -> u64 {
    let f1 = u64::from(f1.min(0x00ff_ffff));
    (tag as u64) | (f1 << 8) | ((f2 as u64) << 32)
}

impl EventKind {
    /// Encode into `[header, p0, p1, p2]` (the timestamp word is
    /// supplied by the recorder).
    fn encode(&self) -> [u64; 4] {
        match *self {
            Self::BufferSeal {
                level,
                kernel,
                k,
                runs,
                dur_ns,
            } => [
                header(TAG_BUFFER_SEAL, level, kernel as u32),
                dur_ns,
                k,
                runs,
            ],
            Self::CollapseSource {
                slot,
                level,
                weight,
                len,
            } => [header(TAG_COLLAPSE_SOURCE, slot, level), weight, len, 0],
            Self::Collapse {
                output_level,
                sources,
                path,
                weight_sum,
                dur_ns,
            } => [
                header(
                    TAG_COLLAPSE,
                    output_level,
                    (sources & 0x00ff_ffff) | ((path as u32) << 24),
                ),
                dur_ns,
                weight_sum,
                0,
            ],
            Self::RateTransition { from, to } => [header(TAG_RATE_TRANSITION, 0, 0), from, to, 0],
            Self::SpineRebuild {
                epoch,
                pairs,
                dur_ns,
            } => [header(TAG_SPINE_REBUILD, 0, 0), epoch, pairs, dur_ns],
            Self::SpineInvalidate { epoch } => [header(TAG_SPINE_INVALIDATE, 0, 0), epoch, 0, 0],
            Self::ShardDispatch { shard, len, depth } => {
                [header(TAG_SHARD_DISPATCH, shard, 0), len, depth, 0]
            }
            Self::ShardStall { shard, dur_ns } => [header(TAG_SHARD_STALL, shard, 0), dur_ns, 0, 0],
            Self::SpanBegin { name } => [header(TAG_SPAN_BEGIN, name, 0), 0, 0, 0],
            Self::SpanEnd { name, dur_ns } => [header(TAG_SPAN_END, name, 0), dur_ns, 0, 0],
        }
    }

    /// Decode a header + payload back into a variant. `None` for an
    /// unknown tag (a torn or zeroed slot never decodes spuriously:
    /// tag 0 is not assigned).
    fn decode(head: u64, p: [u64; 3]) -> Option<Self> {
        let tag = (head & 0xff) as u8;
        let f1 = ((head >> 8) & 0x00ff_ffff) as u32;
        let f2 = (head >> 32) as u32;
        let [p0, p1, p2] = p;
        match tag {
            TAG_BUFFER_SEAL => Some(Self::BufferSeal {
                level: f1,
                kernel: SealKernel::from_u8(f2 as u8)?,
                k: p1,
                runs: p2,
                dur_ns: p0,
            }),
            TAG_COLLAPSE_SOURCE => Some(Self::CollapseSource {
                slot: f1,
                level: f2,
                weight: p0,
                len: p1,
            }),
            TAG_COLLAPSE => Some(Self::Collapse {
                output_level: f1,
                sources: f2 & 0x00ff_ffff,
                path: CollapsePath::from_u8((f2 >> 24) as u8)?,
                weight_sum: p1,
                dur_ns: p0,
            }),
            TAG_RATE_TRANSITION => Some(Self::RateTransition { from: p0, to: p1 }),
            TAG_SPINE_REBUILD => Some(Self::SpineRebuild {
                epoch: p0,
                pairs: p1,
                dur_ns: p2,
            }),
            TAG_SPINE_INVALIDATE => Some(Self::SpineInvalidate { epoch: p0 }),
            TAG_SHARD_DISPATCH => Some(Self::ShardDispatch {
                shard: f1,
                len: p0,
                depth: p1,
            }),
            TAG_SHARD_STALL => Some(Self::ShardStall {
                shard: f1,
                dur_ns: p0,
            }),
            TAG_SPAN_BEGIN => Some(Self::SpanBegin { name: f1 }),
            TAG_SPAN_END => Some(Self::SpanEnd {
                name: f1,
                dur_ns: p0,
            }),
            _ => None,
        }
    }
}

/// One decoded journal record: a timestamp (nanoseconds since the
/// process-wide clock epoch in [`crate::ScopedTimer`]'s module) plus
/// the structured event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the process clock epoch.
    pub ts_ns: u64,
    /// The structured payload.
    pub kind: EventKind,
}

/// One thread's ring. The owner (claiming thread) is the only writer;
/// drains may run on any thread concurrently.
struct Ring {
    /// 0 = unclaimed; otherwise the owning thread's fingerprint.
    owner: AtomicU64,
    /// Optional display name for exporters (`("shard", Some(3))`).
    name: OnceLock<(&'static str, Option<u32>)>,
    /// Monotone count of slots the writer has *started* writing.
    /// Bumped before any slot word is touched.
    reserve: AtomicU64,
    /// Monotone count of slots fully written and readable.
    publish: AtomicU64,
    /// `capacity × SLOT_WORDS` words, allocated lazily by the owner on
    /// its first event so unclaimed rings cost a few counters.
    storage: OnceLock<Box<[AtomicU64]>>,
}

impl Ring {
    fn unclaimed() -> Self {
        Self {
            owner: AtomicU64::new(0),
            name: OnceLock::new(),
            reserve: AtomicU64::new(0),
            publish: AtomicU64::new(0),
            storage: OnceLock::new(),
        }
    }
}

/// An interned span-name slot: claimed by CAS with the name's
/// fingerprint, then the `&'static str` published once.
struct NameSlot {
    fingerprint: AtomicU64,
    name: OnceLock<&'static str>,
}

/// Everything one drain saw in one ring.
#[derive(Clone, Debug)]
pub struct RingDump {
    /// Ring index (stable per thread for the journal's lifetime; used
    /// as the exporter's track/tid).
    pub ring: usize,
    /// Thread display name, if the owner registered one.
    pub thread_name: Option<(&'static str, Option<u32>)>,
    /// Decoded events, oldest first (per-thread FIFO).
    pub events: Vec<Event>,
    /// Events lost to the overwrite-oldest policy before this drain.
    pub overwritten: u64,
    /// Slots discarded by this drain because the writer may have been
    /// overwriting them mid-copy.
    pub torn: u64,
}

/// A point-in-time copy of every ring.
#[derive(Clone, Debug, Default)]
pub struct JournalDump {
    /// Per-ring dumps, in ring-index order; unclaimed rings are absent.
    pub rings: Vec<RingDump>,
    /// Events discarded because every ring was claimed by other
    /// threads (more than [`RINGS`] concurrent recording threads).
    pub unclaimed_dropped: u64,
}

impl JournalDump {
    /// Total decoded events across all rings.
    pub fn event_count(&self) -> usize {
        self.rings.iter().map(|r| r.events.len()).sum()
    }

    /// Total events lost (overwritten, torn, or unclaimed-thread drops).
    pub fn lost(&self) -> u64 {
        let per_ring: u64 = self
            .rings
            .iter()
            .map(|r| r.overwritten.saturating_add(r.torn))
            .sum();
        per_ring.saturating_add(self.unclaimed_dropped)
    }
}

/// The flight recorder: a table of per-thread single-writer event
/// rings plus a span-name intern table.
///
/// Shared behind an `Arc` via [`JournalHandle`]; recording is
/// lock-free and allocation-free after a ring's one-time setup, and
/// [`EventJournal::drain`] may run on any thread at any time (it is a
/// non-destructive copy — rings keep absorbing events).
pub struct EventJournal {
    rings: Box<[Ring]>,
    names: Box<[NameSlot]>,
    /// Ring capacity in events (power of two).
    capacity: usize,
    /// Events dropped because the ring table was fully claimed.
    unclaimed_dropped: AtomicU64,
}

impl std::fmt::Debug for EventJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventJournal")
            .field("capacity", &self.capacity)
            .field("rings", &RINGS)
            .finish()
    }
}

impl Default for EventJournal {
    fn default() -> Self {
        Self::new()
    }
}

fn thread_fingerprint() -> u64 {
    // A process-wide id counter cached in a thread-local: collision-free
    // (unlike hashing the ThreadId) and one TLS read when warm. This is
    // identity allocation, not part of the ring protocol, so it stays on
    // the std atomic even under the loom shim.
    // ordering: relaxed — unique-id allocation, no ordering with ring state
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
    thread_local! {
        // ordering: relaxed — unique-id allocation, no ordering with ring state
        static FP: u64 = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
    FP.with(|fp| *fp)
}

impl EventJournal {
    /// A journal with the default per-thread capacity
    /// ([`DEFAULT_CAPACITY`] events; shrunk under `cfg(loom)`).
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A journal whose rings hold `capacity` events each (rounded up to
    /// a power of two, clamped to `[2, 2^20]`). Storage is allocated
    /// lazily per recording thread.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.clamp(2, 1 << 20).next_power_of_two();
        Self {
            rings: (0..RINGS).map(|_| Ring::unclaimed()).collect(),
            names: (0..NAMES)
                .map(|_| NameSlot {
                    fingerprint: AtomicU64::new(0),
                    name: OnceLock::new(),
                })
                .collect(),
            capacity,
            unclaimed_dropped: AtomicU64::new(0),
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Record `kind` stamped with the current time.
    pub fn record(&self, kind: EventKind) {
        self.record_at(timer::now_ns(), kind);
    }

    /// Record `kind` with a caller-supplied timestamp (nanoseconds
    /// since the process clock epoch, i.e. a value derived from
    /// [`JournalHandle::now_ns`]).
    pub fn record_at(&self, ts_ns: u64, kind: EventKind) {
        let Some(ring) = self.ring_for_current_thread() else {
            // ordering: relaxed — independent loss counter, read after drains only
            self.unclaimed_dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let [head, e1, e2, e3] = kind.encode();
        self.push_slot(ring, [head, ts_ns, e1, e2, e3]);
    }

    /// Register a display name for the current thread's ring (shown as
    /// the exporter's track name, e.g. `("shard", Some(3))`). First
    /// registration wins.
    pub fn name_current_thread(&self, name: &'static str, label: Option<u32>) {
        if let Some(ring) = self.ring_for_current_thread() {
            let _ = ring.name.set((name, label));
        }
    }

    /// Intern a span name, returning its stable id (see
    /// [`EventJournal::span_name`]). Returns 0 — a valid, shared
    /// "unknown" id — when the intern table is full.
    pub fn intern(&self, name: &'static str) -> u32 {
        let fp = Key::new(name).fingerprint();
        let mask = NAMES - 1;
        let mut idx = fp as usize & mask;
        for _ in 0..NAMES {
            // idx is always masked by NAMES - 1 and names holds exactly
            // NAMES entries (NAMES is a power of two), so the indexing
            // below is in bounds by construction.
            let slot = &self.names[idx];
            match slot
                .fingerprint
                // ordering: acqrel — release publishes the claim, acquire on failure observes a winner's
                .compare_exchange(0, fp, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => {
                    let _ = slot.name.set(name);
                    return idx as u32 + 1;
                }
                Err(existing) if existing == fp => {
                    // Same fingerprint: either the same static name or a
                    // 64-bit FNV collision between a handful of call
                    // sites — accept the slot.
                    return idx as u32 + 1;
                }
                Err(_) => {}
            }
            idx = (idx + 1) & mask;
        }
        0
    }

    /// Resolve an interned span-name id. Id 0 (or a stale id) resolves
    /// to `None`.
    pub fn span_name(&self, id: u32) -> Option<&'static str> {
        let idx = (id as usize).checked_sub(1)?;
        self.names.get(idx)?.name.get().copied()
    }

    /// Events discarded because more than [`RINGS`] threads recorded
    /// concurrently.
    pub fn unclaimed_dropped(&self) -> u64 {
        // ordering: relaxed — independent loss counter
        self.unclaimed_dropped.load(Ordering::Relaxed)
    }

    /// Find (or claim) the current thread's ring. `None` when every
    /// ring belongs to another thread.
    fn ring_for_current_thread(&self) -> Option<&Ring> {
        let fp = thread_fingerprint();
        for ring in self.rings.iter() {
            // ordering: acquire — pairs with the claim CAS release before trusting ownership
            let owner = ring.owner.load(Ordering::Acquire);
            if owner == fp {
                return Some(ring);
            }
            if owner == 0 {
                match ring
                    .owner
                    // ordering: acqrel — release publishes the claim, acquire on failure observes a winner's
                    .compare_exchange(0, fp, Ordering::AcqRel, Ordering::Acquire)
                {
                    Ok(_) => return Some(ring),
                    Err(existing) if existing == fp => return Some(ring),
                    Err(_) => {}
                }
            }
        }
        None
    }

    /// Append one encoded event to `ring`. Owner thread only.
    // alloc: the ring's storage is allocated exactly once, on the owning
    // thread's first event; every later call is plain stores into it.
    fn push_slot(&self, ring: &Ring, words: [u64; SLOT_WORDS]) {
        let storage = match ring.storage.get() {
            Some(s) => s,
            None => {
                let boxed: Box<[AtomicU64]> = (0..self.capacity * SLOT_WORDS)
                    .map(|_| AtomicU64::new(0))
                    .collect();
                let _ = ring.storage.set(boxed);
                match ring.storage.get() {
                    Some(s) => s,
                    None => return,
                }
            }
        };
        // ordering: relaxed — the owner thread is the ring's only writer
        let seq = ring.reserve.load(Ordering::Relaxed);
        // ordering: relaxed — the bump only needs to be visible before the
        // payload stores below, and each payload store is a release, which
        // already pins every prior store (this one included) before it: a
        // drain whose acquire load returns a torn payload word synchronizes
        // with that release and therefore observes reserve past the slot.
        // (Loom model-checks exactly this writer/drain race.)
        ring.reserve.store(seq.wrapping_add(1), Ordering::Relaxed);
        let base = (seq as usize & (self.capacity - 1)) * SLOT_WORDS;
        for (i, w) in words.iter().enumerate() {
            // panic-free: base is masked to < capacity and storage holds
            // exactly capacity * SLOT_WORDS words.
            // ordering: release — a drain's acquire load of a torn word
            // synchronizes with this store and therefore sees the
            // reserve bump that disqualifies the slot.
            storage[base + i].store(*w, Ordering::Release);
        }
        // ordering: release — publishes the fully written slot to
        // drains' acquire loads of `publish`.
        ring.publish.store(seq.wrapping_add(1), Ordering::Release);
    }

    /// Copy out every ring's retained events (non-destructive: rings
    /// keep absorbing). Safe to call from any thread at any time,
    /// including inside a panic hook while writers are live.
    pub fn drain(&self) -> JournalDump {
        let mut dump = JournalDump {
            rings: Vec::new(),
            unclaimed_dropped: self.unclaimed_dropped(),
        };
        let cap = self.capacity as u64;
        for (ring_idx, ring) in self.rings.iter().enumerate() {
            // ordering: acquire — pairs with the claim CAS release
            if ring.owner.load(Ordering::Acquire) == 0 {
                continue;
            }
            let Some(storage) = ring.storage.get() else {
                // Claimed but no event published yet.
                continue;
            };
            // ordering: acquire — pairs with the publish release store so
            // every published slot's payload words are visible below.
            let published = ring.publish.load(Ordering::Acquire);
            let start = published.saturating_sub(cap);
            let mut raw: Vec<(u64, [u64; SLOT_WORDS])> =
                Vec::with_capacity((published - start) as usize);
            for seq in start..published {
                let base = (seq as usize & (self.capacity - 1)) * SLOT_WORDS;
                let mut words = [0u64; SLOT_WORDS];
                for (i, w) in words.iter_mut().enumerate() {
                    // panic-free: base is masked to < capacity and
                    // storage holds exactly capacity * SLOT_WORDS words.
                    // ordering: acquire — keeps the reserve re-check
                    // below ordered after these reads, and synchronizes
                    // with a concurrent writer's release store if this
                    // read is torn.
                    *w = storage[base + i].load(Ordering::Acquire);
                }
                raw.push((seq, words));
            }
            // ordering: acquire — any writer that began overwriting a slot
            // we copied bumped reserve before its first payload store, and
            // the acquire loads above synchronize with those release
            // stores; acquire here keeps this re-read ordered after the
            // copy, bounding the trustworthy window.
            let reserve_after = ring.reserve.load(Ordering::Acquire);
            let safe_start = reserve_after.saturating_sub(cap);
            let mut torn = 0u64;
            let mut events = Vec::with_capacity(raw.len());
            for (seq, words) in raw {
                if seq < safe_start {
                    torn += 1;
                    continue;
                }
                let [head, ts_ns, w2, w3, w4] = words;
                if let Some(kind) = EventKind::decode(head, [w2, w3, w4]) {
                    events.push(Event { ts_ns, kind });
                }
            }
            dump.rings.push(RingDump {
                ring: ring_idx,
                thread_name: ring.name.get().copied(),
                events,
                overwritten: start,
                torn,
            });
        }
        dump
    }

    /// Render the most recent `last_n` events (merged across rings,
    /// oldest first) as a plain-text diagnostic block — the payload of
    /// the dump-on-panic hook.
    pub fn diagnostic_report(&self, last_n: usize) -> String {
        use std::fmt::Write as _;
        type Row = (usize, Option<(&'static str, Option<u32>)>, Event);
        let dump = self.drain();
        let mut merged: Vec<Row> = Vec::new();
        for ring in &dump.rings {
            for ev in &ring.events {
                merged.push((ring.ring, ring.thread_name, *ev));
            }
        }
        merged.sort_by_key(|(_, _, ev)| ev.ts_ns);
        let skip = merged.len().saturating_sub(last_n);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "=== mrl flight recorder: last {} of {} events ({} lost) ===",
            merged.len() - skip,
            merged.len(),
            dump.lost()
        );
        for (ring_idx, name, ev) in merged.iter().skip(skip) {
            let track = match name {
                Some((n, Some(l))) => format!("{n}[{l}]"),
                Some((n, None)) => (*n).to_string(),
                None => format!("ring{ring_idx}"),
            };
            let rendered = match ev.kind {
                EventKind::SpanBegin { name } => {
                    format!(
                        "SpanBegin {{ name: {:?} }}",
                        self.span_name(name).unwrap_or("?")
                    )
                }
                EventKind::SpanEnd { name, dur_ns } => format!(
                    "SpanEnd {{ name: {:?}, dur_ns: {dur_ns} }}",
                    self.span_name(name).unwrap_or("?")
                ),
                other => format!("{other:?}"),
            };
            let _ = writeln!(out, "[{:>12} ns] {track:<12} {rendered}", ev.ts_ns);
        }
        out
    }
}

/// The handle instrumented code holds: either disabled (`None`, the
/// default — every journal call is one predictable branch and no clock
/// is read) or a shared reference to a live [`EventJournal`].
///
/// Cloning is cheap (an `Option<Arc>` clone), so the handle travels
/// freely into the sharded pipeline's worker threads — the same
/// contract as [`crate::MetricsHandle`].
#[derive(Clone, Debug, Default)]
pub struct JournalHandle {
    inner: Option<Arc<EventJournal>>,
}

impl JournalHandle {
    /// The disabled handle: all journal calls compile to a `None` check.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A handle delivering to `journal`.
    pub fn new(journal: Arc<EventJournal>) -> Self {
        Self {
            inner: Some(journal),
        }
    }

    /// True when a journal is attached.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The attached journal, if any (exporters drain through this).
    pub fn journal(&self) -> Option<&Arc<EventJournal>> {
        self.inner.as_ref()
    }

    /// Nanoseconds since the process clock epoch — `None` when
    /// disabled, so callers computing durations never read the clock on
    /// the disabled path.
    #[inline]
    pub fn now_ns(&self) -> Option<u64> {
        if self.inner.is_some() {
            Some(timer::now_ns())
        } else {
            None
        }
    }

    /// Record `kind` stamped with the current time (no-op when
    /// disabled).
    #[inline]
    pub fn record(&self, kind: EventKind) {
        if let Some(j) = &self.inner {
            j.record(kind);
        }
    }

    /// Record `kind` at an explicit timestamp (no-op when disabled).
    #[inline]
    pub fn record_at(&self, ts_ns: u64, kind: EventKind) {
        if let Some(j) = &self.inner {
            j.record_at(ts_ns, kind);
        }
    }

    /// Register a display name for the current thread's event track
    /// (no-op when disabled).
    pub fn name_thread(&self, name: &'static str, label: Option<u32>) {
        if let Some(j) = &self.inner {
            j.name_current_thread(name, label);
        }
    }

    /// Open a scoped span: emits [`EventKind::SpanBegin`] now and
    /// [`EventKind::SpanEnd`] on drop. When disabled, no clock is read
    /// at all.
    #[inline]
    pub fn span(&self, name: &'static str) -> crate::span::ScopedSpan<'_> {
        crate::span::ScopedSpan::begin(self, name)
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn all_kinds() -> Vec<EventKind> {
        vec![
            EventKind::BufferSeal {
                level: 3,
                kernel: SealKernel::RunMerge,
                k: 256,
                runs: 7,
                dur_ns: 1234,
            },
            EventKind::CollapseSource {
                slot: 2,
                level: 1,
                weight: 8,
                len: 256,
            },
            EventKind::Collapse {
                output_level: 4,
                sources: 3,
                path: CollapsePath::ThreeSource,
                weight_sum: 24,
                dur_ns: 999,
            },
            EventKind::RateTransition { from: 1, to: 2 },
            EventKind::SpineRebuild {
                epoch: 42,
                pairs: 1280,
                dur_ns: 555,
            },
            EventKind::SpineInvalidate { epoch: 43 },
            EventKind::ShardDispatch {
                shard: 5,
                len: 4096,
                depth: 2,
            },
            EventKind::ShardStall {
                shard: 5,
                dur_ns: 777,
            },
            EventKind::SpanBegin { name: 1 },
            EventKind::SpanEnd {
                name: 1,
                dur_ns: 888,
            },
        ]
    }

    #[test]
    fn every_variant_roundtrips_through_encoding() {
        for kind in all_kinds() {
            let enc = kind.encode();
            let back = EventKind::decode(enc[0], [enc[1], enc[2], enc[3]]);
            assert_eq!(back, Some(kind));
        }
    }

    #[test]
    fn zeroed_slot_never_decodes() {
        assert_eq!(EventKind::decode(0, [0, 0, 0]), None);
    }

    #[test]
    fn events_drain_in_fifo_order() {
        let j = EventJournal::with_capacity(64);
        for i in 0..10u64 {
            j.record_at(i, EventKind::RateTransition { from: i, to: i + 1 });
        }
        let dump = j.drain();
        assert_eq!(dump.rings.len(), 1);
        let ring = &dump.rings[0];
        assert_eq!(ring.events.len(), 10);
        assert_eq!(ring.overwritten, 0);
        assert_eq!(ring.torn, 0);
        for (i, ev) in ring.events.iter().enumerate() {
            assert_eq!(ev.ts_ns, i as u64);
            assert_eq!(
                ev.kind,
                EventKind::RateTransition {
                    from: i as u64,
                    to: i as u64 + 1
                }
            );
        }
    }

    #[test]
    fn overwrite_oldest_keeps_the_newest_window() {
        let j = EventJournal::with_capacity(4);
        for i in 0..10u64 {
            j.record_at(i, EventKind::SpineInvalidate { epoch: i });
        }
        let dump = j.drain();
        let ring = &dump.rings[0];
        assert_eq!(ring.events.len(), 4);
        assert_eq!(ring.overwritten, 6);
        let epochs: Vec<u64> = ring
            .events
            .iter()
            .map(|e| match e.kind {
                EventKind::SpineInvalidate { epoch } => epoch,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(epochs, vec![6, 7, 8, 9]);
        assert_eq!(dump.lost(), 6);
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(EventJournal::with_capacity(5).capacity(), 8);
        assert_eq!(EventJournal::with_capacity(0).capacity(), 2);
        assert_eq!(EventJournal::with_capacity(4096).capacity(), 4096);
    }

    #[test]
    fn intern_is_stable_and_resolvable() {
        let j = EventJournal::new();
        let a = j.intern("ingest");
        let b = j.intern("drain");
        let a2 = j.intern("ingest");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(j.span_name(a), Some("ingest"));
        assert_eq!(j.span_name(b), Some("drain"));
        assert_eq!(j.span_name(0), None);
    }

    #[test]
    fn disabled_handle_is_inert() {
        let h = JournalHandle::disabled();
        assert!(!h.is_enabled());
        assert_eq!(h.now_ns(), None);
        h.record(EventKind::RateTransition { from: 1, to: 2 });
        h.record_at(5, EventKind::SpineInvalidate { epoch: 0 });
        h.name_thread("x", None);
        drop(h.span("quiet"));
        assert!(h.journal().is_none());
    }

    #[test]
    fn enabled_handle_records_and_stamps() {
        let j = Arc::new(EventJournal::with_capacity(16));
        let h = JournalHandle::new(Arc::clone(&j));
        assert!(h.is_enabled());
        h.name_thread("driver", None);
        h.record(EventKind::RateTransition { from: 1, to: 2 });
        let dump = j.drain();
        assert_eq!(dump.event_count(), 1);
        assert_eq!(dump.rings[0].thread_name, Some(("driver", None)));
    }

    #[test]
    fn threads_get_distinct_rings() {
        let j = Arc::new(EventJournal::with_capacity(16));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let j = Arc::clone(&j);
                std::thread::spawn(move || {
                    for i in 0..8 {
                        j.record_at(i, EventKind::RateTransition { from: t, to: i });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let dump = j.drain();
        assert_eq!(dump.rings.len(), 4);
        for ring in &dump.rings {
            assert_eq!(ring.events.len(), 8);
            // Per-thread FIFO: the `to` payload counts 0..8 in order.
            for (i, ev) in ring.events.iter().enumerate() {
                match ev.kind {
                    EventKind::RateTransition { to, .. } => assert_eq!(to, i as u64),
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        assert_eq!(dump.unclaimed_dropped, 0);
    }

    #[test]
    fn diagnostic_report_renders_recent_events() {
        let j = EventJournal::with_capacity(16);
        let id = j.intern("ingest");
        j.record_at(1, EventKind::SpanBegin { name: id });
        j.record_at(
            2,
            EventKind::Collapse {
                output_level: 2,
                sources: 3,
                path: CollapsePath::Concat,
                weight_sum: 3,
                dur_ns: 10,
            },
        );
        j.record_at(
            3,
            EventKind::SpanEnd {
                name: id,
                dur_ns: 2,
            },
        );
        let report = j.diagnostic_report(8);
        assert!(report.contains("flight recorder"));
        assert!(report.contains("\"ingest\""));
        assert!(report.contains("Collapse"));
        let only_one = j.diagnostic_report(1);
        assert!(only_one.contains("SpanEnd"));
        assert!(!only_one.contains("Collapse {"));
    }
}
