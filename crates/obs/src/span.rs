//! Scoped spans: begin/end event pairs in the flight recorder, built on
//! the same clock the [`crate::ScopedTimer`] machinery uses.

use crate::journal::{EventKind, JournalHandle};

/// Emits [`EventKind::SpanBegin`] at construction and
/// [`EventKind::SpanEnd`] (with the elapsed nanoseconds) on drop.
///
/// Constructed through [`JournalHandle::span`]; when the handle is
/// disabled no clock is read and drop is free — one predicted branch,
/// the same contract as the disabled metrics path. Spans on one thread
/// nest naturally (drop order is reverse construction order), which is
/// exactly the stack discipline the chrome-trace `B`/`E` exporter
/// needs.
#[derive(Debug)]
pub struct ScopedSpan<'a> {
    handle: &'a JournalHandle,
    name: u32,
    /// Begin timestamp; `None` when the handle is disabled.
    start: Option<u64>,
}

impl<'a> ScopedSpan<'a> {
    pub(crate) fn begin(handle: &'a JournalHandle, name: &'static str) -> Self {
        let Some(journal) = handle.journal() else {
            return Self {
                handle,
                name: 0,
                start: None,
            };
        };
        let name = journal.intern(name);
        let start = crate::timer::now_ns();
        journal.record_at(start, EventKind::SpanBegin { name });
        Self {
            handle,
            name,
            start: Some(start),
        }
    }

    /// Close the span now; equivalent to dropping it.
    pub fn end(self) {}

    /// Abandon the span without emitting the end event (the begin event
    /// has already been recorded; exporters treat an unmatched begin as
    /// an open span).
    pub fn discard(mut self) {
        self.start = None;
    }
}

impl Drop for ScopedSpan<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let end = crate::timer::now_ns();
            self.handle.record_at(
                end,
                EventKind::SpanEnd {
                    name: self.name,
                    dur_ns: end.saturating_sub(start),
                },
            );
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::journal::EventJournal;

    #[test]
    fn span_emits_matched_begin_end_pair() {
        let j = Arc::new(EventJournal::with_capacity(16));
        let h = JournalHandle::new(Arc::clone(&j));
        {
            let _outer = h.span("ingest");
            let _inner = h.span("seal");
        }
        let dump = j.drain();
        let kinds: Vec<_> = dump.rings[0].events.iter().map(|e| e.kind).collect();
        let ingest = j.intern("ingest");
        let seal = j.intern("seal");
        assert_eq!(kinds.len(), 4);
        assert_eq!(kinds[0], EventKind::SpanBegin { name: ingest });
        assert_eq!(kinds[1], EventKind::SpanBegin { name: seal });
        match (kinds[2], kinds[3]) {
            (EventKind::SpanEnd { name: n2, .. }, EventKind::SpanEnd { name: n3, .. }) => {
                // Inner closes before outer.
                assert_eq!(n2, seal);
                assert_eq!(n3, ingest);
            }
            other => panic!("unexpected tail {other:?}"),
        }
        // Timestamps are monotone within the ring.
        let ts: Vec<_> = dump.rings[0].events.iter().map(|e| e.ts_ns).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "non-monotone: {ts:?}");
    }

    #[test]
    fn discard_suppresses_the_end_event() {
        let j = Arc::new(EventJournal::with_capacity(16));
        let h = JournalHandle::new(Arc::clone(&j));
        h.span("aborted").discard();
        let dump = j.drain();
        assert_eq!(dump.event_count(), 1);
        match dump.rings[0].events[0].kind {
            EventKind::SpanBegin { .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn end_is_equivalent_to_drop() {
        let j = Arc::new(EventJournal::with_capacity(16));
        let h = JournalHandle::new(Arc::clone(&j));
        h.span("explicit").end();
        assert_eq!(j.drain().event_count(), 2);
    }
}
