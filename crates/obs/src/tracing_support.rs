//! `tracing` mirror (behind the `tracing` cargo feature): every metric
//! update is re-emitted as a `tracing` event, so deployments that already
//! run a subscriber see the stack's telemetry in their existing pipeline.

use crate::key::Key;
use crate::recorder::{NoopRecorder, Recorder};

/// A [`Recorder`] that mirrors every update into `tracing` events (at
/// `DEBUG` level) and then delegates to an inner recorder.
///
/// Wrap an [`crate::InMemoryRecorder`] to get both a queryable store and a
/// live event feed, or use [`TracingRecorder::new`] for events only.
#[derive(Debug, Default)]
pub struct TracingRecorder<R = NoopRecorder> {
    inner: R,
}

impl TracingRecorder<NoopRecorder> {
    /// Events only: mirror into `tracing`, store nothing.
    pub fn new() -> Self {
        Self {
            inner: NoopRecorder,
        }
    }
}

impl<R: Recorder> TracingRecorder<R> {
    /// Mirror into `tracing` and also deliver to `inner`.
    pub fn with_inner(inner: R) -> Self {
        Self { inner }
    }

    /// The wrapped recorder.
    pub fn inner(&self) -> &R {
        &self.inner
    }
}

impl<R: Recorder> Recorder for TracingRecorder<R> {
    fn counter_add(&self, key: Key, delta: u64) {
        tracing::event!(tracing::Level::DEBUG, "counter {key} += {delta}");
        self.inner.counter_add(key, delta);
    }

    fn gauge_set(&self, key: Key, value: f64) {
        tracing::event!(tracing::Level::DEBUG, "gauge {key} = {value}");
        self.inner.gauge_set(key, value);
    }

    fn histogram_record(&self, key: Key, value: u64) {
        tracing::event!(tracing::Level::DEBUG, "histogram {key} <- {value}");
        self.inner.histogram_record(key, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InMemoryRecorder;

    #[test]
    fn mirrors_and_delegates() {
        let rec = TracingRecorder::with_inner(InMemoryRecorder::new());
        rec.counter_add(Key::new("c"), 2);
        rec.gauge_set(Key::new("g"), 1.0);
        rec.histogram_record(Key::new("h"), 7);
        assert_eq!(rec.inner().counter_value(Key::new("c")), 2);
    }
}
