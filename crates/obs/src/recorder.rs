//! The recorder trait, the no-op default, and the cheap shared handle the
//! instrumented crates hold.

use std::fmt;
use std::sync::Arc;

use crate::key::Key;
use crate::timer::ScopedTimer;

/// A metrics sink.
///
/// Three instrument kinds cover the stack's needs:
///
/// * **counters** — monotone event tallies (collapses, batches, stalls),
/// * **gauges** — last-write-wins instantaneous values (current sampling
///   rate, queue depth, ε-audit headroom),
/// * **histograms** — value distributions, fed with raw `u64` samples
///   (latencies in nanoseconds, batch sizes).
///
/// Implementations must be thread-safe: the sharded pipeline updates one
/// recorder from every worker concurrently.
pub trait Recorder: Send + Sync + fmt::Debug {
    /// Add `delta` to the counter `key`.
    fn counter_add(&self, key: Key, delta: u64);
    /// Set the gauge `key` to `value`.
    fn gauge_set(&self, key: Key, value: f64);
    /// Record one `value` sample into the histogram `key`.
    fn histogram_record(&self, key: Key, value: u64);
}

/// A recorder that discards everything.
///
/// Useful for measuring the dispatch cost of an *attached* recorder in
/// isolation (see `BENCH_obs.json`); a fully *disabled* handle
/// ([`MetricsHandle::disabled`]) is cheaper still because no virtual call
/// is made at all.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline]
    fn counter_add(&self, _key: Key, _delta: u64) {}
    #[inline]
    fn gauge_set(&self, _key: Key, _value: f64) {}
    #[inline]
    fn histogram_record(&self, _key: Key, _value: u64) {}
}

/// The handle instrumented code holds: either disabled (`None`, the
/// default — every call is one predictable branch) or a shared reference
/// to a live [`Recorder`].
///
/// Cloning is cheap (an `Option<Arc>` clone), so the handle travels freely
/// into the sharded pipeline's worker threads.
#[derive(Clone, Debug, Default)]
pub struct MetricsHandle {
    inner: Option<Arc<dyn Recorder>>,
}

impl MetricsHandle {
    /// The disabled handle: all metric calls compile to a `None` check.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A handle delivering to `recorder`.
    pub fn new(recorder: Arc<dyn Recorder>) -> Self {
        Self {
            inner: Some(recorder),
        }
    }

    /// A handle that dispatches into [`NoopRecorder`] — enabled as far as
    /// the instrumentation is concerned, but discarding every update.
    /// Exists to measure dispatch overhead (`BENCH_obs.json` A/B).
    pub fn noop() -> Self {
        Self::new(Arc::new(NoopRecorder))
    }

    /// True when a recorder is attached.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Add `delta` to the counter `key` (no-op when disabled).
    #[inline]
    pub fn counter_add(&self, key: Key, delta: u64) {
        if let Some(r) = &self.inner {
            r.counter_add(key, delta);
        }
    }

    /// Set the gauge `key` (no-op when disabled).
    #[inline]
    pub fn gauge_set(&self, key: Key, value: f64) {
        if let Some(r) = &self.inner {
            r.gauge_set(key, value);
        }
    }

    /// Record a histogram sample (no-op when disabled).
    #[inline]
    pub fn histogram_record(&self, key: Key, value: u64) {
        if let Some(r) = &self.inner {
            r.histogram_record(key, value);
        }
    }

    /// Start a scoped timer that records elapsed nanoseconds into the
    /// histogram `key` on drop. When disabled, no clock is read at all.
    #[inline]
    pub fn timer(&self, key: Key) -> ScopedTimer<'_> {
        ScopedTimer::start(self, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_ignores_everything() {
        let h = MetricsHandle::disabled();
        assert!(!h.is_enabled());
        h.counter_add(Key::new("c"), 1);
        h.gauge_set(Key::new("g"), 1.0);
        h.histogram_record(Key::new("h"), 1);
        drop(h.timer(Key::new("t")));
    }

    #[test]
    fn noop_handle_is_enabled_but_silent() {
        let h = MetricsHandle::noop();
        assert!(h.is_enabled());
        h.counter_add(Key::new("c"), 1);
    }
}
