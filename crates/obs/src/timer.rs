//! Scoped wall-clock timers that feed histograms.

use std::time::Instant;

use crate::key::Key;
use crate::recorder::MetricsHandle;

/// Records the elapsed nanoseconds between construction and drop into a
/// histogram. Constructed through [`MetricsHandle::timer`]; when the
/// handle is disabled, no `Instant::now()` is taken and drop is free.
#[derive(Debug)]
pub struct ScopedTimer<'a> {
    handle: &'a MetricsHandle,
    key: Key,
    start: Option<Instant>,
}

impl<'a> ScopedTimer<'a> {
    pub(crate) fn start(handle: &'a MetricsHandle, key: Key) -> Self {
        let start = handle.is_enabled().then(Instant::now);
        Self { handle, key, start }
    }

    /// Stop early and record; equivalent to dropping the timer.
    pub fn stop(self) {}

    /// Abandon the measurement without recording anything.
    pub fn discard(mut self) {
        self.start = None;
    }
}

impl Drop for ScopedTimer<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.handle.histogram_record(self.key, ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::InMemoryRecorder;

    #[test]
    fn records_one_sample_per_scope() {
        let rec = Arc::new(InMemoryRecorder::new());
        let h = MetricsHandle::new(rec.clone());
        {
            let _t = h.timer(Key::new("scope.ns"));
        }
        h.timer(Key::new("scope.ns")).stop();
        h.timer(Key::new("scope.ns")).discard();
        let snap = rec.snapshot();
        assert_eq!(snap.histograms["scope.ns"].count, 2);
    }
}
