//! Scoped wall-clock timers that feed histograms, and the process-wide
//! clock epoch the flight recorder stamps events against.
//!
//! This module is the crate's *only* sanctioned clock-read site (lint
//! rule MRL-L002): timers, spans and journal events all derive their
//! timestamps from here, so "no clock read on the disabled path" is a
//! property of one file.

use std::time::Instant;

use crate::key::Key;
use crate::recorder::MetricsHandle;

/// Lazily pinned process clock epoch: every journal timestamp is
/// nanoseconds since the first instrumented observation, which keeps
/// event timestamps small, monotone and directly usable as trace-file
/// timestamps.
static EPOCH: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();

/// Nanoseconds since the process clock epoch (pinned on first call).
///
/// On x86_64 this reads the invariant TSC (~8 ns) instead of
/// `clock_gettime` (~35 ns) — the journal stamps every seal and
/// collapse, so the clock read dominates its attached cost. The TSC is
/// calibrated against the OS monotonic clock once, on the first read;
/// if calibration fails (TSC not advancing) every read falls back to
/// `Instant`, so a process never mixes the two timebases.
pub(crate) fn now_ns() -> u64 {
    #[cfg(target_arch = "x86_64")]
    if let Some(ns) = fast_clock::now_ns() {
        return ns;
    }
    // nondet: timestamps feed only the journal/metrics export surface —
    // no sketch state, merge order, or query answer reads them.
    let epoch = EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// TSC-based clock for the journal's hot path. Tick-to-ns conversion
/// uses a fixed-point multiplier measured once against the OS clock;
/// modern x86_64 guarantees an invariant, monotone-per-package TSC, and
/// a flight recorder tolerates the few-ns cross-core skew that remains.
#[cfg(target_arch = "x86_64")]
mod fast_clock {
    use std::sync::OnceLock;
    use std::time::{Duration, Instant};

    pub(super) struct Tsc {
        tsc0: u64,
        /// Nanoseconds per tick in 2⁻³² fixed point (0.2–1.0 ns/tick on
        /// 1–5 GHz parts, so the multiplier sits near 2³⁰–2³²).
        mult_fp32: u64,
    }

    static CAL: OnceLock<Option<Tsc>> = OnceLock::new();

    #[inline]
    fn rdtsc() -> u64 {
        // SAFETY: `_rdtsc` has no preconditions — it reads the
        // time-stamp counter register, present on every x86_64 CPU; the
        // intrinsic is `unsafe fn` only by the blanket convention for
        // arch intrinsics.
        // nondet: TSC ticks become journal timestamps only — determinism
        // of sketch contents and query answers never depends on them.
        unsafe { core::arch::x86_64::_rdtsc() }
    }

    #[inline]
    pub(super) fn now_ns() -> Option<u64> {
        let cal = CAL.get_or_init(calibrate);
        cal.as_ref().map(|t| {
            let dt = rdtsc().wrapping_sub(t.tsc0);
            // u128 headroom: dt · mult overflows u64 after ~4 s of
            // ticks, but the 128-bit product is good for centuries.
            ((u128::from(dt) * u128::from(t.mult_fp32)) >> 32) as u64
        })
    }

    /// Measure the tick rate against the OS monotonic clock over a
    /// ~200 µs spin (one-time cost, paid by the first instrumented
    /// observation). The window bounds relative error near 1e-4 —
    /// sub-µs drift over any span a trace viewer can resolve.
    fn calibrate() -> Option<Tsc> {
        let t0 = Instant::now();
        let tsc0 = rdtsc();
        while t0.elapsed() < Duration::from_micros(200) {
            std::hint::spin_loop();
        }
        let dt_ns = t0.elapsed().as_nanos();
        let dt_tsc = rdtsc().wrapping_sub(tsc0);
        if dt_tsc == 0 || dt_ns == 0 {
            // TSC halted or unreadable under this hypervisor — have
            // every subsequent read take the Instant fallback.
            return None;
        }
        let mult_fp32 = u64::try_from((dt_ns << 32) / u128::from(dt_tsc)).ok()?;
        (mult_fp32 > 0).then_some(Tsc { tsc0, mult_fp32 })
    }
}

/// Records the elapsed nanoseconds between construction and drop into a
/// histogram. Constructed through [`MetricsHandle::timer`]; when the
/// handle is disabled, no `Instant::now()` is taken and drop is free.
#[derive(Debug)]
pub struct ScopedTimer<'a> {
    handle: &'a MetricsHandle,
    key: Key,
    start: Option<Instant>,
}

impl<'a> ScopedTimer<'a> {
    pub(crate) fn start(handle: &'a MetricsHandle, key: Key) -> Self {
        // nondet: the instant is subtracted into a latency histogram
        // sample; results and replay state are untouched by it.
        let start = handle.is_enabled().then(Instant::now);
        Self { handle, key, start }
    }

    /// Stop early and record; equivalent to dropping the timer.
    pub fn stop(self) {}

    /// Abandon the measurement without recording anything.
    pub fn discard(mut self) {
        self.start = None;
    }
}

impl Drop for ScopedTimer<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.handle.histogram_record(self.key, ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::InMemoryRecorder;

    #[test]
    fn records_one_sample_per_scope() {
        let rec = Arc::new(InMemoryRecorder::new());
        let h = MetricsHandle::new(rec.clone());
        {
            let _t = h.timer(Key::new("scope.ns"));
        }
        h.timer(Key::new("scope.ns")).stop();
        h.timer(Key::new("scope.ns")).discard();
        let snap = rec.snapshot();
        assert_eq!(snap.histograms["scope.ns"].count, 2);
    }
}
