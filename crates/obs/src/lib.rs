//! Observability for the MRL quantile stack: counters, gauges, histograms
//! and scoped timers behind a pluggable [`Recorder`] trait.
//!
//! Design constraints, in order:
//!
//! 1. **Zero overhead when disabled.** Every instrumented crate holds a
//!    [`MetricsHandle`]; the default (disabled) handle is a `None` and each
//!    metric call is a single predictable branch that the optimiser folds
//!    away. Instrumentation sits on buffer-seal/collapse granularity (once
//!    per `k` elements), never on per-element hot loops.
//! 2. **Lock-free when enabled.** [`InMemoryRecorder`] is a fixed-capacity
//!    open-addressing table of atomic slots: metric updates are a hash, a
//!    CAS-claimed slot lookup, and a `fetch_add`/`store` — no mutex on any
//!    path, safe to share across the sharded pipeline's worker threads.
//! 3. **Exportable.** [`InMemoryRecorder::snapshot`] produces a
//!    [`MetricsSnapshot`] that serialises to one-line JSON (for machine
//!    consumption, e.g. the CLI's `--stats json`) or renders as aligned
//!    text.
//!
//! Alongside the aggregate metrics sits the **flight recorder**
//! ([`EventJournal`] / [`JournalHandle`]): a fixed-capacity, lock-free,
//! per-thread ring of structured lifecycle events (seals, collapses,
//! rate transitions, spine rebuilds, shard dispatch/stalls, spans) with
//! the same disabled-path contract, exportable as chrome-trace JSON
//! ([`export::perfetto`]), rendered on panic ([`install_panic_hook`]),
//! and — for the metrics side — as Prometheus exposition text
//! ([`MetricsSnapshot::to_prometheus`]).
//!
//! The paper connection: the engine already maintains the §4 quantities
//! (`W`, `C`, `Σnᵢ²`, sampling onset) exactly; this crate is the transport
//! that surfaces them — and the derived live ε-audit — while the stream is
//! still running. With the optional `tracing` feature, every metric update
//! is mirrored as a `tracing` event for users who already run a
//! subscriber.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod export;
mod journal;
mod key;
mod memory;
mod recorder;
mod snapshot;
mod span;
pub(crate) mod sync;
mod timer;
#[cfg(feature = "tracing")]
mod tracing_support;

pub use export::install_panic_hook;
pub use journal::{
    CollapsePath, Event, EventJournal, EventKind, JournalDump, JournalHandle, RingDump, SealKernel,
};
pub use key::Key;
pub use memory::InMemoryRecorder;
pub use recorder::{MetricsHandle, NoopRecorder, Recorder};
pub use snapshot::{HistogramSummary, MetricsSnapshot};
pub use span::ScopedSpan;
pub use timer::ScopedTimer;
#[cfg(feature = "tracing")]
pub use tracing_support::TracingRecorder;
