//! Metric identity: a static name plus an optional small integer label.

use std::fmt;

/// Identifies one metric series.
///
/// The name is a `&'static str` so keys are `Copy` and hashing never
/// allocates; the optional label carries a small dimension such as a shard
/// index or a buffer level (`engine.leaves[3]`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key {
    /// Dotted metric name, e.g. `"engine.collapse.ns"`.
    pub name: &'static str,
    /// Optional series label (shard index, buffer level, …).
    pub label: Option<u32>,
}

impl Key {
    /// An unlabelled key.
    pub const fn new(name: &'static str) -> Self {
        Self { name, label: None }
    }

    /// A labelled key (`name[label]` in rendered output).
    pub const fn labeled(name: &'static str, label: u32) -> Self {
        Self {
            name,
            label: Some(label),
        }
    }

    /// FNV-1a fingerprint over name bytes and label, never zero (zero is
    /// the in-memory table's "empty slot" sentinel).
    pub(crate) fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        for &b in self.name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
        match self.label {
            Some(l) => {
                h ^= 0x80_0000_0000 | l as u64;
                h = h.wrapping_mul(PRIME);
            }
            None => {
                h ^= 0x40_0000_0000;
                h = h.wrapping_mul(PRIME);
            }
        }
        if h == 0 {
            1
        } else {
            h
        }
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.label {
            Some(l) => write!(f, "{}[{l}]", self.name),
            None => f.write_str(self.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_with_and_without_label() {
        assert_eq!(Key::new("a.b").to_string(), "a.b");
        assert_eq!(Key::labeled("a.b", 3).to_string(), "a.b[3]");
    }

    #[test]
    fn fingerprints_distinguish_names_and_labels() {
        let a = Key::new("x").fingerprint();
        let b = Key::new("y").fingerprint();
        let c = Key::labeled("x", 0).fingerprint();
        let d = Key::labeled("x", 1).fingerprint();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(c, d);
        assert_ne!(a, 0);
    }
}
