//! Point-in-time exports of a recorder's contents: serialisable to
//! one-line JSON or rendered as aligned text.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Summary of one histogram series.
///
/// Quantiles are estimated from log₂ buckets, so they carry at most a
/// factor-of-two relative error — plenty for latency monitoring, and the
/// price of a recorder with no allocation and no locks on the update path.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Mean sample (`sum / count`).
    pub mean: f64,
    /// Approximate median.
    pub p50: f64,
    /// Approximate 90th percentile.
    pub p90: f64,
    /// Approximate 99th percentile.
    pub p99: f64,
}

impl HistogramSummary {
    /// Build a summary from raw atomics-read parts. `buckets[0]` counts
    /// zero samples; `buckets[i]` (`i ≥ 1`) counts samples in
    /// `[2^(i−1), 2^i)`.
    pub(crate) fn from_parts(count: u64, sum: u64, min: u64, max: u64, buckets: &[u64]) -> Self {
        if count == 0 {
            // A registered-but-never-sampled series: the slot's running
            // minimum still holds its u64::MAX sentinel, which must not
            // leak into exports as a real observation.
            return Self::default();
        }
        let quantile = |q: f64| -> f64 {
            let target = (q * count as f64).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for (i, &c) in buckets.iter().enumerate() {
                seen += c;
                if seen >= target {
                    if i == 0 {
                        return 0.0;
                    }
                    // Geometric midpoint of [2^(i-1), 2^i), clamped into
                    // the observed range.
                    let mid = 1.5 * f64::powi(2.0, i as i32 - 1);
                    return mid.clamp(min as f64, max as f64);
                }
            }
            max as f64
        };
        Self {
            count,
            sum,
            min,
            max,
            mean: sum as f64 / count as f64,
            p50: quantile(0.5),
            p90: quantile(0.9),
            p99: quantile(0.99),
        }
    }
}

/// Everything a recorder held at one instant.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotone counters by rendered key (`name` or `name[label]`).
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges by rendered key.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by rendered key.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Updates the recorder discarded for capacity (0 in sane deployments).
    pub dropped: u64,
}

impl MetricsSnapshot {
    /// Number of distinct series captured.
    pub fn series_count(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// One-line JSON (machine consumption; the CLI's `--stats json`).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serialises")
    }

    /// Prometheus text exposition format (the CLI's `--prom`, and the
    /// surface a metrics server mounts at `/metrics`). See
    /// [`crate::export::prometheus`] for the mapping.
    pub fn to_prometheus(&self) -> String {
        crate::export::prometheus::render(self)
    }

    /// Multi-line aligned text (human consumption; `--stats text`).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(String::len)
            .max()
            .unwrap_or(0);
        for (k, v) in &self.counters {
            out.push_str(&format!("{k:<width$}  {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("{k:<width$}  {v:.6}\n"));
        }
        for (k, h) in &self.histograms {
            if h.count == 0 {
                // Registered but never sampled: nothing meaningful to print.
                continue;
            }
            out.push_str(&format!(
                "{k:<width$}  n={} mean={:.0} min={} p50={:.0} p90={:.0} p99={:.0} max={}\n",
                h.count, h.mean, h.min, h.p50, h.p90, h.p99, h.max
            ));
        }
        if self.dropped > 0 {
            out.push_str(&format!("(dropped {} updates: table full)\n", self.dropped));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_from_log_buckets() {
        // 100 samples of 8 (bucket 4) and 1 sample of 1024 (bucket 11).
        let mut buckets = vec![0u64; 64];
        buckets[4] = 100;
        buckets[11] = 1;
        let h = HistogramSummary::from_parts(101, 100 * 8 + 1024, 8, 1024, &buckets);
        assert!(h.p50 >= 8.0 && h.p50 < 16.0, "p50 {}", h.p50);
        assert!(h.p99 < 1024.0 + 1.0);
        assert!((h.mean - (824.0 + 1000.0) / 101.0).abs() < 10.0);
    }

    #[test]
    fn empty_histogram_reports_zero_min_not_sentinel() {
        // Regression: a registered-but-never-sampled histogram used to
        // surface the slot's running-minimum sentinel as `min = u64::MAX`.
        let h = HistogramSummary::from_parts(0, 0, u64::MAX, 0, &[0u64; 64]);
        assert_eq!(h.count, 0);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 0);
        assert_eq!(h.mean, 0.0);
        assert_eq!(h.p50, 0.0);
        assert_eq!(h, HistogramSummary::default());
    }

    #[test]
    fn text_exporter_skips_empty_histogram_series() {
        let mut snap = MetricsSnapshot::default();
        snap.histograms
            .insert("silent".into(), HistogramSummary::default());
        snap.histograms.insert(
            "busy".into(),
            HistogramSummary::from_parts(1, 7, 7, 7, &{
                let mut b = vec![0u64; 64];
                b[3] = 1;
                b
            }),
        );
        let text = snap.render_text();
        assert!(!text.contains("silent"), "empty series rendered: {text}");
        assert!(text.contains("busy"));
    }

    #[test]
    fn json_roundtrips() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("a".into(), 1);
        snap.gauges.insert("b".into(), 2.5);
        let json = snap.to_json();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn text_render_mentions_every_series() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("events".into(), 42);
        snap.gauges.insert("rate".into(), 8.0);
        let text = snap.render_text();
        assert!(text.contains("events"));
        assert!(text.contains("42"));
        assert!(text.contains("rate"));
    }
}
