//! A lock-free in-memory recorder: fixed-capacity open-addressing table
//! of atomic metric slots.
//!
//! All concurrency primitives come from [`crate::sync`], so building with
//! `RUSTFLAGS="--cfg loom"` swaps them for the model checker's and
//! `tests/loom.rs` can exhaustively explore the claim/publish/snapshot
//! interleavings below.

use crate::key::Key;
use crate::recorder::Recorder;
use crate::snapshot::{HistogramSummary, MetricsSnapshot};
use crate::sync::{AtomicU64, OnceLock, Ordering};

/// Power-of-two slot count. 512 series is far above what the stack emits
/// (a few dozen plus per-shard/per-level labels); updates past capacity
/// are counted in [`InMemoryRecorder::dropped`] rather than blocking.
#[cfg(not(loom))]
const SLOTS: usize = 512;
/// Under the model checker the table shrinks to 4 slots so probe chains
/// and table exhaustion are reachable within a few scheduling decisions.
#[cfg(loom)]
const SLOTS: usize = 4;

/// Log₂ histogram buckets: bucket `i ≥ 1` holds samples in
/// `[2^(i−1), 2^i)`, bucket 0 holds zeros, the last bucket saturates.
const BUCKETS: usize = 64;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
enum Kind {
    Counter = 1,
    Gauge = 2,
    Histogram = 3,
}

struct Slot {
    /// 0 = empty; claimed by CAS with the key's (kind-mixed) fingerprint.
    fingerprint: AtomicU64,
    /// Written once by the claiming thread; readers that race the claim
    /// spin until it is published (a one-time, bounded wait per slot —
    /// every steady-state operation is a plain atomic load/rmw).
    identity: OnceLock<(Key, Kind)>,
    /// Counter total, or gauge value as `f64::to_bits`.
    value: AtomicU64,
    /// Histogram sample count.
    count: AtomicU64,
    /// Histogram sample sum (wrapping add; practical totals fit easily).
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Slot {
    fn empty() -> Self {
        Self {
            fingerprint: AtomicU64::new(0),
            identity: OnceLock::new(),
            value: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn zero_values(&self) {
        self.value.store(0, Ordering::Relaxed); // ordering: relaxed — reset is documented single-writer
        self.count.store(0, Ordering::Relaxed); // ordering: relaxed — reset is documented single-writer
        self.sum.store(0, Ordering::Relaxed); // ordering: relaxed — reset is documented single-writer
        self.min.store(u64::MAX, Ordering::Relaxed); // ordering: relaxed — reset is documented single-writer
        self.max.store(0, Ordering::Relaxed); // ordering: relaxed — reset is documented single-writer
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed); // ordering: relaxed — reset is documented single-writer
        }
    }
}

/// A thread-safe, lock-free metrics store.
///
/// Each `(key, kind)` series occupies one slot of a fixed open-addressing
/// table; an update is a fingerprint hash, a linear probe (almost always
/// length 1), and one atomic read-modify-write. The table never grows:
/// updates that find no slot are tallied in
/// [`InMemoryRecorder::dropped`] instead of blocking or allocating —
/// bounded memory is the point of the whole stack.
pub struct InMemoryRecorder {
    slots: Box<[Slot]>,
    dropped: AtomicU64,
}

impl Default for InMemoryRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for InMemoryRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InMemoryRecorder")
            .field("series", &self.snapshot().series_count())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl InMemoryRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self {
            slots: (0..SLOTS).map(|_| Slot::empty()).collect(),
            dropped: AtomicU64::new(0),
        }
    }

    /// Slot-table capacity: the number of distinct `(key, kind)` series
    /// the recorder can hold before updates land in [`Self::dropped`].
    /// Shrunk under `cfg(loom)` so model tests can exhaust it cheaply.
    pub const fn capacity() -> usize {
        SLOTS
    }

    /// The home slot index a counter series hashes to. Model tests use
    /// this to construct keys with guaranteed index collisions, forcing
    /// the linear-probe path.
    #[cfg(loom)]
    pub fn counter_home_slot(key: Key) -> usize {
        Self::slot_fingerprint(key, Kind::Counter) as usize & (SLOTS - 1)
    }

    /// Updates discarded because the slot table was full (or a pathological
    /// probe chain was exhausted). Zero in any sane deployment.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed) // ordering: relaxed — independent counter, no payload to acquire
    }

    /// Current value of a counter series (0 if it has never been touched).
    pub fn counter_value(&self, key: Key) -> u64 {
        self.find(key, Kind::Counter)
            .map(|s| s.value.load(Ordering::Relaxed)) // ordering: relaxed — monotone counter read, staleness is fine
            .unwrap_or(0)
    }

    /// Current value of a gauge series, if it has been set.
    pub fn gauge_value(&self, key: Key) -> Option<f64> {
        self.find(key, Kind::Gauge)
            .map(|s| f64::from_bits(s.value.load(Ordering::Relaxed))) // ordering: relaxed — last-write-wins gauge, staleness is fine
    }

    /// Zero every series' values in place (identities are kept, so
    /// steady-state callers never re-claim slots). Intended for
    /// single-writer uses such as the bench harness's comparison counter;
    /// concurrent writers may land updates on either side of the reset.
    pub fn reset(&self) {
        for slot in self.slots.iter() {
            // ordering: acquire — pairs with the claim CAS release so the slot's atomics exist before zeroing
            if slot.fingerprint.load(Ordering::Acquire) != 0 {
                slot.zero_values();
            }
        }
        self.dropped.store(0, Ordering::Relaxed); // ordering: relaxed — independent counter
    }

    /// A consistent-enough point-in-time copy of every series. Individual
    /// atomics are read without a global lock, so a snapshot taken during
    /// concurrent updates may mix values from slightly different instants
    /// — fine for monitoring, which is its job.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for slot in self.slots.iter() {
            // ordering: acquire — pairs with the claim CAS release; a claimed slot's identity write is visible
            if slot.fingerprint.load(Ordering::Acquire) == 0 {
                continue;
            }
            let Some(&(key, kind)) = slot.identity.get() else {
                continue; // claim in flight; series has no data yet
            };
            let name = key.to_string();
            match kind {
                Kind::Counter => {
                    snap.counters
                        .insert(name, slot.value.load(Ordering::Relaxed)); // ordering: relaxed — monitoring read
                }
                Kind::Gauge => {
                    // ordering: relaxed — monitoring read
                    let bits = slot.value.load(Ordering::Relaxed);
                    snap.gauges.insert(name, f64::from_bits(bits));
                }
                Kind::Histogram => {
                    // A registered series is reported even at count == 0
                    // (e.g. after `reset`): `from_parts` maps the empty
                    // slot's `min = u64::MAX` sentinel to an all-zero
                    // summary and the text exporter skips it.
                    let count = slot.count.load(Ordering::Relaxed); // ordering: relaxed — monitoring read
                    let buckets: Vec<u64> = slot
                        .buckets
                        .iter()
                        .map(|b| b.load(Ordering::Relaxed)) // ordering: relaxed — monitoring read
                        .collect();
                    snap.histograms.insert(
                        name,
                        HistogramSummary::from_parts(
                            count,
                            slot.sum.load(Ordering::Relaxed), // ordering: relaxed — monitoring read
                            slot.min.load(Ordering::Relaxed), // ordering: relaxed — monitoring read
                            slot.max.load(Ordering::Relaxed), // ordering: relaxed — monitoring read
                            &buckets,
                        ),
                    );
                }
            }
        }
        snap.dropped = self.dropped();
        snap
    }

    /// Mix the kind into the key fingerprint so the same name used as a
    /// counter and as a gauge lands in different slots instead of
    /// corrupting each other.
    fn slot_fingerprint(key: Key, kind: Kind) -> u64 {
        let fp = key.fingerprint().rotate_left(kind as u32 * 8) ^ (kind as u64);
        if fp == 0 {
            1
        } else {
            fp
        }
    }

    // panic-free: idx is always masked by SLOTS - 1 and slots holds
    // exactly SLOTS entries (SLOTS is a power of two).
    fn find(&self, key: Key, kind: Kind) -> Option<&Slot> {
        let fp = Self::slot_fingerprint(key, kind);
        let mut idx = fp as usize & (SLOTS - 1);
        for _ in 0..SLOTS {
            let slot = &self.slots[idx];
            let cur = slot.fingerprint.load(Ordering::Acquire); // ordering: acquire — pairs with the claim CAS release before trusting the slot
            if cur == 0 {
                return None;
            }
            if cur == fp {
                let id = Self::wait_identity(slot);
                if id == &(key, kind) {
                    return Some(slot);
                }
            }
            idx = (idx + 1) & (SLOTS - 1);
        }
        None
    }

    // panic-free: idx is always masked by SLOTS - 1 and slots holds
    // exactly SLOTS entries (SLOTS is a power of two).
    fn find_or_claim(&self, key: Key, kind: Kind) -> Option<&Slot> {
        let fp = Self::slot_fingerprint(key, kind);
        let mut idx = fp as usize & (SLOTS - 1);
        for _ in 0..SLOTS {
            let slot = &self.slots[idx];
            match slot
                .fingerprint
                // ordering: acqrel — release publishes the claim to probers, acquire on failure observes a winner's claim
                .compare_exchange(0, fp, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => {
                    // Claimed: publish the identity (failure means another
                    // thread won a race we just lost by definition of CAS —
                    // cannot happen, the claimant is unique).
                    let _ = slot.identity.set((key, kind));
                    return Some(slot);
                }
                Err(existing) if existing == fp => {
                    let id = Self::wait_identity(slot);
                    if id == &(key, kind) {
                        return Some(slot);
                    }
                    // Fingerprint collision between distinct keys: probe on.
                }
                Err(_) => {}
            }
            idx = (idx + 1) & (SLOTS - 1);
        }
        self.dropped.fetch_add(1, Ordering::Relaxed); // ordering: relaxed — independent counter, read after joins only
        None
    }

    /// Spin until the claiming thread has published the slot's identity
    /// (the claim→publish window is a handful of instructions).
    fn wait_identity(slot: &Slot) -> &(Key, Kind) {
        loop {
            if let Some(id) = slot.identity.get() {
                return id;
            }
            crate::sync::spin_loop();
        }
    }
}

impl Recorder for InMemoryRecorder {
    fn counter_add(&self, key: Key, delta: u64) {
        if let Some(slot) = self.find_or_claim(key, Kind::Counter) {
            slot.value.fetch_add(delta, Ordering::Relaxed); // ordering: relaxed — rmw atomicity is all the counter needs
        }
    }

    fn gauge_set(&self, key: Key, value: f64) {
        if let Some(slot) = self.find_or_claim(key, Kind::Gauge) {
            slot.value.store(value.to_bits(), Ordering::Relaxed); // ordering: relaxed — last-write-wins gauge
        }
    }

    fn histogram_record(&self, key: Key, value: u64) {
        if let Some(slot) = self.find_or_claim(key, Kind::Histogram) {
            slot.count.fetch_add(1, Ordering::Relaxed); // ordering: relaxed — per-field rmw; snapshot tolerates skew
            slot.sum.fetch_add(value, Ordering::Relaxed); // ordering: relaxed — per-field rmw; snapshot tolerates skew
            slot.min.fetch_min(value, Ordering::Relaxed); // ordering: relaxed — per-field rmw; snapshot tolerates skew
            slot.max.fetch_max(value, Ordering::Relaxed); // ordering: relaxed — per-field rmw; snapshot tolerates skew
            let bucket = if value == 0 {
                0
            } else {
                (BUCKETS - value.leading_zeros() as usize).min(BUCKETS - 1)
            };
            slot.buckets[bucket].fetch_add(1, Ordering::Relaxed); // ordering: relaxed — per-field rmw; snapshot tolerates skew
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;

    #[test]
    fn counters_accumulate_and_read_back() {
        let r = InMemoryRecorder::new();
        let k = Key::new("c");
        r.counter_add(k, 3);
        r.counter_add(k, 4);
        assert_eq!(r.counter_value(k), 7);
        assert_eq!(r.snapshot().counters["c"], 7);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let r = InMemoryRecorder::new();
        let k = Key::labeled("g", 2);
        r.gauge_set(k, 1.5);
        r.gauge_set(k, -2.25);
        assert_eq!(r.gauge_value(k), Some(-2.25));
        assert_eq!(r.snapshot().gauges["g[2]"], -2.25);
    }

    #[test]
    fn histograms_track_count_sum_min_max() {
        let r = InMemoryRecorder::new();
        let k = Key::new("h");
        for v in [1u64, 10, 100, 1000, 0] {
            r.histogram_record(k, v);
        }
        let snap = r.snapshot();
        let h = &snap.histograms["h"];
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1111);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        assert!(h.p50 >= 1.0 && h.p50 <= 128.0, "p50 {}", h.p50);
    }

    #[test]
    fn same_name_different_kind_do_not_collide() {
        let r = InMemoryRecorder::new();
        let k = Key::new("dual");
        r.counter_add(k, 5);
        r.gauge_set(k, 9.0);
        assert_eq!(r.counter_value(k), 5);
        assert_eq!(r.gauge_value(k), Some(9.0));
    }

    #[test]
    fn labels_are_distinct_series() {
        let r = InMemoryRecorder::new();
        for shard in 0..8u32 {
            r.counter_add(Key::labeled("shard.n", shard), (shard + 1) as u64);
        }
        let snap = r.snapshot();
        for shard in 0..8u32 {
            assert_eq!(
                snap.counters[&format!("shard.n[{shard}]")],
                (shard + 1) as u64
            );
        }
    }

    #[test]
    fn reset_zeroes_but_keeps_series() {
        let r = InMemoryRecorder::new();
        let k = Key::new("c");
        r.counter_add(k, 10);
        r.reset();
        assert_eq!(r.counter_value(k), 0);
        r.counter_add(k, 2);
        assert_eq!(r.counter_value(k), 2);
    }

    #[test]
    fn registered_but_never_sampled_histogram_has_zero_min() {
        // Regression: the reset path leaves a claimed histogram slot with
        // count == 0 and the `min = u64::MAX` running-minimum sentinel; the
        // snapshot must report the series with min = 0, and the text
        // exporter must skip it.
        let r = InMemoryRecorder::new();
        let k = Key::new("idle.ns");
        r.histogram_record(k, 42);
        r.reset();
        let snap = r.snapshot();
        let h = &snap.histograms["idle.ns"];
        assert_eq!(h.count, 0);
        assert_eq!(h.min, 0, "sentinel leaked into the export");
        assert_eq!(h.max, 0);
        assert!(!snap.render_text().contains("idle.ns"));
        // JSON still carries the registered series for machine consumers.
        assert!(snap.to_json().contains("idle.ns"));
    }

    #[test]
    fn concurrent_updates_from_many_threads_are_exact() {
        let r = Arc::new(InMemoryRecorder::new());
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        r.counter_add(Key::new("contended"), 1);
                        r.counter_add(Key::labeled("sharded", t as u32), 1);
                        r.histogram_record(Key::new("lat"), i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.counter_value(Key::new("contended")), threads * per_thread);
        for t in 0..threads {
            assert_eq!(
                r.counter_value(Key::labeled("sharded", t as u32)),
                per_thread
            );
        }
        let snap = r.snapshot();
        assert_eq!(snap.histograms["lat"].count, threads * per_thread);
        assert_eq!(r.dropped(), 0);
    }
}
