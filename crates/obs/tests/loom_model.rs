//! Model-checked interleavings of the lock-free recorder.
//!
//! Build and run with `RUSTFLAGS="--cfg loom" cargo test -p mrl-obs --test
//! loom_model --release`: the `crate::sync` shim swaps the recorder's
//! atomics for the model checker's, `InMemoryRecorder::capacity()` shrinks
//! to 4 slots, and every test body is executed under every bounded
//! interleaving of its threads. Three races are exercised exhaustively:
//! the slot-claim CAS, probing past a fingerprint-index collision, and a
//! snapshot racing a claim/update.
#![cfg(loom)]

use std::sync::Arc;

use mrl_obs::{InMemoryRecorder, Key, Recorder};

#[test]
fn racing_claims_of_one_key_lose_no_updates() {
    // Two threads race the 0 → fingerprint CAS for the same fresh key.
    // Exactly one may claim; the loser must spin through `wait_identity`
    // and land its add on the winner's slot.
    loom::model(|| {
        let r = Arc::new(InMemoryRecorder::new());
        let r2 = Arc::clone(&r);
        let t = loom::thread::spawn(move || r2.counter_add(Key::new("race"), 1));
        r.counter_add(Key::new("race"), 2);
        t.join().unwrap();
        assert_eq!(r.counter_value(Key::new("race")), 3);
        assert_eq!(r.dropped(), 0);
    });
}

/// Two distinct names whose counter series hash to the same home slot
/// (guaranteed to exist: the pool is larger than the loom slot table).
fn colliding_pair() -> (Key, Key) {
    const POOL: [&str; 12] = [
        "c.a", "c.b", "c.c", "c.d", "c.e", "c.f", "c.g", "c.h", "c.i", "c.j", "c.k", "c.l",
    ];
    for (i, a) in POOL.iter().enumerate() {
        for b in &POOL[i + 1..] {
            let (ka, kb) = (Key::new(a), Key::new(b));
            if InMemoryRecorder::counter_home_slot(ka) == InMemoryRecorder::counter_home_slot(kb) {
                return (ka, kb);
            }
        }
    }
    unreachable!("12 names into 4 slots must collide");
}

#[test]
fn index_collisions_probe_to_distinct_slots() {
    // Both series want the same home slot; whoever loses that race must
    // probe onward and claim the next slot, never sharing or dropping.
    let (a, b) = colliding_pair();
    loom::model(move || {
        let r = Arc::new(InMemoryRecorder::new());
        let r2 = Arc::clone(&r);
        let t = loom::thread::spawn(move || r2.counter_add(b, 5));
        r.counter_add(a, 7);
        t.join().unwrap();
        assert_eq!(r.counter_value(a), 7);
        assert_eq!(r.counter_value(b), 5);
        assert_eq!(r.dropped(), 0);
    });
}

#[test]
fn snapshot_racing_a_claim_sees_nothing_or_the_truth() {
    // A snapshot taken while another thread claims-and-updates must
    // either skip the half-born series (claim seen, identity not yet
    // published) or report a value the series actually passed through.
    loom::model(|| {
        let r = Arc::new(InMemoryRecorder::new());
        let r2 = Arc::clone(&r);
        let t = loom::thread::spawn(move || r2.counter_add(Key::new("live"), 1));
        let snap = r.snapshot();
        if let Some(&v) = snap.counters.get("live") {
            assert!(v <= 1, "snapshot saw impossible counter value {v}");
        }
        t.join().unwrap();
        assert_eq!(r.counter_value(Key::new("live")), 1);
        assert_eq!(r.dropped(), 0);
    });
}

#[test]
fn exhausted_table_counts_every_dropped_update() {
    // Four concurrent claims fill the whole (loom-sized) table; a fifth
    // distinct series must walk the full probe ring and be tallied in
    // `dropped` without disturbing the resident series.
    assert_eq!(InMemoryRecorder::capacity(), 4);
    loom::model(|| {
        let r = Arc::new(InMemoryRecorder::new());
        let r2 = Arc::clone(&r);
        let t = loom::thread::spawn(move || {
            r2.counter_add(Key::new("k0"), 1);
            r2.counter_add(Key::new("k1"), 1);
        });
        r.counter_add(Key::new("k2"), 1);
        r.counter_add(Key::new("k3"), 1);
        t.join().unwrap();
        r.counter_add(Key::new("k4"), 1);
        assert_eq!(r.dropped(), 1);
        assert_eq!(r.counter_value(Key::new("k4")), 0);
        for name in ["k0", "k1", "k2", "k3"] {
            assert_eq!(r.counter_value(Key::new(name)), 1);
        }
    });
}
