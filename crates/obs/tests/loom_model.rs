//! Model-checked interleavings of the lock-free recorder.
//!
//! Build and run with `RUSTFLAGS="--cfg loom" cargo test -p mrl-obs --test
//! loom_model --release`: the `crate::sync` shim swaps the recorder's
//! atomics for the model checker's, `InMemoryRecorder::capacity()` shrinks
//! to 4 slots, and every test body is executed under every bounded
//! interleaving of its threads. Three races are exercised exhaustively:
//! the slot-claim CAS, probing past a fingerprint-index collision, and a
//! snapshot racing a claim/update.
//!
//! The flight-recorder journal is modelled below the recorder tests:
//! its ring capacity shrinks to 2 under loom, so a handful of pushes
//! exercises wraparound, and the writer/drain race probes the torn-read
//! detection protocol exhaustively.
#![cfg(loom)]

use std::sync::Arc;

use mrl_obs::{EventJournal, EventKind, InMemoryRecorder, Key, Recorder};

#[test]
fn racing_claims_of_one_key_lose_no_updates() {
    // Two threads race the 0 → fingerprint CAS for the same fresh key.
    // Exactly one may claim; the loser must spin through `wait_identity`
    // and land its add on the winner's slot.
    loom::model(|| {
        let r = Arc::new(InMemoryRecorder::new());
        let r2 = Arc::clone(&r);
        let t = loom::thread::spawn(move || r2.counter_add(Key::new("race"), 1));
        r.counter_add(Key::new("race"), 2);
        t.join().unwrap();
        assert_eq!(r.counter_value(Key::new("race")), 3);
        assert_eq!(r.dropped(), 0);
    });
}

/// Two distinct names whose counter series hash to the same home slot
/// (guaranteed to exist: the pool is larger than the loom slot table).
fn colliding_pair() -> (Key, Key) {
    const POOL: [&str; 12] = [
        "c.a", "c.b", "c.c", "c.d", "c.e", "c.f", "c.g", "c.h", "c.i", "c.j", "c.k", "c.l",
    ];
    for (i, a) in POOL.iter().enumerate() {
        for b in &POOL[i + 1..] {
            let (ka, kb) = (Key::new(a), Key::new(b));
            if InMemoryRecorder::counter_home_slot(ka) == InMemoryRecorder::counter_home_slot(kb) {
                return (ka, kb);
            }
        }
    }
    unreachable!("12 names into 4 slots must collide");
}

#[test]
fn index_collisions_probe_to_distinct_slots() {
    // Both series want the same home slot; whoever loses that race must
    // probe onward and claim the next slot, never sharing or dropping.
    let (a, b) = colliding_pair();
    loom::model(move || {
        let r = Arc::new(InMemoryRecorder::new());
        let r2 = Arc::clone(&r);
        let t = loom::thread::spawn(move || r2.counter_add(b, 5));
        r.counter_add(a, 7);
        t.join().unwrap();
        assert_eq!(r.counter_value(a), 7);
        assert_eq!(r.counter_value(b), 5);
        assert_eq!(r.dropped(), 0);
    });
}

#[test]
fn snapshot_racing_a_claim_sees_nothing_or_the_truth() {
    // A snapshot taken while another thread claims-and-updates must
    // either skip the half-born series (claim seen, identity not yet
    // published) or report a value the series actually passed through.
    loom::model(|| {
        let r = Arc::new(InMemoryRecorder::new());
        let r2 = Arc::clone(&r);
        let t = loom::thread::spawn(move || r2.counter_add(Key::new("live"), 1));
        let snap = r.snapshot();
        if let Some(&v) = snap.counters.get("live") {
            assert!(v <= 1, "snapshot saw impossible counter value {v}");
        }
        t.join().unwrap();
        assert_eq!(r.counter_value(Key::new("live")), 1);
        assert_eq!(r.dropped(), 0);
    });
}

#[test]
fn exhausted_table_counts_every_dropped_update() {
    // Four concurrent claims fill the whole (loom-sized) table; a fifth
    // distinct series must walk the full probe ring and be tallied in
    // `dropped` without disturbing the resident series.
    assert_eq!(InMemoryRecorder::capacity(), 4);
    loom::model(|| {
        let r = Arc::new(InMemoryRecorder::new());
        let r2 = Arc::clone(&r);
        let t = loom::thread::spawn(move || {
            r2.counter_add(Key::new("k0"), 1);
            r2.counter_add(Key::new("k1"), 1);
        });
        r.counter_add(Key::new("k2"), 1);
        r.counter_add(Key::new("k3"), 1);
        t.join().unwrap();
        r.counter_add(Key::new("k4"), 1);
        assert_eq!(r.dropped(), 1);
        assert_eq!(r.counter_value(Key::new("k4")), 0);
        for name in ["k0", "k1", "k2", "k3"] {
            assert_eq!(r.counter_value(Key::new(name)), 1);
        }
    });
}

#[test]
fn journal_drain_racing_wrapping_writer_never_decodes_torn_events() {
    // The loom-sized ring holds 2 events; three pushes force a wraparound
    // while the drain races the writer's overwrite. Every event the drain
    // *does* decode must be internally consistent (payloads written
    // together stay together) and in per-thread FIFO order — a half-old
    // half-new slot must land in `torn`, never in `events`.
    loom::model(|| {
        let j = Arc::new(EventJournal::new());
        let j2 = Arc::clone(&j);
        let t = loom::thread::spawn(move || {
            for i in 1..=3u64 {
                j2.record_at(
                    i,
                    EventKind::RateTransition {
                        from: i,
                        to: i * 10,
                    },
                );
            }
        });
        let dump = j.drain();
        for ring in &dump.rings {
            let mut last_ts = 0;
            for ev in &ring.events {
                match ev.kind {
                    EventKind::RateTransition { from, to } => {
                        assert_eq!(to, from * 10, "torn payload decoded");
                        assert_eq!(ev.ts_ns, from, "timestamp from a different event");
                    }
                    ref other => panic!("impossible event {other:?}"),
                }
                assert!(ev.ts_ns > last_ts, "drain order is not FIFO");
                last_ts = ev.ts_ns;
            }
        }
        t.join().unwrap();
        // Quiescent re-drain: exactly the newest `capacity` events remain,
        // the overwritten prefix is accounted, nothing reads as torn.
        let settled = j.drain();
        let ring = settled
            .rings
            .iter()
            .find(|r| !r.events.is_empty())
            .expect("writer ring present");
        assert_eq!(ring.torn, 0);
        assert_eq!(ring.overwritten, 1);
        let ts: Vec<u64> = ring.events.iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![2, 3]);
    });
}

#[test]
fn journal_racing_threads_claim_distinct_rings() {
    // Two threads race the owner CAS over the ring table; each must end
    // up sole writer of its own ring, with neither event lost or mixed
    // into the other's track.
    loom::model(|| {
        let j = Arc::new(EventJournal::new());
        let j2 = Arc::clone(&j);
        let t = loom::thread::spawn(move || {
            j2.record_at(1, EventKind::SpineInvalidate { epoch: 7 });
        });
        j.record_at(2, EventKind::SpineInvalidate { epoch: 9 });
        t.join().unwrap();
        let dump = j.drain();
        assert_eq!(dump.lost(), 0);
        let mut epochs = Vec::new();
        for ring in &dump.rings {
            assert!(ring.events.len() <= 1, "rings were shared");
            for ev in &ring.events {
                match ev.kind {
                    EventKind::SpineInvalidate { epoch } => epochs.push(epoch),
                    ref other => panic!("impossible event {other:?}"),
                }
            }
        }
        epochs.sort_unstable();
        assert_eq!(epochs, vec![7, 9]);
    });
}
