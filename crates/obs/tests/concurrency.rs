//! Contention hammer for the lock-free recorder's conservation law.
//!
//! Whatever the interleaving, every `counter_add` must end up in exactly
//! one place: some slot's total, or the `dropped` tally. N threads cycle
//! through more distinct labels than the slot table holds, so claims,
//! probe chains and table exhaustion all race concurrently — and the
//! books must still balance to the update exactly.

use std::sync::Arc;

use mrl_obs::{InMemoryRecorder, Key, Recorder};
use proptest::prelude::*;

/// Hammer a fresh recorder and return `(sum of counters, dropped, total)`.
fn hammer(threads: usize, updates_per_thread: usize, labels: u32, seed: u64) -> (u64, u64, u64) {
    let r = Arc::new(InMemoryRecorder::new());
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                // Per-thread LCG so threads hit the shared label space in
                // different, colliding orders.
                let mut state = seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                for _ in 0..updates_per_thread {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let label = ((state >> 33) % u64::from(labels)) as u32;
                    r.counter_add(Key::labeled("hammer", label), 1);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = r.snapshot();
    let sum: u64 = snap.counters.values().sum();
    (sum, snap.dropped, (threads * updates_per_thread) as u64)
}

#[test]
fn oversubscribed_table_still_balances_exactly() {
    // 700 distinct series against 512 slots: drops are guaranteed, yet
    // sum(slot counts) + dropped must equal the updates issued.
    let (sum, dropped, total) = hammer(8, 20_000, 700, 0x5EED);
    assert!(
        dropped > 0,
        "700 series cannot fit {} slots",
        InMemoryRecorder::capacity()
    );
    assert_eq!(sum + dropped, total);
}

#[test]
fn undersubscribed_table_drops_nothing() {
    let (sum, dropped, total) = hammer(8, 20_000, 64, 0x5EED);
    assert_eq!(dropped, 0);
    assert_eq!(sum, total);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn conservation_holds_under_arbitrary_contention(
        threads in 2usize..6,
        updates_per_thread in 100usize..2_000,
        labels in 1u32..700,
        seed in any::<u64>(),
    ) {
        let (sum, dropped, total) = hammer(threads, updates_per_thread, labels, seed);
        prop_assert_eq!(sum + dropped, total);
        if labels as usize <= InMemoryRecorder::capacity() {
            prop_assert_eq!(dropped, 0);
        }
    }
}
