//! Property tests for the flight-recorder journal's drain guarantees.
//!
//! Three laws, over arbitrary event sequences:
//!
//! * **Below capacity, the drain is exact**: every recorded event comes
//!   back exactly once — none duplicated, none lost — in per-thread
//!   FIFO order, even when several writer threads record concurrently.
//! * **Above capacity, the drain is the newest suffix**: exactly the
//!   last `capacity` events survive, still in order, and the overwritten
//!   prefix is accounted rather than silently gone.
//! * **Encoding is lossless**: every [`EventKind`] variant survives the
//!   five-word pack/unpack round trip bit-exactly, for any field values
//!   the wire format can represent.

use std::sync::Arc;

use mrl_obs::{CollapsePath, EventJournal, EventKind, SealKernel};
use proptest::prelude::*;

/// Header-word fields share 24 bits and saturate above this; the round
/// trip is only promised inside the representable range.
const F1_MAX: u32 = 0x00ff_ffff;

/// One of every [`EventKind`] variant, each field drawn from the range
/// its wire slot can represent: narrow header fields from `narrow`
/// (24-bit budget), wide payload fields from `wide` (full `u64`), the
/// discriminant enums from their entire domains.
fn all_variants(narrow: &[u32], wide: &[u64], kernel_ix: usize, path_ix: usize) -> Vec<EventKind> {
    let kernel = [
        SealKernel::Presorted,
        SealKernel::RunMerge,
        SealKernel::ParkedRaw,
    ][kernel_ix];
    let path = [
        CollapsePath::Concat,
        CollapsePath::TwoSource,
        CollapsePath::ThreeSource,
        CollapsePath::PairMerge,
        CollapsePath::Scalar,
    ][path_ix];
    vec![
        EventKind::BufferSeal {
            level: narrow[0],
            kernel,
            k: wide[0],
            runs: wide[1],
            dur_ns: wide[2],
        },
        EventKind::CollapseSource {
            slot: narrow[1],
            // `level` rides the full 32-bit half of the header word.
            level: wide[3] as u32,
            weight: wide[4],
            len: wide[5],
        },
        EventKind::Collapse {
            output_level: narrow[2],
            sources: narrow[3],
            path,
            weight_sum: wide[6],
            dur_ns: wide[7],
        },
        EventKind::RateTransition {
            from: wide[8],
            to: wide[9],
        },
        EventKind::SpineRebuild {
            epoch: wide[10],
            pairs: wide[11],
            dur_ns: wide[12],
        },
        EventKind::SpineInvalidate { epoch: wide[13] },
        EventKind::ShardDispatch {
            shard: narrow[4],
            len: wide[14],
            depth: wide[15],
        },
        EventKind::ShardStall {
            shard: narrow[5],
            dur_ns: wide[16],
        },
        EventKind::SpanBegin { name: narrow[6] },
        EventKind::SpanEnd {
            name: narrow[7],
            dur_ns: wide[17],
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48 })]

    #[test]
    fn below_capacity_drain_is_exact_and_per_thread_fifo(
        per_thread in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 0..64),
            1..4,
        )
    ) {
        let journal = Arc::new(EventJournal::with_capacity(64));
        let handles: Vec<_> = per_thread
            .iter()
            .cloned()
            .enumerate()
            .map(|(t, payloads)| {
                let j = Arc::clone(&journal);
                std::thread::spawn(move || {
                    j.name_current_thread("w", Some(t as u32));
                    for (i, p) in payloads.iter().enumerate() {
                        // Distinct timestamps double as sequence numbers;
                        // `pairs` carries the writer id so a cross-ring
                        // mixup cannot masquerade as a valid replay.
                        j.record_at(
                            i as u64 + 1,
                            EventKind::SpineRebuild { epoch: *p, pairs: t as u64, dur_ns: 0 },
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        let dump = journal.drain();
        prop_assert_eq!(dump.lost(), 0);
        let mut total = 0usize;
        for (t, payloads) in per_thread.iter().enumerate() {
            let ring = dump
                .rings
                .iter()
                .find(|r| r.thread_name == Some(("w", Some(t as u32))));
            let Some(ring) = ring else {
                // A writer that recorded nothing never allocates storage,
                // so its ring may legitimately be absent from the dump.
                prop_assert!(payloads.is_empty(), "writer {}'s events vanished", t);
                continue;
            };
            prop_assert_eq!(ring.overwritten, 0);
            prop_assert_eq!(ring.torn, 0);
            let mut got = Vec::with_capacity(ring.events.len());
            for ev in &ring.events {
                match ev.kind {
                    EventKind::SpineRebuild { epoch, pairs, .. } => {
                        prop_assert_eq!(pairs, t as u64, "event from another writer's ring");
                        got.push(epoch);
                    }
                    ref other => prop_assert!(false, "impossible event {:?}", other),
                }
            }
            prop_assert_eq!(&got, payloads, "writer {} not replayed FIFO-exactly", t);
            total += got.len();
        }
        let expected: usize = per_thread.iter().map(Vec::len).sum();
        prop_assert_eq!(total, expected, "events duplicated or lost across rings");
    }

    #[test]
    fn every_event_kind_round_trips_through_the_wire_format(
        narrow in proptest::collection::vec(0u32..=F1_MAX, 8),
        wide in proptest::collection::vec(any::<u64>(), 18),
        kernel_ix in 0usize..3,
        path_ix in 0usize..5,
    ) {
        // Every case covers every variant. Record through the real ring
        // (not a private encode/decode pair), so the law covers the
        // whole write→drain path.
        let events = all_variants(&narrow, &wide, kernel_ix, path_ix);
        let journal = EventJournal::with_capacity(64);
        for (i, kind) in events.iter().enumerate() {
            journal.record_at(i as u64 + 1, *kind);
        }

        let dump = journal.drain();
        prop_assert_eq!(dump.lost(), 0);
        let ring = dump
            .rings
            .iter()
            .find(|r| !r.events.is_empty())
            .expect("writer ring present");
        prop_assert_eq!(ring.events.len(), events.len());
        for (i, (ev, kind)) in ring.events.iter().zip(&events).enumerate() {
            prop_assert_eq!(ev.ts_ns, i as u64 + 1, "timestamp word mangled");
            prop_assert_eq!(&ev.kind, kind, "variant {} did not round-trip", i);
        }
    }

    #[test]
    fn over_capacity_drain_keeps_exactly_the_newest_suffix(
        payloads in proptest::collection::vec(any::<u64>(), 0..200),
        cap_pow in 1u32..6,
    ) {
        let cap = 1usize << cap_pow;
        let journal = EventJournal::with_capacity(cap);
        for (i, p) in payloads.iter().enumerate() {
            journal.record_at(i as u64, EventKind::ShardDispatch { shard: 3, len: *p, depth: 1 });
        }

        let dump = journal.drain();
        let overwritten = payloads.len().saturating_sub(cap) as u64;
        let ring = dump.rings.iter().find(|r| !r.events.is_empty());
        if payloads.is_empty() {
            prop_assert!(ring.is_none(), "events appeared from nowhere");
        } else {
            let ring = ring.expect("writer ring present");
            prop_assert_eq!(ring.torn, 0);
            prop_assert_eq!(ring.overwritten, overwritten);
            let mut got = Vec::with_capacity(ring.events.len());
            for ev in &ring.events {
                match ev.kind {
                    EventKind::ShardDispatch { shard, len, depth } => {
                        prop_assert_eq!(shard, 3);
                        prop_assert_eq!(depth, 1);
                        got.push(len);
                    }
                    ref other => prop_assert!(false, "impossible event {:?}", other),
                }
            }
            let expect: Vec<u64> = payloads
                .iter()
                .copied()
                .skip(payloads.len().saturating_sub(cap))
                .collect();
            prop_assert_eq!(got, expect, "overwrite did not keep the newest window");
        }
    }
}
