//! Random sampling primitives used by the MRL quantile algorithms.
//!
//! This crate implements the sampling substrate of Manku, Rajagopalan and
//! Lindsay, *Random Sampling Techniques for Space Efficient Online
//! Computation of Order Statistics of Large Datasets* (SIGMOD 1999):
//!
//! * [`BlockSampler`] — the sampler behind the paper's `New` operation: pick
//!   exactly one uniformly random representative from each consecutive block
//!   of `r` input elements ("sampling without replacement", §4.4).
//! * [`Reservoir`] — Vitter's reservoir sampling (Algorithm R), the
//!   unknown-`N` baseline discussed in §2.2.
//! * [`BernoulliSampler`] — independent per-element coin flips, used by the
//!   known-`N` extreme-value estimator of §7.
//!
//! All samplers are deterministic given a seed, which the test-suite relies
//! on heavily.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod bernoulli;
mod block;
mod reservoir;
mod rng;

pub use bernoulli::BernoulliSampler;
pub use block::BlockSampler;
pub use reservoir::{reservoir_sample_size, Reservoir};
pub use rng::{new_rng, rng_from_seed, SketchRng};
