//! Random sampling primitives used by the MRL quantile algorithms.
//!
//! This crate implements the sampling substrate of Manku, Rajagopalan and
//! Lindsay, *Random Sampling Techniques for Space Efficient Online
//! Computation of Order Statistics of Large Datasets* (SIGMOD 1999):
//!
//! * [`BlockSampler`] — the sampler behind the paper's `New` operation: pick
//!   exactly one uniformly random representative from each consecutive block
//!   of `r` input elements ("sampling without replacement", §4.4).
//! * [`Reservoir`] — Vitter's reservoir sampling (Algorithm R), the
//!   unknown-`N` baseline discussed in §2.2.
//! * [`BernoulliSampler`] — independent per-element coin flips, used by the
//!   known-`N` extreme-value estimator of §7.
//!
//! All samplers are deterministic given a seed, which the test-suite relies
//! on heavily.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod bernoulli;
mod block;
mod reservoir;
mod rng;

/// Metric keys published by the samplers via
/// [`BlockSampler::publish_metrics`] / [`BernoulliSampler::publish_metrics`].
/// Publication is explicit (pull, at seal points) rather than per offer, so
/// the per-element hot loops stay free of recorder traffic.
pub mod metrics {
    use mrl_obs::Key;

    /// Gauge: cumulative random draws consumed by a block sampler.
    pub const BLOCK_DRAWS: Key = Key::new("sampler.block.draws");
    /// Gauge: elements offered to a Bernoulli sampler.
    pub const BERNOULLI_SEEN: Key = Key::new("sampler.bernoulli.seen");
    /// Gauge: elements accepted by a Bernoulli sampler.
    pub const BERNOULLI_TAKEN: Key = Key::new("sampler.bernoulli.taken");
    /// Gauge: cumulative random draws consumed by a Bernoulli sampler
    /// (one per *acceptance* on the geometric skip path, one per element
    /// on the scalar path).
    pub const BERNOULLI_DRAWS: Key = Key::new("sampler.bernoulli.draws");
    /// Gauge: observed acceptance rate `taken / seen` of a Bernoulli sampler.
    pub const BERNOULLI_ACCEPTANCE: Key = Key::new("sampler.bernoulli.acceptance_rate");
}

pub use bernoulli::BernoulliSampler;
pub use block::BlockSampler;
pub use reservoir::{reservoir_sample_size, Reservoir};
pub use rng::{new_rng, rng_from_seed, SketchRng};
