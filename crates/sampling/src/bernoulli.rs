//! Independent per-element Bernoulli sampling.
//!
//! The extreme-value estimator of §7 draws a random sample "with
//! replacement (not much different from a sample without replacement if the
//! sample size is small with respect to N)". The practical known-`N`
//! realisation is to flip an independent coin with success probability
//! `s / N` for each element, giving a sample of expected size `s`.

use mrl_obs::MetricsHandle;
use rand::Rng;

use crate::SketchRng;

/// Samples each offered element independently with a fixed probability.
#[derive(Debug, Clone)]
pub struct BernoulliSampler {
    probability: f64,
    seen: u64,
    taken: u64,
    /// Cumulative random draws (one per element on the scalar path, one per
    /// acceptance on the geometric skip path).
    draws: u64,
    /// Batch-path state: offsets (counted in batch-offered elements) still
    /// to skip before the next acceptance. `None` until the first batch.
    skip: Option<u64>,
}

impl BernoulliSampler {
    /// Create a sampler with inclusion probability `p ∈ [0, 1]`.
    ///
    /// # Panics
    /// Panics if `p` is not a finite number in `[0, 1]`.
    pub fn new(probability: f64) -> Self {
        assert!(
            probability.is_finite() && (0.0..=1.0).contains(&probability),
            "inclusion probability must lie in [0, 1]"
        );
        Self {
            probability,
            seen: 0,
            taken: 0,
            draws: 0,
            skip: None,
        }
    }

    /// Sampler sized for an expected `s` samples out of `n` elements
    /// (probability `min(1, s/n)`).
    pub fn for_expected_sample(s: u64, n: u64) -> Self {
        assert!(n > 0, "population size must be positive");
        Self::new((s as f64 / n as f64).min(1.0))
    }

    /// Decide whether the next element is sampled.
    pub fn accept(&mut self, rng: &mut SketchRng) -> bool {
        self.seen += 1;
        let take = self.probability >= 1.0 || {
            self.draws += 1;
            rng.gen::<f64>() < self.probability
        };
        if take {
            self.taken += 1;
        }
        take
    }

    /// Decide which of the next `count` elements are sampled, invoking
    /// `emit` with the 0-based offset of each accepted element in ascending
    /// order.
    ///
    /// Distributionally identical to `count` independent
    /// [`BernoulliSampler::accept`] calls, but draws one random number per
    /// **accepted** element (geometric skip sampling: the gap to the next
    /// acceptance is `⌊ln(1−U)/ln(1−p)⌋`), so a low-probability sampler
    /// scans a large batch in `O(expected hits)` draws instead of
    /// `O(count)`. The residual gap carries across calls; interleaved
    /// scalar `accept` calls remain independent coin flips and do not
    /// consume the gap.
    pub fn accept_many(&mut self, count: u64, rng: &mut SketchRng, emit: &mut dyn FnMut(u64)) {
        self.seen += count;
        if self.probability >= 1.0 {
            for i in 0..count {
                emit(i);
            }
            self.taken += count;
            return;
        }
        if self.probability <= 0.0 || count == 0 {
            return;
        }
        let ln_q = (1.0 - self.probability).ln(); // < 0 for p in (0, 1)
        let mut pos = match self.skip.take() {
            Some(gap) => gap,
            None => {
                self.draws += 1;
                geometric_gap(rng, ln_q)
            }
        };
        while pos < count {
            emit(pos);
            self.taken += 1;
            self.draws += 1;
            pos = pos
                .saturating_add(1)
                .saturating_add(geometric_gap(rng, ln_q));
        }
        self.skip = Some(pos - count);
    }

    /// The inclusion probability.
    pub fn probability(&self) -> f64 {
        self.probability
    }

    /// Elements offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Elements accepted so far.
    pub fn taken(&self) -> u64 {
        self.taken
    }

    /// Cumulative random draws consumed so far.
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// Observed acceptance rate `taken / seen`; 0.0 before any element.
    pub fn acceptance_rate(&self) -> f64 {
        if self.seen == 0 {
            0.0
        } else {
            self.taken as f64 / self.seen as f64
        }
    }

    /// Publish the sampler's counters to a metrics sink (see
    /// [`crate::metrics`]). Pull-style: call at reporting points, not per
    /// element.
    pub fn publish_metrics(&self, metrics: &MetricsHandle) {
        metrics.gauge_set(crate::metrics::BERNOULLI_SEEN, self.seen as f64);
        metrics.gauge_set(crate::metrics::BERNOULLI_TAKEN, self.taken as f64);
        metrics.gauge_set(crate::metrics::BERNOULLI_DRAWS, self.draws as f64);
        metrics.gauge_set(crate::metrics::BERNOULLI_ACCEPTANCE, self.acceptance_rate());
    }
}

/// Number of failures before the next Bernoulli success: `⌊ln(1−U)/ln q⌋`
/// with `U` uniform in `[0, 1)` and `q = 1 − p` (`ln_q < 0`).
fn geometric_gap(rng: &mut SketchRng, ln_q: f64) -> u64 {
    let u: f64 = rng.gen();
    let g = (1.0 - u).ln() / ln_q;
    if g >= u64::MAX as f64 {
        u64::MAX
    } else {
        g as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;

    #[test]
    fn probability_one_takes_everything() {
        let mut rng = rng_from_seed(5);
        let mut s = BernoulliSampler::new(1.0);
        for _ in 0..1000 {
            assert!(s.accept(&mut rng));
        }
        assert_eq!(s.taken(), 1000);
    }

    #[test]
    fn probability_zero_takes_nothing() {
        let mut rng = rng_from_seed(5);
        let mut s = BernoulliSampler::new(0.0);
        for _ in 0..1000 {
            assert!(!s.accept(&mut rng));
        }
        assert_eq!(s.taken(), 0);
    }

    #[test]
    fn sample_size_concentrates_around_expectation() {
        let mut rng = rng_from_seed(5);
        let mut s = BernoulliSampler::for_expected_sample(5_000, 100_000);
        for _ in 0..100_000 {
            s.accept(&mut rng);
        }
        let taken = s.taken() as f64;
        assert!(
            (taken - 5_000.0).abs() < 300.0,
            "sample size {taken} far from expected 5000"
        );
    }

    #[test]
    #[should_panic(expected = "must lie in [0, 1]")]
    fn rejects_out_of_range_probability() {
        let _ = BernoulliSampler::new(1.5);
    }

    #[test]
    fn batch_probability_one_takes_everything_in_order() {
        let mut rng = rng_from_seed(8);
        let mut s = BernoulliSampler::new(1.0);
        let mut hits = Vec::new();
        s.accept_many(100, &mut rng, &mut |i| hits.push(i));
        assert_eq!(hits, (0..100).collect::<Vec<u64>>());
        assert_eq!(s.taken(), 100);
        assert_eq!(s.seen(), 100);
    }

    #[test]
    fn batch_probability_zero_takes_nothing() {
        let mut rng = rng_from_seed(8);
        let mut s = BernoulliSampler::new(0.0);
        s.accept_many(10_000, &mut rng, &mut |_| panic!("nothing accepted"));
        assert_eq!(s.taken(), 0);
        assert_eq!(s.seen(), 10_000);
    }

    #[test]
    fn batch_sample_size_concentrates_around_expectation() {
        let mut rng = rng_from_seed(5);
        let mut s = BernoulliSampler::for_expected_sample(5_000, 100_000);
        // Ragged chunk sizes exercise the carried-over residual gap.
        let mut remaining = 100_000u64;
        let mut chunk = 1u64;
        while remaining > 0 {
            let c = chunk.min(remaining);
            let mut last = None;
            s.accept_many(c, &mut rng, &mut |i| {
                assert!(i < c, "offset {i} outside chunk of {c}");
                assert!(last.is_none_or(|l| l < i), "offsets must ascend");
                last = Some(i);
            });
            remaining -= c;
            chunk = chunk % 977 + 13;
        }
        let taken = s.taken() as f64;
        assert!(
            (taken - 5_000.0).abs() < 300.0,
            "sample size {taken} far from expected 5000"
        );
    }

    #[test]
    fn acceptance_rate_and_draws_track_activity() {
        let mut rng = rng_from_seed(31);
        let mut s = BernoulliSampler::new(0.25);
        assert_eq!(s.acceptance_rate(), 0.0);
        for _ in 0..4_000 {
            s.accept(&mut rng);
        }
        // Scalar path: one draw per element.
        assert_eq!(s.draws(), 4_000);
        let rate = s.acceptance_rate();
        assert!((rate - 0.25).abs() < 0.05, "acceptance {rate}");

        // Skip path: roughly one draw per acceptance, far fewer than seen.
        let mut s = BernoulliSampler::new(0.01);
        s.accept_many(100_000, &mut rng, &mut |_| {});
        assert!(s.draws() <= s.taken() + 1);
        assert!(s.draws() < 5_000, "skip path drew {} times", s.draws());
    }

    #[test]
    fn publish_metrics_exports_counters() {
        use mrl_obs::{InMemoryRecorder, MetricsHandle};
        use std::sync::Arc;

        let mut rng = rng_from_seed(6);
        let mut s = BernoulliSampler::new(1.0);
        for _ in 0..10 {
            s.accept(&mut rng);
        }
        let rec = Arc::new(InMemoryRecorder::new());
        s.publish_metrics(&MetricsHandle::new(rec.clone()));
        assert_eq!(rec.gauge_value(crate::metrics::BERNOULLI_SEEN), Some(10.0));
        assert_eq!(rec.gauge_value(crate::metrics::BERNOULLI_TAKEN), Some(10.0));
        assert_eq!(
            rec.gauge_value(crate::metrics::BERNOULLI_ACCEPTANCE),
            Some(1.0)
        );
    }

    #[test]
    fn batch_and_scalar_paths_agree_in_distribution() {
        // Same probability, independent streams: acceptance rates of the
        // two paths must agree within statistical noise.
        let mut rng_a = rng_from_seed(41);
        let mut rng_b = rng_from_seed(42);
        let mut scalar = BernoulliSampler::new(0.03);
        let mut batch = BernoulliSampler::new(0.03);
        for _ in 0..200_000 {
            scalar.accept(&mut rng_a);
        }
        batch.accept_many(200_000, &mut rng_b, &mut |_| {});
        let a = scalar.taken() as f64;
        let b = batch.taken() as f64;
        assert!((a - 6_000.0).abs() < 400.0, "scalar {a}");
        assert!((b - 6_000.0).abs() < 400.0, "batch {b}");
    }
}
