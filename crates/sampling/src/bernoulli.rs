//! Independent per-element Bernoulli sampling.
//!
//! The extreme-value estimator of §7 draws a random sample "with
//! replacement (not much different from a sample without replacement if the
//! sample size is small with respect to N)". The practical known-`N`
//! realisation is to flip an independent coin with success probability
//! `s / N` for each element, giving a sample of expected size `s`.

use rand::Rng;

use crate::SketchRng;

/// Samples each offered element independently with a fixed probability.
#[derive(Debug, Clone)]
pub struct BernoulliSampler {
    probability: f64,
    seen: u64,
    taken: u64,
}

impl BernoulliSampler {
    /// Create a sampler with inclusion probability `p ∈ [0, 1]`.
    ///
    /// # Panics
    /// Panics if `p` is not a finite number in `[0, 1]`.
    pub fn new(probability: f64) -> Self {
        assert!(
            probability.is_finite() && (0.0..=1.0).contains(&probability),
            "inclusion probability must lie in [0, 1]"
        );
        Self {
            probability,
            seen: 0,
            taken: 0,
        }
    }

    /// Sampler sized for an expected `s` samples out of `n` elements
    /// (probability `min(1, s/n)`).
    pub fn for_expected_sample(s: u64, n: u64) -> Self {
        assert!(n > 0, "population size must be positive");
        Self::new((s as f64 / n as f64).min(1.0))
    }

    /// Decide whether the next element is sampled.
    pub fn accept(&mut self, rng: &mut SketchRng) -> bool {
        self.seen += 1;
        let take = self.probability >= 1.0 || rng.gen::<f64>() < self.probability;
        if take {
            self.taken += 1;
        }
        take
    }

    /// The inclusion probability.
    pub fn probability(&self) -> f64 {
        self.probability
    }

    /// Elements offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Elements accepted so far.
    pub fn taken(&self) -> u64 {
        self.taken
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;

    #[test]
    fn probability_one_takes_everything() {
        let mut rng = rng_from_seed(5);
        let mut s = BernoulliSampler::new(1.0);
        for _ in 0..1000 {
            assert!(s.accept(&mut rng));
        }
        assert_eq!(s.taken(), 1000);
    }

    #[test]
    fn probability_zero_takes_nothing() {
        let mut rng = rng_from_seed(5);
        let mut s = BernoulliSampler::new(0.0);
        for _ in 0..1000 {
            assert!(!s.accept(&mut rng));
        }
        assert_eq!(s.taken(), 0);
    }

    #[test]
    fn sample_size_concentrates_around_expectation() {
        let mut rng = rng_from_seed(5);
        let mut s = BernoulliSampler::for_expected_sample(5_000, 100_000);
        for _ in 0..100_000 {
            s.accept(&mut rng);
        }
        let taken = s.taken() as f64;
        assert!(
            (taken - 5_000.0).abs() < 300.0,
            "sample size {taken} far from expected 5000"
        );
    }

    #[test]
    #[should_panic(expected = "must lie in [0, 1]")]
    fn rejects_out_of_range_probability() {
        let _ = BernoulliSampler::new(1.5);
    }
}
