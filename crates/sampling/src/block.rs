//! Per-block sampling: one uniform representative from every block of `r`
//! consecutive stream elements.
//!
//! This is the sampler behind the paper's `New` operation (§3.1). Choosing
//! one element from each *disjoint* block is sampling **without replacement**
//! and, as the paper notes (§4.4), is much easier to implement online than
//! classical without-replacement schemes: no index bookkeeping is needed.
//!
//! The implementation uses a size-one reservoir per block (replace the
//! current representative of the `i`-th element of the block with probability
//! `1/i`). This is exactly uniform over the block and — unlike drawing the
//! winning offset up front — still yields a uniform representative of
//! whatever *prefix* of the final block has arrived when the stream runs dry,
//! which the partial-buffer logic relies on.

use mrl_obs::MetricsHandle;
use rand::Rng;

use crate::SketchRng;

/// Streaming sampler that emits one uniformly chosen representative per
/// block of `rate` input elements.
///
/// Feed elements with [`BlockSampler::offer`]; it returns `Some(repr)`
/// whenever a block completes. On end of stream, [`BlockSampler::flush`]
/// returns the representative of the trailing incomplete block (if any)
/// together with the number of elements it actually represents.
#[derive(Debug, Clone)]
pub struct BlockSampler<T> {
    rate: u64,
    seen_in_block: u64,
    current: Option<T>,
    /// Cumulative random draws consumed (one per reservoir decision on the
    /// scalar path, one per block on the batched path). Plain counter, not
    /// a recorder call: the sampler sits on the per-element hot loop, so
    /// totals are published in bulk via [`BlockSampler::publish_metrics`].
    draws: u64,
}

impl<T> BlockSampler<T> {
    /// Create a sampler with the given block size (`rate >= 1`).
    ///
    /// # Panics
    /// Panics if `rate == 0`.
    pub fn new(rate: u64) -> Self {
        assert!(rate >= 1, "block sampling rate must be at least 1");
        Self {
            rate,
            seen_in_block: 0,
            current: None,
            draws: 0,
        }
    }

    /// The block size `r`. Each emitted representative stands for `r`
    /// consecutive input elements.
    pub fn rate(&self) -> u64 {
        self.rate
    }

    /// Cumulative random draws consumed since construction. Survives
    /// [`BlockSampler::reset_with_rate`] (it tracks the sampler's lifetime,
    /// not the current block).
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// Publish the sampler's counters to a metrics sink (see
    /// [`crate::metrics`]). Intended to be called at buffer-seal
    /// granularity, never per element.
    pub fn publish_metrics(&self, metrics: &MetricsHandle) {
        metrics.gauge_set(crate::metrics::BLOCK_DRAWS, self.draws as f64);
    }

    /// Number of elements consumed from the current (incomplete) block.
    pub fn pending(&self) -> u64 {
        self.seen_in_block
    }

    /// Offer one stream element. Returns the block representative when this
    /// element completes a block of `rate` elements.
    pub fn offer(&mut self, item: T, rng: &mut SketchRng) -> Option<T> {
        self.seen_in_block += 1;
        // Size-one reservoir: the i-th element of the block replaces the
        // current representative with probability 1/i.
        let replace = self.seen_in_block == 1 || {
            self.draws += 1;
            rng.gen_range(0..self.seen_in_block) == 0
        };
        if replace {
            self.current = Some(item);
        }
        if self.seen_in_block == self.rate {
            self.seen_in_block = 0;
            self.current.take()
        } else {
            None
        }
    }

    /// Offer a whole slice of stream elements at once, invoking `emit` for
    /// each completed block's representative in stream order.
    ///
    /// Semantically identical to calling [`BlockSampler::offer`] once per
    /// element (each completed block's representative is uniform over the
    /// block, and the pending block's representative stays uniform over the
    /// arrived prefix), but draws **one** random number per block instead of
    /// one per element:
    ///
    /// * the block straddling the chunk boundary merges the already-seen
    ///   prefix (a uniform representative of `s` elements) with the chunk's
    ///   contribution in a single draw over `s + c` positions,
    /// * each block fully contained in the chunk picks its representative
    ///   with one `gen_range(0..rate)`,
    /// * at rate 1 every element is its own block and no randomness is
    ///   consumed at all.
    ///
    /// The consumed random stream differs from the per-element path, so a
    /// seeded run mixing `offer` and `offer_slice` is distributionally — not
    /// bitwise — equivalent to a pure per-element run.
    // panic-free: every index and range is bounded by construction —
    // u − s < c ≤ rest.len() in the straddle step (and u ≥ s there means a
    // chunk element was drawn, so `current` is Some when the block
    // completes); offset < rate ≤ rest.len() in the whole-block loops
    // (masked draws are < rate because rate is a power of two); and the
    // trailing draw is < rest.len().
    pub fn offer_slice(
        &mut self,
        chunk: &[T],
        rng: &mut SketchRng,
        emit: &mut dyn FnMut(T),
    ) -> usize
    where
        T: Clone,
    {
        if chunk.is_empty() {
            return 0;
        }
        if self.rate == 1 {
            // Degenerate blocks: every element is its own representative.
            for item in chunk {
                emit(item.clone());
            }
            return chunk.len();
        }
        let mut emitted = 0usize;
        let mut rest = chunk;
        // Finish the straddling block, if one is open: the current
        // representative stands uniformly for `s` seen elements; merging a
        // further `c` elements keeps uniformity with a single draw
        // u ∈ [0, s+c): keep the current representative when u < s, else
        // take the chunk element at offset u − s.
        if self.seen_in_block > 0 {
            let s = self.seen_in_block;
            let need = (self.rate - s) as usize;
            let c = rest.len().min(need);
            self.draws += 1;
            let u = rng.gen_range(0..s + c as u64);
            if u >= s {
                self.current = Some(rest[(u - s) as usize].clone());
            }
            self.seen_in_block += c as u64;
            if self.seen_in_block == self.rate {
                self.seen_in_block = 0;
                emit(self.current.take().expect("straddled block is nonempty"));
                emitted += 1;
            }
            rest = &rest[c..];
        }
        // Whole blocks contained in the chunk: one draw each. Rates are
        // powers of two on the paper's doubling schedule, so a masked raw
        // draw (exactly uniform, no rejection loop) covers the hot case.
        let rate = self.rate as usize;
        if self.rate.is_power_of_two() {
            let mask = self.rate - 1;
            while rest.len() >= rate {
                self.draws += 1;
                let offset = (rng.gen::<u64>() & mask) as usize;
                emit(rest[offset].clone());
                emitted += 1;
                rest = &rest[rate..];
            }
        } else {
            while rest.len() >= rate {
                self.draws += 1;
                let offset = rng.gen_range(0..self.rate) as usize;
                emit(rest[offset].clone());
                emitted += 1;
                rest = &rest[rate..];
            }
        }
        // Trailing partial block: a uniform representative of the prefix that
        // has arrived, exactly what the per-element reservoir would hold.
        if !rest.is_empty() {
            self.draws += 1;
            let offset = rng.gen_range(0..rest.len() as u64) as usize;
            self.current = Some(rest[offset].clone());
            self.seen_in_block = rest.len() as u64;
        }
        emitted
    }

    /// The representative of the current incomplete block, together with the
    /// number of elements it represents, without consuming it. Used for
    /// non-destructive mid-stream `Output`.
    pub fn peek(&self) -> Option<(&T, u64)> {
        self.current.as_ref().map(|v| (v, self.seen_in_block))
    }

    /// Close the current block early (end of stream). Returns the
    /// representative of the incomplete block and the number of elements it
    /// represents, or `None` if the block was empty.
    pub fn flush(&mut self) -> Option<(T, u64)> {
        let seen = self.seen_in_block;
        self.seen_in_block = 0;
        self.current.take().map(|item| (item, seen))
    }

    /// Reconstruct a sampler mid-block (snapshot restore): `pending` is the
    /// current block's representative and how many elements it has seen.
    ///
    /// # Panics
    /// Panics if `rate == 0` or the pending count is not below `rate`.
    pub fn with_pending(rate: u64, pending: Option<(T, u64)>) -> Self {
        assert!(rate >= 1, "block sampling rate must be at least 1");
        let (current, seen_in_block) = match pending {
            Some((repr, seen)) => {
                assert!(
                    seen >= 1 && seen < rate,
                    "pending count must lie in [1, rate)"
                );
                (Some(repr), seen)
            }
            None => (None, 0),
        };
        // Draw accounting restarts at zero after a snapshot restore; the
        // counter describes this sampler instance, not the whole stream.
        Self {
            rate,
            seen_in_block,
            current,
            draws: 0,
        }
    }

    /// Discard any partially accumulated block and change the block size.
    ///
    /// The MRL99 algorithm only changes the sampling rate on block
    /// boundaries aligned with buffer boundaries, so in practice the pending
    /// block is empty when this is called; the engine asserts as much.
    pub fn reset_with_rate(&mut self, rate: u64) {
        assert!(rate >= 1, "block sampling rate must be at least 1");
        self.rate = rate;
        self.seen_in_block = 0;
        self.current = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;

    #[test]
    fn rate_one_is_identity() {
        let mut rng = rng_from_seed(7);
        let mut s = BlockSampler::new(1);
        for i in 0..100u32 {
            assert_eq!(s.offer(i, &mut rng), Some(i));
        }
        assert!(s.flush().is_none());
    }

    #[test]
    fn emits_one_per_block() {
        let mut rng = rng_from_seed(7);
        let mut s = BlockSampler::new(4);
        let mut out = Vec::new();
        for i in 0..17u32 {
            if let Some(v) = s.offer(i, &mut rng) {
                out.push(v);
            }
        }
        assert_eq!(out.len(), 4);
        // Representative of block j lies within that block.
        for (j, v) in out.iter().enumerate() {
            let lo = (j as u32) * 4;
            assert!((lo..lo + 4).contains(v), "repr {v} outside block {j}");
        }
        // One element pending in the trailing block.
        let (tail, seen) = s.flush().expect("trailing block has an element");
        assert_eq!(tail, 16);
        assert_eq!(seen, 1);
    }

    #[test]
    fn representative_is_uniform_within_block() {
        // Chi-square-style check: over many blocks of size 8, each offset
        // should win about 1/8 of the time.
        let mut rng = rng_from_seed(12345);
        let mut s = BlockSampler::new(8);
        let mut counts = [0u32; 8];
        let trials = 40_000u32;
        for i in 0..trials * 8 {
            if let Some(v) = s.offer(i, &mut rng) {
                counts[(v % 8) as usize] += 1;
            }
        }
        let expected = trials as f64 / 8.0;
        for (off, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "offset {off} frequency off by {dev:.3}");
        }
    }

    #[test]
    fn flush_of_partial_block_is_uniform_over_prefix() {
        let mut rng = rng_from_seed(99);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            let mut s = BlockSampler::new(8);
            for i in 0..3u32 {
                assert!(s.offer(i, &mut rng).is_none());
            }
            let (v, seen) = s.flush().unwrap();
            assert_eq!(seen, 3);
            counts[v as usize] += 1;
        }
        let expected = 10_000.0;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.06, "prefix offset {i} frequency off by {dev:.3}");
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_rate_panics() {
        let _ = BlockSampler::<u32>::new(0);
    }

    #[test]
    fn slice_rate_one_is_identity_without_randomness() {
        let mut rng = rng_from_seed(7);
        let probe = rng.clone();
        let mut s = BlockSampler::new(1);
        let mut out = Vec::new();
        s.offer_slice(&(0..100u32).collect::<Vec<_>>(), &mut rng, &mut |v| {
            out.push(v)
        });
        assert_eq!(out, (0..100u32).collect::<Vec<_>>());
        assert_eq!(rng, probe, "rate 1 must not consume randomness");
        assert!(s.flush().is_none());
    }

    #[test]
    fn slice_emits_one_per_block_within_bounds() {
        let mut rng = rng_from_seed(3);
        let mut s = BlockSampler::new(4);
        let mut out = Vec::new();
        // Deliver 17 elements in ragged chunks: 3 + 9 + 5.
        let all: Vec<u32> = (0..17).collect();
        for chunk in [&all[0..3], &all[3..12], &all[12..17]] {
            s.offer_slice(chunk, &mut rng, &mut |v| out.push(v));
        }
        assert_eq!(out.len(), 4);
        for (j, v) in out.iter().enumerate() {
            let lo = (j as u32) * 4;
            assert!((lo..lo + 4).contains(v), "repr {v} outside block {j}");
        }
        let (tail, seen) = s.flush().expect("one element pending");
        assert_eq!(seen, 1);
        assert_eq!(tail, 16);
    }

    #[test]
    fn slice_whole_blocks_are_uniform() {
        // Same chi-square check as the per-element path, on the batched path.
        let mut rng = rng_from_seed(12345);
        let mut s = BlockSampler::new(8);
        let mut counts = [0u32; 8];
        let trials = 40_000u32;
        let data: Vec<u32> = (0..trials * 8).collect();
        for chunk in data.chunks(1024) {
            s.offer_slice(chunk, &mut rng, &mut |v| counts[(v % 8) as usize] += 1);
        }
        let expected = trials as f64 / 8.0;
        for (off, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "offset {off} frequency off by {dev:.3}");
        }
    }

    #[test]
    fn slice_straddled_blocks_are_uniform() {
        // Chunks of 3 against rate 8 force every block to straddle chunk
        // boundaries, exercising the reservoir-merge path.
        let mut rng = rng_from_seed(777);
        let mut counts = [0u32; 8];
        let trials = 30_000u32;
        let data: Vec<u32> = (0..trials * 8).collect();
        let mut s = BlockSampler::new(8);
        for chunk in data.chunks(3) {
            s.offer_slice(chunk, &mut rng, &mut |v| counts[(v % 8) as usize] += 1);
        }
        let expected = trials as f64 / 8.0;
        for (off, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "offset {off} frequency off by {dev:.3}");
        }
    }

    #[test]
    fn slice_partial_tail_is_uniform_over_prefix() {
        let mut rng = rng_from_seed(99);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            let mut s = BlockSampler::new(8);
            s.offer_slice(&[0u32, 1, 2], &mut rng, &mut |_| {
                panic!("no block completes")
            });
            let (v, seen) = s.flush().unwrap();
            assert_eq!(seen, 3);
            counts[v as usize] += 1;
        }
        let expected = 10_000.0;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.06, "prefix offset {i} frequency off by {dev:.3}");
        }
    }

    #[test]
    fn slice_and_scalar_paths_interleave_consistently() {
        // Mixing offer and offer_slice must preserve block accounting: the
        // emitted count and pending size depend only on how many elements
        // arrived, never on the chunking.
        let mut rng = rng_from_seed(21);
        let mut s = BlockSampler::new(5);
        let mut emitted = 0usize;
        for i in 0..7u32 {
            if s.offer(i, &mut rng).is_some() {
                emitted += 1;
            }
        }
        emitted += s.offer_slice(&(7..23u32).collect::<Vec<_>>(), &mut rng, &mut |_| {});
        assert_eq!(emitted, 4); // 23 elements = 4 blocks of 5 + 3 pending
        assert_eq!(s.pending(), 3);
        let (v, seen) = s.flush().unwrap();
        assert_eq!(seen, 3);
        assert!((20..23).contains(&v), "pending repr {v} outside prefix");
    }

    #[test]
    fn draw_accounting_matches_randomness_consumption() {
        // Rate 1 consumes no randomness on either path.
        let mut rng = rng_from_seed(11);
        let mut s = BlockSampler::new(1);
        for i in 0..50u32 {
            s.offer(i, &mut rng);
        }
        s.offer_slice(&(0..50u32).collect::<Vec<_>>(), &mut rng, &mut |_| {});
        assert_eq!(s.draws(), 0);

        // Scalar path: one draw per element except each block's first.
        let mut s = BlockSampler::new(4);
        for i in 0..8u32 {
            s.offer(i, &mut rng);
        }
        assert_eq!(s.draws(), 6);

        // Batched path: one draw per whole block plus one for the partial
        // tail.
        let mut s = BlockSampler::new(4);
        s.offer_slice(&(0..10u32).collect::<Vec<_>>(), &mut rng, &mut |_| {});
        assert_eq!(s.draws(), 3);
    }

    #[test]
    fn publish_metrics_exports_draws() {
        use mrl_obs::{InMemoryRecorder, MetricsHandle};
        use std::sync::Arc;

        let mut rng = rng_from_seed(2);
        let mut s = BlockSampler::new(4);
        for i in 0..8u32 {
            s.offer(i, &mut rng);
        }
        let rec = Arc::new(InMemoryRecorder::new());
        s.publish_metrics(&MetricsHandle::new(rec.clone()));
        assert_eq!(rec.gauge_value(crate::metrics::BLOCK_DRAWS), Some(6.0));
    }

    #[test]
    fn slice_empty_chunk_is_a_noop() {
        let mut rng = rng_from_seed(1);
        let probe = rng.clone();
        let mut s = BlockSampler::<u32>::new(4);
        assert_eq!(
            s.offer_slice(&[], &mut rng, &mut |_| panic!("no emission")),
            0
        );
        assert_eq!(rng, probe);
        assert_eq!(s.pending(), 0);
    }
}
