//! Per-block sampling: one uniform representative from every block of `r`
//! consecutive stream elements.
//!
//! This is the sampler behind the paper's `New` operation (§3.1). Choosing
//! one element from each *disjoint* block is sampling **without replacement**
//! and, as the paper notes (§4.4), is much easier to implement online than
//! classical without-replacement schemes: no index bookkeeping is needed.
//!
//! The implementation uses a size-one reservoir per block (replace the
//! current representative of the `i`-th element of the block with probability
//! `1/i`). This is exactly uniform over the block and — unlike drawing the
//! winning offset up front — still yields a uniform representative of
//! whatever *prefix* of the final block has arrived when the stream runs dry,
//! which the partial-buffer logic relies on.

use rand::Rng;

use crate::SketchRng;

/// Streaming sampler that emits one uniformly chosen representative per
/// block of `rate` input elements.
///
/// Feed elements with [`BlockSampler::offer`]; it returns `Some(repr)`
/// whenever a block completes. On end of stream, [`BlockSampler::flush`]
/// returns the representative of the trailing incomplete block (if any)
/// together with the number of elements it actually represents.
#[derive(Debug, Clone)]
pub struct BlockSampler<T> {
    rate: u64,
    seen_in_block: u64,
    current: Option<T>,
}

impl<T> BlockSampler<T> {
    /// Create a sampler with the given block size (`rate >= 1`).
    ///
    /// # Panics
    /// Panics if `rate == 0`.
    pub fn new(rate: u64) -> Self {
        assert!(rate >= 1, "block sampling rate must be at least 1");
        Self {
            rate,
            seen_in_block: 0,
            current: None,
        }
    }

    /// The block size `r`. Each emitted representative stands for `r`
    /// consecutive input elements.
    pub fn rate(&self) -> u64 {
        self.rate
    }

    /// Number of elements consumed from the current (incomplete) block.
    pub fn pending(&self) -> u64 {
        self.seen_in_block
    }

    /// Offer one stream element. Returns the block representative when this
    /// element completes a block of `rate` elements.
    pub fn offer(&mut self, item: T, rng: &mut SketchRng) -> Option<T> {
        self.seen_in_block += 1;
        // Size-one reservoir: the i-th element of the block replaces the
        // current representative with probability 1/i.
        if self.seen_in_block == 1 || rng.gen_range(0..self.seen_in_block) == 0 {
            self.current = Some(item);
        }
        if self.seen_in_block == self.rate {
            self.seen_in_block = 0;
            self.current.take()
        } else {
            None
        }
    }

    /// The representative of the current incomplete block, together with the
    /// number of elements it represents, without consuming it. Used for
    /// non-destructive mid-stream `Output`.
    pub fn peek(&self) -> Option<(&T, u64)> {
        self.current.as_ref().map(|v| (v, self.seen_in_block))
    }

    /// Close the current block early (end of stream). Returns the
    /// representative of the incomplete block and the number of elements it
    /// represents, or `None` if the block was empty.
    pub fn flush(&mut self) -> Option<(T, u64)> {
        let seen = self.seen_in_block;
        self.seen_in_block = 0;
        self.current.take().map(|item| (item, seen))
    }

    /// Reconstruct a sampler mid-block (snapshot restore): `pending` is the
    /// current block's representative and how many elements it has seen.
    ///
    /// # Panics
    /// Panics if `rate == 0` or the pending count is not below `rate`.
    pub fn with_pending(rate: u64, pending: Option<(T, u64)>) -> Self {
        assert!(rate >= 1, "block sampling rate must be at least 1");
        let (current, seen_in_block) = match pending {
            Some((repr, seen)) => {
                assert!(seen >= 1 && seen < rate, "pending count must lie in [1, rate)");
                (Some(repr), seen)
            }
            None => (None, 0),
        };
        Self {
            rate,
            seen_in_block,
            current,
        }
    }

    /// Discard any partially accumulated block and change the block size.
    ///
    /// The MRL99 algorithm only changes the sampling rate on block
    /// boundaries aligned with buffer boundaries, so in practice the pending
    /// block is empty when this is called; the engine asserts as much.
    pub fn reset_with_rate(&mut self, rate: u64) {
        assert!(rate >= 1, "block sampling rate must be at least 1");
        self.rate = rate;
        self.seen_in_block = 0;
        self.current = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;

    #[test]
    fn rate_one_is_identity() {
        let mut rng = rng_from_seed(7);
        let mut s = BlockSampler::new(1);
        for i in 0..100u32 {
            assert_eq!(s.offer(i, &mut rng), Some(i));
        }
        assert!(s.flush().is_none());
    }

    #[test]
    fn emits_one_per_block() {
        let mut rng = rng_from_seed(7);
        let mut s = BlockSampler::new(4);
        let mut out = Vec::new();
        for i in 0..17u32 {
            if let Some(v) = s.offer(i, &mut rng) {
                out.push(v);
            }
        }
        assert_eq!(out.len(), 4);
        // Representative of block j lies within that block.
        for (j, v) in out.iter().enumerate() {
            let lo = (j as u32) * 4;
            assert!((lo..lo + 4).contains(v), "repr {v} outside block {j}");
        }
        // One element pending in the trailing block.
        let (tail, seen) = s.flush().expect("trailing block has an element");
        assert_eq!(tail, 16);
        assert_eq!(seen, 1);
    }

    #[test]
    fn representative_is_uniform_within_block() {
        // Chi-square-style check: over many blocks of size 8, each offset
        // should win about 1/8 of the time.
        let mut rng = rng_from_seed(12345);
        let mut s = BlockSampler::new(8);
        let mut counts = [0u32; 8];
        let trials = 40_000u32;
        for i in 0..trials * 8 {
            if let Some(v) = s.offer(i, &mut rng) {
                counts[(v % 8) as usize] += 1;
            }
        }
        let expected = trials as f64 / 8.0;
        for (off, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "offset {off} frequency off by {dev:.3}");
        }
    }

    #[test]
    fn flush_of_partial_block_is_uniform_over_prefix() {
        let mut rng = rng_from_seed(99);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            let mut s = BlockSampler::new(8);
            for i in 0..3u32 {
                assert!(s.offer(i, &mut rng).is_none());
            }
            let (v, seen) = s.flush().unwrap();
            assert_eq!(seen, 3);
            counts[v as usize] += 1;
        }
        let expected = 10_000.0;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.06, "prefix offset {i} frequency off by {dev:.3}");
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_rate_panics() {
        let _ = BlockSampler::<u32>::new(0);
    }
}
