//! Vitter-style reservoir sampling.
//!
//! The paper (§2.2) uses reservoir sampling as the natural unknown-`N`
//! baseline: a uniform sample of fixed size `s` maintained over a stream of
//! unknown length. Folklore analysis shows `s = O(ε⁻² log δ⁻¹)` suffices for
//! an ε-approximate quantile with probability `1 − δ`, but the quadratic
//! dependence on `ε⁻¹` makes it impractical for small ε — which is exactly
//! the gap the MRL99 non-uniform scheme closes.

use rand::Rng;

use crate::SketchRng;

/// A uniform random sample of up to `capacity` elements over a stream of
/// unknown length (Vitter's Algorithm R).
///
/// After `n` elements have been offered, every element of the stream is in
/// the reservoir with probability `min(1, capacity / n)`.
#[derive(Debug, Clone)]
pub struct Reservoir<T> {
    capacity: usize,
    seen: u64,
    sample: Vec<T>,
}

impl<T> Reservoir<T> {
    /// Create a reservoir holding at most `capacity` elements.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        Self {
            capacity,
            seen: 0,
            sample: Vec::with_capacity(capacity.min(1 << 20)),
        }
    }

    /// Offer one stream element.
    // panic-free: the replacement index j is checked against capacity, and
    // the else-branch implies sample.len() == capacity.
    // alloc: pushes only during warm-up (until the sample reaches
    // capacity); steady state overwrites in place.
    pub fn offer(&mut self, item: T, rng: &mut SketchRng) {
        self.seen = self.seen.saturating_add(1);
        if self.sample.len() < self.capacity {
            self.sample.push(item);
        } else {
            let j = rng.gen_range(0..self.seen);
            if (j as usize) < self.capacity {
                self.sample[j as usize] = item;
            }
        }
    }

    /// Number of stream elements offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Maximum sample size.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The current sample (unordered).
    pub fn sample(&self) -> &[T] {
        &self.sample
    }

    /// Consume the reservoir, returning the sample.
    pub fn into_sample(self) -> Vec<T> {
        self.sample
    }

    /// True if fewer elements than `capacity` have been offered (the sample
    /// is the whole prefix, i.e. exact).
    pub fn is_exhaustive(&self) -> bool {
        self.seen <= self.capacity as u64
    }
}

impl<T: Clone + Ord> Reservoir<T> {
    /// The φ-quantile of the current sample: the element of rank
    /// `⌈φ·len⌉` in the sorted sample. Returns `None` on an empty reservoir.
    ///
    /// This is the folklore baseline estimator the paper compares against.
    // panic-free: pos is clamped to [1, len] after the is_empty check, so
    // pos - 1 is a valid index.
    pub fn quantile(&self, phi: f64) -> Option<T> {
        if self.sample.is_empty() {
            return None;
        }
        assert!((0.0..=1.0).contains(&phi), "phi must lie in [0, 1]");
        let mut sorted: Vec<T> = self.sample.to_vec();
        sorted.sort_unstable();
        let len = sorted.len();
        let pos = ((phi * len as f64).ceil() as usize).clamp(1, len);
        Some(sorted[pos - 1].clone())
    }
}

/// Sample size needed by the folklore reservoir analysis so that the sample
/// φ-quantile is an ε-approximate φ-quantile with probability `1 − δ`.
///
/// From a two-sided Hoeffding bound on the number of sample points below the
/// (φ±ε)-quantiles: `2·exp(−2ε²s) ≤ δ  ⇒  s ≥ ln(2/δ) / (2ε²)`.
pub fn reservoir_sample_size(epsilon: f64, delta: f64) -> u64 {
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must lie in (0, 1)");
    assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0, 1)");
    ((2.0f64 / delta).ln() / (2.0 * epsilon * epsilon)).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;

    #[test]
    fn fills_then_stays_at_capacity() {
        let mut rng = rng_from_seed(3);
        let mut r = Reservoir::new(10);
        for i in 0..5u32 {
            r.offer(i, &mut rng);
        }
        assert_eq!(r.sample().len(), 5);
        assert!(r.is_exhaustive());
        for i in 5..1000u32 {
            r.offer(i, &mut rng);
        }
        assert_eq!(r.sample().len(), 10);
        assert!(!r.is_exhaustive());
        assert_eq!(r.seen(), 1000);
    }

    #[test]
    fn inclusion_probability_is_uniform() {
        // Element 0 (first) and element 999 (last) should both end up in a
        // capacity-50 reservoir over 1000 elements about 5% of the time.
        let trials = 20_000;
        let mut first = 0u32;
        let mut last = 0u32;
        for t in 0..trials {
            let mut rng = rng_from_seed(1000 + t);
            let mut r = Reservoir::new(50);
            for i in 0..1000u32 {
                r.offer(i, &mut rng);
            }
            if r.sample().contains(&0) {
                first += 1;
            }
            if r.sample().contains(&999) {
                last += 1;
            }
        }
        let expect = trials as f64 * 0.05;
        for (name, c) in [("first", first), ("last", last)] {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.08, "{name} inclusion off by {dev:.3}");
        }
    }

    #[test]
    fn sample_quantile_close_on_uniform_stream() {
        let mut rng = rng_from_seed(7);
        let s = reservoir_sample_size(0.05, 0.01);
        let mut r = Reservoir::new(s as usize);
        let n = 200_000u32;
        for i in 0..n {
            r.offer(i, &mut rng);
        }
        let med = r.quantile(0.5).unwrap();
        let err = (f64::from(med) - 0.5 * f64::from(n)).abs() / f64::from(n);
        assert!(err <= 0.05, "median rank error {err:.4} exceeds epsilon");
    }

    #[test]
    fn quantile_of_exhaustive_prefix_is_exact() {
        let mut rng = rng_from_seed(7);
        let mut r = Reservoir::new(100);
        for i in 0..50u32 {
            r.offer(i, &mut rng);
        }
        assert_eq!(r.quantile(0.5), Some(24)); // ceil(0.5*50) = 25 -> index 24
        assert_eq!(r.quantile(0.0), Some(0));
        assert_eq!(r.quantile(1.0), Some(49));
    }

    #[test]
    fn sample_size_formula_matches_hand_computation() {
        // ln(2/0.01) / (2 * 0.01^2) = ln(200)/0.0002 ~ 26492
        assert_eq!(reservoir_sample_size(0.01, 0.01), 26_492);
        // Quadratic blow-up in 1/epsilon: halving epsilon ~quadruples s.
        let a = reservoir_sample_size(0.02, 0.01);
        let b = reservoir_sample_size(0.01, 0.01);
        assert!(b >= 4 * a - 4 && b <= 4 * a + 4);
    }
}
