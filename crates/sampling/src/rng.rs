//! RNG plumbing shared by all samplers.
//!
//! Every randomized structure in this workspace takes its randomness from a
//! [`SketchRng`] so that experiments and tests are reproducible from a single
//! `u64` seed.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The pseudo-random generator used throughout the workspace.
///
/// `SmallRng` is a fast, non-cryptographic generator; quantile sketches only
/// need statistical uniformity, not unpredictability, and the sampler sits on
/// the per-element hot path.
pub type SketchRng = SmallRng;

/// Create a generator from an explicit seed (reproducible).
pub fn rng_from_seed(seed: u64) -> SketchRng {
    SmallRng::seed_from_u64(seed)
}

/// Create a generator seeded from the operating system (non-reproducible).
pub fn new_rng() -> SketchRng {
    SmallRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_rngs_are_reproducible() {
        let mut a = rng_from_seed(42);
        let mut b = rng_from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = rng_from_seed(1);
        let mut b = rng_from_seed(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4, "seeds 1 and 2 produced near-identical streams");
    }
}
