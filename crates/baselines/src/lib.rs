//! Related-work baselines (paper §1.5).
//!
//! The paper positions itself against two contemporary lines of work,
//! both implemented here so the comparison experiments can run:
//!
//! * **\[GMP97\]** Gibbons, Matias, Poosala, *Fast Incremental Maintenance
//!   of Approximate Histograms*: an equi-depth histogram maintained by
//!   split/merge of bucket boundaries backed by a reservoir sample. MRL99:
//!   "The algorithm dynamically adjusts a set of bucket boundaries on the
//!   fly, possibly requiring more than one pass over the data set" — and
//!   satisfies a *different error metric* (per-bucket count balance, not
//!   rank error). [`GmpHistogram`].
//! * **\[CMN98\]** Chaudhuri, Motwani, Narasayya, block-level sampling:
//!   sample whole disk blocks instead of individual tuples. Cheap in IOs,
//!   but the effective sample is *clustered* — when on-disk order
//!   correlates with value order the error blows up, which is why their
//!   algorithm "can possibly require multiple passes". [`BlockSampling`].
//!
//! The `baselines_compare` experiment in `mrl-bench` scores both against
//! the MRL99 sketch at equal memory.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod block_sampling;
mod gmp;

pub use block_sampling::BlockSampling;
pub use gmp::GmpHistogram;
