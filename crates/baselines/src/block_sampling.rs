//! \[CMN98\]-style block-level sampling.
//!
//! Chaudhuri, Motwani and Narasayya estimate quantiles from a sample of
//! whole **disk blocks** rather than individual tuples: one random block
//! IO yields `block_size` tuples, so block sampling is `block_size`×
//! cheaper per sampled tuple. The catch — and the reason MRL99 notes their
//! "error metrics differ from ours and the algorithm can possibly require
//! multiple passes" — is that tuples within a block are *correlated*: when
//! on-disk order tracks value order (a clustered index, an append-only log
//! of increasing keys), `m` blocks contribute `m·block_size` tuples but
//! only ~`m` independent "looks" at the distribution.
//!
//! The streaming adaptation here reservoir-samples block *indices*: each
//! consecutive run of `block_size` elements is a block; a size-`m` block
//! reservoir keeps whole blocks.

use mrl_sampling::{rng_from_seed, Reservoir, SketchRng};

/// Streaming block-level sampler and quantile estimator (\[CMN98\]).
#[derive(Debug)]
pub struct BlockSampling {
    block_size: usize,
    reservoir: Reservoir<Vec<u64>>,
    current: Vec<u64>,
    n: u64,
    rng: SketchRng,
}

impl BlockSampling {
    /// Sample `blocks` whole blocks of `block_size` consecutive elements.
    ///
    /// Memory: `blocks · block_size` elements (plus one block in flight).
    ///
    /// # Panics
    /// Panics if either parameter is zero.
    pub fn new(blocks: usize, block_size: usize, seed: u64) -> Self {
        assert!(blocks >= 1, "need at least one block");
        assert!(block_size >= 1, "blocks must hold at least one element");
        Self {
            block_size,
            reservoir: Reservoir::new(blocks),
            current: Vec::with_capacity(block_size),
            n: 0,
            rng: rng_from_seed(seed),
        }
    }

    /// Insert one element.
    pub fn insert(&mut self, value: u64) {
        self.n += 1;
        self.current.push(value);
        if self.current.len() == self.block_size {
            let block = std::mem::replace(&mut self.current, Vec::with_capacity(self.block_size));
            self.reservoir.offer(block, &mut self.rng);
        }
    }

    /// Insert every element of an iterator.
    pub fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }

    /// Elements seen so far.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Memory footprint in elements (sampled blocks + the block in
    /// flight).
    pub fn memory_elements(&self) -> usize {
        self.reservoir.sample().iter().map(Vec::len).sum::<usize>() + self.current.len()
    }

    /// The φ-quantile of the union of sampled blocks (plus the in-flight
    /// partial block). `None` before the first element.
    pub fn quantile(&self, phi: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&phi), "phi must lie in [0, 1]");
        let mut all: Vec<u64> = self
            .reservoir
            .sample()
            .iter()
            .flatten()
            .copied()
            .chain(self.current.iter().copied())
            .collect();
        if all.is_empty() {
            return None;
        }
        all.sort_unstable();
        let pos = ((phi * all.len() as f64).ceil() as usize).clamp(1, all.len());
        Some(all[pos - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_order_data_is_estimated_well() {
        let mut b = BlockSampling::new(50, 64, 1);
        let n = 200_000u64;
        b.extend((0..n).map(|i| (i * 2654435761) % n));
        let med = b.quantile(0.5).unwrap() as f64;
        // Random arrival: blocks are as good as tuples.
        assert!(
            (med - n as f64 / 2.0).abs() < 0.05 * n as f64,
            "median {med}"
        );
    }

    #[test]
    fn clustered_data_degrades_blocks() {
        // Sorted arrival: each block covers a tiny value range, so the
        // union of m blocks is a coarse, clumpy sample. The estimate's
        // error is dominated by which blocks happened to be kept — at only
        // 8 blocks the median can easily be off by ~1/8 of the range.
        let n = 200_000u64;
        let trials = 30u64;
        let mut worst = 0.0f64;
        for seed in 0..trials {
            let mut b = BlockSampling::new(8, 64, seed);
            b.extend(0..n); // sorted
            let med = b.quantile(0.5).unwrap() as f64;
            worst = worst.max((med - n as f64 / 2.0).abs() / n as f64);
        }
        // Documented weakness (not a bug): clustered data with few blocks
        // is unreliable.
        assert!(
            worst > 0.02,
            "expected visible clustering error, worst was {worst}"
        );
    }

    #[test]
    fn memory_is_bounded() {
        let mut b = BlockSampling::new(10, 32, 3);
        b.extend(0..100_000u64);
        assert!(b.memory_elements() <= 10 * 32 + 32);
        assert_eq!(b.n(), 100_000);
    }

    #[test]
    fn tiny_streams_are_exact() {
        let mut b = BlockSampling::new(4, 8, 4);
        b.extend([5u64, 1, 3]);
        assert_eq!(b.quantile(0.5), Some(3));
        assert_eq!(b.quantile(1.0), Some(5));
    }

    #[test]
    fn empty_returns_none() {
        let b = BlockSampling::new(2, 4, 5);
        assert_eq!(b.quantile(0.5), None);
    }
}
