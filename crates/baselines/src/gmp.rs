//! \[GMP97\]-style incremental equi-depth histogram.
//!
//! Gibbons, Matias and Poosala maintain `B` buckets over a growing
//! relation with two ingredients:
//!
//! * a **backing sample** — a bounded uniform (reservoir) sample of the
//!   relation used whenever boundaries must be (re)computed;
//! * **split & merge**: per-bucket counters grow as inserts land; when a
//!   bucket's count exceeds the imbalance threshold `(1 + γ)·N/B`, it is
//!   split at its approximate median (from the backing sample) and two
//!   adjacent buckets with the smallest combined count are merged to keep
//!   the bucket budget. When splits can't restore balance (no mergeable
//!   pair cheap enough), boundaries are recomputed wholesale from the
//!   backing sample.
//!
//! MRL99's characterisation: "The algorithm dynamically adjusts a set of
//! bucket boundaries on the fly … [it] satisfies a different error
//! metric" — bucket-count balance rather than a per-quantile rank
//! guarantee. The comparison experiment scores its implied quantiles with
//! the rank metric anyway, which is exactly where the difference shows.

use mrl_sampling::{rng_from_seed, Reservoir, SketchRng};

/// One bucket: values in `(lower, upper]` with a running count. The first
/// bucket's `lower` is implicit (−∞).
#[derive(Clone, Debug)]
struct Bucket {
    /// Inclusive upper boundary.
    upper: u64,
    /// Elements counted into this bucket since its boundaries were set.
    count: u64,
}

/// Incrementally maintained approximate equi-depth histogram (\[GMP97\]).
#[derive(Debug)]
pub struct GmpHistogram {
    buckets: Vec<Bucket>,
    backing: Reservoir<u64>,
    /// Configured bucket budget `B`.
    b_config: usize,
    /// Imbalance tolerance γ: a bucket may grow to `(1+γ)·N/B` before a
    /// split is forced.
    gamma: f64,
    n: u64,
    recomputes: u64,
    splits: u64,
    rng: SketchRng,
}

impl GmpHistogram {
    /// Create a histogram with `buckets ≥ 2` buckets, imbalance tolerance
    /// `γ > 0`, and a backing sample of `sample_size` elements.
    ///
    /// # Panics
    /// Panics on degenerate parameters.
    pub fn new(buckets: usize, gamma: f64, sample_size: usize, seed: u64) -> Self {
        assert!(buckets >= 2, "need at least two buckets");
        assert!(gamma > 0.0, "imbalance tolerance must be positive");
        assert!(
            sample_size >= buckets,
            "backing sample must cover the buckets"
        );
        Self {
            buckets: vec![Bucket {
                upper: u64::MAX,
                count: 0,
            }],
            backing: Reservoir::new(sample_size),
            b_config: buckets,
            gamma,
            n: 0,
            recomputes: 0,
            splits: 0,
            rng: rng_from_seed(seed),
        }
    }

    /// Configured bucket budget `B`.
    pub fn target_buckets(&self) -> usize {
        self.b_config
    }

    /// Elements inserted so far.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Wholesale recomputations performed (the expensive path).
    pub fn recomputes(&self) -> u64 {
        self.recomputes
    }

    /// Split operations performed (the cheap path).
    pub fn splits(&self) -> u64 {
        self.splits
    }

    /// Insert one element.
    pub fn insert(&mut self, value: u64) {
        self.n += 1;
        self.backing.offer(value, &mut self.rng);
        let idx = self.bucket_of(value);
        self.buckets[idx].count += 1;
        let threshold = ((1.0 + self.gamma) * self.n as f64 / self.b_config as f64).ceil() as u64;
        if self.buckets[idx].count > threshold.max(2) {
            self.split_or_recompute(idx);
        }
    }

    /// Insert every element of an iterator.
    pub fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }

    /// The bucket boundaries (upper edges, ascending; last is `u64::MAX`).
    pub fn boundaries(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.upper).collect()
    }

    /// Approximate φ-quantile implied by the histogram: walk cumulative
    /// bucket counts to the target rank, then refine within the bucket
    /// using the backing sample. `None` before the first insert.
    pub fn quantile(&self, phi: f64) -> Option<u64> {
        if self.n == 0 {
            return None;
        }
        assert!((0.0..=1.0).contains(&phi), "phi must lie in [0, 1]");
        let target = (phi * self.n as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            if cum + b.count >= target {
                // Refine inside (lower, upper] with the backing sample.
                let lower = if i == 0 {
                    0
                } else {
                    self.buckets[i - 1].upper.saturating_add(1)
                };
                let within: Vec<u64> = self
                    .backing
                    .sample()
                    .iter()
                    .copied()
                    .filter(|&v| v >= lower && v <= b.upper)
                    .collect();
                if within.is_empty() {
                    return Some(b.upper);
                }
                let mut within = within;
                within.sort_unstable();
                let frac = (target - cum) as f64 / b.count.max(1) as f64;
                let pos = ((frac * within.len() as f64).ceil() as usize).clamp(1, within.len());
                return Some(within[pos - 1]);
            }
            cum += b.count;
        }
        self.buckets.last().map(|b| b.upper)
    }

    // ---- internals -------------------------------------------------------

    fn bucket_of(&self, value: u64) -> usize {
        self.buckets.partition_point(|b| b.upper < value)
    }

    fn split_or_recompute(&mut self, idx: usize) {
        if self.buckets.len() < self.b_config {
            // Budget available: split without merging.
            if self.try_split(idx) {
                return;
            }
            self.recompute();
            return;
        }
        // Find the cheapest adjacent pair to merge (not involving idx).
        let mut best: Option<(usize, u64)> = None;
        for j in 0..self.buckets.len() - 1 {
            if j == idx || j + 1 == idx {
                continue;
            }
            let sum = self.buckets[j].count + self.buckets[j + 1].count;
            if best.is_none_or(|(_, s)| sum < s) {
                best = Some((j, sum));
            }
        }
        let threshold = ((1.0 + self.gamma) * self.n as f64 / self.b_config as f64).ceil() as u64;
        match best {
            Some((j, sum)) if sum <= threshold => {
                // Merge j, j+1 then split idx.
                let merged_count = sum;
                self.buckets[j].upper = self.buckets[j + 1].upper;
                self.buckets[j].count = merged_count;
                self.buckets.remove(j + 1);
                let idx = if j + 1 < idx { idx - 1 } else { idx };
                if !self.try_split(idx) {
                    self.recompute();
                }
            }
            _ => self.recompute(),
        }
    }

    /// Split bucket `idx` at the median of the backing-sample elements it
    /// contains. Returns false when the sample cannot produce an interior
    /// boundary (e.g. all sampled values equal).
    fn try_split(&mut self, idx: usize) -> bool {
        let lower = if idx == 0 {
            0
        } else {
            self.buckets[idx - 1].upper.saturating_add(1)
        };
        let upper = self.buckets[idx].upper;
        let mut within: Vec<u64> = self
            .backing
            .sample()
            .iter()
            .copied()
            .filter(|&v| v >= lower && v <= upper)
            .collect();
        if within.len() < 2 {
            return false;
        }
        within.sort_unstable();
        let median = within[within.len() / 2];
        if median >= upper || median < lower {
            return false;
        }
        let count = self.buckets[idx].count;
        // Bucket idx becomes the lower half (lower..=median); a new bucket
        // takes (median..=upper]. The half counts are estimates until the
        // next recompute, per GMP97.
        self.buckets[idx].upper = median;
        self.buckets[idx].count = count - count / 2;
        self.buckets.insert(
            idx + 1,
            Bucket {
                upper,
                count: count / 2,
            },
        );
        self.splits += 1;
        true
    }

    /// Recompute all boundaries as equi-depth over the backing sample.
    fn recompute(&mut self) {
        let mut sample: Vec<u64> = self.backing.sample().to_vec();
        if sample.is_empty() {
            return;
        }
        sample.sort_unstable();
        let b = self.b_config;
        let mut new_buckets = Vec::with_capacity(b);
        for i in 1..=b {
            let upper = if i == b {
                u64::MAX
            } else {
                let pos = (i * sample.len()) / b;
                sample[pos.saturating_sub(1).min(sample.len() - 1)]
            };
            // Avoid non-increasing boundaries with heavy duplicates.
            if let Some(last) = new_buckets.last() {
                let last: &Bucket = last;
                if upper <= last.upper && i != b {
                    continue;
                }
            }
            new_buckets.push(Bucket { upper, count: 0 });
        }
        // Distribute the observed N evenly over the fresh buckets (the
        // counts restart as estimates, per GMP97's recompute phase).
        let per = self.n / new_buckets.len() as u64;
        for bkt in &mut new_buckets {
            bkt.count = per;
        }
        self.buckets = new_buckets;
        self.recomputes += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balances_uniform_stream() {
        let mut h = GmpHistogram::new(10, 0.5, 500, 1);
        for i in 0..100_000u64 {
            h.insert((i * 2654435761) % 1_000_000);
        }
        let med = h.quantile(0.5).unwrap();
        assert!(
            (med as f64 - 500_000.0).abs() < 60_000.0,
            "median estimate {med}"
        );
        // Uses the split machinery, not only recomputes.
        assert!(h.splits() + h.recomputes() > 0);
    }

    #[test]
    fn boundaries_are_sorted_and_capped() {
        let mut h = GmpHistogram::new(8, 0.5, 400, 2);
        for i in 0..50_000u64 {
            h.insert((i * 48271) % 100_000);
        }
        let bounds = h.boundaries();
        assert!(bounds.len() <= 8 + 1);
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "{bounds:?}");
        assert_eq!(*bounds.last().unwrap(), u64::MAX);
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = GmpHistogram::new(10, 0.5, 500, 3);
        for i in 0..30_000u64 {
            h.insert((i * 31) % 65_536);
        }
        let qs: Vec<u64> = [0.1, 0.3, 0.5, 0.7, 0.9]
            .iter()
            .map(|&p| h.quantile(p).unwrap())
            .collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]), "{qs:?}");
    }

    #[test]
    fn empty_histogram_returns_none() {
        let h = GmpHistogram::new(4, 0.5, 100, 4);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn heavy_duplicates_do_not_wedge() {
        let mut h = GmpHistogram::new(6, 0.5, 300, 5);
        for _ in 0..20_000 {
            h.insert(7);
        }
        assert_eq!(h.quantile(0.5), Some(7));
    }
}
