//! Exact, data-free replay of the collapse schedule.
//!
//! The sequence of `New`/`Collapse` operations performed by the engine is a
//! deterministic function of `(b, h)` alone — it depends neither on the
//! buffer size `k` nor on the data. Replaying it over buffer *metadata*
//! (weight, level) therefore lets us compute, exactly and per-prefix, the
//! quantities the paper bounds in closed form (§4.1–4.3):
//!
//! * the deterministic tree error `(W + w_max)/2` of Lemma 4, where `W` is
//!   the running sum of collapse-output weights (Lemma 5 equality: each
//!   collapse node's weight is the sum of its leaves' weights) and `w_max`
//!   is the heaviest buffer `Output` would consult,
//! * the Hoeffding quantity `X = (Σnᵢ)²/Σnᵢ²` of Lemma 2.
//!
//! Everything scales predictably with `k`: one completed leaf at rate `r`
//! contributes `k·r` mass and `k·r²` to `Σnᵢ²`, while `W` and `w_max` are
//! `k`-free. Working in *per-k units* (`m = mass/k`, `q = Σnᵢ²/k`) the
//! constraints for a candidate `(b, h)` collapse to three scalars:
//!
//! * `g_pre  = max over pre-onset prefixes of (W + w_max)/2m` — the
//!   deterministic phase needs `k ≥ g_pre / ε` (paper Eqn 3),
//! * `g_post = max over post-onset prefixes of (W + w_max)/2m` — the
//!   sampled phase needs `k ≥ g_post / (α·ε)` (paper Eqn 2),
//! * `x_min  = min over post-onset prefixes of m²/q` — the sampling step
//!   needs `k·x_min ≥ ln(2/δ)/(2(1−α)²ε²)` (paper Eqn 1).
//!
//! The within-leaf minimum of `X` is handled analytically (the fill is
//! linear in both `m` and `q`, so the minimum of `(m₀+tr)²/(q₀+tr²)` over
//! `t ∈ [0, 1]` is at an endpoint or the single interior critical point).
//!
//! The simulator inlines the adaptive lowest-level policy; tests cross-check
//! its decisions against the real engine's [`mrl_framework::TreeStats`].

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use mrl_framework::{Mrl99Schedule, RateSchedule};

/// Options controlling how far a schedule is replayed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimOptions {
    /// Abort (return `None`) if sampling has not started after this many
    /// leaves: the combination is too large to certify exactly.
    pub leaf_cap: u64,
    /// How many sampled levels past onset to replay. The per-prefix extrema
    /// converge geometrically; 32 levels covers streams up to ~`2^32·L_s·k`
    /// elements and is indistinguishable from the limit in f64.
    pub extra_levels: u32,
    /// Hard budget on total `New` steps; a replay exceeding it aborts with
    /// `None` (defensive guard against pathological onset rules whose
    /// level-ups need combinatorially many leaves).
    pub max_steps: u64,
}

impl Default for SimOptions {
    fn default() -> Self {
        Self {
            leaf_cap: 50_000,
            extra_levels: 32,
            max_steps: 20_000_000,
        }
    }
}

/// Scale-invariant constraint scalars extracted from one schedule replay.
#[derive(Clone, Debug, PartialEq)]
pub struct ScheduleScalars {
    /// Number of buffers `b`.
    pub b: usize,
    /// Sampling-onset level `h`.
    pub h: u32,
    /// Leaves created before sampling onset (`L_d`).
    pub l_d: u64,
    /// Leaves created at the first sampled level (`L_s`).
    pub l_s: u64,
    /// Max of `(W + w_max)/(2m)` over pre-onset prefixes (per-k units).
    pub g_pre: f64,
    /// Max of `(W + w_max)/(2m)` over post-onset prefixes (per-k units).
    pub g_post: f64,
    /// Min of `m²/q` over post-onset prefixes (`X = k · x_min`).
    pub x_min: f64,
    /// Greatest level reached during the replay.
    pub max_level: u32,
    /// Memory growth profile under lazy allocation: `(leaves, slots)` at
    /// each allocation event. Single entry `(0, b)` for upfront allocation.
    pub alloc_profile: Vec<(u64, usize)>,
}

#[derive(Clone, Copy, Debug)]
struct Slot {
    weight: u64,
    level: u32,
}

struct Sim<R: RateSchedule> {
    b: usize,
    slots: Vec<Option<Slot>>,
    allocated: usize,
    /// `thresholds[i]`: leaves required before slot `i` may be allocated.
    thresholds: Vec<u64>,
    schedule: Option<R>,
    leaves: u64,
    /// Per-k mass and sum of squared block sizes.
    m: u128,
    q: u128,
    /// Lemma-5 running sum of collapse-output weights.
    w_sum: u128,
    onset_leaves: Option<u64>,
    onset_max_level: Option<u32>,
    l_s_level1: u64,
    g_pre: f64,
    g_post: f64,
    x_min: f64,
    max_level: u32,
    alloc_profile: Vec<(u64, usize)>,
}

impl<R: RateSchedule> Sim<R> {
    fn new(b: usize, schedule: Option<R>, thresholds: Vec<u64>) -> Self {
        assert!(b >= 2, "need at least two buffers");
        assert_eq!(thresholds.len(), b, "one threshold per buffer");
        assert_eq!(thresholds[0], 0, "first buffer must be immediate");
        assert!(thresholds.windows(2).all(|w| w[0] <= w[1]));
        Sim {
            b,
            slots: Vec::with_capacity(b),
            allocated: 0,
            thresholds,
            schedule,
            leaves: 0,
            m: 0,
            q: 0,
            w_sum: 0,
            onset_leaves: None,
            onset_max_level: None,
            l_s_level1: 0,
            g_pre: 0.0,
            g_post: 0.0,
            x_min: f64::INFINITY,
            max_level: 0,
            alloc_profile: Vec::new(),
        }
    }

    fn rate(&self) -> u64 {
        self.schedule.as_ref().map_or(1, RateSchedule::rate)
    }

    fn new_level(&self) -> u32 {
        self.schedule
            .as_ref()
            .map_or(0, RateSchedule::new_buffer_level)
    }

    fn sampling_started(&self) -> bool {
        self.schedule
            .as_ref()
            .is_some_and(RateSchedule::sampling_started)
    }

    fn observe(&mut self, level: u32) {
        self.max_level = self.max_level.max(level);
        if let Some(s) = &mut self.schedule {
            s.observe_level(level);
        }
        self.record_onset_if_started();
    }

    fn record_onset_if_started(&mut self) {
        if self.sampling_started() && self.onset_leaves.is_none() {
            self.onset_leaves = Some(self.leaves);
            self.onset_max_level = Some(self.max_level);
        }
    }

    fn w_max_slots(&self) -> u64 {
        self.slots
            .iter()
            .flatten()
            .map(|s| s.weight)
            .max()
            .unwrap_or(0)
    }

    /// Record the constraint extrema at an event boundary (just before the
    /// next fill begins).
    fn check_point(&mut self) {
        if self.m == 0 {
            return;
        }
        // Output mid-fill would also see the upcoming leaf's rate as a
        // buffer weight; cover it conservatively.
        let w_max = self.w_max_slots().max(self.rate());
        let e = (self.w_sum as f64 + w_max as f64) / 2.0;
        let g = e / self.m as f64;
        if self.sampling_started() {
            self.g_post = self.g_post.max(g);
        } else {
            self.g_pre = self.g_pre.max(g);
        }
    }

    /// Track the within-leaf minimum of `X/k = (m₀+tr)²/(q₀+tr²)`,
    /// `t ∈ [0, 1]`, for the leaf about to be filled at rate `r`. Only
    /// meaningful once sampling has begun.
    fn check_x_through_fill(&mut self, r: u64) {
        if !self.sampling_started() {
            return;
        }
        let m0 = self.m as f64;
        let q0 = self.q as f64;
        let r = r as f64;
        let x_at = |t: f64| -> f64 {
            let m = m0 + t * r;
            let q = q0 + t * r * r;
            if q == 0.0 {
                f64::INFINITY
            } else {
                m * m / q
            }
        };
        let mut lo = x_at(0.0).min(x_at(1.0));
        // Critical point: d/dt (m²/q) = 0  ⇔  2q = r·m  ⇔  t* = (r·m₀ − 2q₀)/r².
        let t_star = (r * m0 - 2.0 * q0) / (r * r);
        if t_star > 0.0 && t_star < 1.0 {
            lo = lo.min(x_at(t_star));
        }
        if m0 > 0.0 {
            self.x_min = self.x_min.min(lo);
        }
    }

    fn empty_slot(&self) -> Option<usize> {
        self.slots.iter().position(Option::is_none)
    }

    fn full_count(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    /// One `New` operation: secure a slot (allocating or collapsing as the
    /// engine would), then add a leaf at the current rate and level.
    fn step_new(&mut self) {
        while self.empty_slot().is_none() {
            let may_allocate =
                self.allocated < self.b && self.leaves >= self.thresholds[self.allocated];
            if may_allocate || self.full_count() < 2 {
                assert!(self.allocated < self.b, "cannot make progress");
                self.slots.push(None);
                self.allocated += 1;
                self.alloc_profile.push((self.leaves, self.allocated));
            } else {
                self.collapse();
            }
        }
        let r = self.rate();
        let level = self.new_level();
        self.check_x_through_fill(r);
        let idx = self.empty_slot().expect("secured above");
        self.slots[idx] = Some(Slot { weight: r, level });
        self.leaves += 1;
        if let Some(s) = &mut self.schedule {
            s.observe_leaves(self.leaves);
        }
        self.record_onset_if_started();
        self.m += u128::from(r);
        self.q += u128::from(r) * u128::from(r);
        // Leaves created at the first sampled rate (L_s of Figure 3).
        if r == 2 {
            self.l_s_level1 += 1;
        }
        self.observe(level);
        self.check_point();
    }

    /// Adaptive lowest-level collapse (inlined; cross-checked against
    /// `mrl_framework::AdaptiveLowestLevel` by tests).
    fn collapse(&mut self) {
        let lowest = self
            .slots
            .iter()
            .flatten()
            .map(|s| s.level)
            .min()
            .expect("collapse requires full buffers");
        let count_at = |slots: &[Option<Slot>], l: u32| {
            slots.iter().flatten().filter(|s| s.level == l).count()
        };
        let mut level = lowest;
        if count_at(&self.slots, level) == 1 {
            // Promote the lone lowest buffer to the next occupied level.
            let next = self
                .slots
                .iter()
                .flatten()
                .map(|s| s.level)
                .filter(|&l| l > level)
                .min()
                .expect("at least two full buffers exist");
            for s in self.slots.iter_mut().flatten() {
                if s.level == level {
                    s.level = next;
                }
            }
            level = next;
        }
        let mut w: u64 = 0;
        let mut first: Option<usize> = None;
        for i in 0..self.slots.len() {
            if let Some(s) = self.slots[i] {
                if s.level == level {
                    w += s.weight;
                    if first.is_none() {
                        first = Some(i);
                    } else {
                        self.slots[i] = None;
                    }
                }
            }
        }
        let out_level = level + 1;
        self.slots[first.expect("at least two at level")] = Some(Slot {
            weight: w,
            level: out_level,
        });
        self.w_sum += u128::from(w);
        self.observe(out_level);
        self.check_point();
    }

    fn into_scalars(self, h: u32) -> ScheduleScalars {
        ScheduleScalars {
            b: self.b,
            h,
            l_d: self.onset_leaves.unwrap_or(self.leaves),
            l_s: self.l_s_level1,
            g_pre: self.g_pre,
            g_post: self.g_post,
            x_min: self.x_min,
            max_level: self.max_level,
            alloc_profile: self.alloc_profile,
        }
    }
}

/// Replay the unknown-`N` schedule for `(b, h)` with all buffers available
/// up front. Returns `None` if sampling has not begun within
/// `opts.leaf_cap` leaves (the combination is too large to certify).
pub fn simulate_schedule(b: usize, h: u32, opts: SimOptions) -> Option<ScheduleScalars> {
    let sim = Sim::new(b, Some(Mrl99Schedule::new(h)), vec![0; b]);
    drive(sim, opts).map(|s| s.into_scalars(h))
}

/// Replay the §5 dynamic-allocation algorithm: buffers allocated lazily
/// per `thresholds`, sampling onset when the tree reaches height `h` (as
/// in §3; under lazy allocation the early forced collapses deepen the
/// tree, so valid schedules pick `h` large enough that onset lands after
/// allocation completes — the paper's "use Eq 3 to limit h, the height to
/// which the tree is allowed to grow before we start sampling").
pub fn simulate_schedule_with_allocation(
    b: usize,
    h: u32,
    thresholds: Vec<u64>,
    opts: SimOptions,
) -> Option<ScheduleScalars> {
    let sim = Sim::new(b, Some(Mrl99Schedule::new(h)), thresholds);
    drive(sim, opts).map(|s| s.into_scalars(h))
}

/// Run a simulation through the pre-onset phase (abort at the leaf cap)
/// and `opts.extra_levels` tree levels beyond onset.
fn drive<R: RateSchedule>(mut sim: Sim<R>, opts: SimOptions) -> Option<Sim<R>> {
    while !sim.sampling_started() {
        if sim.leaves >= opts.leaf_cap || sim.leaves >= opts.max_steps {
            return None;
        }
        sim.step_new();
    }
    let target_level = sim.onset_max_level.expect("onset recorded") + opts.extra_levels;
    while sim.max_level < target_level {
        if sim.leaves >= opts.max_steps {
            return None;
        }
        sim.step_new();
    }
    Some(sim)
}

/// Replay a purely deterministic run (`rate = 1` forever) for exactly
/// `leaves` leaves and return the max of `(W + w_max)/(2m)` over all
/// prefixes — the per-k tree-error coefficient of the known-`N`
/// deterministic algorithm on `N = leaves·k` elements.
pub fn simulate_deterministic(b: usize, leaves: u64) -> f64 {
    let mut sim: Sim<Mrl99Schedule> = Sim::new(b, None, vec![0; b]);
    for _ in 0..leaves {
        sim.step_new();
    }
    sim.g_pre.max(sim.g_post)
}

/// Replay exactly `leaves` `New` operations of the unknown-`N` schedule and
/// return `(W, max_level, onset_leaves)` — the quantities a real engine
/// exposes through its `TreeStats`, for cross-checking the simulator
/// against real executions.
pub fn replay_prefix(b: usize, h: u32, leaves: u64) -> (u64, u32, Option<u64>) {
    let mut sim = Sim::new(b, Some(Mrl99Schedule::new(h)), vec![0; b]);
    for _ in 0..leaves {
        sim.step_new();
    }
    (
        u64::try_from(sim.w_sum).expect("W fits u64 for test-sized replays"),
        sim.max_level,
        sim.onset_leaves,
    )
}

/// Memoised [`simulate_schedule`] (the optimizer sweeps a `(b, h)` grid for
/// many `(ε, δ)` pairs; the replay depends only on `(b, h)` and the
/// options, which form the cache key).
pub fn simulate_schedule_cached(b: usize, h: u32, opts: SimOptions) -> Option<ScheduleScalars> {
    type Key = (usize, u32, u64, u32);
    static CACHE: OnceLock<Mutex<HashMap<Key, Option<ScheduleScalars>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let key = (b, h, opts.leaf_cap, opts.extra_levels);
    if let Some(hit) = cache.lock().expect("cache poisoned").get(&key) {
        return hit.clone();
    }
    let result = simulate_schedule(b, h, opts);
    cache
        .lock()
        .expect("cache poisoned")
        .insert(key, result.clone());
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combinatorics::{leaves_before_sampling, leaves_per_sampled_level};

    #[test]
    fn empirical_leaf_counts_match_binomial_formulas() {
        for b in 2..=7usize {
            for h in 1..=4u32 {
                let s = simulate_schedule(
                    b,
                    h,
                    SimOptions {
                        leaf_cap: 100_000,
                        extra_levels: 3,
                        ..SimOptions::default()
                    },
                )
                .expect("small combos always certify");
                assert_eq!(
                    s.l_d,
                    leaves_before_sampling(b as u64, u64::from(h)),
                    "L_d mismatch at b={b} h={h}"
                );
                assert_eq!(
                    s.l_s,
                    leaves_per_sampled_level(b as u64, u64::from(h)),
                    "L_s mismatch at b={b} h={h}"
                );
            }
        }
    }

    #[test]
    fn hand_simulated_b3_h2() {
        // Walked through in the combinatorics docs: onset after 6 leaves,
        // 3 leaves at level 1.
        let s = simulate_schedule(
            3,
            2,
            SimOptions {
                leaf_cap: 1000,
                extra_levels: 2,
                ..SimOptions::default()
            },
        )
        .unwrap();
        assert_eq!(s.l_d, 6);
        assert_eq!(s.l_s, 3);
    }

    #[test]
    fn leaf_cap_aborts_oversized_combos() {
        assert!(simulate_schedule(
            30,
            10,
            SimOptions {
                leaf_cap: 1000,
                extra_levels: 1,
                ..SimOptions::default()
            }
        )
        .is_none());
    }

    #[test]
    fn g_pre_is_bounded_by_h_over_two_plus_slack() {
        // Paper Eqn 3: the deterministic phase satisfies
        // (W + w_max)/2 <= (h'/2)·m with h' the vertex-height; our g_pre
        // should be close to and bounded by ~ (h+1)/2.
        for b in 2..=6usize {
            for h in 1..=4u32 {
                let s = simulate_schedule(b, h, SimOptions::default()).unwrap();
                assert!(
                    s.g_pre <= f64::from(h + 1) / 2.0 + 1e-9,
                    "g_pre {} exceeds (h+1)/2 at b={b} h={h}",
                    s.g_pre
                );
                assert!(s.g_pre > 0.0);
            }
        }
    }

    #[test]
    fn x_min_close_to_closed_form_bound() {
        use crate::combinatorics::min_x_per_k;
        for (b, h) in [(4usize, 2u32), (5, 3), (6, 2)] {
            let s = simulate_schedule(b, h, SimOptions::default()).unwrap();
            let closed = min_x_per_k(s.l_d, s.l_s, 48);
            // The closed form minimises over a *relaxation* (continuous
            // leaf counts, arbitrary shape), so it must lower-bound the
            // exact minimum; and it should not be wildly loose.
            assert!(
                s.x_min >= closed * 0.99,
                "exact x_min {} below closed-form lower bound {closed} (b={b} h={h})",
                s.x_min
            );
            assert!(
                s.x_min <= closed * 10.0,
                "closed form unexpectedly loose: exact {} vs {closed} (b={b} h={h})",
                s.x_min
            );
        }
    }

    #[test]
    fn deterministic_g_grows_with_leaves() {
        let g1 = simulate_deterministic(4, 10);
        let g2 = simulate_deterministic(4, 1_000);
        let g3 = simulate_deterministic(4, 20_000);
        assert!(g1 <= g2 && g2 <= g3);
        // Still logarithmic-ish: even 20k leaves with b=4 keeps the tree
        // shallow.
        assert!(g3 < 20.0, "g3={g3}");
    }

    #[test]
    fn cached_simulation_equals_fresh() {
        let fresh = simulate_schedule(4, 3, SimOptions::default());
        let cached1 = simulate_schedule_cached(4, 3, SimOptions::default());
        let cached2 = simulate_schedule_cached(4, 3, SimOptions::default());
        assert_eq!(fresh, cached1);
        assert_eq!(cached1, cached2);
    }

    #[test]
    fn lazy_allocation_profile_is_recorded() {
        let s = simulate_schedule_with_allocation(
            4,
            8,
            vec![0, 2, 6, 12],
            SimOptions {
                leaf_cap: 100_000,
                extra_levels: 8,
                ..SimOptions::default()
            },
        )
        .unwrap();
        assert!(
            s.l_d >= 12,
            "onset (l_d = {}) must come after allocation completes for a valid schedule",
            s.l_d
        );
        assert!(s.alloc_profile.len() >= 2, "profile: {:?}", s.alloc_profile);
        assert!(s.alloc_profile.windows(2).all(|w| w[0].1 < w[1].1));
        // Thresholds respected (allowing forced allocation when fewer than
        // two buffers are full -- which for these thresholds only applies to
        // the first two).
        for &(leaves, slots) in &s.alloc_profile {
            if slots > 2 {
                assert!(
                    leaves >= [0u64, 2, 6, 12][slots - 1],
                    "slot {slots} at {leaves} leaves"
                );
            }
        }
    }

    #[test]
    fn lazy_allocation_replay_is_deterministic() {
        let a =
            simulate_schedule_with_allocation(5, 6, vec![0, 1, 4, 10, 20], SimOptions::default())
                .unwrap();
        let b =
            simulate_schedule_with_allocation(5, 6, vec![0, 1, 4, 10, 20], SimOptions::default())
                .unwrap();
        assert_eq!(a, b);
        // A staged start cannot *reduce* the total information seen by the
        // sampler: the post-onset Hoeffding mass stays positive and finite.
        assert!(a.x_min.is_finite() && a.x_min > 0.0);
    }
}
