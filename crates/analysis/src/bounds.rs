//! Hoeffding's inequality and the paper's sampling constraint.
//!
//! Lemma 1 (Hoeffding): for independent `Xᵢ ∈ [0, nᵢ]` and `X = ΣXᵢ`,
//! `Pr[|X − EX| ≥ λ] ≤ 2·exp(−2λ² / Σnᵢ²)`.
//!
//! Lemma 2 applies this to the non-uniform sample: split the stream into `t`
//! disjoint blocks of sizes `n₁..n_t`, take one uniform representative per
//! block weighted by its block size, and let
//! `X = (Σnᵢ)² / Σnᵢ²`.
//! The probability that the weighted `(φ±αε)`-quantiles of the sample are
//! **not** ε-approximate φ-quantiles of the stream is at most
//! `2·exp(−2(1−α)²ε²·X)`.

/// Two-sided Hoeffding tail `2·exp(−2λ²/s2)` where `s2 = Σnᵢ²`.
///
/// # Panics
/// Panics if `s2 <= 0` or `lambda < 0`.
pub fn hoeffding_tail(lambda: f64, s2: f64) -> f64 {
    assert!(s2 > 0.0, "sum of squared ranges must be positive");
    assert!(lambda >= 0.0, "deviation must be non-negative");
    (2.0 * (-2.0 * lambda * lambda / s2).exp()).min(1.0)
}

/// Failure probability of the non-uniform sampling step (Lemma 2):
/// `2·exp(−2(1−α)²ε²·X)` with `X = (Σnᵢ)²/Σnᵢ²`.
pub fn sampling_failure(alpha: f64, epsilon: f64, x: f64) -> f64 {
    assert!((0.0..1.0).contains(&alpha), "alpha must lie in [0, 1)");
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must lie in (0, 1)");
    assert!(x >= 0.0, "X must be non-negative");
    let lam = (1.0 - alpha) * epsilon;
    (2.0 * (-2.0 * lam * lam * x).exp()).min(1.0)
}

/// The smallest `X` for which the sampling step fails with probability at
/// most `δ` (Eqn 1 rearranged): `X ≥ ln(2/δ) / (2(1−α)²ε²)`.
pub fn required_x(alpha: f64, epsilon: f64, delta: f64) -> f64 {
    assert!((0.0..1.0).contains(&alpha), "alpha must lie in [0, 1)");
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must lie in (0, 1)");
    assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0, 1)");
    let lam = (1.0 - alpha) * epsilon;
    (2.0 / delta).ln() / (2.0 * lam * lam)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_decreases_with_deviation() {
        let a = hoeffding_tail(1.0, 100.0);
        let b = hoeffding_tail(10.0, 100.0);
        let c = hoeffding_tail(100.0, 100.0);
        assert!(a > b && b > c);
        assert!(c < 1e-80);
    }

    #[test]
    fn tail_is_capped_at_one() {
        assert_eq!(hoeffding_tail(0.0, 100.0), 1.0);
    }

    #[test]
    fn required_x_inverts_sampling_failure() {
        for &(alpha, eps, delta) in &[(0.5, 0.01, 1e-4), (0.3, 0.001, 1e-3), (0.9, 0.1, 0.05)] {
            let x = required_x(alpha, eps, delta);
            let p = sampling_failure(alpha, eps, x);
            assert!((p - delta).abs() / delta < 1e-9, "p={p} delta={delta}");
            // More sample mass -> smaller failure probability.
            assert!(sampling_failure(alpha, eps, 2.0 * x) < delta);
        }
    }

    #[test]
    fn required_x_grows_quadratically_in_inverse_epsilon() {
        let x1 = required_x(0.5, 0.02, 1e-4);
        let x2 = required_x(0.5, 0.01, 1e-4);
        assert!((x2 / x1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_sampling_case_matches_folklore() {
        // Uniform blocks (reservoir baseline): X equals the sample size s,
        // so required_x with alpha=0 reproduces ln(2/δ)/(2ε²).
        let s = required_x(0.0, 0.01, 0.01);
        let folklore = (2.0f64 / 0.01).ln() / (2.0 * 0.01 * 0.01);
        assert!((s - folklore).abs() < 1e-9);
    }
}
