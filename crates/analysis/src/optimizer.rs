//! Parameter selection (§4.5): minimise memory `b·k` subject to the
//! sampling and tree constraints, for the unknown-`N` algorithm, the
//! known-`N` baselines (MRL98), and the multi-quantile variants (§4.7).
//!
//! For a candidate `(b, h)` the exact schedule replay
//! ([`crate::simulate`]) yields three scalars `(g_pre, g_post, x_min)`;
//! for a given error split `α ∈ (0, 1)` the buffer size must satisfy
//!
//! ```text
//! k ≥ g_pre / ε                         (pre-onset tree error, Eqn 3)
//! k ≥ g_post / (α·ε)                    (post-onset tree error, Eqn 2)
//! k ≥ ln(2/δ) / (2(1−α)²ε² · x_min)     (sampling error,       Eqn 1)
//! ```
//!
//! The optimizer minimises `b·k` over the `(b, h)` grid and the optimal `α`
//! (the max of a decreasing and an increasing function of `α`, minimised at
//! their crossing).

use crate::bounds::required_x;
use crate::combinatorics::binomial;
use crate::simulate::{simulate_schedule, simulate_schedule_cached, ScheduleScalars, SimOptions};

/// Search-space options for the optimizer.
#[derive(Clone, Copy, Debug)]
pub struct OptimizerOptions {
    /// Largest number of buffers considered (paper: 50; default 30 — the
    /// optimum sits well inside for all practical ε, δ).
    pub max_b: usize,
    /// Largest sampling-onset level considered.
    pub max_h: u32,
    /// Replay abort threshold: combinations whose pre-onset phase exceeds
    /// this many leaves are skipped.
    pub leaf_cap: u64,
    /// Use the global `(b, h)` replay cache.
    pub use_cache: bool,
}

impl Default for OptimizerOptions {
    fn default() -> Self {
        Self {
            max_b: 30,
            max_h: 10,
            leaf_cap: 50_000,
            use_cache: true,
        }
    }
}

impl OptimizerOptions {
    /// A reduced grid for fast unit tests and debug builds.
    pub fn fast() -> Self {
        Self {
            max_b: 12,
            max_h: 6,
            leaf_cap: 20_000,
            use_cache: true,
        }
    }
}

/// A certified parameterisation of the unknown-`N` algorithm.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct UnknownNConfig {
    /// Number of buffers.
    pub b: usize,
    /// Buffer size.
    pub k: usize,
    /// Sampling-onset level.
    pub h: u32,
    /// Error split: `α·ε` to the deterministic tree, `(1−α)·ε` to sampling.
    pub alpha: f64,
    /// Approximation guarantee.
    pub epsilon: f64,
    /// Failure probability.
    pub delta: f64,
    /// Total memory in elements (`b·k`).
    pub memory: usize,
}

fn scalars_for(b: usize, h: u32, opts: &OptimizerOptions) -> Option<ScheduleScalars> {
    let sim_opts = SimOptions {
        leaf_cap: opts.leaf_cap,
        ..SimOptions::default()
    };
    if opts.use_cache {
        simulate_schedule_cached(b, h, sim_opts)
    } else {
        simulate_schedule(b, h, sim_opts)
    }
}

/// Smallest `k` satisfying all three constraints for the given scalars and
/// split `α`, or `None` if `α` is out of range.
fn k_needed(s: &ScheduleScalars, epsilon: f64, delta: f64, alpha: f64) -> Option<f64> {
    if !(0.0 < alpha && alpha < 1.0) {
        return None;
    }
    let k_pre = s.g_pre / epsilon;
    let k_post = s.g_post / (alpha * epsilon);
    let k_sample = required_x(alpha, epsilon, delta) / s.x_min;
    Some(k_pre.max(k_post).max(k_sample))
}

/// Optimal `(α, k)` for one `(b, h)` candidate: coarse grid then golden
/// refinement.
fn best_alpha(s: &ScheduleScalars, epsilon: f64, delta: f64) -> (f64, f64) {
    let mut best = (0.5, f64::INFINITY);
    let mut alpha = 0.005;
    while alpha < 1.0 {
        if let Some(k) = k_needed(s, epsilon, delta, alpha) {
            if k < best.1 {
                best = (alpha, k);
            }
        }
        alpha += 0.005;
    }
    // Golden-section refinement around the best grid point.
    let (mut lo, mut hi) = ((best.0 - 0.005).max(1e-6), (best.0 + 0.005).min(1.0 - 1e-6));
    for _ in 0..60 {
        let m1 = lo + (hi - lo) * 0.381_966;
        let m2 = hi - (hi - lo) * 0.381_966;
        let k1 = k_needed(s, epsilon, delta, m1).unwrap_or(f64::INFINITY);
        let k2 = k_needed(s, epsilon, delta, m2).unwrap_or(f64::INFINITY);
        if k1 <= k2 {
            hi = m2;
        } else {
            lo = m1;
        }
    }
    let alpha = 0.5 * (lo + hi);
    let k = k_needed(s, epsilon, delta, alpha).unwrap_or(f64::INFINITY);
    if k < best.1 {
        (alpha, k)
    } else {
        best
    }
}

/// Optimise the unknown-`N` algorithm for `(ε, δ)` with default options.
///
/// # Panics
/// Panics if `ε ∉ (0, 1)`, `δ ∉ (0, 1)`, or no feasible configuration
/// exists in the search space (does not happen for practical parameters).
pub fn optimize_unknown_n(epsilon: f64, delta: f64) -> UnknownNConfig {
    optimize_unknown_n_with(epsilon, delta, OptimizerOptions::default())
}

/// Optimise the unknown-`N` algorithm over an explicit search space.
///
/// # Panics
/// See [`optimize_unknown_n`].
pub fn optimize_unknown_n_with(epsilon: f64, delta: f64, opts: OptimizerOptions) -> UnknownNConfig {
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must lie in (0, 1)");
    assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0, 1)");
    let mut best: Option<UnknownNConfig> = None;
    for b in 2..=opts.max_b {
        for h in 1..=opts.max_h {
            // Prune combos whose pre-onset phase is over the cap without
            // simulating (binomial is exact for the adaptive policy).
            if binomial(b as u64 + u64::from(h) - 1, u64::from(h)) > opts.leaf_cap {
                continue;
            }
            let Some(s) = scalars_for(b, h, &opts) else {
                continue;
            };
            let (alpha, k) = best_alpha(&s, epsilon, delta);
            if !k.is_finite() {
                continue;
            }
            let k = k.ceil().max(1.0) as usize;
            let memory = b * k;
            if best.as_ref().is_none_or(|c| memory < c.memory) {
                best = Some(UnknownNConfig {
                    b,
                    k,
                    h,
                    alpha,
                    epsilon,
                    delta,
                    memory,
                });
            }
        }
    }
    best.expect("no feasible configuration in the search space")
}

/// Optimise for `p` simultaneous quantiles (§4.7): identical algorithm with
/// `δ → δ/p` (union bound over the `p` outputs; the deterministic tree
/// answers any number of quantiles with the same guarantee).
pub fn optimize_multi(epsilon: f64, delta: f64, p: u64) -> UnknownNConfig {
    assert!(p >= 1, "need at least one quantile");
    optimize_unknown_n(epsilon, delta / p as f64)
}

/// Memory bound independent of the number of quantiles (§4.7's
/// pre-computation trick): compute `⌈1/ε⌉` quantiles at guarantee `ε/2`,
/// then answer any `φ` from the pre-computed grid.
pub fn precompute_memory(epsilon: f64, delta: f64) -> UnknownNConfig {
    let p = (1.0 / epsilon).ceil() as u64;
    optimize_multi(epsilon / 2.0, delta, p)
}

// ---------------------------------------------------------------------------
// Known-N baselines (MRL98), for Table 1 and Figure 4.
// ---------------------------------------------------------------------------

/// How a known-`N` plan acquires its input.
#[derive(Clone, Debug, PartialEq)]
pub enum KnownNMode {
    /// Every element enters the tree (no sampling error).
    Deterministic,
    /// A uniform pre-sample of `sample_size` elements feeds the tree.
    Sampled {
        /// Number of uniform samples drawn from the stream.
        sample_size: u64,
        /// Error split between sampling and the tree.
        alpha: f64,
    },
}

/// A memory plan for the known-`N` algorithm of MRL98.
#[derive(Clone, Debug, PartialEq)]
pub struct KnownNPlan {
    /// Number of buffers.
    pub b: usize,
    /// Buffer size.
    pub k: usize,
    /// Total memory in elements.
    pub memory: usize,
    /// Deterministic or sampled front-end.
    pub mode: KnownNMode,
}

/// Exact deterministic tree-error coefficient `g(b, leaves)` (max of
/// `(W + w_max)/2m` over all prefixes of a rate-1 run), memoised — the
/// known-`N` optimizer probes many `(b, leaves)` pairs.
fn deterministic_g_cached(b: usize, leaves: u64) -> f64 {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    static CACHE: OnceLock<Mutex<HashMap<(usize, u64), f64>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(&hit) = cache.lock().expect("cache poisoned").get(&(b, leaves)) {
        return hit;
    }
    let g = crate::simulate::simulate_deterministic(b, leaves);
    cache.lock().expect("cache poisoned").insert((b, leaves), g);
    g
}

/// Deterministic known-`N` plan: every element enters the tree.
///
/// Candidates come from two regimes: for trees of up to ~64k leaves the
/// error coefficient is **certified by exact schedule replay**; beyond that
/// the rigorous closed form applies — a tree with `b` buffers that reaches
/// level `ℓ` covers `C(b+ℓ−1, ℓ)` leaves and its error coefficient is at
/// most `(ℓ+1)/2` per `k` (each leaf passes through ≤ ℓ collapses, so
/// `W ≤ m·ℓ` and `w_max ≤ m`).
pub fn optimize_deterministic_known_n(epsilon: f64, n: u64) -> KnownNPlan {
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must lie in (0, 1)");
    assert!(n >= 1, "need at least one element");
    // Trivial plan: store everything (error zero). Split across 2 buffers.
    let trivial_k = n.div_ceil(2).max(1);
    let mut best = KnownNPlan {
        b: 2,
        k: usize::try_from(trivial_k).unwrap_or(usize::MAX / 2),
        memory: usize::try_from(trivial_k.saturating_mul(2)).unwrap_or(usize::MAX),
        mode: KnownNMode::Deterministic,
    };
    for b in 2..=50usize {
        // Level 0: no collapses ever; requires n <= b*k with no error
        // constraint.
        {
            let k = n.div_ceil(b as u64);
            let memory = usize::try_from(k.saturating_mul(b as u64)).unwrap_or(usize::MAX);
            if memory < best.memory {
                best = KnownNPlan {
                    b,
                    k: k as usize,
                    memory,
                    mode: KnownNMode::Deterministic,
                };
            }
        }
        // Exact regime: sweep leaf counts geometrically, certify the error
        // coefficient by replay, and fix k from coverage + error.
        if b <= 30 {
            let mut leaves = 2u64;
            while leaves <= 65_536 {
                let g = deterministic_g_cached(b, leaves);
                let k_err = (g / epsilon).ceil() as u64;
                let k_cov = n.div_ceil(leaves);
                let k = k_err.max(k_cov).max(1);
                // Check the chosen k really covers n within `leaves` leaves.
                if n.div_ceil(k) <= leaves {
                    let memory = (b as u64).saturating_mul(k);
                    if memory < best.memory as u64 {
                        best = KnownNPlan {
                            b,
                            k: k as usize,
                            memory: memory as usize,
                            mode: KnownNMode::Deterministic,
                        };
                    }
                }
                leaves = (leaves as f64 * 1.5).ceil() as u64;
            }
        }
        // Closed-form regime for very deep trees.
        for level in 1..=48u32 {
            let max_leaves = binomial(b as u64 + u64::from(level) - 1, u64::from(level));
            // k must cover the leaves and absorb the tree error.
            let k_err = (f64::from(level + 1) / (2.0 * epsilon)).ceil() as u64;
            // Coverage: leaves(k) = ceil(n/k) <= max_leaves  <=>  k >= n/max_leaves.
            let k_cov = n.div_ceil(max_leaves);
            let k = k_err.max(k_cov).max(1);
            let memory = (b as u64).saturating_mul(k);
            if memory < best.memory as u64 {
                best = KnownNPlan {
                    b,
                    k: k as usize,
                    memory: memory as usize,
                    mode: KnownNMode::Deterministic,
                };
            }
        }
    }
    best
}

/// Sampled known-`N` plan: draw a uniform sample of size
/// `s(α) = ⌈ln(2/δ)/(2(1−α)²ε²)⌉` (for uniform blocks `X = s`), feed it to
/// a deterministic tree with guarantee `α·ε`. Memory is the tree's only —
/// the sample streams through.
pub fn optimize_sampled_known_n(epsilon: f64, delta: f64) -> KnownNPlan {
    assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0, 1)");
    let mut best: Option<KnownNPlan> = None;
    let mut alpha = 0.02;
    while alpha < 1.0 {
        let s = required_x(alpha, epsilon, delta).ceil() as u64;
        let tree = optimize_deterministic_known_n(alpha * epsilon, s);
        let candidate = KnownNPlan {
            b: tree.b,
            k: tree.k,
            memory: tree.memory,
            mode: KnownNMode::Sampled {
                sample_size: s,
                alpha,
            },
        };
        if best.as_ref().is_none_or(|p| candidate.memory < p.memory) {
            best = Some(candidate);
        }
        alpha += 0.02;
    }
    best.expect("alpha grid is nonempty")
}

/// The best known-`N` plan for a stream of exactly `n` elements: the
/// cheaper of the deterministic and sampled variants (the sampled variant
/// only applies when its sample is actually smaller than the stream).
pub fn optimize_known_n(epsilon: f64, delta: f64, n: u64) -> KnownNPlan {
    let det = optimize_deterministic_known_n(epsilon, n);
    let sam = optimize_sampled_known_n(epsilon, delta);
    let sample_applicable = match &sam.mode {
        KnownNMode::Sampled { sample_size, .. } => *sample_size < n,
        KnownNMode::Deterministic => false,
    };
    if sample_applicable && sam.memory < det.memory {
        sam
    } else {
        det
    }
}

/// Memory (elements) of the best known-`N` plan — the Figure 4 curve.
pub fn known_n_memory(epsilon: f64, delta: f64, n: u64) -> usize {
    optimize_known_n(epsilon, delta, n).memory
}

#[cfg(test)]
mod tests {
    use super::*;

    const FAST: OptimizerOptions = OptimizerOptions {
        max_b: 12,
        max_h: 6,
        leaf_cap: 20_000,
        use_cache: true,
    };

    #[test]
    fn unknown_n_config_satisfies_all_constraints() {
        let c = optimize_unknown_n_with(0.05, 0.01, FAST);
        let s = simulate_schedule(
            c.b,
            c.h,
            SimOptions {
                leaf_cap: 20_000,
                ..SimOptions::default()
            },
        )
        .unwrap();
        let k = c.k as f64;
        assert!(k >= s.g_pre / c.epsilon - 1.0);
        assert!(k >= s.g_post / (c.alpha * c.epsilon) - 1.0);
        assert!(k * s.x_min >= required_x(c.alpha, c.epsilon, c.delta) - 1.0);
        assert_eq!(c.memory, c.b * c.k);
    }

    #[test]
    fn memory_decreases_with_looser_epsilon() {
        let tight = optimize_unknown_n_with(0.01, 0.001, FAST);
        let loose = optimize_unknown_n_with(0.05, 0.001, FAST);
        assert!(loose.memory < tight.memory);
    }

    #[test]
    fn memory_decreases_with_looser_delta() {
        let tight = optimize_unknown_n_with(0.02, 1e-6, FAST);
        let loose = optimize_unknown_n_with(0.02, 1e-2, FAST);
        assert!(loose.memory <= tight.memory);
    }

    #[test]
    fn multi_quantile_memory_grows_slowly() {
        // Table 2's shape: delta -> delta/p costs O(log log p).
        let p1 = optimize_multi(0.02, 0.001, 1);
        let p100 = optimize_multi(0.02, 0.001, 100);
        assert!(p100.memory >= p1.memory);
        assert!(
            (p100.memory as f64) < 1.6 * p1.memory as f64,
            "p=100 memory {} vs p=1 {} grew too fast",
            p100.memory,
            p1.memory
        );
    }

    #[test]
    fn precompute_bound_exceeds_small_p() {
        // The precompute trick halves epsilon, which dominates: it should
        // cost noticeably more than a handful of quantiles.
        let few = optimize_multi(0.02, 0.001, 10);
        let pre = precompute_memory(0.02, 0.001);
        assert!(pre.memory > few.memory);
    }

    #[test]
    fn deterministic_known_n_small_stream_is_exact_storage() {
        let p = optimize_deterministic_known_n(0.01, 10);
        assert!(p.memory <= 12, "memory {} for 10 elements", p.memory);
    }

    #[test]
    fn deterministic_known_n_grows_polylog() {
        let m6 = optimize_deterministic_known_n(0.01, 1_000_000).memory;
        let m9 = optimize_deterministic_known_n(0.01, 1_000_000_000).memory;
        assert!(m9 > m6);
        // log^2 growth, nowhere near linear.
        assert!((m9 as f64) < 3.0 * m6 as f64, "m6={m6} m9={m9}");
    }

    #[test]
    fn sampled_known_n_is_constant_in_n() {
        let s = optimize_sampled_known_n(0.01, 1e-4);
        match s.mode {
            KnownNMode::Sampled { sample_size, alpha } => {
                assert!(sample_size > 0);
                assert!(alpha > 0.0 && alpha < 1.0);
            }
            KnownNMode::Deterministic => panic!("expected sampled mode"),
        }
    }

    #[test]
    fn known_n_curve_is_monotone_then_flat() {
        // Figure 4's known-N shape.
        let eps = 0.01;
        let delta = 1e-4;
        let mems: Vec<usize> = (4..=12)
            .map(|log_n| known_n_memory(eps, delta, 10u64.pow(log_n)))
            .collect();
        for w in mems.windows(2) {
            assert!(w[1] >= w[0] || w[1] == *mems.last().unwrap());
        }
        // Flat tail: once sampling wins, memory stops growing.
        assert_eq!(mems[mems.len() - 1], mems[mems.len() - 2]);
    }

    #[test]
    fn unknown_n_within_small_factor_of_known_n() {
        // §4.6: "the new algorithm requires no more than twice the memory
        // of the old one". Allow a bit of slack: our constants come from a
        // certified (not hand-tuned) analysis on both sides.
        let u = optimize_unknown_n_with(0.05, 0.01, FAST);
        let k = known_n_memory(0.05, 0.01, u64::MAX);
        let ratio = u.memory as f64 / k as f64;
        assert!(
            ratio < 3.0,
            "unknown-N {} vs known-N {k}: ratio {ratio:.2}",
            u.memory
        );
    }
}
