//! Closed-form quantities of the paper's analysis (§4.1, §4.5).
//!
//! With the adaptive lowest-level collapse policy and sampling onset at
//! buffer **level** `h` (the [`mrl_framework::Mrl99Schedule`] convention;
//! the paper counts tree height in vertices, so its `h` is ours plus one),
//! a run with `b` buffers accommodates
//!
//! * `L_d = C(b + h − 1, h)` weight-1 leaves before sampling starts, and
//! * `L_s = C(b + h − 2, h)` leaves at each sampled level
//!
//! (paper §4.5: `L_d = C(b+h−2, h−1)`, `L_s = C(b+h−3, h−1)` in its
//! vertex-height convention). These counts are verified against the exact
//! schedule simulation in this crate's tests.
//!
//! The Hoeffding quantity `X = (Σnᵢ)²/Σnᵢ²` of the non-uniform sample is
//! minimised over tree shapes in closed form (footnote 1: the minimum of
//! `(a + t)²/(b + t)` over `t ≥ 0` is `4(a − b)` at `t = a − 2b` when
//! `a ≥ 2b`, else the value at `t = 0`).
//!
//! These closed forms are *cross-checks*: the optimizer itself uses the
//! exact schedule simulation of [`crate::simulate`], and tests assert the
//! two agree.

/// Binomial coefficient `C(n, k)` saturating at `u64::MAX`.
pub fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc.saturating_mul((n - i) as u128) / (i as u128 + 1);
        if acc > u64::MAX as u128 {
            return u64::MAX;
        }
    }
    acc as u64
}

/// `L_d(b, h) = C(b + h − 1, h)`: number of weight-1 leaves created before
/// the first buffer at level `h` appears (sampling onset), with `b` buffers
/// under the adaptive lowest-level policy.
///
/// # Panics
/// Panics if `b < 2` or `h < 1`.
pub fn leaves_before_sampling(b: u64, h: u64) -> u64 {
    assert!(b >= 2, "need at least two buffers");
    assert!(h >= 1, "onset level must be at least 1");
    binomial(b + h - 1, h)
}

/// `L_s(b, h) = C(b + h − 2, h)`: leaves created at each sampled level
/// before the tree grows one more level.
///
/// # Panics
/// Panics if `b < 2` or `h < 1`.
pub fn leaves_per_sampled_level(b: u64, h: u64) -> u64 {
    assert!(b >= 2, "need at least two buffers");
    assert!(h >= 1, "onset level must be at least 1");
    binomial(b + h - 2, h)
}

/// Closed-form lower bound on the Hoeffding quantity `X/k` for the MRL99
/// tree shape, minimised over the number of completed sampled levels `H ≥ 1`
/// and the (continuous) number of leaves at the top level.
///
/// Units: the return value is `X / k`; multiply by the buffer size `k` to
/// get `X` (§4.1 expresses the same bound as
/// `X ≥ min[2·L_d·k, 8/3·L_s·k]`-style closed forms).
pub fn min_x_per_k(l_d: u64, l_s: u64, max_levels: u32) -> f64 {
    let l_d = l_d as f64;
    let l_s = l_s as f64;
    let mut best = f64::INFINITY;
    for h_cur in 1..=max_levels {
        // Mass (per k) of full levels: level 0 contributes L_d (blocks of
        // size 1), level i in 1..H contributes L_s·2^i; the top level H has
        // t >= 0 leaves of block size 2^H.
        let two_h = (h_cur as f64).exp2();
        let four_h = two_h * two_h;
        let (p, q) = if h_cur == 1 {
            (l_d, l_d)
        } else {
            // sum_{i=1}^{H-1} 2^i = 2^H - 2 ; sum 4^i = (4^H - 4)/3
            (l_d + (two_h - 2.0) * l_s, l_d + (four_h - 4.0) / 3.0 * l_s)
        };
        // X/k as a function of top-level leaf count u:
        //   X/k = (P + 2^H u)² / (Q + 4^H u).
        // Substitute t = 2^H·u:  X/k = 2^{-H} (P + t)²/(Q·2^{-H} + t).
        let a = p;
        let bb = q / two_h;
        let value_at = |t: f64| -> f64 { (a + t) * (a + t) / (bb + t) / two_h };
        let t_star = a - 2.0 * bb;
        let v = if t_star > 0.0 {
            // minimum value 4(a − bb)·2^{−H}
            4.0 * (a - bb) / two_h
        } else {
            value_at(0.0)
        };
        best = best.min(v);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_basics() {
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(10, 3), 120);
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(binomial(200, 100), u64::MAX); // saturates
    }

    #[test]
    fn binomial_symmetry() {
        for n in 0..30u64 {
            for k in 0..=n {
                assert_eq!(binomial(n, k), binomial(n, n - k));
            }
        }
    }

    #[test]
    fn pascal_identity() {
        for n in 1..40u64 {
            for k in 1..n {
                assert_eq!(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k));
            }
        }
    }

    #[test]
    fn leaf_counts_small_cases() {
        // Onset at level 1 = the first collapse, which happens once all b
        // buffers are full: L_d = C(b, 1) = b.
        for b in 2..10u64 {
            assert_eq!(leaves_before_sampling(b, 1), b);
        }
        // b = 3, onset level 2: hand-simulated in the module docs of
        // `simulate`: 3 leaves -> collapse -> 2 leaves -> collapse ->
        // 1 leaf -> promote + collapse to level 2. Total 6 leaves.
        assert_eq!(leaves_before_sampling(3, 2), 6);
        assert_eq!(leaves_per_sampled_level(3, 2), 3);
        // b = 3, onset level 3: 10 leaves.
        assert_eq!(leaves_before_sampling(3, 3), 10);
        // b = 2: the tree degenerates to a path; L_d = C(h + 1, h) = h + 1.
        for h in 1..10u64 {
            assert_eq!(leaves_before_sampling(2, h), h + 1);
        }
    }

    #[test]
    fn min_x_interpolates_between_closed_forms() {
        // The paper's bound is min[~L_d, ~8/3·L_s]-shaped. With L_d = 1 the
        // H = 1 shape (t = 0) pins the minimum at L_d.
        let x_small_ld = min_x_per_k(1, 1_000, 48);
        assert!(x_small_ld > 0.0 && x_small_ld <= 1.0 + 1e-9, "{x_small_ld}");
        // With L_s tiny, deep trees dominated by the top level drive X to
        // the 8/3·L_s asymptote regardless of L_d.
        let x_small_ls = min_x_per_k(1_000_000, 1, 48);
        assert!(
            (x_small_ls - 8.0 / 3.0).abs() < 0.1,
            "expected ~8/3, got {x_small_ls}"
        );
        // Balanced counts: the H = 1 shape gives exactly L_d, below the
        // 8/3·L_s asymptote, so the minimum is L_d.
        let x_bal = min_x_per_k(1_000, 1_000, 48);
        assert!((x_bal - 1_000.0).abs() < 1e-6, "{x_bal}");
    }

    #[test]
    fn min_x_monotone_in_leaf_counts() {
        let a = min_x_per_k(100, 100, 48);
        let b = min_x_per_k(200, 200, 48);
        assert!(b >= a);
    }

    #[test]
    fn min_x_matches_brute_force_scan() {
        // Brute-force over integer top-level leaf counts.
        let (l_d, l_s) = (50u64, 20u64);
        let closed = min_x_per_k(l_d, l_s, 20);
        let mut brute = f64::INFINITY;
        for h_cur in 1..=20u32 {
            let two_h = (h_cur as f64).exp2();
            let four_h = two_h * two_h;
            let (p, q) = if h_cur == 1 {
                (l_d as f64, l_d as f64)
            } else {
                (
                    l_d as f64 + (two_h - 2.0) * l_s as f64,
                    l_d as f64 + (four_h - 4.0) / 3.0 * l_s as f64,
                )
            };
            for u in 0..100_000u64 {
                let m = p + two_h * u as f64;
                let qq = q + four_h * u as f64;
                brute = brute.min(m * m / qq);
            }
        }
        assert!(
            (closed - brute).abs() / brute < 1e-3,
            "closed={closed} brute={brute}"
        );
    }
}
