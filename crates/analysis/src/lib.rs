//! Probabilistic analysis and parameter selection for the MRL quantile
//! algorithms.
//!
//! This crate turns the paper's §4 analysis into executable form:
//!
//! * [`bounds`] — Hoeffding's inequality (Lemma 1) and the sampling
//!   constraint `X ≥ ln(2/δ) / (2(1−α)²ε²)` (Lemma 2 / Eqn 1).
//! * [`kl`] — Kullback–Leibler divergence and the Stein's-lemma sample
//!   sizing of the extreme-value estimator (§7, Lemma 6).
//! * [`combinatorics`] — closed-form leaf counts `L_d = C(b+h−2, h−1)`,
//!   `L_s = C(b+h−3, h−1)` (§4.5) and the closed-form minimisation of the
//!   Hoeffding quantity `X` over tree shapes (§4.1, footnote 1).
//! * [`simulate`] — an exact, **data-free replay of the collapse schedule**
//!   (buffer weights and levels only). Because the schedule is a
//!   deterministic function of `(b, h)` — it does not depend on `k` or on
//!   the data — one simulation yields scale-invariant scalars from which the
//!   constraints for *any* `k` follow. This certifies the algorithm's
//!   guarantee without relying on the weakened closed forms, and is
//!   cross-checked against both the closed forms and real engine runs in
//!   tests.
//! * [`optimizer`] — the §4.5 optimisation: minimise memory `b·k` subject to
//!   the sampling and tree constraints; plus the known-`N` baseline (Table 1,
//!   Figure 4) and the multi-quantile variants (Table 2).
//! * [`schedule`] — §5 dynamic buffer-allocation schedules: validation and
//!   search under user-specified memory ceilings (Figure 5).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod bounds;
pub mod combinatorics;
pub mod kl;
pub mod optimizer;
pub mod schedule;
pub mod simulate;

pub use bounds::{hoeffding_tail, required_x};
pub use kl::{kl_divergence_bits, stein_failure_bound, stein_sample_size};
pub use optimizer::{
    known_n_memory, optimize_known_n, optimize_multi, optimize_unknown_n, precompute_memory,
    KnownNPlan, OptimizerOptions, UnknownNConfig,
};
pub use schedule::{find_schedule, validate_schedule, AllocationPlan, MemoryLimit};
pub use simulate::{simulate_schedule, ScheduleScalars, SimOptions};
