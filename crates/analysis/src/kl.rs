//! Kullback–Leibler divergence and Stein's-lemma sample sizing (§7).
//!
//! The extreme-value estimator keeps the `k = ⌈φs⌉` smallest elements of a
//! uniform sample of size `s`. The estimate (the k-th smallest sample
//! element) fails to be an ε-approximate φ-quantile only if a likelihood
//! test between Bernoulli parameters `φ` and `φ∓ε` fails; Stein's lemma
//! (Lemma 6) bounds each failure by `2^{−s·D(φ; φ∓ε)}`, giving the paper's
//! condition
//!
//! ```text
//! δ ≥ 2^{−s·D(φ; φ−ε)} + 2^{−s·D(φ; φ+ε)}
//! ```
//!
//! where `D(p;q) = p·log₂(p/q) + (1−p)·log₂((1−p)/(1−q))`.
//!
//! When `φ − ε ≤ 0` the lower test is vacuous (no element can have rank
//! below 0), so only the upper term remains.

/// Kullback–Leibler divergence `D(p ‖ q)` in bits between Bernoulli
/// parameters `p` and `q`.
///
/// Boundary conventions: terms with `p = 0` or `p = 1` use the limit
/// `0·log(0/q) = 0`. Returns `+∞` when `q` puts zero mass where `p` puts
/// positive mass.
///
/// # Panics
/// Panics unless `p ∈ [0, 1]` and `q ∈ [0, 1]`.
pub fn kl_divergence_bits(p: f64, q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must lie in [0, 1]");
    assert!((0.0..=1.0).contains(&q), "q must lie in [0, 1]");
    let term = |pp: f64, qq: f64| -> f64 {
        if pp == 0.0 {
            0.0
        } else if qq == 0.0 {
            f64::INFINITY
        } else {
            pp * (pp / qq).log2()
        }
    };
    term(p, q) + term(1.0 - p, 1.0 - q)
}

/// Upper bound on the failure probability of the extreme-value estimator
/// with sample size `s` (§7): `2^{−s·D(φ;φ−ε)} + 2^{−s·D(φ;φ+ε)}`, with the
/// lower term dropped when `φ ≤ ε`.
pub fn stein_failure_bound(phi: f64, epsilon: f64, s: u64) -> f64 {
    assert!(phi > 0.0 && phi < 1.0, "phi must lie in (0, 1)");
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must lie in (0, 1)");
    let s = s as f64;
    let upper = {
        let d = kl_divergence_bits(phi, (phi + epsilon).min(1.0));
        (-s * d).exp2()
    };
    let lower = if phi > epsilon {
        let d = kl_divergence_bits(phi, phi - epsilon);
        (-s * d).exp2()
    } else {
        0.0
    };
    (upper + lower).min(1.0)
}

/// The smallest sample size `s` such that the extreme-value estimator is an
/// ε-approximate φ-quantile with probability at least `1 − δ`, together
/// with the retained-heap size `k = ⌈φ·s⌉` (which is the estimator's entire
/// memory footprint).
///
/// Returns `(s, k)`.
///
/// # Panics
/// Panics unless `0 < φ < 1`, `0 < ε < 1`, `0 < δ < 1`.
pub fn stein_sample_size(phi: f64, epsilon: f64, delta: f64) -> (u64, u64) {
    assert!(phi > 0.0 && phi < 1.0, "phi must lie in (0, 1)");
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must lie in (0, 1)");
    assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0, 1)");
    // The failure bound is monotone decreasing in s: exponential search for
    // an upper bracket, then binary search for the threshold.
    let mut hi = 1u64;
    while stein_failure_bound(phi, epsilon, hi) > delta {
        hi = hi.checked_mul(2).expect("sample size overflow");
        assert!(
            hi < 1 << 60,
            "no feasible sample size: phi={phi}, epsilon={epsilon}, delta={delta}"
        );
    }
    let mut lo = hi / 2; // failure(lo) > delta (or lo == 0)
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if stein_failure_bound(phi, epsilon, mid) > delta {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let s = hi;
    let k = (phi * s as f64).ceil() as u64;
    (s, k.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kl_is_zero_iff_equal() {
        for &p in &[0.0, 0.1, 0.5, 0.9, 1.0] {
            assert_eq!(kl_divergence_bits(p, p), 0.0);
        }
        assert!(kl_divergence_bits(0.5, 0.4) > 0.0);
    }

    #[test]
    fn kl_boundary_conventions() {
        assert_eq!(kl_divergence_bits(0.0, 0.5), 1.0); // log2(1/0.5)
        assert!(kl_divergence_bits(0.5, 0.0).is_infinite());
        assert!(kl_divergence_bits(0.5, 1.0).is_infinite());
        assert_eq!(kl_divergence_bits(1.0, 0.5), 1.0);
    }

    #[test]
    fn kl_hand_computed_value() {
        // D(0.5 ; 0.25) = 0.5*log2(2) + 0.5*log2(0.5/0.75)
        let expect = 0.5 + 0.5 * (0.5f64 / 0.75).log2();
        assert!((kl_divergence_bits(0.5, 0.25) - expect).abs() < 1e-12);
    }

    #[test]
    fn failure_bound_decreases_in_s() {
        let a = stein_failure_bound(0.01, 0.005, 1_000);
        let b = stein_failure_bound(0.01, 0.005, 10_000);
        assert!(a > b);
    }

    #[test]
    fn sample_size_is_tight_threshold() {
        let (s, k) = stein_sample_size(0.01, 0.005, 1e-4);
        assert!(stein_failure_bound(0.01, 0.005, s) <= 1e-4);
        assert!(stein_failure_bound(0.01, 0.005, s - 1) > 1e-4);
        assert_eq!(k, (0.01 * s as f64).ceil() as u64);
    }

    #[test]
    fn tiny_phi_drops_lower_term() {
        // phi == epsilon: Min qualifies; only the upper tail constrains s.
        let (s, k) = stein_sample_size(0.001, 0.001, 1e-4);
        assert!(k >= 1);
        assert!(s > 0);
        // With phi <= epsilon the k retained elements are very few.
        assert!(k < 100, "k = {k} unexpectedly large");
    }

    #[test]
    fn memory_k_much_smaller_than_general_algorithm_regime() {
        // Headline of §7: for small phi, k is small. phi = 1%,
        // epsilon = 0.1%: the paper's general algorithm needs tens of
        // thousands of elements; the extreme estimator's heap is ~ phi*s.
        let (s, k) = stein_sample_size(0.01, 0.001, 1e-4);
        assert!(k < s / 50, "k={k} not ~phi*s of s={s}");
        assert!(k < 10_000);
    }

    #[test]
    fn smaller_epsilon_needs_larger_sample() {
        let (s1, _) = stein_sample_size(0.05, 0.01, 1e-4);
        let (s2, _) = stein_sample_size(0.05, 0.005, 1e-4);
        assert!(s2 > s1);
    }

    #[test]
    fn extreme_quantiles_beat_median_sampling() {
        // The paper's "interesting statistical fact": at equal epsilon and
        // delta, estimating an extreme quantile (phi=0.01) needs a smaller
        // sample than the median (phi=0.5), because the rank distribution of
        // an extreme order statistic is more tightly clustered.
        let (s_extreme, _) = stein_sample_size(0.01, 0.005, 1e-4);
        let (s_median, _) = stein_sample_size(0.5, 0.005, 1e-4);
        assert!(
            s_extreme < s_median / 5,
            "extreme sample {s_extreme} not much smaller than median sample {s_median}"
        );
    }
}
