//! Dynamic buffer allocation (§5).
//!
//! The base algorithm allocates all `b·k` memory up front, which is
//! "outrageous" for tiny inputs. §5 instead allocates buffers one at a time
//! according to a *buffer allocation schedule* `L₁ ≤ L₂ ≤ … ≤ L_b`: buffer
//! `i` is allocated once `Lᵢ` leaves exist. A schedule is **valid** if the
//! ε/δ guarantee holds at *every* prefix of the stream — which we certify
//! with the exact lazy-allocation replay of [`crate::simulate`].
//!
//! The paper's search procedure (and ours): the user supplies upper limits
//! on memory at various stream lengths; try increasingly large `k`, derive
//! the schedule each limit set implies, and accept the first valid one.

use crate::optimizer::{optimize_unknown_n_with, OptimizerOptions};
use crate::simulate::{simulate_schedule_with_allocation, ScheduleScalars, SimOptions};

/// A user-specified memory ceiling: while the stream is no longer than `n`
/// elements, the algorithm may hold at most `max_memory` elements.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoryLimit {
    /// Stream-length threshold.
    pub n: u64,
    /// Memory ceiling (elements) applying up to `n`.
    pub max_memory: usize,
}

/// A validated lazy-allocation plan.
#[derive(Clone, Debug)]
pub struct AllocationPlan {
    /// Number of buffers eventually allocated.
    pub b: usize,
    /// Buffer size.
    pub k: usize,
    /// Sampling-onset height `h` (chosen large enough that onset lands
    /// after allocation completes, per §5's "use Eq 3 to limit h").
    pub h: u32,
    /// Certified error split.
    pub alpha: f64,
    /// `thresholds[i]` = leaves required before buffer `i` is allocated.
    pub thresholds: Vec<u64>,
    /// Replay scalars of the validated schedule.
    pub scalars: ScheduleScalars,
}

impl AllocationPlan {
    /// Memory-versus-stream-length profile: `(n, memory_elements)` at each
    /// allocation event (Figure 5's "valid schedule" curve). Stream length
    /// is `leaves·k` (allocation completes before sampling onset, where
    /// every leaf covers exactly `k` elements).
    pub fn memory_profile(&self) -> Vec<(u64, usize)> {
        self.scalars
            .alloc_profile
            .iter()
            .map(|&(leaves, slots)| (leaves * self.k as u64, slots * self.k))
            .collect()
    }

    /// Final memory `b·k`.
    pub fn memory(&self) -> usize {
        self.b * self.k
    }
}

/// Check whether `(b, k, h)` with the given allocation thresholds satisfies
/// the ε/δ guarantee at every prefix. Returns the certified `α` on success.
pub fn validate_schedule(
    b: usize,
    k: usize,
    h: u32,
    thresholds: &[u64],
    epsilon: f64,
    delta: f64,
) -> Option<(f64, ScheduleScalars)> {
    validate_schedule_with(b, k, h, thresholds, epsilon, delta, SimOptions::default())
}

/// As [`validate_schedule`] with explicit replay options.
pub fn validate_schedule_with(
    b: usize,
    k: usize,
    h: u32,
    thresholds: &[u64],
    epsilon: f64,
    delta: f64,
    sim: SimOptions,
) -> Option<(f64, ScheduleScalars)> {
    let scalars = simulate_schedule_with_allocation(b, h, thresholds.to_vec(), sim)?;
    // Allocation must complete before sampling begins (§5 assumes
    // L_i < L_d for all i) so the leaves→N mapping stays exact.
    if thresholds.last().copied().unwrap_or(0) > scalars.l_d {
        return None;
    }
    let alpha = feasible_alpha(&scalars, k, epsilon, delta)?;
    Some((alpha, scalars))
}

/// The α certified by the three constraints for a fixed `k`, if any:
/// `α ≥ g_post/(ε·k)` and `(1−α) ≥ sqrt(ln(2/δ)/(2ε²·k·x_min))`, plus
/// `k ≥ g_pre/ε`.
fn feasible_alpha(s: &ScheduleScalars, k: usize, epsilon: f64, delta: f64) -> Option<f64> {
    let k = k as f64;
    if k < s.g_pre / epsilon {
        return None;
    }
    let alpha_lo = s.g_post / (epsilon * k);
    // required_x(alpha) = ln(2/δ)/(2(1−α)²ε²) <= k·x_min
    //   ⇔ (1−α)² >= ln(2/δ)/(2ε²·k·x_min)
    let rhs = (2.0 / delta).ln() / (2.0 * epsilon * epsilon * k * s.x_min);
    if rhs >= 1.0 {
        return None;
    }
    let alpha_hi = 1.0 - rhs.sqrt();
    if alpha_lo <= alpha_hi && alpha_lo < 1.0 && alpha_hi > 0.0 {
        // Split the slack evenly.
        Some(0.5 * (alpha_lo.max(0.0) + alpha_hi))
    } else {
        None
    }
}

/// Derive the allocation thresholds a limit set implies for buffer size `k`:
/// buffer `i` (0-based) may be allocated at the smallest leaf count `L`
/// such that `(i+1)·k` is within the ceiling applying at `N = L·k`.
fn thresholds_for(limits: &[MemoryLimit], b: usize, k: usize) -> Option<Vec<u64>> {
    let mut thresholds = Vec::with_capacity(b);
    for i in 0..b {
        let need = (i + 1) * k;
        // Smallest N at which `need` is allowed: past every limit whose
        // ceiling is below `need`.
        let mut min_n = 0u64;
        for lim in limits {
            if lim.max_memory < need {
                min_n = min_n.max(lim.n + 1);
            }
        }
        thresholds.push(min_n.div_ceil(k as u64));
    }
    if thresholds.windows(2).all(|w| w[0] <= w[1]) && thresholds[0] == 0 {
        Some(thresholds)
    } else {
        None
    }
}

/// Search for a valid lazy-allocation plan meeting the user's memory
/// ceilings (§5's trial-and-error loop, automated). `limits` must be sorted
/// by `n`. Returns `None` if no plan is found within the search space —
/// the limits are then too tight for this (ε, δ).
pub fn find_schedule(
    epsilon: f64,
    delta: f64,
    limits: &[MemoryLimit],
    opts: OptimizerOptions,
) -> Option<AllocationPlan> {
    assert!(
        limits.windows(2).all(|w| w[0].n < w[1].n),
        "limits must be sorted by stream length"
    );
    let base = optimize_unknown_n_with(epsilon, delta, opts);
    let search_sim = SimOptions {
        leaf_cap: opts.leaf_cap,
        ..SimOptions::default()
    };
    // Larger k lets the algorithm satisfy early ceilings with fewer
    // buffers; sweep k geometrically from the unconstrained optimum.
    let mut k = base.k;
    for _round in 0..16 {
        let final_ceiling = limits.last().map_or(usize::MAX, |l| l.max_memory);
        let b_max = (final_ceiling / k).min(opts.max_b).max(2);
        // More buffers never hurt accuracy, so probe a few b values from
        // the top instead of the whole range.
        let b_candidates = [b_max, (b_max * 3) / 4, b_max / 2]
            .into_iter()
            .filter(|&b| b >= 2)
            .collect::<std::collections::BTreeSet<_>>();
        for b in b_candidates.into_iter().rev() {
            let Some(thresholds) = thresholds_for(limits, b, k) else {
                continue;
            };
            // The tree must be allowed to grow past the height reached when
            // the last buffer unlocks (§5: "use Eq 3 to limit h"); Eq 3
            // bounds h by ~2εk.
            let h_cap = ((2.2 * epsilon * k as f64).ceil() as u32).clamp(1, 40);
            for h in 1..=h_cap {
                if let Some((alpha, scalars)) =
                    validate_schedule_with(b, k, h, &thresholds, epsilon, delta, search_sim)
                {
                    // Verify the replayed profile really honours the
                    // ceilings (forced allocations could violate them).
                    let plan = AllocationPlan {
                        b,
                        k,
                        h,
                        alpha,
                        thresholds: thresholds.clone(),
                        scalars,
                    };
                    if profile_within_limits(&plan, limits) {
                        return Some(plan);
                    }
                }
            }
        }
        k = (k as f64 * 1.3).ceil() as usize;
    }
    None
}

fn profile_within_limits(plan: &AllocationPlan, limits: &[MemoryLimit]) -> bool {
    for &(n_at, mem) in &plan.memory_profile() {
        // The ceiling applying at n_at.
        let ceiling = limits
            .iter()
            .filter(|l| l.n >= n_at)
            .map(|l| l.max_memory)
            .min()
            .unwrap_or(usize::MAX);
        if mem > ceiling {
            return false;
        }
    }
    true
}

/// Certify a hand-picked upfront configuration `(b, k, h)` (all buffers
/// allocated immediately, height-triggered onset — the §3 algorithm).
/// Returns the feasible α and the replay scalars.
pub fn certify_upfront(
    b: usize,
    k: usize,
    h: u32,
    epsilon: f64,
    delta: f64,
) -> Option<(f64, ScheduleScalars)> {
    let scalars = crate::simulate::simulate_schedule(b, h, SimOptions::default())?;
    let alpha = feasible_alpha(&scalars, k, epsilon, delta)?;
    Some((alpha, scalars))
}

#[cfg(test)]
mod tests {
    use super::*;

    const FAST: OptimizerOptions = OptimizerOptions {
        max_b: 10,
        max_h: 5,
        leaf_cap: 20_000,
        use_cache: true,
    };

    #[test]
    fn upfront_schedule_of_optimizer_config_certifies() {
        let c = optimize_unknown_n_with(0.05, 0.01, FAST);
        let cert = certify_upfront(c.b, c.k, c.h, 0.05, 0.01);
        assert!(cert.is_some(), "optimizer output must certify");
    }

    #[test]
    fn too_small_k_fails_certification() {
        let c = optimize_unknown_n_with(0.05, 0.01, FAST);
        assert!(certify_upfront(c.b, c.k / 4, c.h, 0.05, 0.01).is_none());
    }

    #[test]
    fn thresholds_respect_limits() {
        let limits = [
            MemoryLimit {
                n: 1_000,
                max_memory: 100,
            },
            MemoryLimit {
                n: 100_000,
                max_memory: 500,
            },
        ];
        let t = thresholds_for(&limits, 5, 100).unwrap();
        assert_eq!(t[0], 0);
        // Second buffer (200 elements) not allowed until N > 1000.
        assert!(t[1] * 100 > 1_000);
    }

    #[test]
    fn find_schedule_meets_generous_limits() {
        let base = optimize_unknown_n_with(0.05, 0.01, FAST);
        // Generous: full memory allowed from very early on.
        let limits = [MemoryLimit {
            n: 10,
            max_memory: base.memory * 2,
        }];
        let plan = find_schedule(0.05, 0.01, &limits, FAST).expect("generous limits feasible");
        assert!(plan.memory() <= base.memory * 2);
        assert!(profile_within_limits(&plan, &limits));
    }

    #[test]
    fn find_schedule_with_staged_limits_grows_memory() {
        let base = optimize_unknown_n_with(0.05, 0.01, FAST);
        let m = base.memory;
        let limits = [
            MemoryLimit {
                n: 2_000,
                max_memory: m / 2,
            },
            MemoryLimit {
                n: 1_000_000_000,
                max_memory: 4 * m,
            },
        ];
        if let Some(plan) = find_schedule(0.05, 0.01, &limits, FAST) {
            let profile = plan.memory_profile();
            assert!(!profile.is_empty());
            assert!(profile_within_limits(&plan, &limits));
            // Early memory below the early ceiling.
            let early_mem = profile
                .iter()
                .filter(|&&(n, _)| n <= 2_000)
                .map(|&(_, mem)| mem)
                .max()
                .unwrap_or(0);
            assert!(early_mem <= m / 2);
        }
        // (If infeasible, find_schedule returning None is itself the
        // paper's documented outcome: "There may or may not be a valid
        // buffer schedule that meets these upper limits.")
    }

    #[test]
    fn impossible_limits_return_none() {
        let limits = [MemoryLimit {
            n: u64::MAX / 2,
            max_memory: 3,
        }];
        assert!(find_schedule(0.05, 0.01, &limits, FAST).is_none());
    }
}
