//! Cross-checks between the data-free schedule simulator and real engine
//! executions: the whole analysis stands on the claim that the collapse
//! schedule is a deterministic function of `(b, h)` alone, identical in
//! both implementations.

use mrl_analysis::simulate::replay_prefix;
use mrl_framework::{AdaptiveLowestLevel, Engine, EngineConfig, Mrl99Schedule};

/// Run a real engine and capture `(leaves, W, max_level, onset)` at each
/// leaf completion.
fn engine_trace(
    b: usize,
    k: usize,
    h: u32,
    total_elements: u64,
) -> Vec<(u64, u64, u32, Option<u64>)> {
    let mut e: Engine<u64, _, _> = Engine::new(
        EngineConfig::new(b, k),
        AdaptiveLowestLevel,
        Mrl99Schedule::new(h),
        12345,
    );
    let mut trace = Vec::new();
    let mut last_leaves = 0;
    for i in 0..total_elements {
        e.insert(i.wrapping_mul(2654435761) % 1_000_003);
        let s = e.stats();
        if s.leaves != last_leaves {
            last_leaves = s.leaves;
            let onset_leaves = s.sampling_onset_n.map(|_| {
                // The simulator reports onset in *leaves*; recover it from
                // the engine by noting onset happens at a leaf boundary.
                s.leaves
            });
            trace.push((s.leaves, s.collapse_weight_sum, s.max_level, onset_leaves));
        }
    }
    trace
}

#[test]
fn engine_w_and_height_match_simulator_at_every_leaf() {
    for &(b, k, h) in &[(3usize, 8usize, 2u32), (4, 16, 3), (5, 4, 1), (6, 8, 2)] {
        let trace = engine_trace(b, k, h, 40_000);
        assert!(!trace.is_empty());
        // Compare a spread of checkpoints, including the last.
        let idxs: Vec<usize> = {
            let n = trace.len();
            vec![0, n / 7, n / 3, n / 2, 2 * n / 3, n - 1]
        };
        for &i in &idxs {
            let (leaves, w, max_level, _) = trace[i];
            let (sim_w, sim_level, _) = replay_prefix(b, h, leaves);
            assert_eq!(
                w, sim_w,
                "W mismatch at b={b} k={k} h={h} after {leaves} leaves"
            );
            assert_eq!(
                max_level, sim_level,
                "height mismatch at b={b} k={k} h={h} after {leaves} leaves"
            );
        }
    }
}

#[test]
fn sampling_onset_leaf_count_is_scale_free() {
    // The number of leaves before sampling onset must not depend on k.
    for &(b, h) in &[(3usize, 2u32), (4, 2), (5, 3)] {
        let mut onsets = Vec::new();
        for k in [4usize, 16, 64] {
            let mut e: Engine<u64, _, _> = Engine::new(
                EngineConfig::new(b, k),
                AdaptiveLowestLevel,
                Mrl99Schedule::new(h),
                7,
            );
            let mut i = 0u64;
            while !e.sampling_started() {
                e.insert(i);
                i += 1;
                assert!(
                    i < 10_000_000,
                    "sampling never started for b={b} h={h} k={k}"
                );
            }
            onsets.push(e.stats().leaves);
        }
        assert!(
            onsets.windows(2).all(|w| w[0] == w[1]),
            "onset leaves varied with k: {onsets:?} (b={b}, h={h})"
        );
        // And matches the binomial formula.
        let expected = mrl_analysis::combinatorics::leaves_before_sampling(b as u64, u64::from(h));
        // Onset is detected at the collapse that creates the level-h
        // buffer; the engine counts leaves at that moment.
        assert_eq!(onsets[0], expected, "b={b} h={h}");
    }
}

#[test]
fn engine_respects_certified_error_bound_end_to_end() {
    // For a certified config, run a real stream and check the *actual*
    // rank error against the full guarantee epsilon (the tree bound plus
    // sampling slack should hold with large margin at delta = 0.01).
    let opts = mrl_analysis::OptimizerOptions::fast();
    let cfg = mrl_analysis::optimizer::optimize_unknown_n_with(0.05, 0.01, opts);
    let mut e: Engine<u64, _, _> = Engine::new(
        EngineConfig::new(cfg.b, cfg.k),
        AdaptiveLowestLevel,
        Mrl99Schedule::new(cfg.h),
        99,
    );
    let n = 500_000u64;
    let data: Vec<u64> = (0..n).map(|i| (i * 2654435761) % n).collect();
    for &v in &data {
        e.insert(v);
    }
    for phi in [0.1, 0.25, 0.5, 0.75, 0.9] {
        let out = e.query(phi).unwrap();
        let err = mrl_exact_rank_error(&data, out, phi);
        assert!(
            err <= 0.05,
            "phi={phi}: observed rank error {err} exceeds epsilon"
        );
    }
}

/// Minimal local copy of the rank-error metric (avoids a dev-dependency
/// cycle with mrl-exact).
fn mrl_exact_rank_error(data: &[u64], value: u64, phi: f64) -> f64 {
    let n = data.len() as u64;
    let pos = ((phi * n as f64).ceil() as u64).clamp(1, n);
    let below = data.iter().filter(|&&v| v < value).count() as u64;
    let at_most = data.iter().filter(|&&v| v <= value).count() as u64;
    let (lo, hi) = (below + 1, at_most);
    let dist = if pos < lo {
        lo - pos
    } else if pos > hi {
        pos.saturating_sub(hi)
    } else {
        0
    };
    dist as f64 / n as f64
}
