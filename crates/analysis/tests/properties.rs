//! Property tests on the analysis layer: every optimizer output must
//! certify, the replay must be deterministic and scale-free, and the
//! bounds must respect their analytic monotonicities.

use proptest::prelude::*;

use mrl_analysis::bounds::{hoeffding_tail, required_x, sampling_failure};
use mrl_analysis::kl::{kl_divergence_bits, stein_failure_bound, stein_sample_size};
use mrl_analysis::optimizer::{optimize_unknown_n_with, OptimizerOptions};
use mrl_analysis::schedule::certify_upfront;
use mrl_analysis::simulate::{simulate_schedule, SimOptions};

fn small_opts() -> OptimizerOptions {
    OptimizerOptions {
        max_b: 8,
        max_h: 4,
        leaf_cap: 5_000,
        use_cache: true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn optimizer_output_always_certifies(
        eps_milli in 20u32..200,   // epsilon in [0.02, 0.2]
        delta_exp in 1u32..5,      // delta in {1e-1 .. 1e-4}
    ) {
        let eps = f64::from(eps_milli) / 1000.0;
        let delta = 10f64.powi(-(delta_exp as i32));
        let cfg = optimize_unknown_n_with(eps, delta, small_opts());
        prop_assert!(
            certify_upfront(cfg.b, cfg.k, cfg.h, eps, delta).is_some(),
            "optimizer output (b={}, k={}, h={}) failed certification",
            cfg.b, cfg.k, cfg.h
        );
        // And k is minimal up to rounding: k/2 must fail.
        if cfg.k >= 8 {
            prop_assert!(
                certify_upfront(cfg.b, cfg.k / 2, cfg.h, eps, delta).is_none(),
                "half of the chosen k unexpectedly certifies"
            );
        }
    }

    #[test]
    fn replay_is_deterministic(b in 2usize..7, h in 1u32..4) {
        let a = simulate_schedule(b, h, SimOptions::default());
        let c = simulate_schedule(b, h, SimOptions::default());
        prop_assert_eq!(a, c);
    }

    #[test]
    fn replay_scalars_are_sane(b in 2usize..7, h in 1u32..4) {
        let s = simulate_schedule(b, h, SimOptions::default()).expect("small combos certify");
        prop_assert!(s.g_pre > 0.0 && s.g_pre.is_finite());
        prop_assert!(s.g_post >= s.g_pre * 0.0); // finite, non-negative
        prop_assert!(s.g_post.is_finite());
        prop_assert!(s.x_min > 0.0 && s.x_min.is_finite());
        prop_assert!(s.l_d >= b as u64);
        prop_assert!(s.l_s >= 1);
    }

    #[test]
    fn hoeffding_monotone_in_lambda(s2 in 1.0f64..1e9, l1 in 0.0f64..1e4, l2 in 0.0f64..1e4) {
        let (lo, hi) = if l1 <= l2 { (l1, l2) } else { (l2, l1) };
        prop_assert!(hoeffding_tail(hi, s2) <= hoeffding_tail(lo, s2) + 1e-15);
    }

    #[test]
    fn required_x_matches_failure_inversion(
        alpha_pct in 5u32..95,
        eps_milli in 5u32..300,
        delta_exp in 1u32..6,
    ) {
        let alpha = f64::from(alpha_pct) / 100.0;
        let eps = f64::from(eps_milli) / 1000.0;
        let delta = 10f64.powi(-(delta_exp as i32));
        let x = required_x(alpha, eps, delta);
        let p = sampling_failure(alpha, eps, x);
        prop_assert!((p - delta).abs() <= delta * 1e-6);
    }

    #[test]
    fn kl_nonnegative_and_zero_only_at_equality(
        p_pct in 1u32..99,
        q_pct in 1u32..99,
    ) {
        let p = f64::from(p_pct) / 100.0;
        let q = f64::from(q_pct) / 100.0;
        let d = kl_divergence_bits(p, q);
        prop_assert!(d >= 0.0);
        if p_pct == q_pct {
            prop_assert!(d == 0.0);
        } else {
            prop_assert!(d > 0.0);
        }
    }

    #[test]
    fn stein_sample_size_is_monotone_in_delta(
        phi_milli in 2u32..100,
    ) {
        let phi = f64::from(phi_milli) / 1000.0;
        let eps = phi / 2.0;
        let (s_loose, _) = stein_sample_size(phi, eps, 1e-2);
        let (s_tight, _) = stein_sample_size(phi, eps, 1e-6);
        prop_assert!(s_tight >= s_loose);
        // And both really meet their budgets.
        prop_assert!(stein_failure_bound(phi, eps, s_loose) <= 1e-2);
        prop_assert!(stein_failure_bound(phi, eps, s_tight) <= 1e-6);
    }

    #[test]
    fn memory_never_increases_when_loosening_epsilon(
        e1 in 20u32..100,
        bump in 10u32..100,
    ) {
        let tight = f64::from(e1) / 1000.0;
        let loose = f64::from(e1 + bump) / 1000.0;
        let m_tight = optimize_unknown_n_with(tight, 1e-3, small_opts()).memory;
        let m_loose = optimize_unknown_n_with(loose, 1e-3, small_opts()).memory;
        prop_assert!(m_loose <= m_tight, "loosening eps {tight}->{loose} grew memory {m_tight}->{m_loose}");
    }
}
