//! Expression-level fact extraction from a function body's token range.
//!
//! The parser hands each function its body as a token slice; this module
//! walks that slice with postfix-context tracking — the lightweight
//! expression analysis the rules consume:
//!
//! * **calls** — `name(…)`, `.method(…)`, `Path::name(…)`, `name!(…)`
//!   macro invocations, and bare `Type::name` function references (so
//!   `iter().map(Buffer::mass)` still contributes a call edge);
//! * **sinks** — panicking constructs: `panic!`-family macros, `.unwrap()`
//!   / `.expect(…)`, and unchecked postfix indexing `expr[…]`;
//! * **arith** — binary `+ - * << += -= *= <<=` sites with the identifier
//!   chains of both operands (for the accounting-value arithmetic rule);
//! * **allocs** — allocation calls (`Vec::new`, `Vec::with_capacity`,
//!   `vec!`, `.push`, `.collect`, `.to_vec`) for the hot-path rule.
//!
//! A token is in *postfix position* when the previous significant token
//! could end an expression (identifier, literal, `)`, `]`, `?`, `self`);
//! that single bit distinguishes indexing from array literals, binary `-`
//! from unary negation, and binary `*` from dereference.

use crate::lexer::{TokKind, Token};

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `.name(…)` — resolved against workspace methods of any type.
    Method,
    /// `name(…)` with no path — resolved against free functions.
    Plain,
    /// `A::B::name(…)` or a bare `A::name` fn reference; the segment
    /// before the name (if any) scopes resolution.
    Path(Option<String>),
    /// `name!(…)` — macros resolve to no edge, but panic-family macros
    /// are sinks.
    Macro,
}

/// One call site inside a body.
#[derive(Debug, Clone)]
pub struct Call {
    pub name: String,
    pub kind: CallKind,
    pub line: u32,
}

/// What kind of panic source a sink is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkKind {
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
    PanicMacro,
    /// `.unwrap()`.
    Unwrap,
    /// `.expect(…)`.
    Expect,
    /// Postfix `expr[…]` indexing or slicing.
    Index,
}

impl SinkKind {
    pub fn describe(self) -> &'static str {
        match self {
            SinkKind::PanicMacro => "panic-family macro",
            SinkKind::Unwrap => ".unwrap()",
            SinkKind::Expect => ".expect(…)",
            SinkKind::Index => "unchecked indexing",
        }
    }
}

/// A potential panic site.
#[derive(Debug, Clone)]
pub struct Sink {
    pub kind: SinkKind,
    pub line: u32,
}

/// A binary arithmetic site with its operand identifier chains.
#[derive(Debug, Clone)]
pub struct Arith {
    /// The operator text (`+`, `<<=`, …).
    pub op: String,
    pub line: u32,
    /// Identifiers appearing in the left and right operand chains.
    pub idents: Vec<String>,
    /// True when either operand chain involves floats (`f64`/`f32`
    /// idents or float literals) — float arithmetic is out of scope for
    /// the overflow rule.
    pub float: bool,
}

/// An allocation call site.
#[derive(Debug, Clone)]
pub struct Alloc {
    /// What allocated (`Vec::new`, `vec!`, `.push`, …).
    pub what: String,
    pub line: u32,
}

/// Everything extracted from one body.
#[derive(Debug, Default)]
pub struct BodyFacts {
    pub calls: Vec<Call>,
    pub sinks: Vec<Sink>,
    pub arith: Vec<Arith>,
    pub allocs: Vec<Alloc>,
}

/// Rust keywords that can directly precede `(` or `[` without forming a
/// call/index (`if (…)`, `match (…)`, `return […]`, …) and that end an
/// expression context for the postfix test only when they are `self`.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "super", "trait", "type", "unsafe", "use", "where",
    "while", "yield",
];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const ALLOC_METHODS: &[&str] = &["push", "collect", "to_vec"];
const ALLOC_PATH_CALLS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "from"),
];

fn is_keyword(t: &Token) -> bool {
    t.kind == TokKind::Ident && KEYWORDS.contains(&t.text.as_str())
}

/// Could `t` be the last token of a completed expression?
fn ends_expr(t: &Token) -> bool {
    match t.kind {
        TokKind::Ident => t.text == "self" || !is_keyword(t),
        TokKind::Int | TokKind::Float | TokKind::Str | TokKind::Lifetime => {
            t.kind != TokKind::Lifetime
        }
        TokKind::Punct => matches!(t.text.as_str(), ")" | "]" | "?"),
    }
}

/// Walk left from `i` (exclusive) collecting the postfix chain of the
/// expression ending there: identifiers, `.`/`::` links, balanced `(…)` /
/// `[…]` groups, `?`, and literals. Returns collected identifiers and
/// whether floats were seen.
fn left_chain(toks: &[Token], mut i: usize, idents: &mut Vec<String>, float: &mut bool) {
    let mut expect_operand = true;
    while i > 0 {
        i -= 1;
        let t = &toks[i];
        match t.kind {
            TokKind::Float => {
                *float = true;
                if !expect_operand {
                    return;
                }
                expect_operand = false;
            }
            TokKind::Int | TokKind::Str => {
                if !expect_operand {
                    return;
                }
                expect_operand = false;
            }
            TokKind::Ident => {
                if is_keyword(t) && t.text != "self" && t.text != "Self" {
                    return;
                }
                if !expect_operand {
                    return;
                }
                if t.text == "f64" || t.text == "f32" {
                    *float = true;
                }
                idents.push(t.text.clone());
                expect_operand = false;
            }
            TokKind::Punct => match t.text.as_str() {
                "." | "::" => expect_operand = true,
                ")" | "]" => {
                    // Balance backwards over the group; its contents are
                    // arguments, not the receiver chain.
                    let (open, close) = if t.text == ")" {
                        ("(", ")")
                    } else {
                        ("[", "]")
                    };
                    let mut depth = 1;
                    while i > 0 && depth > 0 {
                        i -= 1;
                        if toks[i].kind == TokKind::Punct {
                            if toks[i].text == close {
                                depth += 1;
                            } else if toks[i].text == open {
                                depth -= 1;
                            }
                        }
                    }
                    expect_operand = false;
                }
                "?" => {}
                _ => return,
            },
            TokKind::Lifetime => return,
        }
    }
}

/// Walk right from `i` (inclusive) over the operand expression that
/// starts there: optional prefix operators, then a postfix chain.
fn right_chain(toks: &[Token], mut i: usize, idents: &mut Vec<String>, float: &mut bool) {
    // Prefix operators.
    while i < toks.len()
        && toks[i].kind == TokKind::Punct
        && matches!(toks[i].text.as_str(), "&" | "*" | "-" | "!" | "&&")
    {
        i += 1;
    }
    let mut have_operand = false;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Float => {
                *float = true;
                if have_operand {
                    return;
                }
                have_operand = true;
                i += 1;
            }
            TokKind::Int | TokKind::Str => {
                if have_operand {
                    return;
                }
                have_operand = true;
                i += 1;
            }
            TokKind::Ident => {
                if t.text == "as" {
                    // `x as f64` — the cast type is part of the operand.
                    if toks
                        .get(i + 1)
                        .is_some_and(|n| n.text == "f64" || n.text == "f32")
                    {
                        *float = true;
                    }
                    i += 2;
                    continue;
                }
                if is_keyword(t) && t.text != "self" && t.text != "Self" {
                    return;
                }
                if have_operand {
                    return;
                }
                if t.text == "f64" || t.text == "f32" {
                    *float = true;
                }
                idents.push(t.text.clone());
                have_operand = true;
                i += 1;
            }
            TokKind::Punct => match t.text.as_str() {
                "." | "::" => {
                    have_operand = false;
                    i += 1;
                }
                "(" | "[" if have_operand => {
                    // Call arguments / index — skip the balanced group.
                    let (open, close) = if t.text == "(" {
                        ("(", ")")
                    } else {
                        ("[", "]")
                    };
                    let mut depth = 1;
                    i += 1;
                    while i < toks.len() && depth > 0 {
                        if toks[i].kind == TokKind::Punct {
                            if toks[i].text == open {
                                depth += 1;
                            } else if toks[i].text == close {
                                depth -= 1;
                            }
                        }
                        i += 1;
                    }
                }
                "(" => {
                    // Parenthesised operand: collect idents inside.
                    let mut depth = 1;
                    i += 1;
                    while i < toks.len() && depth > 0 {
                        let u = &toks[i];
                        if u.kind == TokKind::Punct {
                            if u.text == "(" {
                                depth += 1;
                            } else if u.text == ")" {
                                depth -= 1;
                            }
                        } else if u.kind == TokKind::Ident && !is_keyword(u) {
                            idents.push(u.text.clone());
                        } else if u.kind == TokKind::Float {
                            *float = true;
                        }
                        i += 1;
                    }
                    have_operand = true;
                }
                "?" => i += 1,
                _ => return,
            },
            TokKind::Lifetime => return,
        }
    }
}

/// Extract all facts from one body token slice.
pub fn scan(toks: &[Token]) -> BodyFacts {
    let mut facts = BodyFacts::default();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        // Skip inner attributes (`#[cfg(…)]` on statements/items inside
        // the body); their contents are not expressions.
        if t.kind == TokKind::Punct && t.text == "#" {
            i += 1;
            if toks.get(i).is_some_and(|n| n.text == "!") {
                i += 1;
            }
            if toks.get(i).is_some_and(|n| n.text == "[") {
                let mut depth = 1;
                i += 1;
                while i < toks.len() && depth > 0 {
                    if toks[i].kind == TokKind::Punct {
                        if toks[i].text == "[" {
                            depth += 1;
                        } else if toks[i].text == "]" {
                            depth -= 1;
                        }
                    }
                    i += 1;
                }
            }
            continue;
        }
        let prev_ends_expr = i > 0 && ends_expr(&toks[i - 1]);
        match t.kind {
            TokKind::Ident if !is_keyword(t) => {
                let next = toks.get(i + 1).map(|n| n.text.as_str());
                if next == Some("!")
                    && toks.get(i + 2).is_some_and(|d| {
                        d.kind == TokKind::Punct && matches!(d.text.as_str(), "(" | "[" | "{")
                    })
                {
                    // Macro invocation.
                    let name = t.text.clone();
                    if PANIC_MACROS.contains(&name.as_str()) {
                        facts.sinks.push(Sink {
                            kind: SinkKind::PanicMacro,
                            line: t.line,
                        });
                    }
                    if name == "vec" {
                        facts.allocs.push(Alloc {
                            what: "vec!".to_string(),
                            line: t.line,
                        });
                    }
                    facts.calls.push(Call {
                        name,
                        kind: CallKind::Macro,
                        line: t.line,
                    });
                    i += 2; // land on the delimiter; its contents still scan
                    continue;
                }
                if next == Some("(") {
                    let prev = i.checked_sub(1).map(|p| &toks[p]);
                    let kind = match prev.map(|p| p.text.as_str()) {
                        Some(".") => Some(CallKind::Method),
                        Some("::") => {
                            // Qualifying segment two tokens back.
                            let seg = i
                                .checked_sub(2)
                                .map(|p| &toks[p])
                                .filter(|p| p.kind == TokKind::Ident)
                                .map(|p| p.text.clone());
                            Some(CallKind::Path(seg))
                        }
                        Some("fn") => None, // nested fn declaration
                        _ => Some(CallKind::Plain),
                    };
                    if let Some(kind) = kind {
                        let name = t.text.clone();
                        match (&kind, name.as_str()) {
                            (CallKind::Method, "unwrap") => facts.sinks.push(Sink {
                                kind: SinkKind::Unwrap,
                                line: t.line,
                            }),
                            (CallKind::Method, "expect") => facts.sinks.push(Sink {
                                kind: SinkKind::Expect,
                                line: t.line,
                            }),
                            (CallKind::Method, m) if ALLOC_METHODS.contains(&m) => {
                                facts.allocs.push(Alloc {
                                    what: format!(".{m}"),
                                    line: t.line,
                                })
                            }
                            (CallKind::Path(Some(ty)), m)
                                if ALLOC_PATH_CALLS.iter().any(|(t2, m2)| t2 == ty && *m2 == m) =>
                            {
                                facts.allocs.push(Alloc {
                                    what: format!("{ty}::{m}"),
                                    line: t.line,
                                });
                            }
                            _ => {}
                        }
                        facts.calls.push(Call {
                            name,
                            kind,
                            line: t.line,
                        });
                    }
                    i += 1;
                    continue;
                }
                // Bare `Type::name` function reference (not followed by a
                // call or further path): count as a call edge so closures
                // like `.map(Buffer::mass)` stay on the graph.
                if i >= 2
                    && toks[i - 1].text == "::"
                    && toks[i - 2].kind == TokKind::Ident
                    && next != Some("::")
                    && next != Some("!")
                    && t.text.chars().next().is_some_and(char::is_lowercase)
                {
                    facts.calls.push(Call {
                        name: t.text.clone(),
                        kind: CallKind::Path(Some(toks[i - 2].text.clone())),
                        line: t.line,
                    });
                }
                i += 1;
                continue;
            }
            TokKind::Punct => {
                match t.text.as_str() {
                    "[" if prev_ends_expr => {
                        facts.sinks.push(Sink {
                            kind: SinkKind::Index,
                            line: t.line,
                        });
                    }
                    "+" | "-" | "*" | "<<" | "+=" | "-=" | "*=" | "<<=" if prev_ends_expr => {
                        let mut idents = Vec::new();
                        let mut float = false;
                        left_chain(toks, i, &mut idents, &mut float);
                        right_chain(toks, i + 1, &mut idents, &mut float);
                        // `*` before `mut`/`const` is a raw-pointer type.
                        let ptr_type = t.text == "*"
                            && toks
                                .get(i + 1)
                                .is_some_and(|n| n.text == "mut" || n.text == "const");
                        if !ptr_type {
                            facts.arith.push(Arith {
                                op: t.text.clone(),
                                line: t.line,
                                idents,
                                float,
                            });
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    facts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn facts(src: &str) -> BodyFacts {
        scan(&lex(src).unwrap().tokens)
    }

    #[test]
    fn calls_methods_paths_and_macros() {
        let f =
            facts("self.engine.insert_batch(items); merge::helper(); Engine::new(1); go(); m!(x);");
        let named: Vec<(String, CallKind)> =
            f.calls.into_iter().map(|c| (c.name, c.kind)).collect();
        assert!(named.contains(&("insert_batch".into(), CallKind::Method)));
        assert!(named.contains(&("helper".into(), CallKind::Path(Some("merge".into())))));
        assert!(named.contains(&("new".into(), CallKind::Path(Some("Engine".into())))));
        assert!(named.contains(&("go".into(), CallKind::Plain)));
        assert!(named.contains(&("m".into(), CallKind::Macro)));
    }

    #[test]
    fn fn_reference_counts_as_call() {
        let f = facts("sources.iter().map(WeightedSource::mass).sum()");
        assert!(f
            .calls
            .iter()
            .any(|c| c.name == "mass" && c.kind == CallKind::Path(Some("WeightedSource".into()))));
    }

    #[test]
    fn sinks_detected_and_scoped() {
        let f = facts(
            "let a = x.unwrap(); let b = y.expect(\"msg\"); panic!(\"no\"); \
             let c = data[i]; let d = &buf[1..n]; let e = v.unwrap_or(0);",
        );
        let kinds: Vec<SinkKind> = f.sinks.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![
                SinkKind::Unwrap,
                SinkKind::Expect,
                SinkKind::PanicMacro,
                SinkKind::Index,
                SinkKind::Index,
            ]
        );
    }

    #[test]
    fn array_literals_and_attrs_are_not_indexing() {
        let f = facts(
            "let a = [0u8; 4]; let b: [u64; 2] = [1, 2]; #[cfg(feature = \"x\")] let c = vec![1];",
        );
        assert!(f.sinks.is_empty(), "{:?}", f.sinks);
    }

    #[test]
    fn arith_operand_chains() {
        let f = facts("let t = self.stats.elements + self.sampler.pending();");
        assert_eq!(f.arith.len(), 1);
        let a = &f.arith[0];
        assert_eq!(a.op, "+");
        assert!(!a.float);
        assert!(a.idents.contains(&"elements".to_string()));
        assert!(a.idents.contains(&"pending".to_string()));
    }

    #[test]
    fn float_arith_is_marked() {
        let f = facts("let x = phi * n as f64; let y = 0.5 + eps;");
        assert!(f.arith.iter().all(|a| a.float), "{:?}", f.arith);
    }

    #[test]
    fn unary_minus_and_deref_are_not_binary() {
        let f = facts("let a = -1; let b = *ptr; let c = &mut *handle; fn g(p: *const u8) {}");
        assert!(f.arith.is_empty(), "{:?}", f.arith);
    }

    #[test]
    fn compound_assign_detected() {
        let f = facts("self.seen += items.len(); w <<= 1; total -= used;");
        let ops: Vec<&str> = f.arith.iter().map(|a| a.op.as_str()).collect();
        assert_eq!(ops, vec!["+=", "<<=", "-="]);
        assert!(f.arith[0].idents.contains(&"seen".to_string()));
    }

    #[test]
    fn allocs_detected() {
        let f = facts(
            "let mut v = Vec::new(); let w = Vec::with_capacity(8); v.push(1); \
             let s: Vec<u64> = it.collect(); let t = data.to_vec(); let u = vec![0; 8];",
        );
        let whats: Vec<&str> = f.allocs.iter().map(|a| a.what.as_str()).collect();
        assert_eq!(
            whats,
            vec![
                "Vec::new",
                "Vec::with_capacity",
                ".push",
                ".collect",
                ".to_vec",
                "vec!"
            ]
        );
    }
}
