//! MRL-A008 — nondeterminism-taint pass.
//!
//! The MRL99 sketch is randomized but must be *reproducibly* randomized:
//! ROADMAP item 4 requires that two same-seed runs agree bitwise, because
//! replicated serving needs replicas to answer identically. This pass
//! certifies the static half of that contract with the interprocedural
//! summaries (DESIGN.md §3.16): any modelled nondeterminism **source** —
//! unseeded RNG construction, hash-order iteration, wall-clock/TSC reads,
//! cross-thread `recv` completion order — reachable from a
//! result-affecting **sink root** (ingest, collapse/merge, shipment,
//! snapshot, query) is a finding.
//!
//! Sources are collected per function by [`crate::summary`] (CFG-live
//! statements only); reachability is the same name-based call-graph
//! over-approximation as MRL-A001. A site reviewed with `// nondet:` is
//! dropped at the origin and does not taint callers — the tag asserts
//! the observed nondeterminism cannot alter sketch contents, merge
//! order, shipment bytes, or query answers (e.g. a timestamp that only
//! feeds metrics, or a recycled buffer whose contents are cleared).

use crate::graph::CallGraph;
use crate::rules::{lexed_of, snippet_of, Finding, HOT_CRATES, NONDET_ROOTS, REPORT_CRATES};
use crate::summary::Summaries;
use crate::workspace::Workspace;

pub(crate) fn check(
    ws: &Workspace,
    graph: &CallGraph,
    summaries: &Summaries,
    out: &mut Vec<Finding>,
) {
    let roots = graph.find(|f| {
        !f.info.is_test
            && HOT_CRATES.contains(&f.krate.as_str())
            && NONDET_ROOTS.contains(&f.info.name.as_str())
    });
    let reach = graph.reach(&roots);
    for (&i, trace) in &reach {
        let f = &graph.fns[i];
        if f.info.is_test || !REPORT_CRATES.contains(&f.krate.as_str()) {
            continue;
        }
        let lexed = lexed_of(ws, &f.path);
        for site in &summaries.fns[i].sources {
            out.push(Finding {
                rule: "MRL-A008",
                path: f.path.clone(),
                line: site.line,
                snippet: snippet_of(lexed, site.line),
                fingerprint: 0,
                message: format!(
                    "{} (`{}`) on a result-affecting path: {} — seed it, order it \
                     deterministically, or justify with `// nondet:`",
                    site.kind.describe(),
                    site.what,
                    graph.render_trace(trace)
                ),
            });
        }
    }
}
