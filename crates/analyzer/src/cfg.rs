//! Intra-procedural control-flow graphs over the token stream.
//!
//! [`Cfg::build`] turns a function body (the token slice named by
//! [`crate::parser::FnInfo::body`]) into statement-granularity nodes
//! with branch, loop, match, early-return, and `?` edges. The dataflow
//! passes (MRL-A005/A006/A007) run may/must analyses over it.
//!
//! Shape and deliberate approximations (DESIGN.md §3.15):
//!
//! * Nodes are **statements**, not basic blocks: one node per `;`-,
//!   brace-, or arm-terminated statement. Intra-statement order is
//!   recovered by comparing token indices inside the node's range.
//! * `if`/`else if`/`else` chains fork at the condition node and join
//!   after the chain; a missing `else` adds the condition → join edge.
//! * `match` forks to one node list per arm. Matches are exhaustive, so
//!   the scrutinee node is *not* a fallthrough tail (only empty arms
//!   route it to the join).
//! * `while`/`for` heads get a back edge from the body tails and a
//!   head → join edge (zero-iteration path). `loop` exits only via
//!   `break` (or `return`), so an infinite `loop` has no join edge.
//! * A top-level `return`/`break`/`continue` statement has no
//!   fallthrough. The same keywords (or `?`) *nested inside* a larger
//!   statement add an extra exit/loop edge while keeping the
//!   fallthrough — more paths than can execute, never fewer, so
//!   must-analyses stay conservative. Closure bodies are not
//!   distinguished: their `return`/`?` also count, again erring toward
//!   extra paths.
//! * `let x = if c { a } else { b };` is a single node — branch
//!   structure inside one statement is flattened to token order.

use crate::lexer::{TokKind, Token};

/// Placeholder successor used while the final exit id is unknown.
const EXIT_SENTINEL: usize = usize::MAX;

/// One statement node.
#[derive(Debug)]
pub struct Stmt {
    /// Token index range `[lo, hi)` relative to the slice given to
    /// [`Cfg::build`]. For structured statements this is the *header*
    /// only (condition, scrutinee, loop head); the bodies are separate
    /// nodes.
    pub range: (usize, usize),
    /// Successor statement ids; `cfg.exit` marks function exit.
    pub succs: Vec<usize>,
    /// 1-based source line of the statement's first token.
    pub line: u32,
}

/// One loop: its head node and the contiguous id range of body nodes.
#[derive(Debug)]
pub struct Loop {
    /// The `loop`/`while`/`for` header statement.
    pub head: usize,
    /// Body statement ids `[lo, hi)` (nodes are allocated in order, so
    /// a loop body is always a contiguous id range; nested loops nest
    /// their ranges).
    pub body: (usize, usize),
}

/// A function body's control-flow graph.
#[derive(Debug, Default)]
pub struct Cfg {
    pub stmts: Vec<Stmt>,
    /// Virtual exit node id (== `stmts.len()`, never indexable).
    pub exit: usize,
    pub loops: Vec<Loop>,
}

impl Cfg {
    /// Build the CFG for one body token slice.
    pub fn build(toks: &[Token]) -> Cfg {
        let mut b = Builder {
            toks,
            stmts: Vec::new(),
            loops: Vec::new(),
        };
        let mut frames = Vec::new();
        let (_entry, tails) = b.stmt_list(0, toks.len(), &mut frames);
        for t in tails {
            b.add_succ(t, EXIT_SENTINEL);
        }
        let exit = b.stmts.len();
        for s in &mut b.stmts {
            for succ in &mut s.succs {
                if *succ == EXIT_SENTINEL {
                    *succ = exit;
                }
            }
        }
        Cfg {
            stmts: b.stmts,
            exit,
            loops: b.loops,
        }
    }

    /// Statement ids reachable from `from` by one or more edges
    /// (excludes `from` itself unless it sits on a cycle).
    pub fn reachable_from(&self, from: usize) -> Vec<bool> {
        let mut seen = vec![false; self.stmts.len() + 1];
        let mut queue: Vec<usize> = self.stmts[from].succs.clone();
        while let Some(s) = queue.pop() {
            if seen[s] {
                continue;
            }
            seen[s] = true;
            if s < self.stmts.len() {
                queue.extend(self.stmts[s].succs.iter().copied());
            }
        }
        seen
    }

    /// Greatest-fixpoint must-analysis: for each statement, "every path
    /// from its entry to exit passes a statement where `pred` holds".
    /// The exit itself never satisfies `pred`, so a path that reaches
    /// exit without a `pred` statement falsifies everything on it.
    pub fn must_reach(&self, pred: impl Fn(usize) -> bool) -> Vec<bool> {
        let n = self.stmts.len();
        let holds: Vec<bool> = (0..n).map(&pred).collect();
        let mut must = vec![true; n];
        // Monotone decreasing iteration; terminates because a pass
        // only ever flips entries true → false.
        loop {
            let mut changed = false;
            for s in 0..n {
                if !must[s] {
                    continue;
                }
                let ok = holds[s] || self.stmts[s].succs.iter().all(|&t| t < n && must[t]);
                if !ok {
                    must[s] = false;
                    changed = true;
                }
            }
            if !changed {
                return must;
            }
        }
    }

    /// The innermost loop whose body contains `stmt`, if any.
    pub fn enclosing_loop(&self, stmt: usize) -> Option<&Loop> {
        self.loops
            .iter()
            .filter(|l| stmt >= l.body.0 && stmt < l.body.1)
            .min_by_key(|l| l.body.1 - l.body.0)
    }
}

/// An open loop during construction: where `continue` goes and the
/// nodes whose `break` must be wired to the loop's join.
struct LoopFrame {
    head: usize,
    breaks: Vec<usize>,
}

struct Builder<'a> {
    toks: &'a [Token],
    stmts: Vec<Stmt>,
    loops: Vec<Loop>,
}

/// Item keywords that open a brace-terminated nested item inside a
/// body; a plain-statement scan must stop after their `{…}` rather
/// than hunting for a `;` that never comes.
const ITEM_KEYWORDS: &[&str] = &[
    "fn",
    "struct",
    "enum",
    "union",
    "impl",
    "trait",
    "mod",
    "macro_rules",
];

impl Builder<'_> {
    fn text(&self, i: usize) -> &str {
        self.toks.get(i).map_or("", |t| t.text.as_str())
    }

    fn line(&self, i: usize) -> u32 {
        self.toks.get(i).map_or(0, |t| t.line)
    }

    fn new_stmt(&mut self, lo: usize, hi: usize) -> usize {
        self.stmts.push(Stmt {
            range: (lo, hi),
            succs: Vec::new(),
            line: self.line(lo),
        });
        self.stmts.len() - 1
    }

    fn add_succ(&mut self, from: usize, to: usize) {
        let succs = &mut self.stmts[from].succs;
        if !succs.contains(&to) {
            succs.push(to);
        }
    }

    /// `toks[open]` is `{`; return `(interior_lo, interior_hi, after)`.
    fn group(&self, open: usize) -> (usize, usize, usize) {
        let mut depth = 0usize;
        let mut i = open;
        while i < self.toks.len() {
            match self.text(i) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return (open + 1, i, i + 1);
                    }
                }
                _ => {}
            }
            i += 1;
        }
        (open + 1, self.toks.len(), self.toks.len())
    }

    /// First `{` at bracket depth 0 in `[i, hi)`, or `hi` if none.
    fn first_brace(&self, i: usize, hi: usize) -> usize {
        let mut depth = 0usize;
        let mut j = i;
        while j < hi {
            match self.text(j) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                "{" if depth == 0 => return j,
                _ => {}
            }
            j += 1;
        }
        hi
    }

    /// Scan a plain statement starting at `i`: ends after a depth-0
    /// `;`, after the `{…}` of a nested item, or at `hi`. Depth-0
    /// braces inside expressions (struct literals, `match`/`if`
    /// subexpressions of a `let`, let-else blocks) are consumed and the
    /// scan continues to the terminating `;`.
    fn plain_end(&self, i: usize, hi: usize) -> usize {
        let is_item = ITEM_KEYWORDS.contains(&self.text(i));
        let mut depth = 0usize;
        let mut j = i;
        while j < hi {
            match self.text(j) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                ";" if depth == 0 => return j + 1,
                "{" if depth == 0 => {
                    let (_, _, after) = self.group(j);
                    if is_item {
                        return after;
                    }
                    j = after;
                    continue;
                }
                _ => {}
            }
            j += 1;
        }
        hi
    }

    /// Add the conservative edges for terminators *nested inside* a
    /// statement's token range: `?` and `return` gain an exit edge,
    /// `break`/`continue` gain loop edges — all while keeping the
    /// fallthrough (extra paths, never fewer).
    fn scan_terminators(&mut self, node: usize, lo: usize, hi: usize, frames: &mut [LoopFrame]) {
        for j in lo..hi {
            let t = &self.toks[j];
            match (t.kind, t.text.as_str()) {
                (TokKind::Punct, "?") | (TokKind::Ident, "return") => {
                    self.add_succ(node, EXIT_SENTINEL);
                }
                (TokKind::Ident, "break") => {
                    if let Some(f) = frames.last_mut() {
                        if !f.breaks.contains(&node) {
                            f.breaks.push(node);
                        }
                    } else {
                        self.add_succ(node, EXIT_SENTINEL);
                    }
                }
                (TokKind::Ident, "continue") => {
                    if let Some(head) = frames.last().map(|f| f.head) {
                        self.add_succ(node, head);
                    }
                }
                _ => {}
            }
        }
    }

    /// Parse the statement list in `[lo, hi)`. Returns the entry node
    /// (None for an empty list) and the open tails whose fallthrough
    /// the caller must wire to whatever follows.
    fn stmt_list(
        &mut self,
        lo: usize,
        hi: usize,
        frames: &mut Vec<LoopFrame>,
    ) -> (Option<usize>, Vec<usize>) {
        let mut entry = None;
        let mut tails: Vec<usize> = Vec::new();
        let mut i = lo;
        while i < hi {
            match self.text(i) {
                ";" => {
                    i += 1;
                    continue;
                }
                "#" | "#!" => {
                    // Attribute: `#` (`#!`) then a bracket group.
                    i += 1;
                    if self.text(i) == "[" {
                        let mut depth = 0usize;
                        while i < hi {
                            match self.text(i) {
                                "[" => depth += 1,
                                "]" => {
                                    depth -= 1;
                                    if depth == 0 {
                                        i += 1;
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            i += 1;
                        }
                    }
                    continue;
                }
                _ => {}
            }
            let (e, t, next) = self.statement(i, hi, frames);
            debug_assert!(next > i, "statement scan must advance");
            if let Some(e) = e {
                for &p in &tails {
                    self.add_succ(p, e);
                }
                if entry.is_none() {
                    entry = Some(e);
                }
                tails = t;
            }
            i = next.max(i + 1);
        }
        (entry, tails)
    }

    /// Parse one statement at `i`. Returns `(entry, open_tails, next)`.
    fn statement(
        &mut self,
        i: usize,
        hi: usize,
        frames: &mut Vec<LoopFrame>,
    ) -> (Option<usize>, Vec<usize>, usize) {
        // Loop labels: `'name : loop { … }`.
        let mut start = i;
        if self.toks[start].kind == TokKind::Lifetime && self.text(start + 1) == ":" {
            start += 2;
            if start >= hi {
                return (None, Vec::new(), hi);
            }
        }
        match self.text(start) {
            "if" => self.if_stmt(start, hi, frames),
            "match" => self.match_stmt(start, hi, frames),
            "loop" | "while" | "for" => self.loop_stmt(start, hi, frames),
            "unsafe" if self.text(start + 1) == "{" => {
                let (b_lo, b_hi, after) = self.group(start + 1);
                let (e, t) = self.stmt_list(b_lo, b_hi, frames);
                (e, t, after)
            }
            "{" => {
                let (b_lo, b_hi, after) = self.group(start);
                let (e, t) = self.stmt_list(b_lo, b_hi, frames);
                (e, t, after)
            }
            "return" => {
                let end = self.plain_end(start, hi);
                let node = self.new_stmt(i, end);
                self.add_succ(node, EXIT_SENTINEL);
                (Some(node), Vec::new(), end)
            }
            "break" => {
                let end = self.plain_end(start, hi);
                let node = self.new_stmt(i, end);
                if let Some(f) = frames.last_mut() {
                    f.breaks.push(node);
                } else {
                    self.add_succ(node, EXIT_SENTINEL);
                }
                (Some(node), Vec::new(), end)
            }
            "continue" => {
                let end = self.plain_end(start, hi);
                let node = self.new_stmt(i, end);
                if let Some(head) = frames.last().map(|f| f.head) {
                    self.add_succ(node, head);
                } else {
                    self.add_succ(node, EXIT_SENTINEL);
                }
                (Some(node), Vec::new(), end)
            }
            _ => {
                let end = self.plain_end(start, hi);
                let node = self.new_stmt(i, end);
                self.scan_terminators(node, start, end, frames);
                (Some(node), vec![node], end)
            }
        }
    }

    /// `if cond { … } [else if … ] [else { … }]`.
    fn if_stmt(
        &mut self,
        i: usize,
        hi: usize,
        frames: &mut Vec<LoopFrame>,
    ) -> (Option<usize>, Vec<usize>, usize) {
        let brace = self.first_brace(i, hi);
        if brace >= hi {
            // Malformed / truncated: degrade to one plain node.
            let node = self.new_stmt(i, hi);
            self.scan_terminators(node, i, hi, frames);
            return (Some(node), vec![node], hi);
        }
        let cond = self.new_stmt(i, brace);
        self.scan_terminators(cond, i, brace, frames);
        let (b_lo, b_hi, mut after) = self.group(brace);
        let (then_e, then_t) = self.stmt_list(b_lo, b_hi, frames);
        let mut tails = Vec::new();
        match then_e {
            Some(e) => {
                self.add_succ(cond, e);
                tails.extend(then_t);
            }
            None => tails.push(cond),
        }
        if self.text(after) == "else" {
            if self.text(after + 1) == "if" {
                let (else_e, else_t, next) = self.if_stmt(after + 1, hi, frames);
                if let Some(e) = else_e {
                    self.add_succ(cond, e);
                }
                tails.extend(else_t);
                after = next;
            } else if self.text(after + 1) == "{" {
                let (e_lo, e_hi, next) = self.group(after + 1);
                let (else_e, else_t) = self.stmt_list(e_lo, e_hi, frames);
                match else_e {
                    Some(e) => {
                        self.add_succ(cond, e);
                        tails.extend(else_t);
                    }
                    None => tails.push(cond),
                }
                after = next;
            } else {
                // `else` not followed by a block: treat as no-else.
                tails.push(cond);
            }
        } else {
            // No else: the false path falls through.
            tails.push(cond);
        }
        tails.sort_unstable();
        tails.dedup();
        (Some(cond), tails, after)
    }

    /// `match scrutinee { pat => body, … }`.
    fn match_stmt(
        &mut self,
        i: usize,
        hi: usize,
        frames: &mut Vec<LoopFrame>,
    ) -> (Option<usize>, Vec<usize>, usize) {
        let brace = self.first_brace(i, hi);
        if brace >= hi {
            let node = self.new_stmt(i, hi);
            self.scan_terminators(node, i, hi, frames);
            return (Some(node), vec![node], hi);
        }
        let head = self.new_stmt(i, brace);
        self.scan_terminators(head, i, brace, frames);
        let (a_lo, a_hi, after) = self.group(brace);
        let mut tails = Vec::new();
        let mut arms = 0usize;
        let mut j = a_lo;
        while j < a_hi {
            if matches!(self.text(j), "," | "|") {
                j += 1;
                continue;
            }
            if matches!(self.text(j), "#" | "#!") {
                j += 1;
                if self.text(j) == "[" {
                    let mut depth = 0usize;
                    while j < a_hi {
                        match self.text(j) {
                            "[" => depth += 1,
                            "]" => {
                                depth -= 1;
                                if depth == 0 {
                                    j += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                }
                continue;
            }
            // Pattern (and optional guard) up to the depth-0 `=>`.
            let mut depth = 0usize;
            let mut arrow = a_hi;
            let mut k = j;
            while k < a_hi {
                match self.text(k) {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth = depth.saturating_sub(1),
                    "{" => {
                        let (_, _, g_after) = self.group(k);
                        k = g_after;
                        continue;
                    }
                    "=>" if depth == 0 => {
                        arrow = k;
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
            if arrow >= a_hi {
                break; // trailing tokens without an arm
            }
            let body_lo = arrow + 1;
            let (arm_lo, arm_hi, next) = if self.text(body_lo) == "{" {
                self.group(body_lo)
            } else {
                // Expression arm: up to the depth-0 `,` (or group end).
                let mut depth = 0usize;
                let mut k = body_lo;
                while k < a_hi {
                    match self.text(k) {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth = depth.saturating_sub(1),
                        "{" if depth == 0 => {
                            let (_, _, g_after) = self.group(k);
                            k = g_after;
                            continue;
                        }
                        "," if depth == 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
                (body_lo, k, k)
            };
            let (arm_e, arm_t) = self.stmt_list(arm_lo, arm_hi, frames);
            match arm_e {
                Some(e) => {
                    self.add_succ(head, e);
                    tails.extend(arm_t);
                }
                None => tails.push(head),
            }
            arms += 1;
            j = next.max(j + 1);
        }
        if arms == 0 {
            tails.push(head);
        }
        tails.sort_unstable();
        tails.dedup();
        (Some(head), tails, after)
    }

    /// `loop { … }`, `while cond { … }`, `for pat in iter { … }`.
    fn loop_stmt(
        &mut self,
        i: usize,
        hi: usize,
        frames: &mut Vec<LoopFrame>,
    ) -> (Option<usize>, Vec<usize>, usize) {
        let brace = if self.text(i) == "loop" {
            if self.text(i + 1) == "{" {
                i + 1
            } else {
                hi
            }
        } else {
            self.first_brace(i, hi)
        };
        if brace >= hi {
            let node = self.new_stmt(i, hi);
            self.scan_terminators(node, i, hi, frames);
            return (Some(node), vec![node], hi);
        }
        let head = self.new_stmt(i, brace);
        self.scan_terminators(head, i, brace, frames);
        let (b_lo, b_hi, after) = self.group(brace);
        frames.push(LoopFrame {
            head,
            breaks: Vec::new(),
        });
        let body_start = self.stmts.len();
        let (body_e, body_t) = self.stmt_list(b_lo, b_hi, frames);
        let body_end = self.stmts.len();
        let frame = frames.pop().expect("frame pushed above");
        if let Some(e) = body_e {
            self.add_succ(head, e);
        }
        for t in body_t {
            self.add_succ(t, head); // back edge
        }
        let mut tails = frame.breaks;
        if self.text(i) != "loop" {
            // while/for: the zero-iteration path exits at the head. An
            // infinite `loop` has no such path — it leaves via break.
            tails.push(head);
        }
        tails.sort_unstable();
        tails.dedup();
        self.loops.push(Loop {
            head,
            body: (body_start, body_end),
        });
        (Some(head), tails, after)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn cfg_of(body: &str) -> Cfg {
        let lexed = lex(body).expect("fixture lexes");
        Cfg::build(&lexed.tokens)
    }

    /// The line-sorted statement id whose range starts on `line`.
    fn on_line(cfg: &Cfg, line: u32) -> usize {
        cfg.stmts
            .iter()
            .position(|s| s.line == line)
            .unwrap_or_else(|| panic!("no stmt on line {line}"))
    }

    #[test]
    fn straight_line_chains_to_exit() {
        let cfg = cfg_of("let a = 1;\nlet b = a + 1;\nb");
        assert_eq!(cfg.stmts.len(), 3);
        assert_eq!(cfg.stmts[0].succs, vec![1]);
        assert_eq!(cfg.stmts[1].succs, vec![2]);
        assert_eq!(cfg.stmts[2].succs, vec![cfg.exit]);
    }

    #[test]
    fn if_without_else_falls_through() {
        let cfg = cfg_of("let a = 1;\nif a > 0 {\nwork();\n}\ndone();");
        let cond = on_line(&cfg, 2);
        let then = on_line(&cfg, 3);
        let join = on_line(&cfg, 5);
        assert!(cfg.stmts[cond].succs.contains(&then));
        assert!(cfg.stmts[cond].succs.contains(&join), "false path skips");
        assert_eq!(cfg.stmts[then].succs, vec![join]);
    }

    #[test]
    fn if_else_has_no_skip_edge() {
        let cfg = cfg_of("if c {\na();\n} else {\nb();\n}\njoin();");
        let cond = on_line(&cfg, 1);
        let join = on_line(&cfg, 6);
        assert_eq!(cfg.stmts[cond].succs.len(), 2);
        assert!(!cfg.stmts[cond].succs.contains(&join));
        assert!(cfg.stmts[on_line(&cfg, 2)].succs.contains(&join));
        assert!(cfg.stmts[on_line(&cfg, 4)].succs.contains(&join));
    }

    #[test]
    fn top_level_return_has_no_fallthrough() {
        let cfg = cfg_of("if c {\nreturn 0;\n}\nafter();");
        let ret = on_line(&cfg, 2);
        assert_eq!(cfg.stmts[ret].succs, vec![cfg.exit]);
    }

    #[test]
    fn nested_question_mark_keeps_fallthrough_plus_exit_edge() {
        let cfg = cfg_of("let v = fallible()?;\nuse_it(v);");
        let q = on_line(&cfg, 1);
        let next = on_line(&cfg, 2);
        assert!(cfg.stmts[q].succs.contains(&cfg.exit), "? adds exit edge");
        assert!(cfg.stmts[q].succs.contains(&next), "fallthrough kept");
    }

    #[test]
    fn match_forks_per_arm_and_scrutinee_is_not_a_tail() {
        let cfg = cfg_of("match x {\nSome(v) => a(v),\nNone => {\nb();\n}\n}\njoin();");
        let head = on_line(&cfg, 1);
        let arm0 = on_line(&cfg, 2);
        let arm1 = on_line(&cfg, 4);
        let join = on_line(&cfg, 7);
        assert_eq!(cfg.stmts[head].succs.len(), 2);
        assert!(
            !cfg.stmts[head].succs.contains(&join),
            "match is exhaustive"
        );
        assert_eq!(cfg.stmts[arm0].succs, vec![join]);
        assert_eq!(cfg.stmts[arm1].succs, vec![join]);
    }

    #[test]
    fn arm_with_return_reaches_exit_only() {
        let cfg = cfg_of("match x {\nNone => return,\nSome(v) => use_it(v),\n}\njoin();");
        let ret = on_line(&cfg, 2);
        assert_eq!(cfg.stmts[ret].succs, vec![cfg.exit]);
    }

    #[test]
    fn while_loop_has_back_edge_and_zero_iteration_exit() {
        let cfg = cfg_of("while rx.recv().is_ok() {\nstep();\n}\nafter();");
        let head = on_line(&cfg, 1);
        let body = on_line(&cfg, 2);
        let after = on_line(&cfg, 4);
        assert!(cfg.stmts[head].succs.contains(&body));
        assert!(
            cfg.stmts[head].succs.contains(&after),
            "zero-iteration path"
        );
        assert!(cfg.stmts[body].succs.contains(&head), "back edge");
        assert_eq!(cfg.loops.len(), 1);
        assert_eq!(cfg.loops[0].head, head);
        assert!(body >= cfg.loops[0].body.0 && body < cfg.loops[0].body.1);
    }

    #[test]
    fn infinite_loop_exits_only_via_break() {
        let cfg = cfg_of("loop {\nif done {\nbreak;\n}\nstep();\n}\nafter();");
        let head = on_line(&cfg, 1);
        let brk = on_line(&cfg, 3);
        let after = on_line(&cfg, 7);
        assert!(
            !cfg.stmts[head].succs.contains(&after),
            "no zero-iteration skip"
        );
        assert!(
            cfg.stmts[brk].succs.contains(&after),
            "break reaches the join"
        );
    }

    #[test]
    fn loop_without_break_never_reaches_following_statements() {
        let cfg = cfg_of("loop {\nstep();\n}\nunreachable_after();");
        let head = on_line(&cfg, 1);
        let reach = cfg.reachable_from(head);
        let after = on_line(&cfg, 4);
        assert!(!reach[after]);
        assert!(!reach[cfg.exit], "no path out of an infinite loop");
    }

    #[test]
    fn continue_targets_the_loop_head() {
        let cfg = cfg_of("for x in xs {\nif skip(x) {\ncontinue;\n}\nwork(x);\n}");
        let head = on_line(&cfg, 1);
        let cont = on_line(&cfg, 3);
        assert_eq!(cfg.stmts[cont].succs, vec![head]);
    }

    #[test]
    fn let_else_diverges_or_continues() {
        let cfg = cfg_of("let Some(v) = opt else {\nreturn;\n};\nuse_it(v);");
        // The whole let-else is one node with both an exit edge and a
        // fallthrough (the brace group is consumed mid-statement).
        let node = on_line(&cfg, 1);
        assert!(cfg.stmts[node].succs.contains(&cfg.exit));
        let next = on_line(&cfg, 4);
        assert!(cfg.stmts[node].succs.contains(&next));
    }

    #[test]
    fn nested_fn_item_is_one_opaque_node() {
        let cfg = cfg_of("fn helper(x: u64) -> u64 {\nx + 1\n}\nlet y = helper(2);\ny");
        assert_eq!(cfg.stmts.len(), 3, "item + let + tail expression");
        assert_eq!(cfg.stmts[0].succs, vec![1]);
    }

    #[test]
    fn must_reach_sees_the_early_return_gap() {
        // store; if c { return; } publish;  — publish is skipped on the
        // early path, so must_reach(publish) fails from the store.
        let cfg = cfg_of("store();\nif c {\nreturn;\n}\npublish();");
        let store = on_line(&cfg, 1);
        let publish = on_line(&cfg, 5);
        let must = cfg.must_reach(|s| s == publish);
        assert!(must[publish]);
        assert!(!must[store], "early return dodges the publish");

        // Without the early return every path publishes.
        let cfg2 = cfg_of("store();\nif c {\nextra();\n}\npublish();");
        let store2 = on_line(&cfg2, 1);
        let publish2 = on_line(&cfg2, 5);
        let must2 = cfg2.must_reach(|s| s == publish2);
        assert!(must2[store2]);
    }

    #[test]
    fn enclosing_loop_picks_the_innermost() {
        let cfg = cfg_of("while a {\nwhile b {\ninner();\n}\nouter();\n}");
        let inner_stmt = on_line(&cfg, 3);
        let inner_head = on_line(&cfg, 2);
        let l = cfg.enclosing_loop(inner_stmt).expect("inside two loops");
        assert_eq!(l.head, inner_head);
        let outer_stmt = on_line(&cfg, 5);
        let outer_head = on_line(&cfg, 1);
        let l2 = cfg.enclosing_loop(outer_stmt).expect("inside outer loop");
        assert_eq!(l2.head, outer_head);
    }
}
