//! MRL-A006 — channel-topology deadlock analysis.
//!
//! Scoped to the `parallel` crate (the workspace's only mpsc user):
//! every `channel()`/`sync_channel()` creation is tracked to its
//! endpoint names — through `let`-tuple bindings, `.clone()`, plain
//! rebinding, struct-literal fields, and `Vec::push` — and every
//! `.send`/`.try_send`/`.recv`/`.try_recv`/iteration site is attributed
//! to a *context*: the surrounding `spawn(move || …)` closure, or the
//! shared main context for everything else. Three checks:
//!
//! 1. **Bounded cycles** — a bounded channel whose receive context can
//!    reach its send context back through bounded edges: both sides can
//!    block full/empty simultaneously.
//! 2. **Dead receivers** — a channel with send sites whose receiver is
//!    dropped or never read: bounded senders block forever once the
//!    buffer fills, unbounded ones leak.
//! 3. **Blocking bounded sends inside recv-blocked loops** — the
//!    classic ABBA shape: holding a loop headed by a blocking `recv`
//!    while issuing a blocking send on a *bounded* channel.
//!
//! Endpoints are tracked by name, crate-wide; an endpoint passed as a
//! bare call argument escapes the analysis and mutes check 2 for its
//! channel (`drop(rx)` is the deliberate exception — that *is* the
//! dropped-receiver case). Suppression: `// protocol:`.

use std::collections::BTreeSet;

use crate::atomics::receiver_of;
use crate::cfg::Cfg;
use crate::lexer::{Lexed, TokKind, Token};
use crate::parser::FnInfo;
use crate::rules::{justified, snippet_of, Finding};
use crate::workspace::Workspace;

/// One analysed function body in the crate.
struct FnBody<'a> {
    path: &'a str,
    lexed: &'a Lexed,
    info: &'a FnInfo,
    /// Body token slice (relative indices everywhere below).
    toks: &'a [Token],
    cfg: Cfg,
    /// `spawn(…)` closure body token ranges, innermost-last, with their
    /// context ids.
    spawns: Vec<(usize, usize, usize)>,
}

impl FnBody<'_> {
    /// Context of a token position: the innermost enclosing spawn
    /// closure, or the shared main context 0.
    fn ctx_of(&self, tok: usize) -> usize {
        self.spawns
            .iter()
            .filter(|&&(lo, hi, _)| tok >= lo && tok < hi)
            .min_by_key(|&&(lo, hi, _)| hi - lo)
            .map_or(MAIN_CTX, |&(_, _, id)| id)
    }

    /// CFG statement containing a token position, if any (match-arm
    /// patterns and `else` keywords belong to no statement).
    fn stmt_of(&self, tok: usize) -> Option<usize> {
        self.cfg
            .stmts
            .iter()
            .position(|s| tok >= s.range.0 && tok < s.range.1)
    }
}

const MAIN_CTX: usize = 0;

/// One channel creation site.
struct Chan {
    bounded: bool,
    /// Function the channel was created in (index into the body list) —
    /// anchors the finding and its justification lookup.
    owner: usize,
    line: u32,
    /// Names the sender / receiver ends are reachable under.
    senders: BTreeSet<String>,
    receivers: BTreeSet<String>,
    /// The receiver escaped as a bare call argument: another function
    /// owns its fate, so "never received" cannot be concluded here.
    receiver_escaped: bool,
    /// An explicit `drop(rx)` was seen.
    receiver_dropped: bool,
}

/// One send or receive site.
struct Site {
    chan: usize,
    ctx: usize,
    /// Body index of the op token, and which function.
    f: usize,
    tok: usize,
    line: u32,
    blocking: bool,
}

fn ident_at(toks: &[Token], i: usize, text: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Ident && t.text == text)
}

/// Is `toks[j]` inside a `let (…)`-pattern group rather than a call
/// argument list? The binding `let ( tx , rx ) = …` has the same local
/// shape as a bare call argument, so the escape scan must walk back to
/// the unmatched `(` and look at what opened the group.
fn in_let_pattern(toks: &[Token], j: usize) -> bool {
    let mut depth = 0usize;
    let mut i = j;
    while i > 0 {
        i -= 1;
        match toks[i].text.as_str() {
            ")" => depth += 1,
            "(" => {
                if depth == 0 {
                    return i > 0 && ident_at(toks, i - 1, "let");
                }
                depth -= 1;
            }
            _ => {}
        }
    }
    false
}

/// Find the spawn-closure body ranges in a token slice: `spawn` `(`,
/// then the first `|…|` closure inside, then its braced body (or the
/// rest of the argument group for expression closures).
fn spawn_ranges(toks: &[Token], next_ctx: &mut usize) -> Vec<(usize, usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !(ident_at(toks, i, "spawn") && toks.get(i + 1).is_some_and(|t| t.text == "(")) {
            i += 1;
            continue;
        }
        // Argument group bounds.
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut g_hi = toks.len();
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        g_hi = j;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        // First closure: `|params|` (or `||`).
        let mut k = i + 2;
        let mut body_lo = None;
        while k < g_hi {
            if toks[k].text == "||" {
                body_lo = Some(k + 1);
                break;
            }
            if toks[k].text == "|" {
                let mut m = k + 1;
                while m < g_hi && toks[m].text != "|" {
                    m += 1;
                }
                body_lo = Some(m + 1);
                break;
            }
            k += 1;
        }
        if let Some(lo) = body_lo {
            let (b_lo, b_hi) = if toks.get(lo).is_some_and(|t| t.text == "{") {
                let mut depth = 0usize;
                let mut m = lo;
                let mut hi = g_hi;
                while m < g_hi {
                    match toks[m].text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                hi = m + 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    m += 1;
                }
                (lo, hi)
            } else {
                (lo, g_hi)
            };
            out.push((b_lo, b_hi, *next_ctx));
            *next_ctx += 1;
        }
        i = g_hi.max(i + 1);
    }
    out
}

const RECV_OPS: &[(&str, bool)] = &[
    ("recv", true),
    ("recv_timeout", true),
    ("try_recv", false),
    ("iter", true),
    ("try_iter", false),
    ("into_iter", true),
];

pub(crate) fn check(ws: &Workspace, findings: &mut Vec<Finding>) {
    for krate in &ws.crates {
        if krate.dir != "parallel" {
            continue;
        }
        check_crate(krate, findings);
    }
}

fn check_crate(krate: &crate::workspace::Crate, findings: &mut Vec<Finding>) {
    let mut next_ctx = MAIN_CTX + 1;
    let mut fns: Vec<FnBody> = Vec::new();
    for file in &krate.files {
        for info in &file.fns {
            if info.is_test || info.body.0 == info.body.1 {
                continue;
            }
            let toks = &file.lexed.tokens[info.body.0..info.body.1];
            fns.push(FnBody {
                path: &file.path,
                lexed: &file.lexed,
                info,
                toks,
                cfg: Cfg::build(toks),
                spawns: spawn_ranges(toks, &mut next_ctx),
            });
        }
    }

    // Pass 1: channel creations, with the `let (tx, rx) =` names.
    let mut chans: Vec<Chan> = Vec::new();
    for (fi, f) in fns.iter().enumerate() {
        let toks = f.toks;
        for stmt in &f.cfg.stmts {
            let (lo, hi) = stmt.range;
            for j in lo..hi {
                let is_ctor = (ident_at(toks, j, "sync_channel") || ident_at(toks, j, "channel"))
                    && j + 1 < hi
                    && matches!(toks[j + 1].text.as_str(), "(" | "::")
                    && (j == 0 || toks[j - 1].text != ".");
                if !is_ctor {
                    continue;
                }
                // `let ( tx , rx ) =` at the statement head.
                let mut senders = BTreeSet::new();
                let mut receivers = BTreeSet::new();
                if ident_at(toks, lo, "let")
                    && toks.get(lo + 1).is_some_and(|t| t.text == "(")
                    && toks.get(lo + 2).is_some_and(|t| t.kind == TokKind::Ident)
                    && toks.get(lo + 3).is_some_and(|t| t.text == ",")
                    && toks.get(lo + 4).is_some_and(|t| t.kind == TokKind::Ident)
                    && toks.get(lo + 5).is_some_and(|t| t.text == ")")
                {
                    senders.insert(toks[lo + 2].text.clone());
                    receivers.insert(toks[lo + 4].text.clone());
                }
                chans.push(Chan {
                    bounded: toks[j].text == "sync_channel",
                    owner: fi,
                    line: toks[j].line,
                    senders,
                    receivers,
                    receiver_escaped: false,
                    receiver_dropped: false,
                });
            }
        }
    }
    if chans.is_empty() {
        return;
    }

    // Pass 2: alias propagation, two rounds for clone-of-clone chains.
    for _ in 0..2 {
        for f in &fns {
            let toks = f.toks;
            for j in 0..toks.len() {
                // `let X = Y ;` / `let X = Y . clone ( )`
                if ident_at(toks, j, "let")
                    && toks.get(j + 1).is_some_and(|t| t.kind == TokKind::Ident)
                    && toks.get(j + 2).is_some_and(|t| t.text == "=")
                    && toks.get(j + 3).is_some_and(|t| t.kind == TokKind::Ident)
                {
                    let dst = &toks[j + 1].text;
                    let src = &toks[j + 3].text;
                    let simple = toks.get(j + 4).is_some_and(|t| t.text == ";")
                        || (toks.get(j + 4).is_some_and(|t| t.text == ".")
                            && ident_at(toks, j + 5, "clone"));
                    if simple {
                        for c in chans.iter_mut() {
                            if c.senders.contains(src) {
                                c.senders.insert(dst.clone());
                            }
                            if c.receivers.contains(src) {
                                c.receivers.insert(dst.clone());
                            }
                        }
                    }
                }
                // Struct-literal field or assignment: `name : Y` /
                // `. name = Y`.
                if toks.get(j).is_some_and(|t| t.kind == TokKind::Ident)
                    && toks
                        .get(j + 1)
                        .is_some_and(|t| t.text == ":" || t.text == "=")
                    && toks.get(j + 2).is_some_and(|t| t.kind == TokKind::Ident)
                    && toks
                        .get(j + 3)
                        .is_some_and(|t| matches!(t.text.as_str(), "," | "}" | ";"))
                {
                    let dst = &toks[j].text;
                    let src = &toks[j + 2].text;
                    for c in chans.iter_mut() {
                        if c.senders.contains(src) {
                            c.senders.insert(dst.clone());
                        }
                        if c.receivers.contains(src) {
                            c.receivers.insert(dst.clone());
                        }
                    }
                }
                // `X . push ( Y )` — a collection of endpoints.
                if toks.get(j).is_some_and(|t| t.kind == TokKind::Ident)
                    && toks.get(j + 1).is_some_and(|t| t.text == ".")
                    && ident_at(toks, j + 2, "push")
                    && toks.get(j + 3).is_some_and(|t| t.text == "(")
                    && toks.get(j + 4).is_some_and(|t| t.kind == TokKind::Ident)
                {
                    let dst = &toks[j].text;
                    let src = &toks[j + 4].text;
                    for c in chans.iter_mut() {
                        if c.senders.contains(src) {
                            c.senders.insert(dst.clone());
                        }
                        if c.receivers.contains(src) {
                            c.receivers.insert(dst.clone());
                        }
                    }
                }
            }
        }
    }

    // Pass 3: sends, receives, drops, escapes.
    let mut sends: Vec<Site> = Vec::new();
    let mut recvs: Vec<Site> = Vec::new();
    for (fi, f) in fns.iter().enumerate() {
        let toks = f.toks;
        for j in 0..toks.len() {
            let t = &toks[j];
            if t.kind != TokKind::Ident {
                continue;
            }
            let is_call =
                j > 0 && toks[j - 1].text == "." && toks.get(j + 1).is_some_and(|t| t.text == "(");
            if is_call && matches!(t.text.as_str(), "send" | "try_send") {
                let recv_name = receiver_of(toks, j - 1);
                if let Some(ci) = chans.iter().position(|c| c.senders.contains(&recv_name)) {
                    sends.push(Site {
                        chan: ci,
                        ctx: f.ctx_of(j),
                        f: fi,
                        tok: j,
                        line: t.line,
                        blocking: t.text == "send",
                    });
                }
            }
            if is_call {
                if let Some(&(_, blocking)) = RECV_OPS.iter().find(|(name, _)| *name == t.text) {
                    let recv_name = receiver_of(toks, j - 1);
                    if let Some(ci) = chans.iter().position(|c| c.receivers.contains(&recv_name)) {
                        recvs.push(Site {
                            chan: ci,
                            ctx: f.ctx_of(j),
                            f: fi,
                            tok: j,
                            line: t.line,
                            blocking,
                        });
                    }
                }
            }
            // `for pat in rx { … }` — blocking iteration.
            if t.text == "in" && toks.get(j + 1).is_some_and(|t| t.kind == TokKind::Ident) {
                let name = &toks[j + 1].text;
                if let Some(ci) = chans.iter().position(|c| c.receivers.contains(name)) {
                    recvs.push(Site {
                        chan: ci,
                        ctx: f.ctx_of(j),
                        f: fi,
                        tok: j + 1,
                        line: toks[j + 1].line,
                        blocking: true,
                    });
                }
            }
            // `drop ( rx )` vs. a receiver escaping as a call argument.
            let bare_arg = j > 0
                && matches!(toks[j - 1].text.as_str(), "(" | ",")
                && toks
                    .get(j + 1)
                    .is_some_and(|t| matches!(t.text.as_str(), ")" | ","));
            if bare_arg && !in_let_pattern(toks, j) {
                let in_drop = toks[j - 1].text == "(" && j >= 2 && ident_at(toks, j - 2, "drop");
                for c in chans.iter_mut() {
                    if c.receivers.contains(&t.text) {
                        if in_drop {
                            c.receiver_dropped = true;
                        } else {
                            c.receiver_escaped = true;
                        }
                    }
                }
            }
        }
    }

    let anchor = |c: &Chan| {
        let f = &fns[c.owner];
        (
            f.path.to_string(),
            c.line,
            snippet_of(f.lexed, c.line),
            justified(f.lexed, c.line, f.info.item_line, "MRL-A006"),
        )
    };

    // Check 1: bounded cycles. Edge per bounded channel, send ctx →
    // recv ctx; a channel is cyclic when some recv ctx reaches one of
    // its send ctxs through bounded edges (self-loops included).
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for s in sends.iter().filter(|s| chans[s.chan].bounded) {
        for r in recvs.iter().filter(|r| r.chan == s.chan) {
            edges.push((s.ctx, r.ctx));
        }
    }
    edges.sort_unstable();
    edges.dedup();
    let reaches = |from: usize, to: usize| -> bool {
        let mut seen = BTreeSet::new();
        let mut queue = vec![from];
        while let Some(n) = queue.pop() {
            if n == to {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            queue.extend(edges.iter().filter(|(a, _)| *a == n).map(|(_, b)| *b));
        }
        false
    };
    for (ci, c) in chans.iter().enumerate() {
        if !c.bounded {
            continue;
        }
        let cyclic = sends.iter().filter(|s| s.chan == ci).any(|s| {
            recvs
                .iter()
                .filter(|r| r.chan == ci)
                .any(|r| reaches(r.ctx, s.ctx))
        });
        if cyclic {
            let (path, line, snippet, is_justified) = anchor(c);
            if !is_justified {
                findings.push(Finding {
                    rule: "MRL-A006",
                    path,
                    line,
                    snippet,
                    fingerprint: 0,
                    message: "bounded channel participates in a send/recv cycle over \
                              bounded edges — every party can block full/empty at once \
                              and deadlock (`// protocol:` to justify)"
                        .to_string(),
                });
            }
        }
    }

    // Check 2: dead or dropped receivers.
    for (ci, c) in chans.iter().enumerate() {
        let has_send = sends.iter().any(|s| s.chan == ci);
        let has_recv = recvs.iter().any(|r| r.chan == ci);
        if has_send && !has_recv && !c.receiver_escaped && !c.receivers.is_empty() {
            let (path, line, snippet, is_justified) = anchor(c);
            if is_justified {
                continue;
            }
            let what = if c.receiver_dropped {
                "its receiver is dropped while send sites remain — senders see \
                 disconnection (or block forever on a full bounded buffer) before \
                 finishing"
            } else {
                "it has send sites but no receive site — the data is never drained"
            };
            findings.push(Finding {
                rule: "MRL-A006",
                path,
                line,
                snippet,
                fingerprint: 0,
                message: format!("channel created here: {what} (`// protocol:` to justify)"),
            });
        }
    }

    // Check 3: blocking bounded send inside a recv-blocked loop.
    for s in sends.iter().filter(|s| s.blocking && chans[s.chan].bounded) {
        let f = &fns[s.f];
        let Some(stmt) = f.stmt_of(s.tok) else {
            continue;
        };
        let recv_headed = f.cfg.loops.iter().any(|l| {
            if !(stmt >= l.body.0 && stmt < l.body.1) {
                return false;
            }
            let (h_lo, h_hi) = f.cfg.stmts[l.head].range;
            recvs
                .iter()
                .any(|r| r.f == s.f && r.blocking && r.tok >= h_lo && r.tok < h_hi)
        });
        if recv_headed && !justified(f.lexed, s.line, f.info.item_line, "MRL-A006") {
            findings.push(Finding {
                rule: "MRL-A006",
                path: f.path.to_string(),
                line: s.line,
                snippet: snippet_of(f.lexed, s.line),
                fingerprint: 0,
                message: "blocking send on a bounded channel inside a loop that blocks \
                          on recv — if the peer mirrors this shape both sides stall \
                          (`// protocol:` to justify)"
                    .to_string(),
            });
        }
    }
}
