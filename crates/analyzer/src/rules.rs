//! The core workspace analyses (MRL-A001..A004, plus the MRL-A010
//! justification audit) and the shared finding machinery.
//!
//! Each rule emits [`Finding`]s with the same line-number-independent
//! FNV-1a fingerprint scheme the lexer linter uses, so findings survive
//! unrelated edits and the committed baseline only churns when a finding
//! genuinely appears or disappears.
//!
//! Suppression is by justification tag, written in a comment on the
//! offending line, in a contiguous comment block immediately above it,
//! or in the comment block above the enclosing function's item (where it
//! covers every site of that rule in the function):
//!
//! * `// panic-free: <why>` — MRL-A001 sink audited as unreachable;
//! * `// arith: <why>` — MRL-A002 arithmetic audited as non-overflowing;
//! * `// alloc: <why>` — MRL-A003 allocation accepted on the hot path
//!   (amortised, bounded, or setup-only);
//! * `// nondet: <why>` — MRL-A008 nondeterminism source reviewed as
//!   result-invariant;
//! * `// safety: <why>` — MRL-A009 unsafe contract (conventional
//!   `// SAFETY:` blocks count: tag matching is case-insensitive).
//!
//! MRL-A010 audits the `// panic-free:` vocabulary itself (lying or
//! stale tags) and therefore has no suppression tag of its own.

use std::collections::BTreeMap;

use crate::graph::CallGraph;
use crate::lexer::Lexed;
use crate::summary::Summaries;
use crate::workspace::Workspace;

/// One analyzer finding.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    pub path: String,
    pub line: u32,
    pub snippet: String,
    pub fingerprint: u64,
    pub message: String,
}

/// 64-bit FNV-1a — same scheme as the lexer linter, so both baselines
/// share one fingerprint vocabulary.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Crates whose hot paths MRL-A001/A003/A008 trace from.
pub(crate) const HOT_CRATES: &[&str] = &["core", "framework", "sampling", "parallel"];

/// Crates where reached sinks are *reported*. Reachability traverses the
/// whole workspace, but method-call resolution is name-based (see
/// DESIGN.md §3.11) and happily jumps from `core::ExtremeValue::query`
/// into `baselines::GmpHistogram::quantile` because both are named
/// `quantile`. The reference/offline crates (`baselines`, `datagen`,
/// `exact`, `analysis`, `bench`, `cli`) make no hot-path guarantees, so
/// sinks there are noise, not findings.
pub(crate) const REPORT_CRATES: &[&str] =
    &["core", "framework", "sampling", "parallel", "io", "obs"];

/// Crates in scope for the accounting-arithmetic rule.
const ARITH_CRATES: &[&str] = &["core", "framework"];

/// Entry points whose transitive callees must be panic-free (MRL-A001).
pub(crate) const PANIC_ROOTS: &[&str] = &[
    "insert",
    "insert_batch",
    "extend",
    "offer",
    "offer_slice",
    "accept",
    "accept_many",
    "select_weighted",
    "select_weighted_into",
    "query",
    "query_many",
    "finish",
    "collapse_once",
    "collapse_all_full",
    "perform_collapse",
    "complete_fill",
    "take_filler",
    "begin_fill",
];

/// Result-affecting entry points for the nondeterminism pass (MRL-A008):
/// everything the panic rule roots at, plus the merge/shipment/snapshot
/// surface and the sharded-pipeline lifecycle (worker spawn included —
/// the per-shard ingest loop lives in the constructor's closure).
pub(crate) const NONDET_ROOTS: &[&str] = &[
    "insert",
    "insert_batch",
    "extend",
    "offer",
    "offer_slice",
    "accept",
    "accept_many",
    "select_weighted",
    "select_weighted_into",
    "query",
    "query_many",
    "rank_of",
    "finish",
    "collapse_once",
    "collapse_all_full",
    "perform_collapse",
    "complete_fill",
    "take_filler",
    "begin_fill",
    "into_shipment",
    "add_buffer",
    "from_shipments",
    "merge_sketches",
    "ship_upward",
    "merge_hierarchical",
    "snapshot",
    "restore",
    "parallel_quantiles",
    "new_with_obs",
    "from_config_with_obs",
];

/// Per-element ingest entry points (MRL-A003) — a strict subset of the
/// panic roots: query/collapse paths may allocate, the per-element path
/// must not.
const INGEST_ROOTS: &[&str] = &[
    "insert",
    "insert_batch",
    "extend",
    "offer",
    "offer_slice",
    "accept",
    "accept_many",
];

/// Identifiers treated as exact-accounting values (weights, counts,
/// stream totals) for MRL-A002. Matching any of these in either operand
/// chain of an unchecked `+ - * <<` puts the site in scope.
pub(crate) const ACCOUNTING_IDENTS: &[&str] = &[
    "weight",
    "w_sum",
    "w_max",
    "mass",
    "total_n",
    "total_weight",
    "elements",
    "count",
    "counts",
    "seen",
    "pending",
    "leaves",
    "collapse_weight_sum",
    "expected_n",
];

/// Justification-tag prefixes, per rule.
fn tag_for(rule: &'static str) -> &'static str {
    match rule {
        "MRL-A001" => "panic-free:",
        "MRL-A002" | "MRL-A007" => "arith:",
        "MRL-A003" => "alloc:",
        "MRL-A005" | "MRL-A006" => "protocol:",
        "MRL-A008" => "nondet:",
        "MRL-A009" => "safety:",
        _ => "\u{0}", // A004/A010 have no tag vocabulary
    }
}

/// Case-insensitive tag containment, so conventional `// SAFETY:` blocks
/// satisfy the lowercase `safety:` vocabulary.
fn has_tag(comment: &str, tag: &str) -> bool {
    comment.to_ascii_lowercase().contains(tag)
}

/// Does a comment at `line`, or in the contiguous pure-comment block
/// immediately above it, contain `tag`?
fn tagged_at(lexed: &Lexed, line: u32, tag: &str) -> bool {
    if lexed.comments.get(&line).is_some_and(|c| has_tag(c, tag)) {
        return true;
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        match lexed.comments.get(&l) {
            Some(c) if !lexed.code_lines.contains(&l) => {
                if has_tag(c, tag) {
                    return true;
                }
            }
            _ => return false,
        }
    }
    false
}

/// All comment lines whose tag would cover a site at `line` inside a
/// function whose item starts at `item_line` — the inverse of
/// [`tagged_at`], used by the MRL-A010 stale-tag audit to credit tags
/// with the findings they suppress.
fn covering_tag_lines(lexed: &Lexed, line: u32, item_line: u32, tag: &str) -> Vec<u32> {
    let mut out = Vec::new();
    for anchor in [line, item_line] {
        if anchor == 0 {
            continue;
        }
        if lexed.comments.get(&anchor).is_some_and(|c| has_tag(c, tag)) {
            out.push(anchor);
        }
        let mut l = anchor;
        while l > 1 {
            l -= 1;
            match lexed.comments.get(&l) {
                Some(c) if !lexed.code_lines.contains(&l) => {
                    if has_tag(c, tag) {
                        out.push(l);
                    }
                }
                _ => break,
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Statement-level or function-level justification for a site at `line`
/// inside a function whose item (attributes included) starts at
/// `item_line`.
pub(crate) fn justified(lexed: &Lexed, line: u32, item_line: u32, rule: &'static str) -> bool {
    let tag = tag_for(rule);
    tagged_at(lexed, line, tag) || (item_line > 0 && tagged_at(lexed, item_line, tag))
}

/// Tokens of `line` joined with single spaces — the fingerprint snippet.
/// Comment-free and whitespace-normalised, so reformatting a line does
/// not move its fingerprint.
pub(crate) fn snippet_of(lexed: &Lexed, line: u32) -> String {
    let mut out = String::new();
    for t in &lexed.tokens {
        if t.line == line {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(&t.text);
        }
    }
    out
}

/// Assign occurrence-disambiguated fingerprints: the N-th finding with
/// identical (rule, path, snippet) gets occurrence N, so two findings on
/// textually identical lines stay distinct yet stable.
fn fingerprint_all(findings: &mut [Finding]) {
    let mut seen: BTreeMap<(String, String, String), u32> = BTreeMap::new();
    for f in findings.iter_mut() {
        let key = (f.rule.to_string(), f.path.clone(), f.snippet.clone());
        let occ = seen.entry(key).or_insert(0);
        let payload = format!("{}\u{0}{}\u{0}{}\u{0}{}", f.rule, f.path, f.snippet, occ);
        f.fingerprint = fnv1a64(payload.as_bytes());
        *occ += 1;
    }
}

pub(crate) fn lexed_of<'a>(ws: &'a Workspace, path: &str) -> &'a Lexed {
    &ws.file(path)
        .expect("graph paths come from the workspace")
        .lexed
}

/// MRL-A001: no panic source may be reachable from a hot-path root.
///
/// Since the interprocedural summary engine landed, the per-function
/// sink set is CFG-filtered: a sink on a statement no path from the
/// function entry reaches (dead code) is discharged before reporting.
fn panic_reachability(
    ws: &Workspace,
    graph: &CallGraph,
    summaries: &Summaries,
    out: &mut Vec<Finding>,
) {
    let roots = graph.find(|f| {
        !f.info.is_test
            && HOT_CRATES.contains(&f.krate.as_str())
            && PANIC_ROOTS.contains(&f.info.name.as_str())
    });
    let reach = graph.reach(&roots);
    for (&i, trace) in &reach {
        let f = &graph.fns[i];
        if f.info.is_test || !REPORT_CRATES.contains(&f.krate.as_str()) {
            continue;
        }
        let lexed = lexed_of(ws, &f.path);
        for sink in &summaries.fns[i].live_sinks {
            if justified(lexed, sink.line, f.info.item_line, "MRL-A001") {
                continue;
            }
            out.push(Finding {
                rule: "MRL-A001",
                path: f.path.clone(),
                line: sink.line,
                snippet: snippet_of(lexed, sink.line),
                fingerprint: 0,
                message: format!(
                    "{} reachable from hot path: {}",
                    sink.kind.describe(),
                    graph.render_trace(trace)
                ),
            });
        }
    }
}

/// MRL-A010: summary-based audit of the `// panic-free:` vocabulary.
///
/// Two checks over the may/must summaries:
///
/// 1. **Lying tag** — a `// panic-free:` tag covering a panic-family
///    macro whose statement executes on *every* path through a function
///    that a hot root reaches. The tag claims the site is unreachable;
///    the must-analysis proves it always runs.
/// 2. **Stale tag** — a `// panic-free:` tag that suppresses zero
///    would-be MRL-A001 findings under the sharper analysis (the
///    function is unreached, the sink is CFG-dead, or there is no sink
///    under the tag at all). Stale tags are audit debt: delete them or
///    demote them to plain comments.
fn panic_audit(ws: &Workspace, graph: &CallGraph, summaries: &Summaries, out: &mut Vec<Finding>) {
    let tag = tag_for("MRL-A001");
    let roots = graph.find(|f| {
        !f.info.is_test
            && HOT_CRATES.contains(&f.krate.as_str())
            && PANIC_ROOTS.contains(&f.info.name.as_str())
    });
    let reach = graph.reach(&roots);

    // Check 1 + credit collection for check 2: walk every reached,
    // reported function's live sinks and record which tag lines cover
    // them (suppressed or not — a covering tag is a *used* tag).
    let mut used: BTreeMap<String, std::collections::BTreeSet<u32>> = BTreeMap::new();
    for (&i, trace) in &reach {
        let f = &graph.fns[i];
        if f.info.is_test || !REPORT_CRATES.contains(&f.krate.as_str()) {
            continue;
        }
        let lexed = lexed_of(ws, &f.path);
        for sink in &summaries.fns[i].live_sinks {
            let covering = covering_tag_lines(lexed, sink.line, f.info.item_line, tag);
            used.entry(f.path.clone())
                .or_default()
                .extend(covering.iter().copied());
            if !covering.is_empty() && summaries.fns[i].must_panic_lines.contains(&sink.line) {
                out.push(Finding {
                    rule: "MRL-A010",
                    path: f.path.clone(),
                    line: sink.line,
                    snippet: snippet_of(lexed, sink.line),
                    fingerprint: 0,
                    message: format!(
                        "`// panic-free:` tag contradicted: this panic-family macro \
                         executes on every path through {} and the function is \
                         reachable from a hot root ({}) — fix the panic, don't tag it",
                        f.label(),
                        graph.render_trace(trace)
                    ),
                });
            }
        }
    }

    // Check 2: every `panic-free:` tag line in a report crate that no
    // live, reachable sink credits is stale. Tags inside test spans are
    // exempt (test sinks are never reported, so their tags are
    // documentation, not suppression).
    for krate in &ws.crates {
        if !REPORT_CRATES.contains(&krate.dir.as_str()) {
            continue;
        }
        for file in &krate.files {
            let test_spans: Vec<(u32, u32)> = file
                .fns
                .iter()
                .filter(|f| f.is_test && f.body.0 < f.body.1)
                .map(|f| {
                    let last = file.lexed.tokens[f.body.1 - 1].line;
                    (f.item_line.min(f.line), last)
                })
                .collect();
            let used_here = used.get(&file.path);
            for (&line, comment) in &file.lexed.comments {
                if !has_tag(comment, tag) {
                    continue;
                }
                if test_spans.iter().any(|&(lo, hi)| line >= lo && line <= hi) {
                    continue;
                }
                if used_here.is_some_and(|u| u.contains(&line)) {
                    continue;
                }
                out.push(Finding {
                    rule: "MRL-A010",
                    path: file.path.clone(),
                    line,
                    snippet: comment.trim().to_string(),
                    fingerprint: 0,
                    message: format!(
                        "stale `// panic-free:` tag: it suppresses no reachable panic \
                         sink under the interprocedural summaries (crate `{}`) — delete \
                         it or demote it to a plain comment",
                        krate.dir
                    ),
                });
            }
        }
    }
}

/// MRL-A002: unchecked arithmetic on accounting values in core/framework.
fn arithmetic_safety(ws: &Workspace, graph: &CallGraph, out: &mut Vec<Finding>) {
    for f in &graph.fns {
        if f.info.is_test || !ARITH_CRATES.contains(&f.krate.as_str()) {
            continue;
        }
        let lexed = lexed_of(ws, &f.path);
        for a in &f.facts.arith {
            if a.float {
                continue;
            }
            let Some(hit) = a
                .idents
                .iter()
                .find(|id| ACCOUNTING_IDENTS.contains(&id.as_str()))
            else {
                continue;
            };
            if justified(lexed, a.line, f.info.item_line, "MRL-A002") {
                continue;
            }
            out.push(Finding {
                rule: "MRL-A002",
                path: f.path.clone(),
                line: a.line,
                snippet: snippet_of(lexed, a.line),
                fingerprint: 0,
                message: format!(
                    "unchecked `{}` on accounting value `{}` in {} — use checked_/saturating_/widening arithmetic or justify with `// arith:`",
                    a.op,
                    hit,
                    f.label()
                ),
            });
        }
    }
}

/// MRL-A003: allocation in functions reachable from per-element ingest.
fn hot_path_allocation(ws: &Workspace, graph: &CallGraph, out: &mut Vec<Finding>) {
    let roots = graph.find(|f| {
        !f.info.is_test
            && HOT_CRATES.contains(&f.krate.as_str())
            && INGEST_ROOTS.contains(&f.info.name.as_str())
    });
    let reach = graph.reach(&roots);
    for (&i, trace) in &reach {
        let f = &graph.fns[i];
        if f.info.is_test || !REPORT_CRATES.contains(&f.krate.as_str()) {
            continue;
        }
        let lexed = lexed_of(ws, &f.path);
        for alloc in &f.facts.allocs {
            if justified(lexed, alloc.line, f.info.item_line, "MRL-A003") {
                continue;
            }
            out.push(Finding {
                rule: "MRL-A003",
                path: f.path.clone(),
                line: alloc.line,
                snippet: snippet_of(lexed, alloc.line),
                fingerprint: 0,
                message: format!(
                    "`{}` allocates on the per-element ingest path: {}",
                    alloc.what,
                    graph.render_trace(trace)
                ),
            });
        }
    }
}

/// MRL-A004: cfg(feature = "…") strings ↔ Cargo.toml [features] table.
fn feature_consistency(ws: &Workspace, out: &mut Vec<Finding>) {
    for krate in &ws.crates {
        let mut referenced: BTreeMap<&str, (&str, u32)> = BTreeMap::new();
        for file in &krate.files {
            for (feat, line) in &file.features {
                referenced.entry(feat).or_insert((&file.path, *line));
            }
        }
        for (feat, &(path, line)) in &referenced {
            if !krate.manifest.features.contains_key(*feat) {
                let lexed = lexed_of(ws, path);
                out.push(Finding {
                    rule: "MRL-A004",
                    path: path.to_string(),
                    line,
                    snippet: snippet_of(lexed, line),
                    fingerprint: 0,
                    message: format!(
                        "cfg references feature \"{feat}\" which `{}` does not declare in [features]",
                        krate.manifest.name
                    ),
                });
            }
        }
        for (feat, decl) in &krate.manifest.features {
            if decl.forwards || referenced.contains_key(feat.as_str()) {
                continue;
            }
            out.push(Finding {
                rule: "MRL-A004",
                path: krate.manifest_path.clone(),
                line: decl.line,
                snippet: format!("feature {feat}"),
                fingerprint: 0,
                message: format!(
                    "feature \"{feat}\" declared by `{}` is empty and never referenced by a cfg in the crate",
                    krate.manifest.name
                ),
            });
        }
    }
}

/// Run all ten analyses over a loaded workspace.
pub fn analyze(ws: &Workspace) -> Vec<Finding> {
    let graph = ws.graph();
    let summaries = crate::summary::compute(
        &graph,
        |path| lexed_of(ws, path),
        |lexed, line, item_line| justified(lexed, line, item_line, "MRL-A008"),
    );
    let mut findings = Vec::new();
    panic_reachability(ws, &graph, &summaries, &mut findings);
    arithmetic_safety(ws, &graph, &mut findings);
    hot_path_allocation(ws, &graph, &mut findings);
    feature_consistency(ws, &mut findings);
    crate::atomics::check(ws, &mut findings);
    crate::channels::check(ws, &mut findings);
    crate::dataflow::check(ws, &mut findings);
    crate::nondet::check(ws, &graph, &summaries, &mut findings);
    crate::unsafety::check(ws, &graph, &summaries, &mut findings);
    panic_audit(ws, &graph, &summaries, &mut findings);
    findings.sort_by(|a, b| {
        (a.rule, &a.path, a.line, &a.message).cmp(&(b.rule, &b.path, b.line, &b.message))
    });
    fingerprint_all(&mut findings);
    findings
}
